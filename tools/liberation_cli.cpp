// liberation_cli — RAID-6 file sharding from the command line.
//
//   liberation_cli split  <file> <dir> [--k N] [--p P] [--elem BYTES]
//   liberation_cli join   <dir> <file>
//   liberation_cli verify <dir> [--repair]
//
// split  : encode <file> into k data shards + P + Q inside <dir>
// join   : rebuild <file> from the shards; up to two shard files may be
//          missing/truncated and are re-created on the way
// verify : parity-check every stripe; with --repair, fix silent
//          single-shard corruption in place
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "liberation/tool/sharder.hpp"

namespace {

int usage() {
    std::fprintf(
        stderr,
        "usage:\n"
        "  liberation_cli split  <file> <dir> [--k N] [--p P] [--elem B]\n"
        "  liberation_cli join   <dir> <file>\n"
        "  liberation_cli verify <dir> [--repair]\n");
    return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const auto v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

int cmd_split(int argc, char** argv) {
    if (argc < 4) return usage();
    liberation::tool::shard_params params;
    for (int i = 4; i < argc; i += 2) {
        if (i + 1 >= argc) return usage();
        std::uint64_t v = 0;
        if (!parse_u64(argv[i + 1], v)) return usage();
        if (std::strcmp(argv[i], "--k") == 0) {
            params.k = static_cast<std::uint32_t>(v);
        } else if (std::strcmp(argv[i], "--p") == 0) {
            params.p = static_cast<std::uint32_t>(v);
        } else if (std::strcmp(argv[i], "--elem") == 0) {
            params.element_size = v;
        } else {
            return usage();
        }
    }
    const auto report =
        liberation::tool::split_file(argv[2], argv[3], params);
    std::printf("split %s into %u shards in %s\n", argv[2], report.shards,
                argv[3]);
    std::printf("  %llu stripes, %llu payload bytes, %llu padding bytes\n",
                static_cast<unsigned long long>(report.stripes),
                static_cast<unsigned long long>(report.payload_bytes),
                static_cast<unsigned long long>(report.padding_bytes));
    return 0;
}

int cmd_join(int argc, char** argv) {
    if (argc != 4) return usage();
    const auto report = liberation::tool::join_file(argv[2], argv[3]);
    std::printf("joined %llu bytes into %s\n",
                static_cast<unsigned long long>(report.bytes_written),
                argv[3]);
    if (report.missing.empty()) {
        std::printf("  all shards present\n");
    } else {
        std::printf("  reconstructed %zu missing shard(s):",
                    report.missing.size());
        for (const auto i : report.missing) std::printf(" %u", i);
        std::printf("\n");
    }
    return 0;
}

int cmd_verify(int argc, char** argv) {
    if (argc < 3 || argc > 4) return usage();
    bool repair = false;
    if (argc == 4) {
        if (std::strcmp(argv[3], "--repair") != 0) return usage();
        repair = true;
    }
    const auto report = liberation::tool::verify_shards(argv[2], repair);
    std::printf("verified %llu stripes: %llu clean, %llu %s, %llu "
                "uncorrectable\n",
                static_cast<unsigned long long>(report.stripes),
                static_cast<unsigned long long>(report.clean),
                static_cast<unsigned long long>(report.repaired),
                repair ? "repaired" : "repairable",
                static_cast<unsigned long long>(report.uncorrectable));
    for (const auto i : report.repaired_shards) {
        std::printf("  shard %u had corrupt stripes\n", i);
    }
    return report.uncorrectable == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        if (std::strcmp(argv[1], "split") == 0) return cmd_split(argc, argv);
        if (std::strcmp(argv[1], "join") == 0) return cmd_join(argc, argv);
        if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "liberation_cli: %s\n", e.what());
        return 1;
    }
    return usage();
}
