// liberation_cli — RAID-6 file sharding from the command line.
//
//   liberation_cli split  <file> <dir> [--k N] [--p P] [--elem BYTES]
//   liberation_cli join   <dir> <file>
//   liberation_cli verify <dir> [--repair]
//   liberation_cli stats  [--seed N] [--ops N] [--queue-depth N] [--trace]
//   liberation_cli serve  [--port N] [--seed N] [--queue-depth N]
//                         [--max-requests N]
//
// split  : encode <file> into k data shards + P + Q inside <dir>
// join   : rebuild <file> from the shards; up to two shard files may be
//          missing/truncated and are re-created on the way
// verify : parity-check every stripe; with --repair, fix silent
//          single-shard corruption in place
// stats  : run a short seeded workload (fill, random reads/writes, a disk
//          failure + spare rebuild, a scrub) on an in-memory array and
//          print its full Prometheus metrics exposition — the quickest way
//          to see every metric the observability layer exports, or to feed
//          a scrape pipeline a real sample. --trace prints the Chrome
//          trace JSON of the same run instead.
// serve  : run the same synthetic workload continuously on a background
//          thread and expose the live hub over HTTP on 127.0.0.1:
//          /metrics (Prometheus text), /healthz, /trace (Chrome JSON).
//          --port 0 (default) binds a kernel-assigned port; the bound
//          port is printed as "SERVE port=N" on stdout before serving.
//          --max-requests N exits after N connections (0 = until killed).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "liberation/obs/serve.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/tool/sharder.hpp"
#include "liberation/util/rng.hpp"

namespace {

int usage() {
    std::fprintf(
        stderr,
        "usage:\n"
        "  liberation_cli split  <file> <dir> [--k N] [--p P] [--elem B]\n"
        "  liberation_cli join   <dir> <file>\n"
        "  liberation_cli verify <dir> [--repair]\n"
        "  liberation_cli stats  [--seed N] [--ops N] [--queue-depth N]"
        " [--trace]\n"
        "  liberation_cli serve  [--port N] [--seed N] [--queue-depth N]"
        " [--max-requests N]\n");
    return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const auto v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

int cmd_split(int argc, char** argv) {
    if (argc < 4) return usage();
    liberation::tool::shard_params params;
    for (int i = 4; i < argc; i += 2) {
        if (i + 1 >= argc) return usage();
        std::uint64_t v = 0;
        if (!parse_u64(argv[i + 1], v)) return usage();
        if (std::strcmp(argv[i], "--k") == 0) {
            params.k = static_cast<std::uint32_t>(v);
        } else if (std::strcmp(argv[i], "--p") == 0) {
            params.p = static_cast<std::uint32_t>(v);
        } else if (std::strcmp(argv[i], "--elem") == 0) {
            params.element_size = v;
        } else {
            return usage();
        }
    }
    const auto report =
        liberation::tool::split_file(argv[2], argv[3], params);
    std::printf("split %s into %u shards in %s\n", argv[2], report.shards,
                argv[3]);
    std::printf("  %llu stripes, %llu payload bytes, %llu padding bytes\n",
                static_cast<unsigned long long>(report.stripes),
                static_cast<unsigned long long>(report.payload_bytes),
                static_cast<unsigned long long>(report.padding_bytes));
    return 0;
}

int cmd_join(int argc, char** argv) {
    if (argc != 4) return usage();
    const auto report = liberation::tool::join_file(argv[2], argv[3]);
    std::printf("joined %llu bytes into %s\n",
                static_cast<unsigned long long>(report.bytes_written),
                argv[3]);
    if (report.missing.empty()) {
        std::printf("  all shards present\n");
    } else {
        std::printf("  reconstructed %zu missing shard(s):",
                    report.missing.size());
        for (const auto i : report.missing) std::printf(" %u", i);
        std::printf("\n");
    }
    return 0;
}

int cmd_verify(int argc, char** argv) {
    if (argc < 3 || argc > 4) return usage();
    bool repair = false;
    if (argc == 4) {
        if (std::strcmp(argv[3], "--repair") != 0) return usage();
        repair = true;
    }
    const auto report = liberation::tool::verify_shards(argv[2], repair);
    std::printf("verified %llu stripes: %llu clean, %llu %s, %llu "
                "uncorrectable\n",
                static_cast<unsigned long long>(report.stripes),
                static_cast<unsigned long long>(report.clean),
                static_cast<unsigned long long>(report.repaired),
                repair ? "repaired" : "repairable",
                static_cast<unsigned long long>(report.uncorrectable));
    for (const auto i : report.repaired_shards) {
        std::printf("  shard %u had corrupt stripes\n", i);
    }
    return report.uncorrectable == 0 ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
    std::uint64_t seed = 42;
    std::uint64_t ops = 2000;
    std::uint64_t queue_depth = 1;
    bool trace = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            trace = true;
            continue;
        }
        if (i + 1 >= argc) return usage();
        std::uint64_t v = 0;
        if (!parse_u64(argv[i + 1], v)) return usage();
        if (std::strcmp(argv[i], "--seed") == 0) {
            seed = v;
        } else if (std::strcmp(argv[i], "--ops") == 0) {
            ops = v;
        } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
            queue_depth = v;
        } else {
            return usage();
        }
        ++i;
    }

    liberation::raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 32;
    cfg.sector_size = 512;
    cfg.hot_spares = 1;
    cfg.rebuild_batch_stripes = 4;
    cfg.io_queue_depth = queue_depth;
    liberation::raid::raid6_array a(cfg);
    if (trace) a.obs().trace().enable();

    // Fill, then a random mixed workload so every latency family (full
    // and small writes, reads) accumulates samples.
    liberation::util::xoshiro256 rng(seed);
    const std::size_t cap = a.capacity();
    std::vector<std::byte> buf(cap);
    rng.fill(buf);
    if (!a.write(0, buf)) {
        std::fprintf(stderr, "liberation_cli stats: initial fill failed\n");
        return 1;
    }
    const std::size_t max_io = 2 * a.map().stripe_data_size();
    for (std::uint64_t op = 0; op < ops; ++op) {
        const std::size_t len = 1 + rng.next_below(std::min(max_io, cap));
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (rng.next_below(10) < 4) {
            rng.fill(io);
            (void)a.write(addr, io);
        } else {
            (void)a.read(addr, io);
        }
        // Halfway through, fail a disk so the rebuild window and
        // degraded-read paths get exercised too.
        if (op == ops / 2 && a.failed_disk_count() == 0) {
            a.fail_disk(static_cast<std::uint32_t>(rng.next_below(
                a.disk_count())));
        }
    }
    a.drain_background_rebuild();
    (void)liberation::raid::scrub_array(a);

    const std::string out =
        trace ? a.obs().trace_json() : a.obs().metrics_text();
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
}

int cmd_serve(int argc, char** argv) {
    std::uint64_t seed = 42;
    std::uint64_t queue_depth = 1;
    std::uint64_t port = 0;
    std::uint64_t max_requests = 0;
    for (int i = 2; i < argc; ++i) {
        if (i + 1 >= argc) return usage();
        std::uint64_t v = 0;
        if (!parse_u64(argv[i + 1], v)) return usage();
        if (std::strcmp(argv[i], "--seed") == 0) {
            seed = v;
        } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
            queue_depth = v;
        } else if (std::strcmp(argv[i], "--port") == 0) {
            port = v;
        } else if (std::strcmp(argv[i], "--max-requests") == 0) {
            max_requests = v;
        } else {
            return usage();
        }
        ++i;
    }

    liberation::raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 32;
    cfg.sector_size = 512;
    cfg.hot_spares = 1;
    cfg.rebuild_batch_stripes = 4;
    cfg.io_queue_depth = queue_depth;
    liberation::raid::raid6_array a(cfg);
    a.obs().trace().enable();

    liberation::util::xoshiro256 rng(seed);
    const std::size_t cap = a.capacity();
    std::vector<std::byte> buf(cap);
    rng.fill(buf);
    if (!a.write(0, buf)) {
        std::fprintf(stderr, "liberation_cli serve: initial fill failed\n");
        return 1;
    }

    // The workload loops on a background thread so every scrape sees a
    // live, moving hub; the hub's readers are race-free against writers.
    std::atomic<bool> stop{false};
    std::thread worker([&a, &stop, seed] {
        liberation::util::xoshiro256 wrng(seed ^ 0x9e3779b97f4a7c15ULL);
        const std::size_t wcap = a.capacity();
        const std::size_t max_io = 2 * a.map().stripe_data_size();
        std::vector<std::byte> wbuf(max_io);
        std::uint64_t op = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t len =
                1 + wrng.next_below(std::min(max_io, wcap));
            const std::size_t addr = wrng.next_below(wcap - len + 1);
            const std::span<std::byte> io(wbuf.data(), len);
            if (wrng.next_below(10) < 4) {
                wrng.fill(io);
                (void)a.write(addr, io);
            } else {
                (void)a.read(addr, io);
            }
            if (++op == 1000 && a.failed_disk_count() == 0) {
                a.fail_disk(static_cast<std::uint32_t>(
                    wrng.next_below(a.disk_count())));
            }
        }
    });

    liberation::obs::scrape_handlers h;
    h.metrics = [&a] { return a.obs().metrics_text(); };
    h.healthz = [&a] {
        return a.stats().reads_unrecoverable == 0 ? std::string("ok\n")
                                                  : std::string("failing\n");
    };
    h.trace = [&a] { return a.obs().trace_json(); };

    liberation::obs::scrape_server srv;
    int rc = 0;
    if (!srv.listen(static_cast<std::uint16_t>(port), h)) {
        std::fprintf(stderr, "liberation_cli serve: cannot bind port %llu\n",
                     static_cast<unsigned long long>(port));
        rc = 1;
    } else {
        std::printf("SERVE port=%u\n", srv.port());
        std::fflush(stdout);
        srv.serve(max_requests);
    }
    stop.store(true, std::memory_order_relaxed);
    worker.join();
    return rc;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        if (std::strcmp(argv[1], "split") == 0) return cmd_split(argc, argv);
        if (std::strcmp(argv[1], "join") == 0) return cmd_join(argc, argv);
        if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
        if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
        if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "liberation_cli: %s\n", e.what());
        return 1;
    }
    return usage();
}
