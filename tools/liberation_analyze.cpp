// liberation_analyze — print the measured characteristics of a Liberation
// code instance: exact XOR counts for every operation, update-cost
// distribution, rebuild-plan savings, and the common-expression table.
//
//   liberation_analyze <k> [p]
//
// Useful when sizing an array: pick k (and optionally a larger fixed p for
// future growth) and see exactly what every operation will cost.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/hybrid_rebuild.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/core/update.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

std::uint64_t count_decode(const codes::raid6_code& c,
                           std::span<const std::uint32_t> pat,
                           codes::stripe_buffer& ref) {
    codes::stripe_buffer broke(c.rows(), c.n(), 8);
    codes::copy_stripe(broke.view(), ref.view());
    xorops::counting_scope scope;
    c.decode(broke.view(), pat);
    return scope.xors();
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr, "usage: liberation_analyze <k> [p]\n");
        return 2;
    }
    const auto k = static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
    const std::uint32_t p = argc == 3
                                ? static_cast<std::uint32_t>(
                                      std::strtoul(argv[2], nullptr, 10))
                                : util::next_odd_prime(k);
    if (k < 1 || !util::is_prime(p) || p % 2 == 0 || p < k) {
        std::fprintf(stderr, "need 1 <= k <= p, p an odd prime\n");
        return 2;
    }

    const core::liberation_optimal_code code(k, p);
    const codes::liberation_bitmatrix_code original(k, p);
    const auto& g = code.geom();

    std::printf("Liberation code  k = %u data disks, p = %u (w = %u "
                "elements/strip, %u disks total)\n\n",
                k, p, p, k + 2);

    // Encoding.
    util::xoshiro256 rng(1);
    codes::stripe_buffer ref(p, k + 2, 8);
    ref.fill_random(rng, k);
    {
        xorops::counting_scope scope;
        code.encode(ref.view());
        std::printf("encode:   %6llu XORs  (lower bound 2p(k-1) = %u; "
                    "original bit-matrix: %llu)\n",
                    static_cast<unsigned long long>(scope.xors()),
                    2 * p * (k - 1),
                    static_cast<unsigned long long>(
                        original.encode_xor_count()));
    }

    // Decoding, worst / best / average over two-data-column patterns.
    if (k >= 2) {
        std::uint64_t worst = 0, best = ~0ull, sum = 0;
        std::uint32_t n_pat = 0;
        for (std::uint32_t a = 0; a < k; ++a) {
            for (std::uint32_t b = a + 1; b < k; ++b) {
                const std::uint32_t pat[] = {a, b};
                const auto xors = count_decode(code, pat, ref);
                worst = std::max(worst, xors);
                best = std::min(best, xors);
                sum += xors;
                ++n_pat;
            }
        }
        std::printf("decode:   best %llu / avg %.1f / worst %llu XORs over "
                    "%u two-data-column patterns (bound %u)\n",
                    static_cast<unsigned long long>(best),
                    static_cast<double>(sum) / n_pat,
                    static_cast<unsigned long long>(worst), n_pat,
                    2 * p * (k - 1));
    }

    // Updates.
    std::uint64_t upd_total = 0;
    for (std::uint32_t i = 0; i < p; ++i) {
        for (std::uint32_t j = 0; j < k; ++j) {
            upd_total += core::update_cost(g, i, j);
        }
    }
    std::printf("update:   %.4f parity writes per data element "
                "(bound 2; %u of %u positions cost 3)\n",
                static_cast<double>(upd_total) / (p * k), k - 1, p * k);

    // Rebuild plans.
    double save = 0;
    for (std::uint32_t l = 0; l < k; ++l) {
        save += core::plan_hybrid_rebuild(g, l).savings();
    }
    std::printf("rebuild:  hybrid single-disk plan reads %.1f%% fewer "
                "elements than all-row rebuild\n",
                100.0 * save / k);

    // Common expressions (the heart of the optimal algorithms).
    std::printf("\ncommon expressions (row r_j pairs columns j-1 and j; "
                "mirrored into anti-diagonal m_j):\n");
    for (std::uint32_t j = 1; j < k; ++j) {
        std::printf("  E_%-2u row %2u  cols (%u,%u)  -> Q_%u\n", j,
                    g.ce_row(j), j - 1, j, g.ce_q_index(j));
    }
    if (k < p) {
        std::printf("  E_%-2u row %2u  cols (%u,phantom) -> Q_%u  [half]\n",
                    k, g.ce_row(k), k - 1, g.ce_q_index(k));
    }
    return 0;
}
