// Chaos campaign CLI: run a seeded fault-injection torture test of the
// RAID-6 array and print the report. The same seed replays the same
// campaign bit-for-bit, so a failing run's seed is a complete bug report.
//
// Usage:
//   chaos_campaign [--shards N] [--seed N] [--ops N] [--spares N]
//                  [--stripes N] [--queue-depth N] [--read-rate R]
//                  [--write-rate R] [--persist-dir DIR] [--sync-meta]
//                  [--fail-slow] [--metrics-out FILE] [--trace-out FILE]
//                  [--slo-read-p99-us N] [--listen PORT]
//                  [--serve-requests N] [--postmortem-dir DIR]
//                  [--json] [--quiet]
//
// --shards N (N >= 2) runs the *volume* campaign instead: one logical
// address space striped across N raid6_array shards, with different
// shards concurrently fail-stopped, corrupted, and (with --fail-slow)
// slow-grayed while a shadow-checked workload spans all of them.
// --spares/--stripes/--queue-depth then configure each shard, and
// --persist-dir creates the volume (manifest + one superblocked directory
// per shard) in DIR and adds whole-process kill-and-remount crash points
// recovered through mount_volume()'s census. The verdict line becomes
// "VOLUME_CHAOS_VERDICT ..." (same pass/counter contract). --trace-out
// then writes the *merged* volume trace: pid 1 is the volume dispatcher,
// pid 1+s+1 is shard s (process_name shard="s"), with flow arrows joining
// each host op's volume spans to the shard work they caused.
//
// --slo-read-p99-us N arms the SLO engine: at most 1% of host reads in
// any 1s (virtual-clock) window may exceed N microseconds, and no read
// may ever complete unrecoverable (zero budget). The liberation_slo_*
// burn-rate gauges land in the metrics exposition, the per-objective
// status lines in the report, and a violation at any evaluation fails
// the verdict (exit 1).
//
// --listen PORT serves the campaign's captured /metrics, /healthz, and
// /trace over HTTP on 127.0.0.1:PORT after the run (PORT 0 = kernel
// assigned; the bound port is printed to stderr). --serve-requests N
// bounds the server to N connections (0 = until killed).
//
// --postmortem-dir DIR sets LIBERATION_POSTMORTEM_DIR for the run: any
// failed verdict, refused mount, or first unrecoverable read auto-writes
// a postmortem bundle (MANIFEST.json, metrics.prom, flight_recorder.log,
// trace.json, slo.txt) into a fresh DIR/<reason>-<seq> subdirectory.
//
// --fail-slow enables the fail-slow phase of the plan: hedged reads are
// switched on, a random online disk is armed with a seeded constant
// latency profile a third of the way in (correct bytes, pathological
// timing), and it recovers two thirds of the way in. The acceptance then
// also requires the array to have hedged past the straggler (>= 1 hedge
// win), quarantined it (>= 1 slow trip), and un-quarantined it after the
// profile cleared (>= 1 slow recovery).
//
// --persist-dir DIR runs the campaign file-backed (one disk-NN.img per
// member in DIR) and adds the kill-and-remount phases: the process state
// is dropped mid-write, mid-rebuild, and mid-scrub, the files reopened,
// the array remounted, and the run continues — the acceptance then also
// requires every remount to succeed, the intent log to replay, and the
// interrupted rebuild to resume from its persisted watermark. --sync-meta
// fdatasyncs every superblock persist (machine-crash ordering; slower).
//
// Exit status 0 iff the campaign met its acceptance criteria: zero shadow
// mismatches, zero unrecovered stripes, no read ever served unverified
// bytes (every surviving block passes its CRC32C at the end), no rebuild
// session stalled, and every planned fault event (health trip, fail-stop,
// power loss, silent corruption + self-heal, checksum-metadata damage,
// degraded-stripe scrub repair, spare promotion + rebuild) fired.
// The penultimate output line is machine-readable: "CHAOS_VERDICT pass=..."
// with every invariant counter, for CI log scrapers. --json replaces that
// line with "CHAOS_VERDICT {...}" — one JSON object carrying the same
// counters plus per-phase timings and every latency-histogram snapshot.
//
// Observability exports: --metrics-out writes the campaign array's full
// Prometheus text exposition (counters, gauges, latency summaries for the
// write/read/rebuild/scrub paths) to FILE; --trace-out enables the span
// tracer and writes Chrome trace_event JSON loadable in chrome://tracing.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "liberation/obs/serve.hpp"
#include "liberation/obs/slo.hpp"
#include "liberation/raid/chaos.hpp"
#include "liberation/volume/chaos.hpp"

namespace {

using liberation::raid::chaos_config;
using liberation::raid::chaos_report;
using liberation::volume::volume_chaos_config;
using liberation::volume::volume_chaos_report;

/// The --slo-read-p99-us objectives: a read-latency quantile (1% of the
/// window may exceed the threshold) plus a zero-budget unrecoverable-read
/// gate, against the hub the campaign actually runs (array or volume).
std::vector<liberation::obs::slo_objective> make_slo_objectives(
    std::uint64_t read_p99_us, bool volume_mode) {
    using liberation::obs::slo_objective;
    std::vector<slo_objective> v;
    slo_objective lat;
    lat.name = "read_p99_us";
    lat.kind = slo_objective::kind_t::latency_quantile;
    lat.source = volume_mode ? "volume_read_ns" : "raid_read_ns";
    lat.threshold_ns = read_p99_us * 1000;
    lat.budget = 0.01;
    v.push_back(std::move(lat));
    slo_objective err;
    err.name = "unrecoverable_rate";
    err.kind = slo_objective::kind_t::event_ratio;
    if (volume_mode) {
        err.source = "volume_failed_reads_total";
        err.denominator = "volume_reads_total";
    } else {
        err.source = "raid_reads_unrecoverable_total";
        err.denominator = "io_reads_total";
    }
    err.budget = 0.0;
    v.push_back(std::move(err));
    return v;
}

/// --listen: serve the campaign's captured exports over HTTP until
/// `max_requests` connections (0 = until killed). The bound port goes to
/// stderr so stdout stays byte-deterministic per seed.
bool serve_captured(int port, std::size_t max_requests, std::string metrics,
                    std::string trace, bool pass) {
    liberation::obs::scrape_handlers h;
    h.metrics = [m = std::move(metrics)] { return m; };
    h.healthz = [pass] { return std::string(pass ? "ok\n" : "failing\n"); };
    h.trace = [t = std::move(trace)] {
        return t.empty() ? std::string("[]") : t;
    };
    liberation::obs::scrape_server srv;
    if (!srv.listen(static_cast<std::uint16_t>(port), std::move(h))) {
        std::fprintf(stderr, "chaos_campaign: cannot listen on port %d\n",
                     port);
        return false;
    }
    std::fprintf(stderr,
                 "chaos_campaign: serving /metrics /healthz /trace on "
                 "127.0.0.1:%u\n",
                 srv.port());
    srv.serve(max_requests);
    return true;
}

bool write_file(const char* path, const std::string& text) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "chaos_campaign: cannot open %s for writing\n",
                     path);
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
}

/// The --json verdict: one object with the machine-readable counters, the
/// per-phase wall-clock timings, and a snapshot of every latency
/// histogram. All keys are fixed identifiers, so no string escaping is
/// needed beyond printing them verbatim.
void print_verdict_json(const chaos_config& cfg, const chaos_report& rep) {
    std::printf("CHAOS_VERDICT {");
    std::printf("\"pass\":%s,", rep.success ? "true" : "false");
    std::printf("\"slo_ok\":%s,", rep.slo_ok ? "true" : "false");
    std::printf("\"seed\":%llu,", static_cast<unsigned long long>(cfg.seed));
    std::printf("\"ops\":%zu,", rep.ops);
    std::printf("\"mismatches\":%zu,", rep.mismatches);
    std::printf("\"failed_reads\":%zu,", rep.failed_reads);
    std::printf("\"failed_writes\":%zu,", rep.failed_writes);
    std::printf("\"torn\":%zu,", rep.final_torn);
    std::printf("\"degraded\":%zu,", rep.final_degraded);
    std::printf("\"unrecovered\":%zu,", rep.final_unrecovered);
    std::printf("\"uncorrectable\":%zu,", rep.scrub_uncorrectable);
    std::printf("\"checksum_bad\":%zu,", rep.final_checksum_bad);
    std::printf("\"stalled\":%llu,",
                static_cast<unsigned long long>(
                    rep.stats.rebuild_sessions_stalled));
    std::printf("\"unrecoverable_reads\":%llu,",
                static_cast<unsigned long long>(rep.stats.reads_unrecoverable));
    std::printf("\"self_healed\":%llu,",
                static_cast<unsigned long long>(rep.stats.reads_self_healed));
    std::printf("\"corruptions\":%zu,", rep.corruptions_injected);
    std::printf("\"kills\":%zu,", rep.kills);
    std::printf("\"remounts\":%zu,", rep.remounts);
    std::printf("\"mount_failures\":%zu,", rep.mount_failures);
    std::printf("\"intent_replayed\":%zu,", rep.mount_intent_replayed);
    std::printf("\"stale_disks_kicked\":%zu,", rep.stale_disks_kicked);
    std::printf("\"rebuilds_resumed\":%zu,", rep.rebuilds_resumed);
    std::printf("\"fail_slow_injected\":%zu,", rep.fail_slow_injected);
    std::printf("\"deadline_exceeded\":%llu,",
                static_cast<unsigned long long>(rep.deadline_exceeded));
    std::printf("\"hedged_reads\":%llu,",
                static_cast<unsigned long long>(rep.hedged_reads));
    std::printf("\"hedge_wins\":%llu,",
                static_cast<unsigned long long>(rep.hedge_wins));
    std::printf("\"slow_trips\":%llu,",
                static_cast<unsigned long long>(rep.slow_trips));
    std::printf("\"slow_recoveries\":%llu,",
                static_cast<unsigned long long>(rep.slow_recoveries));
    std::printf("\"phases\":{\"fill_s\":%.6f,\"workload_s\":%.6f,"
                "\"settle_s\":%.6f,\"settle_scrub_s\":%.6f,"
                "\"final_verify_s\":%.6f,\"final_scrub_s\":%.6f,"
                "\"mount_replay_s\":%.6f,\"total_s\":%.6f},",
                rep.phases.fill_s, rep.phases.workload_s, rep.phases.settle_s,
                rep.phases.settle_scrub_s, rep.phases.final_verify_s,
                rep.phases.final_scrub_s, rep.phases.mount_replay_s,
                rep.phases.total_s());
    std::printf("\"histograms\":{");
    bool first = true;
    for (const auto& [name, snap] : rep.histograms) {
        if (snap.count == 0) continue;  // unexercised path; skip the noise
        std::printf("%s\"%s\":{\"count\":%llu,\"sum_ns\":%llu,"
                    "\"max_ns\":%llu,\"p50_ns\":%llu,\"p95_ns\":%llu,"
                    "\"p99_ns\":%llu}",
                    first ? "" : ",", name.c_str(),
                    static_cast<unsigned long long>(snap.count),
                    static_cast<unsigned long long>(snap.sum),
                    static_cast<unsigned long long>(snap.max),
                    static_cast<unsigned long long>(snap.p50),
                    static_cast<unsigned long long>(snap.p95),
                    static_cast<unsigned long long>(snap.p99));
        first = false;
    }
    std::printf("}}\n");
}

void print_report(const chaos_config& cfg, const chaos_report& rep,
                  bool json) {
    std::printf("chaos campaign: seed=%llu ops=%zu (reads=%zu writes=%zu)\n",
                static_cast<unsigned long long>(cfg.seed), rep.ops, rep.reads,
                rep.writes);
    std::printf("  events: fail-stops=%zu health-trips=%llu power-losses=%zu "
                "latent-injected=%zu corruptions-injected=%zu "
                "checksum-flips=%zu\n",
                rep.injected_fail_stops,
                static_cast<unsigned long long>(rep.health_trips),
                rep.power_losses, rep.latent_errors_injected,
                rep.corruptions_injected, rep.integrity_corruptions_injected);
    std::printf("  recovery: spares-promoted=%llu rebuilds-completed=%llu "
                "stripes-resynced=%zu resilver-healed=%zu rebuild-stalls=%llu\n",
                static_cast<unsigned long long>(rep.spares_promoted),
                static_cast<unsigned long long>(rep.rebuilds_completed),
                rep.resynced_stripes, rep.resilver_healed,
                static_cast<unsigned long long>(
                    rep.stats.rebuild_sessions_stalled));
    std::printf("  io policy: retries=%llu masked=%llu exhausted=%llu "
                "backoff-us=%llu\n",
                static_cast<unsigned long long>(rep.io.retries),
                static_cast<unsigned long long>(rep.io.transient_masked),
                static_cast<unsigned long long>(rep.io.retries_exhausted),
                static_cast<unsigned long long>(rep.io.backoff_us));
    std::printf("  fail-slow: injected=%zu deadline-exceeded=%llu hedged=%llu "
                "hedge-wins=%llu slow-trips=%llu slow-recoveries=%llu\n",
                rep.fail_slow_injected,
                static_cast<unsigned long long>(rep.deadline_exceeded),
                static_cast<unsigned long long>(rep.hedged_reads),
                static_cast<unsigned long long>(rep.hedge_wins),
                static_cast<unsigned long long>(rep.slow_trips),
                static_cast<unsigned long long>(rep.slow_recoveries));
    std::printf("  array: degraded-stripe-reads=%llu degraded-element-reads=%llu "
                "media-errors-recovered=%llu\n",
                static_cast<unsigned long long>(rep.stats.degraded_stripe_reads),
                static_cast<unsigned long long>(rep.stats.degraded_element_reads),
                static_cast<unsigned long long>(rep.stats.media_errors_recovered));
    std::printf("  integrity: checksum-mismatches=%llu self-healed-reads=%llu "
                "metadata-repaired=%llu degraded-scrub-repairs=%zu "
                "settle-scrub-healed=%zu\n",
                static_cast<unsigned long long>(rep.stats.checksum_mismatches),
                static_cast<unsigned long long>(rep.stats.reads_self_healed),
                static_cast<unsigned long long>(
                    rep.stats.checksum_metadata_repaired),
                rep.degraded_scrub_repairs, rep.settle_scrub_healed);
    std::printf("  persistence: kills=%zu remounts=%zu mount-failures=%zu "
                "intent-replayed=%zu stale-kicked=%zu rebuilds-resumed=%zu "
                "remount-scrub-repairs=%zu\n",
                rep.kills, rep.remounts, rep.mount_failures,
                rep.mount_intent_replayed, rep.stale_disks_kicked,
                rep.rebuilds_resumed, rep.remount_scrub_repairs);
    std::printf("  verdict: mismatches=%zu failed-reads=%zu failed-writes=%zu "
                "torn=%zu degraded=%zu unrecovered=%zu uncorrectable=%zu "
                "checksum-bad=%zu unrecoverable-reads=%llu\n",
                rep.mismatches, rep.failed_reads, rep.failed_writes,
                rep.final_torn, rep.final_degraded, rep.final_unrecovered,
                rep.scrub_uncorrectable, rep.final_checksum_bad,
                static_cast<unsigned long long>(rep.stats.reads_unrecoverable));
    // Wall-clock timings go to stderr: stdout must stay byte-identical
    // for a fixed seed (the determinism probe / CI scrapers cmp it).
    std::fprintf(stderr,
                 "  phases: fill=%.3fs workload=%.3fs settle=%.3fs "
                 "settle-scrub=%.3fs verify=%.3fs final-scrub=%.3fs "
                 "mount-replay=%.3fs total=%.3fs\n",
                 rep.phases.fill_s, rep.phases.workload_s, rep.phases.settle_s,
                 rep.phases.settle_scrub_s, rep.phases.final_verify_s,
                 rep.phases.final_scrub_s, rep.phases.mount_replay_s,
                 rep.phases.total_s());
    // Per-objective SLO status (only when objectives were configured);
    // deterministic on the virtual clock.
    if (!rep.slo_text.empty()) std::printf("%s", rep.slo_text.c_str());
    if (json) {
        print_verdict_json(cfg, rep);
        std::printf("%s\n", rep.success ? "PASS" : "FAIL");
        return;
    }
    // One machine-readable line for CI log scrapers, then the human one.
    std::printf("CHAOS_VERDICT pass=%d seed=%llu ops=%zu mismatches=%zu "
                "failed_reads=%zu failed_writes=%zu torn=%zu degraded=%zu "
                "unrecovered=%zu uncorrectable=%zu checksum_bad=%zu "
                "stalled=%llu unrecoverable_reads=%llu self_healed=%llu "
                "corruptions=%zu kills=%zu remounts=%zu mount_failures=%zu "
                "intent_replayed=%zu stale_disks_kicked=%zu "
                "rebuilds_resumed=%zu fail_slow=%zu deadline_exceeded=%llu "
                "hedged=%llu hedge_wins=%llu slow_trips=%llu "
                "slow_recoveries=%llu slo_ok=%d\n",
                rep.success ? 1 : 0,
                static_cast<unsigned long long>(cfg.seed), rep.ops,
                rep.mismatches, rep.failed_reads, rep.failed_writes,
                rep.final_torn, rep.final_degraded, rep.final_unrecovered,
                rep.scrub_uncorrectable, rep.final_checksum_bad,
                static_cast<unsigned long long>(
                    rep.stats.rebuild_sessions_stalled),
                static_cast<unsigned long long>(rep.stats.reads_unrecoverable),
                static_cast<unsigned long long>(rep.stats.reads_self_healed),
                rep.corruptions_injected, rep.kills, rep.remounts,
                rep.mount_failures, rep.mount_intent_replayed,
                rep.stale_disks_kicked, rep.rebuilds_resumed,
                rep.fail_slow_injected,
                static_cast<unsigned long long>(rep.deadline_exceeded),
                static_cast<unsigned long long>(rep.hedged_reads),
                static_cast<unsigned long long>(rep.hedge_wins),
                static_cast<unsigned long long>(rep.slow_trips),
                static_cast<unsigned long long>(rep.slow_recoveries),
                rep.slo_ok ? 1 : 0);
    std::printf("%s\n", rep.success ? "PASS" : "FAIL");
}

/// The --json verdict of the volume campaign: the same counter contract
/// as print_verdict_json, per-shard totals rolled up.
void print_volume_verdict_json(const volume_chaos_config& cfg,
                               const volume_chaos_report& rep) {
    std::printf("VOLUME_CHAOS_VERDICT {");
    std::printf("\"pass\":%s,", rep.success ? "true" : "false");
    std::printf("\"slo_ok\":%s,", rep.slo_ok ? "true" : "false");
    std::printf("\"seed\":%llu,", static_cast<unsigned long long>(cfg.seed));
    std::printf("\"shards\":%u,", cfg.volume.shards);
    std::printf("\"ops\":%zu,", rep.ops);
    std::printf("\"mismatches\":%zu,", rep.mismatches);
    std::printf("\"failed_reads\":%zu,", rep.failed_reads);
    std::printf("\"failed_writes\":%zu,", rep.failed_writes);
    std::printf("\"torn\":%zu,", rep.final_torn);
    std::printf("\"uncorrectable\":%zu,", rep.scrub_uncorrectable);
    std::printf("\"stalled\":%llu,",
                static_cast<unsigned long long>(
                    rep.stats.shard_total.rebuild_sessions_stalled));
    std::printf("\"unrecoverable_reads\":%llu,",
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_unrecoverable));
    std::printf("\"self_healed\":%llu,",
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_self_healed));
    std::printf("\"fail_stops\":%zu,", rep.injected_fail_stops);
    std::printf("\"corruptions\":%zu,", rep.corruptions_injected);
    std::printf("\"power_losses\":%zu,", rep.power_losses);
    std::printf("\"spares_promoted\":%llu,",
                static_cast<unsigned long long>(rep.spares_promoted));
    std::printf("\"rebuilds_completed\":%llu,",
                static_cast<unsigned long long>(rep.rebuilds_completed));
    std::printf("\"kills\":%zu,", rep.kills);
    std::printf("\"remounts\":%zu,", rep.remounts);
    std::printf("\"mount_failures\":%zu,", rep.mount_failures);
    std::printf("\"intent_replayed\":%zu,", rep.mount_intent_replayed);
    std::printf("\"rebuilds_resumed\":%zu,", rep.rebuilds_resumed);
    std::printf("\"manifest_torn_slots\":%zu,", rep.manifest_torn_slots);
    std::printf("\"fail_slow_injected\":%zu,", rep.fail_slow_injected);
    std::printf("\"deadline_exceeded\":%llu,",
                static_cast<unsigned long long>(rep.deadline_exceeded));
    std::printf("\"hedged_reads\":%llu,",
                static_cast<unsigned long long>(rep.hedged_reads));
    std::printf("\"hedge_wins\":%llu,",
                static_cast<unsigned long long>(rep.hedge_wins));
    std::printf("\"slow_trips\":%llu,",
                static_cast<unsigned long long>(rep.slow_trips));
    std::printf("\"slow_recoveries\":%llu,",
                static_cast<unsigned long long>(rep.slow_recoveries));
    std::printf("\"multi_shard_ops\":%zu,", rep.stats.multi_shard_ops);
    std::printf("\"chunks_routed\":%zu,", rep.stats.chunks_routed);
    std::printf("\"phases\":{\"fill_s\":%.6f,\"workload_s\":%.6f,"
                "\"settle_s\":%.6f,\"settle_scrub_s\":%.6f,"
                "\"final_verify_s\":%.6f,\"final_scrub_s\":%.6f,"
                "\"mount_replay_s\":%.6f,\"total_s\":%.6f}}\n",
                rep.phases.fill_s, rep.phases.workload_s, rep.phases.settle_s,
                rep.phases.settle_scrub_s, rep.phases.final_verify_s,
                rep.phases.final_scrub_s, rep.phases.mount_replay_s,
                rep.phases.total_s());
}

void print_volume_report(const volume_chaos_config& cfg,
                         const volume_chaos_report& rep, bool json) {
    std::printf("volume chaos campaign: seed=%llu shards=%u ops=%zu "
                "(reads=%zu writes=%zu)\n",
                static_cast<unsigned long long>(cfg.seed), cfg.volume.shards,
                rep.ops, rep.reads, rep.writes);
    std::printf("  routing: chunks-routed=%zu multi-shard-ops=%zu "
                "staged-bytes=%zu\n",
                rep.stats.chunks_routed, rep.stats.multi_shard_ops,
                rep.stats.staged_bytes);
    std::printf("  events: fail-stops=%zu corruptions-injected=%zu "
                "power-losses=%zu fail-slow-injected=%zu\n",
                rep.injected_fail_stops, rep.corruptions_injected,
                rep.power_losses, rep.fail_slow_injected);
    std::printf("  recovery: spares-promoted=%llu rebuilds-completed=%llu "
                "stripes-resynced=%zu resilver-healed=%zu "
                "settle-scrub-healed=%zu rebuild-stalls=%llu\n",
                static_cast<unsigned long long>(rep.spares_promoted),
                static_cast<unsigned long long>(rep.rebuilds_completed),
                rep.resynced_stripes, rep.resilver_healed,
                rep.settle_scrub_healed,
                static_cast<unsigned long long>(
                    rep.stats.shard_total.rebuild_sessions_stalled));
    std::printf("  fail-slow: deadline-exceeded=%llu hedged=%llu "
                "hedge-wins=%llu slow-trips=%llu slow-recoveries=%llu\n",
                static_cast<unsigned long long>(rep.deadline_exceeded),
                static_cast<unsigned long long>(rep.hedged_reads),
                static_cast<unsigned long long>(rep.hedge_wins),
                static_cast<unsigned long long>(rep.slow_trips),
                static_cast<unsigned long long>(rep.slow_recoveries));
    std::printf("  persistence: kills=%zu remounts=%zu mount-failures=%zu "
                "intent-replayed=%zu rebuilds-resumed=%zu "
                "manifest-torn-slots=%zu\n",
                rep.kills, rep.remounts, rep.mount_failures,
                rep.mount_intent_replayed, rep.rebuilds_resumed,
                rep.manifest_torn_slots);
    std::printf("  verdict: mismatches=%zu failed-reads=%zu failed-writes=%zu "
                "torn=%zu uncorrectable=%zu unrecoverable-reads=%llu "
                "self-healed=%llu\n",
                rep.mismatches, rep.failed_reads, rep.failed_writes,
                rep.final_torn, rep.scrub_uncorrectable,
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_unrecoverable),
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_self_healed));
    // Wall-clock timings go to stderr: stdout must stay byte-identical
    // for a fixed seed (the determinism probe / CI scrapers cmp it).
    std::fprintf(stderr,
                 "  phases: fill=%.3fs workload=%.3fs settle=%.3fs "
                 "settle-scrub=%.3fs verify=%.3fs final-scrub=%.3fs "
                 "mount-replay=%.3fs total=%.3fs\n",
                 rep.phases.fill_s, rep.phases.workload_s, rep.phases.settle_s,
                 rep.phases.settle_scrub_s, rep.phases.final_verify_s,
                 rep.phases.final_scrub_s, rep.phases.mount_replay_s,
                 rep.phases.total_s());
    if (!rep.slo_text.empty()) std::printf("%s", rep.slo_text.c_str());
    if (json) {
        print_volume_verdict_json(cfg, rep);
        std::printf("%s\n", rep.success ? "PASS" : "FAIL");
        return;
    }
    std::printf("VOLUME_CHAOS_VERDICT pass=%d seed=%llu shards=%u ops=%zu "
                "mismatches=%zu failed_reads=%zu failed_writes=%zu torn=%zu "
                "uncorrectable=%zu stalled=%llu unrecoverable_reads=%llu "
                "self_healed=%llu fail_stops=%zu corruptions=%zu "
                "power_losses=%zu spares_promoted=%llu "
                "rebuilds_completed=%llu kills=%zu remounts=%zu "
                "mount_failures=%zu intent_replayed=%zu rebuilds_resumed=%zu "
                "manifest_torn_slots=%zu fail_slow=%zu deadline_exceeded=%llu "
                "hedged=%llu hedge_wins=%llu slow_trips=%llu "
                "slow_recoveries=%llu slo_ok=%d\n",
                rep.success ? 1 : 0,
                static_cast<unsigned long long>(cfg.seed), cfg.volume.shards,
                rep.ops, rep.mismatches, rep.failed_reads, rep.failed_writes,
                rep.final_torn, rep.scrub_uncorrectable,
                static_cast<unsigned long long>(
                    rep.stats.shard_total.rebuild_sessions_stalled),
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_unrecoverable),
                static_cast<unsigned long long>(
                    rep.stats.shard_total.reads_self_healed),
                rep.injected_fail_stops, rep.corruptions_injected,
                rep.power_losses,
                static_cast<unsigned long long>(rep.spares_promoted),
                static_cast<unsigned long long>(rep.rebuilds_completed),
                rep.kills, rep.remounts, rep.mount_failures,
                rep.mount_intent_replayed, rep.rebuilds_resumed,
                rep.manifest_torn_slots, rep.fail_slow_injected,
                static_cast<unsigned long long>(rep.deadline_exceeded),
                static_cast<unsigned long long>(rep.hedged_reads),
                static_cast<unsigned long long>(rep.hedge_wins),
                static_cast<unsigned long long>(rep.slow_trips),
                static_cast<unsigned long long>(rep.slow_recoveries),
                rep.slo_ok ? 1 : 0);
    std::printf("%s\n", rep.success ? "PASS" : "FAIL");
}

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--shards N] [--seed N] [--ops N] [--spares N]\n"
                 "          [--stripes N] [--queue-depth N] [--read-rate R]\n"
                 "          [--write-rate R] [--persist-dir DIR] [--sync-meta]\n"
                 "          [--fail-slow] [--metrics-out FILE]\n"
                 "          [--trace-out FILE] [--slo-read-p99-us N]\n"
                 "          [--listen PORT] [--serve-requests N]\n"
                 "          [--postmortem-dir DIR] [--json] [--quiet]\n",
                 argv0);
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t seed = 42;
    std::size_t ops = 10'000;
    std::uint32_t shards = 1;
    bool quiet = false;
    bool json = false;
    bool fail_slow = false;
    const char* metrics_out = nullptr;
    const char* trace_out = nullptr;
    const char* persist_dir = nullptr;
    bool sync_meta = false;
    bool slo_enabled = false;
    std::uint64_t slo_read_p99_us = 0;
    int listen_port = -1;
    std::size_t serve_requests = 0;
    chaos_config cfg = liberation::raid::default_chaos_config(seed, ops);

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char* name) -> const char* {
            if (std::strcmp(argv[i], name) != 0) return nullptr;
            if (i + 1 >= argc) usage(argv[0]);
            return argv[++i];
        };
        if (const char* v = arg("--seed")) {
            seed = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--shards")) {
            shards = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
            if (shards == 0) usage(argv[0]);
        } else if (const char* v = arg("--ops")) {
            ops = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--spares")) {
            cfg.array.hot_spares = static_cast<std::uint32_t>(
                std::strtoul(v, nullptr, 0));
        } else if (const char* v = arg("--stripes")) {
            cfg.array.stripes = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--queue-depth")) {
            // Submission-queue depth of the array's aio engine: 1 runs the
            // synchronous paths, > 1 pipelines full-stripe writes, rebuild
            // reads, and scrub prefetch under the same fault campaign.
            cfg.array.io_queue_depth = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--read-rate")) {
            cfg.transient_read_rate = std::strtod(v, nullptr);
        } else if (const char* v = arg("--write-rate")) {
            cfg.transient_write_rate = std::strtod(v, nullptr);
        } else if (const char* v = arg("--persist-dir")) {
            persist_dir = v;
            cfg.persist.enabled = true;
            cfg.persist.dir = v;
        } else if (std::strcmp(argv[i], "--sync-meta") == 0) {
            sync_meta = true;
            cfg.persist.sync_meta = true;
        } else if (std::strcmp(argv[i], "--fail-slow") == 0) {
            fail_slow = true;
        } else if (const char* v = arg("--metrics-out")) {
            metrics_out = v;
        } else if (const char* v = arg("--trace-out")) {
            trace_out = v;
            cfg.trace = true;
        } else if (const char* v = arg("--slo-read-p99-us")) {
            slo_enabled = true;
            slo_read_p99_us = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--listen")) {
            listen_port = static_cast<int>(std::strtol(v, nullptr, 0));
            if (listen_port < 0 || listen_port > 65535) usage(argv[0]);
        } else if (const char* v = arg("--serve-requests")) {
            serve_requests = std::strtoull(v, nullptr, 0);
        } else if (const char* v = arg("--postmortem-dir")) {
            // The library's automatic dump points are env-gated; the flag
            // is the CLI spelling of that contract.
            setenv("LIBERATION_POSTMORTEM_DIR", v, 1);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            usage(argv[0]);
        }
    }
    if (shards >= 2) {
        // Multi-shard route: the volume campaign. Per-shard knobs reuse
        // the single-array flags (each shard gets the same geometry).
        volume_chaos_config vcfg =
            liberation::volume::default_volume_chaos_config(seed, shards,
                                                            ops);
        vcfg.volume.shard.hot_spares = cfg.array.hot_spares;
        vcfg.volume.shard.stripes = cfg.array.stripes;
        vcfg.volume.shard.io_queue_depth = cfg.array.io_queue_depth;
        vcfg.transient_read_rate = cfg.transient_read_rate;
        vcfg.transient_write_rate = cfg.transient_write_rate;
        vcfg.trace = trace_out != nullptr;
        if (slo_enabled) {
            vcfg.slo = make_slo_objectives(slo_read_p99_us,
                                           /*volume_mode=*/true);
        }
        if (fail_slow) {
            vcfg.volume.shard.latency.hedged_reads = true;
        } else {
            // Without hedging there is nothing to observe the straggler
            // with; don't bother arming it.
            vcfg.events.fail_slow_at_op = ops;
            vcfg.events.fail_slow_recover_at_op = ops;
        }
        if (persist_dir != nullptr) {
            vcfg.persist_enabled = true;
            vcfg.dir = persist_dir;
            vcfg.sync_meta = sync_meta;
        }
        if (!quiet) {
            vcfg.log = [](const std::string& msg) {
                std::printf("  [event] %s\n", msg.c_str());
            };
        }
        const volume_chaos_report rep =
            liberation::volume::run_volume_chaos_campaign(vcfg);
        print_volume_report(vcfg, rep, json);
        bool exports_ok = true;
        if (metrics_out != nullptr) {
            exports_ok = write_file(metrics_out, rep.metrics_text);
        }
        if (trace_out != nullptr) {
            exports_ok =
                write_file(trace_out, rep.trace_json) && exports_ok;
        }
        if (listen_port >= 0) {
            exports_ok = serve_captured(listen_port, serve_requests,
                                        rep.metrics_text, rep.trace_json,
                                        rep.success) &&
                         exports_ok;
        }
        return rep.success && exports_ok ? 0 : 1;
    }

    cfg.seed = seed;
    cfg.ops = ops;
    // Default event plan scales with the op count so short runs still
    // exercise every fault class.
    cfg.events.fail_stop_at_op = ops / 5;
    cfg.events.health_storm_at_op = ops / 2;
    cfg.events.power_loss_at_op = (ops * 4) / 5;
    if (fail_slow) {
        // The straggler arms in the quiet stretch after the fail-stop's
        // rebuild drains and recovers before the power loss, so hedging,
        // quarantine, and un-quarantine all run within one campaign.
        cfg.array.latency.hedged_reads = true;
        cfg.events.fail_slow_at_op = ops / 3;
        cfg.events.fail_slow_recover_at_op = (ops * 2) / 3;
    }
    if (cfg.persist.enabled) {
        // Crash points interleave with the fault plan: the mid-rebuild
        // kill arms right after the fail-stop (while its spare's rebuild
        // is in flight), the mid-write kill in the quiet stretch between
        // the storm and the power loss, the mid-scrub kill near the end.
        cfg.persist.kill_mid_rebuild_at_op = ops / 5 + 1;
        cfg.persist.kill_mid_write_at_op = (ops * 7) / 10;
        cfg.persist.kill_mid_scrub_at_op = (ops * 9) / 10;
    }
    if (slo_enabled) {
        cfg.slo = make_slo_objectives(slo_read_p99_us, /*volume_mode=*/false);
    }
    if (!quiet) {
        cfg.log = [](const std::string& msg) {
            std::printf("  [event] %s\n", msg.c_str());
        };
    }

    const chaos_report rep = liberation::raid::run_chaos_campaign(cfg);
    print_report(cfg, rep, json);
    bool exports_ok = true;
    if (metrics_out != nullptr) {
        exports_ok = write_file(metrics_out, rep.metrics_text) && exports_ok;
    }
    if (trace_out != nullptr) {
        exports_ok = write_file(trace_out, rep.trace_json) && exports_ok;
    }
    if (listen_port >= 0) {
        exports_ok = serve_captured(listen_port, serve_requests,
                                    rep.metrics_text, rep.trace_json,
                                    rep.success) &&
                     exports_ok;
    }
    return rep.success && exports_ok ? 0 : 1;
}
