// obs_dump — write a postmortem bundle on demand.
//
//   obs_dump <dir> [--seed N] [--ops N] [--queue-depth N] [--reason STR]
//
// Runs the same short seeded workload as `liberation_cli stats` (fill,
// mixed reads/writes, a mid-run disk failure + spare rebuild, a scrub)
// with tracing enabled, then dumps everything the observability layer
// captured — metrics exposition, merged Chrome trace, and the
// flight-recorder ring — as a bundle under <dir>, exactly the format the
// automatic trip points (failed chaos verdict, refused mount, first
// unrecoverable read) produce. Useful for eyeballing the bundle layout,
// feeding CI parsers a known-good sample, and exercising
// write_postmortem() end to end without arranging a real incident.
//
// Prints the bundle directory on stdout; exits 1 if nothing could be
// written.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "liberation/obs/postmortem.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: obs_dump <dir> [--seed N] [--ops N]"
                 " [--queue-depth N] [--reason STR]\n");
    return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
    char* end = nullptr;
    const auto v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') return false;
    out = v;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string dir = argv[1];
    std::uint64_t seed = 42;
    std::uint64_t ops = 2000;
    std::uint64_t queue_depth = 1;
    std::string reason = "manual";
    for (int i = 2; i < argc; ++i) {
        if (i + 1 >= argc) return usage();
        if (std::strcmp(argv[i], "--reason") == 0) {
            reason = argv[i + 1];
            ++i;
            continue;
        }
        std::uint64_t v = 0;
        if (!parse_u64(argv[i + 1], v)) return usage();
        if (std::strcmp(argv[i], "--seed") == 0) {
            seed = v;
        } else if (std::strcmp(argv[i], "--ops") == 0) {
            ops = v;
        } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
            queue_depth = v;
        } else {
            return usage();
        }
        ++i;
    }

    liberation::raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 32;
    cfg.sector_size = 512;
    cfg.hot_spares = 1;
    cfg.rebuild_batch_stripes = 4;
    cfg.io_queue_depth = queue_depth;
    liberation::raid::raid6_array a(cfg);
    a.obs().trace().enable();

    liberation::util::xoshiro256 rng(seed);
    const std::size_t cap = a.capacity();
    std::vector<std::byte> buf(cap);
    rng.fill(buf);
    if (!a.write(0, buf)) {
        std::fprintf(stderr, "obs_dump: initial fill failed\n");
        return 1;
    }
    const std::size_t max_io = 2 * a.map().stripe_data_size();
    for (std::uint64_t op = 0; op < ops; ++op) {
        const std::size_t len = 1 + rng.next_below(std::min(max_io, cap));
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (rng.next_below(10) < 4) {
            rng.fill(io);
            (void)a.write(addr, io);
        } else {
            (void)a.read(addr, io);
        }
        if (op == ops / 2 && a.failed_disk_count() == 0) {
            a.fail_disk(
                static_cast<std::uint32_t>(rng.next_below(a.disk_count())));
        }
    }
    a.drain_background_rebuild();
    (void)liberation::raid::scrub_array(a);

    liberation::obs::postmortem_bundle b;
    b.reason = reason;
    b.metrics_text = a.obs().metrics_text();
    b.trace_json = a.obs().trace_json();
    const std::string out = liberation::obs::write_postmortem(dir, b);
    if (out.empty()) {
        std::fprintf(stderr, "obs_dump: could not write bundle under %s\n",
                     dir.c_str());
        return 1;
    }
    std::printf("%s\n", out.c_str());
    return 0;
}
