// Online array growth — the paper's "Case (b)" deployment (Section III):
// fix p at a prime large enough for the array's anticipated maximum size,
// and add disks "on the fly". Because a Liberation code with fixed p
// treats absent columns as phantom zeros, a freshly zeroed disk becomes a
// real data column with NO parity recomputation: capacity expansion is
// O(1) in I/O. (EVENODD/RDP pay for this flexibility with encoding and
// decoding complexity that degrades as k shrinks below p — Figs. 6/8.)
#include <cstdio>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/util/rng.hpp"

int main() {
    using namespace liberation;
    using namespace liberation::raid;

    array_config cfg;
    cfg.k = 4;
    cfg.p = 17;  // sized for growth up to 17 data disks
    cfg.element_size = 2048;
    cfg.stripes = 24;
    cfg.layout = parity_layout::parity_first;  // growth needs static parity
    raid6_array array(cfg);

    util::xoshiro256 rng(11);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;
    std::printf("initial array: %u disks (k=%u, p=%u), %zu MB usable\n",
                array.disk_count(), array.map().k(), array.code().p(),
                array.capacity() >> 20);

    const auto parity_bytes = [&] {
        return array.disk(0).stats().bytes_written +
               array.disk(1).stats().bytes_written;
    };

    for (int round = 0; round < 3; ++round) {
        const auto before = parity_bytes();
        const auto old_capacity = array.capacity();
        array.add_data_disk();
        std::printf(
            "added disk %u -> k=%u, capacity %zu -> %zu MB, parity bytes "
            "written during growth: %llu\n",
            array.disk_count() - 1, array.map().k(), old_capacity >> 20,
            array.capacity() >> 20,
            static_cast<unsigned long long>(parity_bytes() - before));
        if (parity_bytes() != before) {
            std::printf("UNEXPECTED PARITY TRAFFIC\n");
            return 1;
        }
    }

    // Every stripe is already consistent at the new width.
    codes::stripe_buffer buf = array.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    for (std::size_t s = 0; s < array.map().stripes(); ++s) {
        if (!array.load_stripe(s, buf.view(), erased) || !erased.empty() ||
            !array.code().verify(buf.view())) {
            std::printf("STRIPE %zu INCONSISTENT AFTER GROWTH\n", s);
            return 1;
        }
    }
    std::printf("all %zu stripes parity-consistent after 3 growths — no "
                "re-encoding was needed\n",
                array.map().stripes());

    // And the grown array still takes double failures in stride.
    std::vector<std::byte> fresh(array.capacity());
    rng.fill(fresh);
    if (!array.write(0, fresh)) return 1;
    array.fail_disk(3);
    array.fail_disk(8);
    std::vector<std::byte> out(array.capacity());
    if (!array.read(0, out) || out != fresh) {
        std::printf("DEGRADED READ FAILED\n");
        return 1;
    }
    std::printf("grown array survives a double disk failure: %zu MB read "
                "back degraded and verified\n",
                out.size() >> 20);
    return 0;
}
