// Hot-spare failover demo: an array with standby spares survives a flaky
// disk without operator intervention. The disk develops transient errors,
// the retrying io_policy masks them until they exhaust the retry budget,
// the health monitor trips the disk, a spare is promoted automatically,
// and the background rebuild interleaves with foreground I/O until full
// redundancy is restored — md's recovery story on the simulator, with the
// optimal Liberation decoder doing the reconstruction work.
#include <cstdio>
#include <cstring>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

int main() {
    using namespace liberation;
    using namespace liberation::raid;

    array_config cfg;
    cfg.k = 6;  // 6 data disks + P + Q = 8 disks, p = 7
    cfg.element_size = 4096;
    cfg.stripes = 64;
    cfg.hot_spares = 1;
    cfg.rebuild_batch_stripes = 4;       // stripes rebuilt per host op
    cfg.health.max_read_errors = 4;      // hard read errors before tripping
    cfg.health.max_write_errors = 1;     // first lost write trips (md-style)
    raid6_array array(cfg);
    std::printf("array: %u disks + %u hot spare(s), %zu MB usable\n",
                array.disk_count(), array.spare_count(),
                array.capacity() >> 20);

    util::xoshiro256 rng(21);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;

    // Disk 5 starts dying: most of its I/O fails even after retries.
    array.disk(5).set_transient_fault_rates(0.95, 0.95, /*seed=*/1);
    std::printf("\ndisk 5 is failing (95%% transient error rate)\n");

    // Keep serving the workload; the stack handles everything underneath.
    std::vector<std::byte> buf(1 << 15);
    std::size_t ops = 0;
    for (; ops < 200; ++ops) {
        const std::size_t addr = rng.next_below(array.capacity() - buf.size());
        if (ops % 3 == 0) {
            rng.fill(buf);
            if (!array.write(addr, buf)) return 1;
            std::memcpy(image.data() + addr, buf.data(), buf.size());
        } else {
            if (!array.read(addr, buf)) return 1;
            if (std::memcmp(image.data() + addr, buf.data(), buf.size()) != 0) {
                std::printf("READ RETURNED WRONG DATA\n");
                return 1;
            }
        }
        if (!array.rebuild_active() && array.stats().rebuilds_completed > 0)
            break;  // spare promoted and fully rebuilt
    }

    const array_stats st = array.stats();
    const io_policy_stats io = array.io_stats();
    std::printf("after %zu ops:\n", ops);
    std::printf("  transient errors masked by retries: %llu (%llu retries, "
                "%llu us virtual backoff)\n",
                static_cast<unsigned long long>(st.transient_errors_masked),
                static_cast<unsigned long long>(io.retries),
                static_cast<unsigned long long>(io.backoff_us));
    std::printf("  hard errors -> disk tripped by health monitor: %llu\n",
                static_cast<unsigned long long>(st.disks_tripped));
    std::printf("  spares promoted: %llu, background rebuilds completed: %llu\n",
                static_cast<unsigned long long>(st.spares_promoted),
                static_cast<unsigned long long>(st.rebuilds_completed));

    if (st.disks_tripped != 1 || st.spares_promoted != 1) {
        std::printf("FAILOVER DID NOT HAPPEN\n");
        return 1;
    }
    array.drain_background_rebuild();

    // Full redundancy is back: the whole image verifies with the original
    // flaky hardware gone, and a scrub finds nothing to repair.
    std::vector<std::byte> readback(array.capacity());
    if (!array.read(0, readback) || readback != image) {
        std::printf("POST-FAILOVER VERIFICATION FAILED\n");
        return 1;
    }
    const auto scrub = scrub_array(array);
    if (scrub.uncorrectable != 0 ||
        scrub.repaired_data + scrub.repaired_parity != 0) {
        std::printf("SCRUB FOUND DAMAGE\n");
        return 1;
    }
    std::printf("\npost-failover verification passed: %zu stripes clean, "
                "array fully redundant again\n",
                scrub.clean);
    return 0;
}
