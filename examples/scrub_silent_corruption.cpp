// Silent data corruption demo, in two acts.
//
// Act 1 (verify_reads off, the seed behavior): bit-rot flips bits on one
// disk without any I/O error, a plain read happily returns the rotten
// bytes, and the background scrub locates the corrupt column from the P/Q
// syndrome fingerprint and repairs it in place (the single-column error
// correction the paper claims in Section I; construction in DESIGN.md §5).
//
// Act 2 (verify_reads on, the default): every strip is checked against its
// CRC32C integrity domain on the way to the host, so the same bit-rot is
// caught *at read time* — the column is demoted to an erasure, optimally
// decoded, re-verified, and written back (read-repair). No rotten byte is
// ever served.
#include <cstdio>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

struct hit {
    std::size_t stripe;
    std::uint32_t column;
};

void inject(raid6_array& array, const std::vector<hit>& hits,
            util::xoshiro256& rng) {
    for (const auto& h : hits) {
        const auto loc = array.map().locate(h.stripe, h.column);
        const auto flips = array.disk(loc.disk).inject_silent_corruption(
            loc.offset + 100, 512, rng);
        std::printf("injected %zu corrupt bytes: stripe %zu, column %u "
                    "(disk %u)\n",
                    flips, h.stripe, h.column, loc.disk);
    }
}

}  // namespace

int main() {
    array_config cfg;
    cfg.k = 6;  // p = 7, 8 disks
    cfg.element_size = 2048;
    cfg.stripes = 32;
    cfg.verify_reads = false;  // act 1: the seed behavior

    raid6_array array(cfg);
    util::xoshiro256 rng(99);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;
    std::printf("array of %u disks filled with %zu MB\n", array.disk_count(),
                array.capacity() >> 20);

    // Bit-rot: flip bits inside three different stripes, plus one parity
    // strip. With verify_reads off, reads still "succeed" — nothing
    // notices until a scrub.
    const std::vector<hit> hits = {
        {2, 1}, {11, 4}, {17, array.code().p_column()}, {25, 3}};
    inject(array, hits, rng);

    // A plain unverified read happily returns the rotten bytes.
    std::vector<std::byte> readback(array.capacity());
    if (!array.read(0, readback)) return 1;
    std::printf("unverified read returned %s data (no I/O errors!)\n",
                readback == image ? "clean (unexpected)" : "CORRUPT");

    // Scrub: verify every stripe, localize, repair. (The checksum-first
    // scrubber pinpoints the columns from their integrity domains; the
    // parity cross-check remains as fallback — either way, all four heal.)
    const auto summary = scrub_array(array);
    std::printf("\nscrub: %zu stripes scanned, %zu clean, %zu data repairs, "
                "%zu parity repairs, %zu uncorrectable\n",
                summary.stripes_scanned, summary.clean, summary.repaired_data,
                summary.repaired_parity, summary.uncorrectable);
    if (summary.repaired_data != 3 || summary.repaired_parity != 1 ||
        summary.uncorrectable != 0) {
        std::printf("UNEXPECTED SCRUB SUMMARY\n");
        return 1;
    }

    if (!array.read(0, readback)) return 1;
    if (readback != image) {
        std::printf("DATA STILL CORRUPT AFTER SCRUB\n");
        return 1;
    }
    std::printf("post-scrub read matches the original image — bit-rot "
                "healed with no redundancy lost\n");

    // ---- Act 2: verify-on-read (the default) -------------------------
    cfg.verify_reads = true;
    raid6_array verified(cfg);
    if (!verified.write(0, image)) return 1;
    std::printf("\nsecond array with verify_reads on (the default)\n");
    inject(verified, hits, rng);

    // The same rotten bytes never reach the host: each mismatching strip
    // is caught by its CRC32C domain, decoded around, and repaired.
    if (!verified.read(0, readback)) return 1;
    if (readback != image) {
        std::printf("VERIFIED READ SERVED CORRUPT DATA\n");
        return 1;
    }
    const array_stats stats = verified.stats();
    std::printf("verified read returned clean data: %llu checksum "
                "mismatches caught, %llu stripes self-healed in-line\n",
                static_cast<unsigned long long>(stats.checksum_mismatches),
                static_cast<unsigned long long>(stats.reads_self_healed));
    if (stats.checksum_mismatches == 0 || stats.reads_self_healed == 0) {
        std::printf("UNEXPECTED INTEGRITY COUNTERS\n");
        return 1;
    }

    // Read-repair already fixed the data columns; the parity hit from
    // {17, P} is invisible to host reads, so the scrub still has work.
    const auto after = scrub_array(verified);
    if (after.uncorrectable != 0) {
        std::printf("UNEXPECTED POST-HEAL SCRUB\n");
        return 1;
    }
    std::printf("post-heal scrub: %zu repairs left (parity strip), "
                "0 uncorrectable\n",
                after.repaired_data + after.repaired_parity +
                    after.repaired_metadata);
    std::printf("verify-on-read: no host read ever returned unverified "
                "bytes\n");
    return 0;
}
