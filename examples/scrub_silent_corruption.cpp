// Silent data corruption demo: bit-rot flips bits on one disk without any
// I/O error, a background scrub locates the corrupt column from the P/Q
// syndrome fingerprint and repairs it in place (the single-column error
// correction the paper claims in Section I; construction in DESIGN.md §5).
#include <cstdio>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

int main() {
    using namespace liberation;
    using namespace liberation::raid;

    array_config cfg;
    cfg.k = 6;  // p = 7, 8 disks
    cfg.element_size = 2048;
    cfg.stripes = 32;
    raid6_array array(cfg);

    util::xoshiro256 rng(99);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;
    std::printf("array of %u disks filled with %zu MB\n", array.disk_count(),
                array.capacity() >> 20);

    // Bit-rot: flip bits inside three different stripes, plus one parity
    // strip. Reads still "succeed" — nothing notices until a scrub.
    struct hit {
        std::size_t stripe;
        std::uint32_t column;
    };
    const std::vector<hit> hits = {
        {2, 1}, {11, 4}, {17, array.code().p_column()}, {25, 3}};
    for (const auto& h : hits) {
        const auto loc = array.map().locate(h.stripe, h.column);
        const auto flips = array.disk(loc.disk).inject_silent_corruption(
            loc.offset + 100, 512, rng);
        std::printf("injected %zu corrupt bytes: stripe %zu, column %u "
                    "(disk %u)\n",
                    flips, h.stripe, h.column, loc.disk);
    }

    // A plain read happily returns the rotten bytes.
    std::vector<std::byte> readback(array.capacity());
    if (!array.read(0, readback)) return 1;
    std::printf("plain read returned %s data (no I/O errors!)\n",
                readback == image ? "clean (unexpected)" : "CORRUPT");

    // Scrub: verify every stripe, localize, repair.
    const auto summary = scrub_array(array);
    std::printf("\nscrub: %zu stripes scanned, %zu clean, %zu data repairs, "
                "%zu parity repairs, %zu uncorrectable\n",
                summary.stripes_scanned, summary.clean, summary.repaired_data,
                summary.repaired_parity, summary.uncorrectable);
    if (summary.repaired_data != 3 || summary.repaired_parity != 1 ||
        summary.uncorrectable != 0) {
        std::printf("UNEXPECTED SCRUB SUMMARY\n");
        return 1;
    }

    if (!array.read(0, readback)) return 1;
    if (readback != image) {
        std::printf("DATA STILL CORRUPT AFTER SCRUB\n");
        return 1;
    }
    std::printf("post-scrub read matches the original image — bit-rot "
                "healed with no redundancy lost\n");
    return 0;
}
