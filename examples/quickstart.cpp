// Quickstart: encode a stripe with the optimal Liberation code, lose two
// disks, decode them back.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API:
//   liberation_optimal_code  — the paper's Algorithms 1-4
//   stripe_buffer/stripe_view — a rows x (k+2) grid of elements
#include <cstdio>
#include <vector>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

int main() {
    using namespace liberation;

    // A RAID-6 group with 8 data disks. The code picks the smallest odd
    // prime p >= k (here p = 11), so each strip holds p = 11 elements.
    const core::liberation_optimal_code code(/*k=*/8);
    std::printf("code: %s  (disks: %u data + P + Q, %u elements/strip)\n",
                code.name().c_str(), code.k(), code.rows());

    // One stripe with 4 KiB elements: 8 x 11 x 4 KiB = 352 KiB of data.
    const std::size_t element_size = 4096;
    codes::stripe_buffer stripe(code.rows(), code.n(), element_size);

    // Fill the data strips with (reproducible) random payload.
    util::xoshiro256 rng(2024);
    stripe.fill_random(rng, code.k());

    // Encode: computes the P and Q strips in exactly (k-1) XORs per
    // parity element — the theoretical lower bound.
    xorops::counting_scope counters;
    code.encode(stripe.view());
    std::printf("encoded with %llu region XORs (lower bound: 2p(k-1) = %u)\n",
                static_cast<unsigned long long>(counters.xors()),
                2 * code.rows() * (code.k() - 1));

    // Keep a pristine copy so we can prove recovery was exact.
    codes::stripe_buffer pristine(code.rows(), code.n(), element_size);
    codes::copy_stripe(pristine.view(), stripe.view());

    // Disaster: disks 2 and 5 die. Scribble over their strips to make sure
    // the decoder cannot cheat.
    const std::vector<std::uint32_t> erased{2, 5};
    for (const auto c : erased) rng.fill(stripe.view().strip(c));
    std::printf("erased columns 2 and 5\n");

    // Decode: Algorithm 2 finds the starting point, Algorithm 3 builds the
    // syndromes in place, Algorithm 4 walks the recovery chain.
    xorops::reset_counters();
    code.decode(stripe.view(), erased);
    std::printf("decoded with %llu region XORs\n",
                static_cast<unsigned long long>(xorops::counters().xor_ops));

    if (codes::stripes_equal(stripe.view(), pristine.view())) {
        std::printf("recovery exact: all %u columns match the original\n",
                    code.n());
        return 0;
    }
    std::printf("RECOVERY FAILED\n");
    return 1;
}
