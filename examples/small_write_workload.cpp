// OLTP-ish small-write workload on the RAID simulator: random 4 KiB
// writes, the dominant pattern in databases (paper Section II-B). Shows
// the Liberation update-optimality end to end: each small write performs
// 1 data-element write plus ~2 parity-element read-modify-writes, and the
// measured per-disk write amplification approaches the RAID-6 floor of 3x
// (data + P + Q) instead of EVENODD/RDP's ~4x.
#include <cstdio>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"

int main() {
    using namespace liberation;
    using namespace liberation::raid;

    array_config cfg;
    cfg.k = 10;  // p = 11, 12 disks
    cfg.element_size = 4096;
    cfg.stripes = 64;
    raid6_array array(cfg);

    util::xoshiro256 rng(4242);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;

    // Reset the interesting counters by snapshotting before the workload.
    std::uint64_t disk_bytes_before = 0;
    for (std::uint32_t d = 0; d < array.disk_count(); ++d) {
        disk_bytes_before += array.disk(d).stats().bytes_written;
    }
    const auto parity_before = array.stats().parity_elements_updated;

    // 20k random element-aligned 4 KiB writes.
    const std::size_t ops = 20000;
    const std::size_t elements = array.capacity() / cfg.element_size;
    std::vector<std::byte> payload(cfg.element_size);
    util::stopwatch timer;
    for (std::size_t i = 0; i < ops; ++i) {
        rng.fill(payload);
        const std::size_t addr =
            rng.next_below(elements) * cfg.element_size;
        if (!array.write(addr, payload)) return 1;
    }
    const double secs = timer.seconds();

    std::uint64_t disk_bytes_after = 0;
    for (std::uint32_t d = 0; d < array.disk_count(); ++d) {
        disk_bytes_after += array.disk(d).stats().bytes_written;
    }
    const double logical = static_cast<double>(ops) * cfg.element_size;
    const double physical =
        static_cast<double>(disk_bytes_after - disk_bytes_before);
    const double parity_per_write =
        static_cast<double>(array.stats().parity_elements_updated -
                            parity_before) /
        static_cast<double>(ops);

    std::printf("small-write workload: %zu x %zu KiB random writes on a "
                "%u-disk array\n",
                ops, cfg.element_size >> 10, array.disk_count());
    std::printf("  elapsed:                 %.3f s  (%.0f writes/s)\n", secs,
                ops / secs);
    std::printf("  parity elements updated: %.4f per write "
                "(RAID-6 floor: 2, EVENODD/RDP: ~3)\n",
                parity_per_write);
    std::printf("  write amplification:     %.4f x "
                "(floor: 3.0 = data + P + Q)\n",
                physical / logical);

    // Sanity: every stripe still parity-consistent.
    codes::stripe_buffer buf = array.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    for (std::size_t s = 0; s < array.map().stripes(); ++s) {
        if (!array.load_stripe(s, buf.view(), erased) || !erased.empty() ||
            !array.code().verify(buf.view())) {
            std::printf("STRIPE %zu INCONSISTENT\n", s);
            return 1;
        }
    }
    std::printf("  all %zu stripes verified parity-consistent\n",
                array.map().stripes());
    return 0;
}
