// RAID-6 array lifecycle demo on the simulator: build a 10-disk array,
// serve I/O, kill two disks mid-flight, keep serving degraded reads, then
// rebuild onto replacements with a thread pool — the end-to-end story the
// paper's decoding throughput numbers (Figs. 12-13) feed into.
#include <cstdio>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/thread_pool.hpp"
#include "liberation/util/timer.hpp"

int main() {
    using namespace liberation;
    using namespace liberation::raid;

    array_config cfg;
    cfg.k = 8;              // 8 data disks + P + Q = 10 disks, p = 11
    cfg.element_size = 4096;
    cfg.stripes = 64;
    raid6_array array(cfg);
    std::printf("array: %u disks (%u data), %zu MB usable, %s\n",
                array.disk_count(), array.map().k(),
                array.capacity() >> 20, array.code().name().c_str());

    // Fill the device with a reproducible workload image.
    util::xoshiro256 rng(7);
    std::vector<std::byte> image(array.capacity());
    rng.fill(image);
    if (!array.write(0, image)) return 1;
    std::printf("wrote %zu MB (%llu full-stripe writes)\n",
                image.size() >> 20,
                static_cast<unsigned long long>(
                    array.stats().full_stripe_writes));

    // Two concurrent disk failures.
    array.fail_disk(3);
    array.fail_disk(7);
    std::printf("\ndisks 3 and 7 failed (%u offline)\n",
                array.failed_disk_count());

    // The array still serves every byte, reconstructing on the fly.
    std::vector<std::byte> readback(array.capacity());
    util::stopwatch timer;
    if (!array.read(0, readback)) return 1;
    const double degraded_gbps =
        util::throughput_gbps(readback.size(), timer.seconds());
    if (readback != image) {
        std::printf("DEGRADED READ CORRUPTED DATA\n");
        return 1;
    }
    std::printf("degraded read of whole device OK at %.2f GB/s "
                "(%llu stripes decoded)\n",
                degraded_gbps,
                static_cast<unsigned long long>(
                    array.stats().degraded_stripe_reads));

    // Writes keep working while degraded.
    std::vector<std::byte> hot(1 << 16);
    rng.fill(hot);
    if (!array.write(12345, hot)) return 1;
    std::memcpy(image.data() + 12345, hot.data(), hot.size());
    std::printf("degraded write of %zu KB OK\n", hot.size() >> 10);

    // Replace both disks and rebuild in parallel.
    array.replace_disk(3);
    array.replace_disk(7);
    util::thread_pool pool;
    const std::uint32_t replaced[] = {3, 7};
    const auto result = rebuild_disks(array, replaced, &pool);
    if (!result.success) {
        std::printf("REBUILD FAILED\n");
        return 1;
    }
    std::printf("\nrebuilt %zu strips (%zu stripes) in %.3f s — %.2f GB/s "
                "across %zu threads\n",
                result.columns_rebuilt, result.stripes_rebuilt,
                result.seconds, result.throughput_gbps(), pool.size());

    // Prove the array is fully healthy: pristine reads, no degraded paths.
    const auto degraded_before = array.stats().degraded_stripe_reads;
    if (!array.read(0, readback)) return 1;
    if (readback != image ||
        array.stats().degraded_stripe_reads != degraded_before) {
        std::printf("POST-REBUILD VERIFICATION FAILED\n");
        return 1;
    }
    std::printf("post-rebuild verification passed: data intact, no "
                "reconstruction needed\n");
    return 0;
}
