// Fail-slow tolerance: seeded latency injection on vdisks, the per-disk
// latency monitor (adaptive deadlines, quarantine trips, probe-driven
// recovery), hedged reconstructed reads in the array read path, the
// quarantine's superblock round-trip across a remount, and a degraded
// read racing a concurrent health trip of a second disk.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/chaos.hpp"
#include "liberation/raid/latency_monitor.hpp"
#include "liberation/raid/persist/mount.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/vdisk.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

// ---- vdisk latency injection -----------------------------------------

latency_profile constant_profile(std::uint64_t base, std::uint64_t jitter) {
    latency_profile p;
    p.kind = latency_profile::shape::constant;
    p.base_us = base;
    p.jitter_us = jitter;
    return p;
}

TEST(VdiskLatency, ConstantProfileReplaysFromSeed) {
    std::vector<std::byte> buf(64);
    const auto run = [&](std::uint64_t seed) {
        vdisk d(0, 4096, 512);
        d.set_latency_profile(constant_profile(100, 50), seed);
        std::vector<std::uint64_t> svc;
        for (int i = 0; i < 50; ++i) {
            std::uint64_t us = 0;
            EXPECT_EQ(d.read(0, buf, &us), io_status::ok);
            EXPECT_GE(us, 100u);
            EXPECT_LT(us, 150u);
            svc.push_back(us);
        }
        return svc;
    };
    EXPECT_EQ(run(7), run(7));     // bit-for-bit replay
    EXPECT_NE(run(7), run(8));     // and the seed actually matters
}

TEST(VdiskLatency, StreamAdvancesWhenCallerIgnoresLatency) {
    // A caller that passes no service_us out-param must still consume
    // the same draws: ignoring latency must not shift the stream for
    // later callers (determinism across mixed call sites).
    std::vector<std::byte> buf(64);
    vdisk a(0, 4096, 512), b(1, 4096, 512);
    a.set_latency_profile(constant_profile(100, 50), 7);
    b.set_latency_profile(constant_profile(100, 50), 7);
    std::uint64_t want = 0, got = 0;
    for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(a.read(0, buf, nullptr), io_status::ok);
        ASSERT_EQ(b.read(0, buf, &want), io_status::ok);
    }
    ASSERT_EQ(a.read(0, buf, &got), io_status::ok);
    ASSERT_EQ(b.read(0, buf, &want), io_status::ok);
    EXPECT_EQ(got, want);
}

TEST(VdiskLatency, RampAccruesAndCaps) {
    latency_profile p;
    p.kind = latency_profile::shape::ramp;
    p.base_us = 10;
    p.ramp_us_per_op = 5;
    p.ramp_cap_us = 20;
    vdisk d(0, 4096, 512);
    d.set_latency_profile(p, 1);
    std::vector<std::byte> buf(64);
    std::uint64_t us = 0;
    std::uint64_t prev = 0;
    for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(d.read(0, buf, &us), io_status::ok);
        EXPECT_GE(us, prev);           // monotone degradation
        EXPECT_LE(us, 10u + 20u);      // base + cap
        prev = us;
    }
    EXPECT_EQ(prev, 30u);  // the cap was reached and held
}

TEST(VdiskLatency, IntermittentStallFiresOnSchedule) {
    latency_profile p;
    p.kind = latency_profile::shape::intermittent_stall;
    p.base_us = 10;
    p.stall_us = 5000;
    p.stall_every = 4;
    vdisk d(0, 4096, 512);
    d.set_latency_profile(p, 1);
    std::vector<std::byte> buf(64);
    std::uint64_t us = 0;
    for (int i = 1; i <= 12; ++i) {
        ASSERT_EQ(d.read(0, buf, &us), io_status::ok);
        if (i % 4 == 0) {
            EXPECT_GE(us, 5000u) << "op " << i << " should stall";
        } else {
            EXPECT_LT(us, 5000u) << "op " << i << " should not stall";
        }
    }
}

TEST(VdiskLatency, ReplaceClearsProfile) {
    vdisk d(0, 4096, 512);
    d.set_latency_profile(constant_profile(100, 0), 1);
    EXPECT_TRUE(d.latency_profile_armed());
    d.replace();
    EXPECT_FALSE(d.latency_profile_armed());
    std::vector<std::byte> buf(64);
    std::uint64_t us = 99;
    ASSERT_EQ(d.read(0, buf, &us), io_status::ok);
    EXPECT_EQ(us, 0u);  // fresh hardware is fast
}

// ---- latency monitor --------------------------------------------------

TEST(LatencyMonitor, DisabledLayerNeverTrips) {
    latency_monitor m(4, latency_config{});  // hedged_reads = false
    EXPECT_FALSE(m.enabled());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(m.note_read(0, 1'000'000));
    }
    EXPECT_EQ(m.deadline_us(0), latency_config{}.max_deadline_us);
    EXPECT_FALSE(m.quarantined(0));
}

latency_config enabled_config() {
    latency_config cfg;
    cfg.hedged_reads = true;
    return cfg;
}

TEST(LatencyMonitor, DeadlineAdaptsToTheDistribution) {
    latency_monitor m(2, enabled_config());
    // Cold distribution: no deadline yet.
    EXPECT_EQ(m.deadline_us(0), enabled_config().max_deadline_us);
    for (int i = 0; i < 200; ++i) m.note_read(0, 100);
    // Warm: clamp(p99 * factor) — near 4x the ~100 us service time, and
    // far below both the cold max and the untouched disk 1.
    const std::uint64_t d = m.deadline_us(0);
    EXPECT_GE(d, enabled_config().min_deadline_us);
    EXPECT_LE(d, 2'000u);
    EXPECT_EQ(m.deadline_us(1), enabled_config().max_deadline_us);
}

TEST(LatencyMonitor, ConsecutiveMissesTripOnceThenProbesRecover) {
    latency_config cfg = enabled_config();
    latency_monitor m(2, cfg);
    for (int i = 0; i < 200; ++i) m.note_read(0, 100);  // warm, on time

    // Winsorized sampling: the stall magnitude must never drown the
    // deadline — every raw 50 ms sample still counts as late, so the
    // miss streak reaches the trip threshold.
    int trips = 0;
    for (std::uint32_t i = 0; i < cfg.slow_trip_misses + 4; ++i) {
        if (i < cfg.slow_trip_misses) {
            // The geometric ratchet must not outrun the streak: every
            // sample up to the trip still counts as late. (After the
            // trip the ratchet may legitimately pass the stall.)
            EXPECT_LT(m.deadline_us(0), 50'000u);
        }
        if (m.note_read(0, 50'000)) ++trips;
    }
    EXPECT_EQ(trips, 1);  // reported exactly once per episode
    EXPECT_TRUE(m.quarantined(0));
    EXPECT_FALSE(m.quarantined(1));
    EXPECT_EQ(m.stats(0).slow_trips, 1u);
    EXPECT_GE(m.stats(0).deadline_misses, cfg.slow_trip_misses);

    // Every probe_every-th routed read probes the disk directly.
    int probes = 0;
    for (std::uint32_t i = 0; i < cfg.probe_every; ++i) {
        if (m.take_probe(0)) ++probes;
    }
    EXPECT_EQ(probes, 1);
    EXPECT_EQ(m.stats(0).routed_reads, cfg.probe_every);

    // recover_probes consecutive on-time probes lift the quarantine.
    for (std::uint32_t i = 0; i < cfg.recover_probes; ++i) {
        EXPECT_FALSE(m.note_read(0, 100));
    }
    EXPECT_FALSE(m.quarantined(0));
    EXPECT_EQ(m.stats(0).recoveries, 1u);
}

TEST(LatencyMonitor, LateProbeRestartsRecoveryCount) {
    latency_config cfg = enabled_config();
    latency_monitor m(1, cfg);
    for (int i = 0; i < 200; ++i) m.note_read(0, 100);
    for (std::uint32_t i = 0; i < cfg.slow_trip_misses; ++i) {
        m.note_read(0, 50'000);
    }
    ASSERT_TRUE(m.quarantined(0));
    // Two good probes, one late one, then the full run of good probes:
    // the late probe must reset the consecutive count.
    m.note_read(0, 100);
    m.note_read(0, 100);
    m.note_read(0, 50'000);
    for (std::uint32_t i = 0; i + 1 < cfg.recover_probes; ++i) {
        m.note_read(0, 100);
        EXPECT_TRUE(m.quarantined(0));
    }
    m.note_read(0, 100);
    EXPECT_FALSE(m.quarantined(0));
}

TEST(LatencyMonitor, ResetClearsQuarantineAndDistribution) {
    latency_monitor m(1, enabled_config());
    for (int i = 0; i < 200; ++i) m.note_read(0, 100);
    for (int i = 0; i < 8; ++i) m.note_read(0, 50'000);
    ASSERT_TRUE(m.quarantined(0));
    m.reset(0);
    EXPECT_FALSE(m.quarantined(0));
    EXPECT_EQ(m.stats(0).samples, 0u);
    EXPECT_EQ(m.deadline_us(0), enabled_config().max_deadline_us);  // cold
}

// ---- hedged reads in the array read path ------------------------------

array_config hedged_config(bool hedged) {
    array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 16;
    cfg.io_queue_depth = 1;
    cfg.latency.hedged_reads = hedged;
    // Operator's tail SLA: with every straggler op stalling, the
    // adaptive p99 tracks the stall, so the ceiling is what bounds the
    // hedge trigger here.
    cfg.latency.max_deadline_us = 1000;
    return cfg;
}

TEST(HedgedRead, HedgesBeatAStragglerAndBytesStayCorrect) {
    raid6_array a(hedged_config(true));
    const auto image = pattern_bytes(a.capacity(), 3);
    ASSERT_TRUE(a.write(0, image));
    a.disk(2).set_latency_profile(constant_profile(50'000, 0), 9);

    const std::uint64_t t0 = a.clock().now_us();
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, image);
    const std::uint64_t hedged_us = a.clock().now_us() - t0;

    const array_stats st = a.stats();
    EXPECT_GE(st.hedged_reads, 1u);
    EXPECT_GE(st.hedge_wins, 1u);
    EXPECT_EQ(st.deadline_exceeded, st.hedged_reads);
    // Winning hedges are charged the deadline, not the stall: the whole
    // pass must cost far less than one 50 ms stall per strip read.
    EXPECT_LT(hedged_us, 50'000u);
    // Hedged reconstruction is checksum-verified, not double-counted as
    // an integrity event.
    EXPECT_EQ(st.checksum_mismatches, 0u);

    // The same pass without hedging pays every stall in full.
    raid6_array b(hedged_config(false));
    ASSERT_TRUE(b.write(0, image));
    b.disk(2).set_latency_profile(constant_profile(50'000, 0), 9);
    const std::uint64_t t1 = b.clock().now_us();
    ASSERT_TRUE(b.read(0, out));
    EXPECT_EQ(out, image);
    const std::uint64_t direct_us = b.clock().now_us() - t1;
    EXPECT_EQ(b.stats().hedged_reads, 0u);
    EXPECT_GT(direct_us, 5 * hedged_us);
}

TEST(HedgedRead, PersistentLatenessQuarantinesThenRecovers) {
    raid6_array a(hedged_config(true));
    const auto image = pattern_bytes(a.capacity(), 4);
    ASSERT_TRUE(a.write(0, image));
    a.disk(2).set_latency_profile(constant_profile(50'000, 0), 9);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, image);
    EXPECT_TRUE(a.latency_mon().quarantined(2));
    EXPECT_GE(a.stats().slow_trips, 1u);

    // Quarantined: reads route around the disk via decode. The straggler
    // only sees its periodic probes, so a pass costs probes, not stalls.
    const std::uint64_t t0 = a.clock().now_us();
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, image);
    const std::uint64_t routed_us = a.clock().now_us() - t0;
    EXPECT_GE(a.stats().slow_routed_reads, 1u);
    EXPECT_LT(routed_us, 16u * 50'000u);  // nowhere near a stall per strip

    // Writes still land on the quarantined disk (no erasure is declared):
    // rewrite everything, then heal the disk and keep reading until the
    // probes lift the quarantine.
    const auto image2 = pattern_bytes(a.capacity(), 5);
    ASSERT_TRUE(a.write(0, image2));
    a.disk(2).clear_latency_profile();
    for (int pass = 0; pass < 40 && a.latency_mon().quarantined(2); ++pass) {
        ASSERT_TRUE(a.read(0, out));
        EXPECT_EQ(out, image2);
    }
    EXPECT_FALSE(a.latency_mon().quarantined(2));
    EXPECT_GE(a.stats().slow_recoveries, 1u);
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, image2);
}

// ---- quarantine persistence across remount ----------------------------

TEST(FailSlowPersist, QuarantineSurvivesKillAndRemount) {
    const std::string dir =
        ::testing::TempDir() + "liberation-fail-slow-remount";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    array_config cfg = hedged_config(true);
    persist::store_config scfg;
    scfg.dir = dir;
    std::vector<std::byte> image;
    {
        auto a = persist::create_array(cfg, scfg, 0xFEED);
        ASSERT_NE(a, nullptr);
        image = pattern_bytes(a->capacity(), 6);
        ASSERT_TRUE(a->write(0, image));
        a->disk(2).set_latency_profile(constant_profile(50'000, 0), 9);
        std::vector<std::byte> out(a->capacity());
        ASSERT_TRUE(a->read(0, out));
        ASSERT_TRUE(a->latency_mon().quarantined(2));
        // Kill: destroy with no unmount — the trip already persisted the
        // membership epoch with the slow bit set.
    }

    persist::mount_options mo;
    mo.store.dir = dir;
    mo.io_queue_depth = 1;
    mo.latency = cfg.latency;
    persist::mounted_array m = persist::mount_array(mo);
    ASSERT_TRUE(m.report.ok) << m.report.error;
    ASSERT_NE(m.array, nullptr);
    EXPECT_TRUE(m.array->latency_mon().quarantined(2));

    // The remounted straggler is fresh hardware without the profile, so
    // probe reads come back on time and the quarantine lifts.
    std::vector<std::byte> out(m.array->capacity());
    for (int pass = 0;
         pass < 40 && m.array->latency_mon().quarantined(2); ++pass) {
        ASSERT_TRUE(m.array->read(0, out));
        EXPECT_EQ(out, image);
    }
    EXPECT_FALSE(m.array->latency_mon().quarantined(2));
    EXPECT_TRUE(m.array->unmount());

    // A remount without the fail-slow layer ignores the (now cleared)
    // bit and assembles normally.
    persist::mount_options plain;
    plain.store.dir = dir;
    plain.io_queue_depth = 1;
    persist::mounted_array m2 = persist::mount_array(plain);
    ASSERT_TRUE(m2.report.ok) << m2.report.error;
    EXPECT_FALSE(m2.array->latency_mon().quarantined(2));
    std::filesystem::remove_all(dir);
}

// ---- degraded read racing a concurrent second-disk health trip --------

TEST(HedgedRace, DegradedReadVsConcurrentSecondTrip) {
    // One disk already failed (degraded reads decode around it), one disk
    // fail-slow (hedging in play), and mid-flight a *third* disk storms
    // hard enough for the health monitor to trip it — two erasures plus a
    // straggler. Every read that returns success must carry bytes
    // identical to the shadow image: recover or fail loudly, never stale.
    array_config cfg = hedged_config(true);
    cfg.stripes = 32;
    cfg.health.max_read_errors = 5;
    raid6_array a(cfg);
    const auto image = pattern_bytes(a.capacity(), 7);
    ASSERT_TRUE(a.write(0, image));

    a.fail_disk(1);
    a.disk(2).set_latency_profile(constant_profile(20'000, 0), 11);

    const std::size_t elems = a.capacity() / cfg.element_size;
    std::atomic<bool> go{false};
    std::atomic<std::size_t> served{0}, refused{0};
    std::thread reader([&] {
        util::xoshiro256 rng(123);
        std::vector<std::byte> buf(cfg.element_size);
        while (!go.load(std::memory_order_acquire)) {}
        for (int i = 0; i < 3000; ++i) {
            const std::size_t addr =
                (rng.next() % elems) * cfg.element_size;
            if (a.read(addr, buf)) {
                served.fetch_add(1, std::memory_order_relaxed);
                ASSERT_EQ(std::memcmp(buf.data(), image.data() + addr,
                                      buf.size()),
                          0)
                    << "stale bytes at " << addr;
            } else {
                refused.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    go.store(true, std::memory_order_release);
    // Let the reader get going, then storm disk 3: every access errors,
    // retries exhaust, and the health monitor trips it mid-read-stream.
    while (served.load(std::memory_order_relaxed) +
               refused.load(std::memory_order_relaxed) <
           100) {
        std::this_thread::yield();
    }
    a.disk(3).set_transient_fault_rates(1.0, 1.0, 77);
    reader.join();

    EXPECT_GE(served.load(), 1u);
    // Settle: heal the storm, put fresh disks in both failed slots, and
    // rebuild — the array must return to byte-exact health.
    a.disk(3).clear_transient_faults();
    a.replace_disk(1);
    std::vector<std::uint32_t> targets{1};
    if (!a.disk(3).online()) {
        a.replace_disk(3);
        targets.push_back(3);
    }
    const rebuild_result res = rebuild_disks(a, targets, nullptr);
    EXPECT_TRUE(res.success);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, image);
}

// ---- chaos campaign with the fail-slow plan ---------------------------

TEST(FailSlowChaos, CampaignHedgesTripsAndRecoversClean) {
    chaos_config cfg = default_chaos_config(42, 3000);
    cfg.array.latency.hedged_reads = true;
    cfg.events.fail_stop_at_op = 600;
    cfg.events.health_storm_at_op = 1500;
    cfg.events.power_loss_at_op = 2400;
    cfg.events.fail_slow_at_op = 1000;
    cfg.events.fail_slow_recover_at_op = 2000;
    const chaos_report rep = run_chaos_campaign(cfg);

    EXPECT_TRUE(rep.success);
    EXPECT_EQ(rep.mismatches, 0u);
    EXPECT_EQ(rep.failed_reads, 0u);
    EXPECT_EQ(rep.stats.reads_unrecoverable, 0u);
    EXPECT_EQ(rep.fail_slow_injected, 1u);
    EXPECT_GE(rep.deadline_exceeded, 1u);
    EXPECT_GE(rep.hedged_reads, 1u);
    EXPECT_GE(rep.hedge_wins, 1u);
    EXPECT_GE(rep.slow_trips, 1u);
    EXPECT_GE(rep.slow_recoveries, 1u);

    // Same seed, same campaign: the fail-slow plan replays bit-for-bit.
    const chaos_report again = run_chaos_campaign(cfg);
    EXPECT_EQ(again.deadline_exceeded, rep.deadline_exceeded);
    EXPECT_EQ(again.hedged_reads, rep.hedged_reads);
    EXPECT_EQ(again.hedge_wins, rep.hedge_wins);
    EXPECT_EQ(again.slow_trips, rep.slow_trips);
    EXPECT_EQ(again.slow_recoveries, rep.slow_recoveries);
}

}  // namespace
