// Contract checks: the library aborts loudly on caller errors instead of
// corrupting parity silently. (LIBERATION_EXPECTS stays on in release.)
#include <gtest/gtest.h>

#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

TEST(Contracts, GeometryRejectsNonPrimes) {
    EXPECT_DEATH(core::geometry(9, 4), "precondition");   // 9 not prime
    EXPECT_DEATH(core::geometry(4, 3), "precondition");   // even
    EXPECT_DEATH(core::geometry(7, 8), "precondition");   // k > p
    EXPECT_DEATH(core::geometry(7, 0), "precondition");   // k = 0
}

TEST(Contracts, CodeConstructorsRejectBadShapes) {
    EXPECT_DEATH(core::liberation_optimal_code(5, 9), "precondition");
    EXPECT_DEATH(codes::evenodd_code(6, 5), "precondition");  // k > p
    EXPECT_DEATH(codes::rdp_code(5, 5), "precondition");      // k > p-1
}

TEST(Contracts, StripeGeometryMismatchCaught) {
    const core::liberation_optimal_code code(4, 5);
    codes::stripe_buffer wrong_rows(4, 6, 8);   // rows != p
    codes::stripe_buffer wrong_cols(5, 7, 8);   // cols != k+2
    EXPECT_DEATH(code.encode(wrong_rows.view()), "precondition");
    EXPECT_DEATH(code.encode(wrong_cols.view()), "precondition");
}

TEST(Contracts, DecodeRejectsBadErasureSets) {
    const core::liberation_optimal_code code(4, 5);
    auto stripe = test_support::make_encoded_stripe(code, 8, 1);
    const std::vector<std::uint32_t> dup{1, 1};
    const std::vector<std::uint32_t> oob{7};
    const std::vector<std::uint32_t> three{0, 1, 2};
    EXPECT_DEATH(code.decode(stripe.view(), dup), "precondition");
    EXPECT_DEATH(code.decode(stripe.view(), oob), "precondition");
    EXPECT_DEATH(code.decode(stripe.view(), three), "precondition");
    EXPECT_DEATH(code.decode(stripe.view(), {}), "precondition");
}

TEST(Contracts, UpdateRejectsBadPositions) {
    const core::liberation_optimal_code code(4, 5);
    auto stripe = test_support::make_encoded_stripe(code, 8, 2);
    const std::vector<std::byte> delta(8);
    const std::vector<std::byte> short_delta(4);
    EXPECT_DEATH(code.apply_update(stripe.view(), 5, 0, delta),
                 "precondition");  // row >= p
    EXPECT_DEATH(code.apply_update(stripe.view(), 0, 4, delta),
                 "precondition");  // parity column
    EXPECT_DEATH(code.apply_update(stripe.view(), 0, 0, short_delta),
                 "precondition");  // delta size != element size
}

TEST(Contracts, PacketViewBoundsChecked) {
    codes::stripe_buffer sb(3, 3, 64);
    EXPECT_DEATH((void)sb.view().packet_view(32, 64), "precondition");
    EXPECT_DEATH((void)sb.view().element(3, 0), "precondition");
    EXPECT_DEATH((void)sb.view().element(0, 3), "precondition");
}

TEST(Contracts, StripOnPacketViewRejected) {
    codes::stripe_buffer sb(3, 3, 64);
    const auto w = sb.view().packet_view(0, 32);
    EXPECT_DEATH((void)w.strip(0), "precondition");
}

}  // namespace
