// Cross-module integration: the optimal algorithms, the bit-matrix
// baseline, the geometric reference and a Gaussian-elimination decoder must
// all agree with each other on the same codewords.
#include <gtest/gtest.h>

#include <tuple>

#include "liberation/bitmatrix/liberation_matrix.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

class CrossSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(CrossSweep, ThreeEncodersProduceIdenticalParity) {
    const core::liberation_optimal_code opt(k(), p());
    const codes::liberation_bitmatrix_code orig(k(), p());
    util::xoshiro256 rng(p() + k());

    codes::stripe_buffer a(p(), k() + 2, 32);
    a.fill_random(rng, k());
    codes::stripe_buffer b(p(), k() + 2, 32), c(p(), k() + 2, 32);
    codes::copy_stripe(b.view(), a.view());
    codes::copy_stripe(c.view(), a.view());

    opt.encode(a.view());
    orig.encode(b.view());
    core::encode_reference(c.view(), opt.geom());

    EXPECT_TRUE(codes::stripes_equal(a.view(), b.view()));
    EXPECT_TRUE(codes::stripes_equal(a.view(), c.view()));
}

TEST_P(CrossSweep, OptimalDecodeMatchesBitmatrixDecode) {
    const core::liberation_optimal_code opt(k(), p());
    const codes::liberation_bitmatrix_code orig(k(), p());
    auto ref = test_support::make_encoded_stripe(opt, 16, 7);

    for (std::uint32_t a = 0; a < opt.n(); ++a) {
        for (std::uint32_t b = a + 1; b < opt.n(); ++b) {
            const std::vector<std::uint32_t> pat{a, b};
            codes::stripe_buffer x(p(), k() + 2, 16), y(p(), k() + 2, 16);
            codes::copy_stripe(x.view(), ref.view());
            codes::copy_stripe(y.view(), ref.view());
            test_support::trash_columns(x.view(), pat, 1);
            test_support::trash_columns(y.view(), pat, 2);
            opt.decode(x.view(), pat);
            orig.decode(y.view(), pat);
            EXPECT_TRUE(codes::stripes_equal(x.view(), y.view()));
            EXPECT_TRUE(codes::stripes_equal(x.view(), ref.view()));
        }
    }
}

TEST_P(CrossSweep, CodewordSatisfiesGeneratorMatrix) {
    // Multiply the data bits through the generator and compare with the
    // stripe's parity bytes — closes the loop between the algebraic and
    // geometric views at the bit level. Uses one byte plane; a byte plane
    // is 8 independent codewords, so this checks 8 codewords at once.
    const core::liberation_optimal_code opt(k(), p());
    auto stripe = test_support::make_encoded_stripe(opt, 4, 17);
    const auto gen = bitmatrix::liberation_generator(p(), k());

    for (std::size_t byte = 0; byte < 4; ++byte) {
        std::vector<std::uint8_t> data_bits(k() * p());
        for (std::uint32_t j = 0; j < k(); ++j) {
            for (std::uint32_t i = 0; i < p(); ++i) {
                data_bits[j * p() + i] = static_cast<std::uint8_t>(
                    stripe.view().element(i, j)[byte]);
            }
        }
        for (std::uint32_t row = 0; row < 2 * p(); ++row) {
            std::uint8_t acc = 0;
            for (const auto c : gen.row_ones(row)) acc ^= data_bits[c];
            const std::uint32_t col = row < p() ? k() : k() + 1;
            const std::uint32_t r = row < p() ? row : row - p();
            EXPECT_EQ(acc, static_cast<std::uint8_t>(
                               stripe.view().element(r, col)[byte]))
                << "row=" << row << " byte=" << byte;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(3u, 3u),
                      std::make_tuple(5u, 4u), std::make_tuple(5u, 5u),
                      std::make_tuple(7u, 5u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 9u), std::make_tuple(11u, 11u),
                      std::make_tuple(13u, 13u), std::make_tuple(17u, 14u)));

TEST(Integration, ElementSizeInvariance) {
    // The same data encoded with different element sizes must agree on the
    // overlapping prefix bytes of every element (coding is element-wise).
    const core::liberation_optimal_code code(5, 5);
    util::xoshiro256 rng(33);
    codes::stripe_buffer small(5, 7, 8), large(5, 7, 8192);
    small.fill_random(rng, 5);
    for (std::uint32_t j = 0; j < 5; ++j) {
        for (std::uint32_t i = 0; i < 5; ++i) {
            std::memcpy(large.view().element(i, j),
                        small.view().element(i, j), 8);
        }
    }
    code.encode(small.view());
    code.encode(large.view());
    for (std::uint32_t col : {5u, 6u}) {
        for (std::uint32_t i = 0; i < 5; ++i) {
            EXPECT_EQ(std::memcmp(small.view().element(i, col),
                                  large.view().element(i, col), 8),
                      0)
                << "col=" << col << " row=" << i;
        }
    }
}

TEST(Integration, MixedWorkflowEncodeUpdateDecodeScrub) {
    // A miniature lifetime: encode, small-update, partial failure decode,
    // silent corruption scrub — all on the same stripe.
    const core::liberation_optimal_code code(6, 7);
    auto stripe = test_support::make_encoded_stripe(code, 64, 51);
    util::xoshiro256 rng(52);

    // 1. updates
    for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> fresh(64), delta(64);
        rng.fill(fresh);
        const auto row = static_cast<std::uint32_t>(rng.next_below(7));
        const auto col = static_cast<std::uint32_t>(rng.next_below(6));
        auto* e = stripe.view().element(row, col);
        for (std::size_t b = 0; b < 64; ++b) delta[b] = e[b] ^ fresh[b];
        code.apply_update(stripe.view(), row, col, delta);
        std::memcpy(e, fresh.data(), 64);
    }
    ASSERT_TRUE(code.verify(stripe.view()));
    codes::stripe_buffer pristine(7, 8, 64);
    codes::copy_stripe(pristine.view(), stripe.view());

    // 2. double erasure decode
    const std::vector<std::uint32_t> pat{1, 4};
    test_support::trash_columns(stripe.view(), pat, 53);
    code.decode(stripe.view(), pat);
    ASSERT_TRUE(codes::stripes_equal(stripe.view(), pristine.view()));

    // 3. silent corruption scrub
    stripe.view().element(3, 2)[17] ^= std::byte{0x80};
    const auto report = code.scrub(stripe.view());
    EXPECT_EQ(report.status, core::scrub_status::corrected_data);
    EXPECT_EQ(report.column, 2u);
    EXPECT_TRUE(codes::stripes_equal(stripe.view(), pristine.view()));
}

}  // namespace
