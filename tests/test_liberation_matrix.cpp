#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "liberation/bitmatrix/liberation_matrix.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;
using bitmatrix::bit_matrix;

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(GeneratorSweep, RowWeightsMatchTheory) {
    const auto gen = bitmatrix::liberation_generator(p(), k());
    ASSERT_EQ(gen.rows(), 2 * p());
    ASSERT_EQ(gen.cols(), k() * p());
    // P rows have weight k. Q rows have weight k, plus 1 for the extra bit
    // when it falls into a real column; exactly k-1 extra bits exist.
    std::uint32_t extras = 0;
    for (std::uint32_t i = 0; i < p(); ++i) {
        EXPECT_EQ(gen.row_weight(i), k());
        const std::uint32_t qw = gen.row_weight(p() + i);
        EXPECT_TRUE(qw == k() || qw == k() + 1);
        if (qw == k() + 1) ++extras;
    }
    EXPECT_EQ(extras, k() - 1);
    // Total ones: Table I's closed form numerator 2kp + (k-1).
    EXPECT_EQ(gen.ones(), 2ull * k() * p() + (k() - 1));
}

TEST_P(GeneratorSweep, MdsEveryDataPairInvertible) {
    // The defining MDS property: for every pair of data columns, the 2p x
    // 2p sub-matrix of the generator restricted to those columns inverts.
    const auto gen = bitmatrix::liberation_generator(p(), k());
    for (std::uint32_t a = 0; a < k(); ++a) {
        for (std::uint32_t b = a + 1; b < k(); ++b) {
            std::vector<std::uint32_t> bits;
            for (std::uint32_t i = 0; i < p(); ++i) bits.push_back(a * p() + i);
            for (std::uint32_t i = 0; i < p(); ++i) bits.push_back(b * p() + i);
            const auto sub = gen.select_cols(bits);
            EXPECT_TRUE(sub.inverted().has_value())
                << "p=" << p() << " a=" << a << " b=" << b;
        }
    }
}

TEST_P(GeneratorSweep, SingleColumnsFullRankInBothParities) {
    // Each data column restricted to P rows alone (or Q rows alone) must be
    // invertible — needed for the data+parity erasure cases.
    const auto gen = bitmatrix::liberation_generator(p(), k());
    std::vector<std::uint32_t> p_rows, q_rows;
    for (std::uint32_t i = 0; i < p(); ++i) {
        p_rows.push_back(i);
        q_rows.push_back(p() + i);
    }
    for (std::uint32_t a = 0; a < k(); ++a) {
        std::vector<std::uint32_t> bits;
        for (std::uint32_t i = 0; i < p(); ++i) bits.push_back(a * p() + i);
        EXPECT_TRUE(
            gen.select_rows(p_rows).select_cols(bits).inverted().has_value());
        EXPECT_TRUE(
            gen.select_rows(q_rows).select_cols(bits).inverted().has_value());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(3u, 3u),
                      std::make_tuple(5u, 3u), std::make_tuple(5u, 5u),
                      std::make_tuple(7u, 4u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 6u), std::make_tuple(11u, 11u),
                      std::make_tuple(13u, 13u), std::make_tuple(17u, 12u)));

TEST(LiberationMatrix, MatchesPaperFigure2) {
    // Fig. 2 (p = 5): anti-diagonal parity constraint membership. Spot
    // check the extra bits: a_1 = b[3][3], a_2 = b[2][1], a_3 = b[1][4],
    // a_4 = b[0][2]; constraint A (i=0) has no extra bit.
    const auto gen = bitmatrix::liberation_generator(5, 5);
    const auto bit = [](std::uint32_t col, std::uint32_t row) {
        return col * 5 + row;
    };
    EXPECT_TRUE(gen.get(5 + 1, bit(3, 3)));
    EXPECT_TRUE(gen.get(5 + 2, bit(1, 2)));
    EXPECT_TRUE(gen.get(5 + 3, bit(4, 1)));
    EXPECT_TRUE(gen.get(5 + 4, bit(2, 0)));
    // Q_0 weight is exactly 5 (no extra).
    EXPECT_EQ(gen.row_weight(5), 5u);
}

TEST(LiberationMatrix, RegionMapsShapes) {
    const auto data = bitmatrix::data_bit_regions(7, 4);
    const auto parity = bitmatrix::parity_bit_regions(7, 4);
    EXPECT_EQ(data.size(), 28u);
    EXPECT_EQ(parity.size(), 14u);
    EXPECT_EQ(data[0].col, 0u);
    EXPECT_EQ(data[27].col, 3u);
    EXPECT_EQ(data[27].row, 6u);
    EXPECT_EQ(parity[0].col, 4u);   // P column
    EXPECT_EQ(parity[7].col, 5u);   // Q column
}

TEST(DecodePlan, ReencodesParityColumns) {
    const std::uint32_t erased[] = {5u, 6u};  // P and Q of a k=5, p=5 code
    const auto plan = bitmatrix::make_bitmatrix_decode_plan(5, 5, erased);
    EXPECT_EQ(plan.reencoded_parity.size(), 2u);
    EXPECT_FALSE(plan.ops.empty());
}

TEST(DecodePlan, TwoDataErasureHasNoReencode) {
    const std::uint32_t erased[] = {0u, 2u};
    const auto plan = bitmatrix::make_bitmatrix_decode_plan(7, 6, erased);
    EXPECT_TRUE(plan.reencoded_parity.empty());
    // 2p output bits must each be written at least once.
    EXPECT_GE(plan.ops.size(), 14u);
}

}  // namespace
