#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/rdp.hpp"
#include "liberation/xorops/xorops.hpp"
#include "code_testkit.hpp"

namespace {

using liberation::codes::rdp_code;

class RdpSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    rdp_code make() const {
        return {std::get<1>(GetParam()), std::get<0>(GetParam())};
    }
};

TEST_P(RdpSweep, AllErasuresRoundTrip) {
    code_testkit::check_all_erasures(make(), 16, 11);
}

TEST_P(RdpSweep, VerifyDetectsCorruption) {
    code_testkit::check_verify(make(), 12);
}

TEST_P(RdpSweep, UpdatesKeepParityConsistent) {
    code_testkit::check_updates(make(), 13);
}

TEST_P(RdpSweep, Linearity) { code_testkit::check_linearity(make(), 14); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, RdpSweep,
    ::testing::Values(std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
                      std::make_tuple(5u, 3u), std::make_tuple(5u, 4u),
                      std::make_tuple(7u, 4u), std::make_tuple(7u, 6u),
                      std::make_tuple(11u, 10u), std::make_tuple(13u, 9u),
                      std::make_tuple(13u, 12u)));

TEST(Rdp, GeometryAccessors) {
    const rdp_code c(6, 7);
    EXPECT_EQ(c.k(), 6u);
    EXPECT_EQ(c.rows(), 6u);
    EXPECT_EQ(c.name(), "rdp(k=6,p=7)");
}

TEST(Rdp, DefaultPrimeLeavesRoomForRowParity) {
    // RDP needs k <= p-1, so k = 4 must pick p = 5, k = 6 -> p = 7.
    EXPECT_EQ(rdp_code(4).p(), 5u);
    EXPECT_EQ(rdp_code(6).p(), 7u);
    EXPECT_EQ(rdp_code(10).p(), 11u);
}

TEST(Rdp, OptimalEncodingAtFullWidth) {
    // The RDP headline: k = p-1 encodes with exactly k-1 XORs per parity
    // element (Table I / Fig. 5).
    for (std::uint32_t p : {5u, 7u, 11u, 13u}) {
        const rdp_code c(p - 1, p);
        auto stripe = test_support::make_encoded_stripe(c, 8, p);
        liberation::codes::stripe_buffer redo(c.rows(), c.n(), 8);
        liberation::codes::copy_stripe(redo.view(), stripe.view());
        liberation::xorops::counting_scope scope;
        c.encode(redo.view());
        EXPECT_EQ(scope.xors(), 2ull * (p - 1) * (c.k() - 1)) << "p=" << p;
    }
}

TEST(Rdp, OptimalDecodingAtFullWidth) {
    // Fig. 7: RDP decodes two data columns at the lower bound when k = p-1.
    for (std::uint32_t p : {5u, 7u, 11u}) {
        const rdp_code c(p - 1, p);
        auto ref = test_support::make_encoded_stripe(c, 8, p * 7);
        for (std::uint32_t a = 0; a < c.k(); ++a) {
            for (std::uint32_t b = a + 1; b < c.k(); ++b) {
                liberation::codes::stripe_buffer broke(c.rows(), c.n(), 8);
                liberation::codes::copy_stripe(broke.view(), ref.view());
                const std::vector<std::uint32_t> pat{a, b};
                test_support::trash_columns(broke.view(), pat, 3);
                liberation::xorops::counting_scope scope;
                c.decode(broke.view(), pat);
                ASSERT_TRUE(
                    liberation::codes::stripes_equal(broke.view(), ref.view()));
                EXPECT_EQ(scope.xors(), 2ull * (p - 1) * (c.k() - 1))
                    << "p=" << p << " {" << a << "," << b << "}";
            }
        }
    }
}

}  // namespace
