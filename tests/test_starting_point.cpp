#include <gtest/gtest.h>

#include <algorithm>

#include "liberation/core/starting_point.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation::core;

TEST(StartingPoint, PaperExampleColumns1And3) {
    // Section III-C trace: (l, r) = (1, 3) fails; after the exchange the
    // walk succeeds with x = 3, S^P = {0, 2}, S^Q = {2, 4}.
    const geometry g(5, 5);
    const auto first = find_starting_point(g, 1, 3);
    EXPECT_FALSE(first.found());

    const auto sp = find_starting_point(g, 3, 1);
    ASSERT_TRUE(sp.found());
    EXPECT_EQ(sp.x, 3);
    auto p_rows = sp.p_rows;
    auto q_rows = sp.q_rows;
    std::sort(p_rows.begin(), p_rows.end());
    std::sort(q_rows.begin(), q_rows.end());
    EXPECT_EQ(p_rows, (std::vector<std::uint32_t>{0, 2}));
    EXPECT_EQ(q_rows, (std::vector<std::uint32_t>{2, 4}));
}

TEST(StartingPoint, AdjacentPairSucceedsSorted) {
    const geometry g(5, 5);
    const auto sp = find_starting_point(g, 0, 1);
    ASSERT_TRUE(sp.found());
    EXPECT_EQ(sp.x, 3);  // extraR(1) = 2, so x = 3
}

TEST(StartingPoint, ExactlyOneOrientationPerPair) {
    // For every pair, at least one orientation must succeed (Algorithm 4
    // relies on retry-after-exchange terminating).
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        for (std::uint32_t l = 0; l < p; ++l) {
            for (std::uint32_t r = l + 1; r < p; ++r) {
                const bool fwd = find_starting_point(g, l, r).found();
                const bool rev = find_starting_point(g, r, l).found();
                EXPECT_TRUE(fwd || rev) << "p=" << p << " pair " << l << "," << r;
            }
        }
    }
}

TEST(StartingPoint, SyndromeSetsHaveMatchedSizes) {
    // The walk adds one P row per Q row after the seeds, so |S^Q| = |S^P|;
    // both contain distinct constraint indices.
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        for (std::uint32_t l = 0; l < p; ++l) {
            for (std::uint32_t r = 0; r < p; ++r) {
                if (l == r) continue;
                const auto sp = find_starting_point(g, l, r);
                if (!sp.found()) continue;
                EXPECT_EQ(sp.p_rows.size(), sp.q_rows.size());
                auto q = sp.q_rows;
                std::sort(q.begin(), q.end());
                EXPECT_EQ(std::unique(q.begin(), q.end()), q.end());
                auto pr = sp.p_rows;
                std::sort(pr.begin(), pr.end());
                EXPECT_EQ(std::unique(pr.begin(), pr.end()), pr.end());
                EXPECT_LT(sp.x, static_cast<std::int32_t>(p));
            }
        }
    }
}

TEST(StartingPoint, ColumnZeroLeftAlwaysSucceeds) {
    // l = 0 relaxes the stop condition; the walk must always close.
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        for (std::uint32_t r = 1; r < p; ++r) {
            EXPECT_TRUE(find_starting_point(g, 0, r).found())
                << "p=" << p << " r=" << r;
        }
    }
}

}  // namespace
