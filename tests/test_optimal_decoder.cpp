#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

class DecoderSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(DecoderSweep, AllErasurePatternsRoundTrip) {
    const core::liberation_optimal_code code(k(), p());
    const std::uint64_t seed = p() * 131 + k();
    auto ref = test_support::make_encoded_stripe(code, 16, seed);

    std::vector<std::vector<std::uint32_t>> patterns;
    for (std::uint32_t a = 0; a < code.n(); ++a) {
        patterns.push_back({a});
        for (std::uint32_t b = a + 1; b < code.n(); ++b) {
            patterns.push_back({a, b});
        }
    }
    for (const auto& pat : patterns) {
        codes::stripe_buffer broke(p(), k() + 2, 16);
        codes::copy_stripe(broke.view(), ref.view());
        test_support::trash_columns(broke.view(), pat, seed);
        code.decode(broke.view(), pat);
        EXPECT_TRUE(codes::stripes_equal(broke.view(), ref.view()))
            << "p=" << p() << " k=" << k() << " pattern {" << pat[0]
            << (pat.size() > 1 ? "," + std::to_string(pat[1]) : "") << "}";
    }
}

TEST_P(DecoderSweep, ReversedErasureOrderAccepted) {
    const core::liberation_optimal_code code(k(), p());
    auto ref = test_support::make_encoded_stripe(code, 8, 5);
    if (k() < 2) return;
    const std::vector<std::uint32_t> pat{k() - 1, 0};  // descending order
    codes::stripe_buffer broke(p(), k() + 2, 8);
    codes::copy_stripe(broke.view(), ref.view());
    test_support::trash_columns(broke.view(), pat, 5);
    code.decode(broke.view(), pat);
    EXPECT_TRUE(codes::stripes_equal(broke.view(), ref.view()));
}

TEST_P(DecoderSweep, TwoDataDecodeNearLowerBound) {
    // The paper's decoding claim: for two erased data columns the cost per
    // missing element is within a few percent of the k-1 lower bound
    // (Figs. 7-8: 0~2.5% above, with isolated patterns below it).
    if (k() < 4) return;  // normalization degenerates at small k
    const core::liberation_optimal_code code(k(), p());
    auto ref = test_support::make_encoded_stripe(code, 8, 9);
    double worst = 0;
    for (std::uint32_t a = 0; a < k(); ++a) {
        for (std::uint32_t b = a + 1; b < k(); ++b) {
            codes::stripe_buffer broke(p(), k() + 2, 8);
            codes::copy_stripe(broke.view(), ref.view());
            const std::vector<std::uint32_t> pat{a, b};
            test_support::trash_columns(broke.view(), pat, 11);
            xorops::counting_scope scope;
            code.decode(broke.view(), pat);
            ASSERT_TRUE(codes::stripes_equal(broke.view(), ref.view()));
            const double norm = static_cast<double>(scope.xors()) /
                                (2.0 * p()) / (k() - 1);
            worst = std::max(worst, norm);
        }
    }
    // Generous regression bound: the measured worst case across the sweep
    // is ~1.06; anything above 1.15 means a redundant-XOR regression.
    EXPECT_LT(worst, 1.15) << "p=" << p() << " k=" << k();
}

TEST_P(DecoderSweep, ParityInvolvedPatternsAreOptimal) {
    // Single-column and data+parity cases decode at exactly the lower
    // bound of k-1 XORs per missing element... except data+P, where the
    // anti-diagonal route pays for extra bits (k-1 additional XORs total).
    const core::liberation_optimal_code code(k(), p());
    auto ref = test_support::make_encoded_stripe(code, 8, 13);

    const auto count = [&](std::vector<std::uint32_t> pat) {
        codes::stripe_buffer broke(p(), k() + 2, 8);
        codes::copy_stripe(broke.view(), ref.view());
        test_support::trash_columns(broke.view(), pat, 17);
        xorops::counting_scope scope;
        code.decode(broke.view(), pat);
        EXPECT_TRUE(codes::stripes_equal(broke.view(), ref.view()));
        return scope.xors();
    };

    const std::uint64_t per_col = 1ull * p() * (k() - 1);
    EXPECT_EQ(count({0}), per_col);                      // one data col
    EXPECT_EQ(count({code.p_column()}), per_col);        // P re-encode
    EXPECT_EQ(count({code.q_column()}), per_col + k() - 1);  // Q (extras)
    EXPECT_EQ(count({code.p_column(), code.q_column()}),
              2 * per_col);                              // both parities
    EXPECT_EQ(count({0, code.q_column()}), 2 * per_col + k() - 1);
    if (k() >= 2) {
        // data + P: diagonal recovery pays <= 2(k-1) extra XORs in total.
        const std::uint64_t got = count({1, code.p_column()});
        EXPECT_GE(got, 2 * per_col);
        EXPECT_LE(got, 2 * per_col + 2 * (k() - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecoderSweep,
    ::testing::Values(
        std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
        std::make_tuple(3u, 3u), std::make_tuple(5u, 2u),
        std::make_tuple(5u, 4u), std::make_tuple(5u, 5u),
        std::make_tuple(7u, 3u), std::make_tuple(7u, 6u),
        std::make_tuple(7u, 7u), std::make_tuple(11u, 4u),
        std::make_tuple(11u, 11u), std::make_tuple(13u, 10u),
        std::make_tuple(13u, 13u), std::make_tuple(17u, 17u),
        std::make_tuple(19u, 12u), std::make_tuple(23u, 23u),
        std::make_tuple(29u, 20u), std::make_tuple(31u, 24u)));

TEST(OptimalDecoder, PaperExampleXorCount) {
    // The Section III-C worked example (p = 5, columns 1 and 3). The paper
    // reports 39 XORs, but its printed syndrome list drops two genuine
    // terms (b[2][4] from S^Q_3 and b[1][2] from S^Q_4 — both are required
    // for the algebra to close; see EXPERIMENTS.md "deviations"). With
    // those terms restored the exact count is 41, still within 2.5% of the
    // 2p(k-1) = 40 naive bound.
    const core::liberation_optimal_code code(5, 5);
    auto ref = test_support::make_encoded_stripe(code, 8, 21);
    codes::stripe_buffer broke(5, 7, 8);
    codes::copy_stripe(broke.view(), ref.view());
    const std::vector<std::uint32_t> pat{1, 3};
    test_support::trash_columns(broke.view(), pat, 23);
    xorops::counting_scope scope;
    code.decode(broke.view(), pat);
    ASSERT_TRUE(codes::stripes_equal(broke.view(), ref.view()));
    EXPECT_EQ(scope.xors(), 41u);
}

TEST(OptimalDecoder, DecodeIsDeterministic) {
    const core::liberation_optimal_code code(6, 7);
    auto ref = test_support::make_encoded_stripe(code, 8, 31);
    const std::vector<std::uint32_t> pat{2, 5};
    codes::stripe_buffer a(7, 8, 8), b(7, 8, 8);
    codes::copy_stripe(a.view(), ref.view());
    codes::copy_stripe(b.view(), ref.view());
    test_support::trash_columns(a.view(), pat, 1);
    test_support::trash_columns(b.view(), pat, 2);  // different garbage
    code.decode(a.view(), pat);
    code.decode(b.view(), pat);
    EXPECT_TRUE(codes::stripes_equal(a.view(), b.view()));
}

}  // namespace
