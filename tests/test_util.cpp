#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/thread_pool.hpp"

namespace {

using namespace liberation::util;

TEST(Primes, SmallValues) {
    EXPECT_FALSE(is_prime(0));
    EXPECT_FALSE(is_prime(1));
    EXPECT_TRUE(is_prime(2));
    EXPECT_TRUE(is_prime(3));
    EXPECT_FALSE(is_prime(4));
    EXPECT_TRUE(is_prime(5));
    EXPECT_FALSE(is_prime(9));
    EXPECT_TRUE(is_prime(31));
    EXPECT_FALSE(is_prime(33));
    EXPECT_TRUE(is_prime(1021));
}

TEST(Primes, NextPrime) {
    EXPECT_EQ(next_prime(2), 2u);
    EXPECT_EQ(next_prime(4), 5u);
    EXPECT_EQ(next_prime(14), 17u);
    EXPECT_EQ(next_prime(23), 23u);
}

TEST(Primes, NextOddPrime) {
    EXPECT_EQ(next_odd_prime(1), 3u);
    EXPECT_EQ(next_odd_prime(2), 3u);
    EXPECT_EQ(next_odd_prime(3), 3u);
    EXPECT_EQ(next_odd_prime(4), 5u);
    EXPECT_EQ(next_odd_prime(24), 29u);
}

TEST(Primes, OddPrimesInRange) {
    const auto primes = odd_primes_in(3, 31);
    const std::vector<std::uint32_t> expected{3,  5,  7,  11, 13,
                                              17, 19, 23, 29, 31};
    EXPECT_EQ(primes, expected);
}

TEST(Primes, ModInverse) {
    for (std::uint32_t p : {3u, 5u, 7u, 11u, 13u, 31u}) {
        for (std::uint32_t a = 1; a < p; ++a) {
            const std::uint32_t inv = mod_inverse(a, p);
            EXPECT_EQ(a * inv % p, 1u) << "a=" << a << " p=" << p;
        }
    }
}

TEST(Rng, Deterministic) {
    xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
    xoshiro256 rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Rng, FillCoversWholeBuffer) {
    xoshiro256 rng(9);
    std::vector<std::byte> buf(1031, std::byte{0});  // odd size: tail path
    rng.fill(buf);
    int nonzero = 0;
    for (auto b : buf) {
        if (b != std::byte{0}) ++nonzero;
    }
    EXPECT_GT(nonzero, 900);  // ~1/256 of bytes may be zero by chance
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
    aligned_buffer buf(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), 100u);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        EXPECT_EQ(buf.data()[i], std::byte{0});
    }
}

TEST(AlignedBuffer, CapacityRoundsUpTo64) {
    for (const std::size_t size : {1ul, 63ul, 64ul, 65ul, 100ul, 4096ul}) {
        aligned_buffer buf(size);
        EXPECT_GE(buf.capacity(), buf.size()) << "size=" << size;
        EXPECT_EQ(buf.capacity() % 64, 0u) << "size=" << size;
        EXPECT_LT(buf.capacity() - buf.size(), 64u) << "size=" << size;
        // The documented guarantee: padding bytes are allocated and zero,
        // so full-width vector loads over the tail are safe.
        for (std::size_t i = buf.size(); i < buf.capacity(); ++i) {
            EXPECT_EQ(buf.data()[i], std::byte{0}) << "i=" << i;
        }
    }
    EXPECT_EQ(aligned_buffer{}.capacity(), 0u);
}

TEST(AlignedBuffer, ZeroClearsPadding) {
    aligned_buffer buf(65);
    buf.data()[64] = std::byte{0xaa};  // dirty one padding byte
    buf.zero();
    for (std::size_t i = 0; i < buf.capacity(); ++i) {
        EXPECT_EQ(buf.data()[i], std::byte{0}) << "i=" << i;
    }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
    aligned_buffer a(64);
    a.data()[0] = std::byte{42};
    aligned_buffer b(std::move(a));
    EXPECT_EQ(b.data()[0], std::byte{42});
    EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
    a = std::move(b);
    EXPECT_EQ(a.data()[0], std::byte{42});
}

TEST(AlignedBuffer, SubspanBounds) {
    aligned_buffer buf(128);
    auto s = buf.subspan(64, 64);
    EXPECT_EQ(s.size(), 64u);
    EXPECT_EQ(s.data(), buf.data() + 64);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    thread_pool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
    thread_pool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForEmpty) {
    thread_pool pool(2);
    pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
