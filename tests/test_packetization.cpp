// Packet views and the packetization policy: correctness of the stride
// machinery the throughput path depends on.
#include <gtest/gtest.h>

#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

TEST(PacketView, WindowsAddressTheRightBytes) {
    codes::stripe_buffer sb(4, 3, 64);
    const auto v = sb.view();
    const auto w = v.packet_view(16, 32);
    EXPECT_EQ(w.element_size(), 32u);
    EXPECT_EQ(w.rows(), 4u);
    for (std::uint32_t r = 0; r < 4; ++r) {
        for (std::uint32_t c = 0; c < 3; ++c) {
            EXPECT_EQ(w.element(r, c), v.element(r, c) + 16);
        }
    }
    // Nested windows compose.
    const auto w2 = w.packet_view(8, 8);
    EXPECT_EQ(w2.element(1, 2), v.element(1, 2) + 24);
}

TEST(PacketView, WritesThroughWindowLandInParent) {
    codes::stripe_buffer sb(2, 2, 32);
    const auto v = sb.view();
    const auto w = v.packet_view(8, 8);
    w.element(1, 1)[0] = std::byte{0x77};
    EXPECT_EQ(v.element(1, 1)[8], std::byte{0x77});
}

TEST(PacketPolicy, SmallElementsRunWhole) {
    // Complexity probes use 8-byte elements: never split (XOR counts
    // would multiply otherwise).
    EXPECT_EQ(codes::preferred_packet_size(100, 8), 8u);
    EXPECT_EQ(codes::preferred_packet_size(1000, 8), 8u);
}

TEST(PacketPolicy, LargeFootprintsSplitToPowersOfTwo) {
    // 552 live elements (k=22, p=23): 4 KiB elements split.
    const auto packet = codes::preferred_packet_size(552, 4096);
    EXPECT_LT(packet, 4096u);
    EXPECT_GE(packet, 1024u);
    EXPECT_EQ(4096 % packet, 0u);
    // Small stripes stay whole.
    EXPECT_EQ(codes::preferred_packet_size(35, 4096), 4096u);
}

TEST(PacketPolicy, OddElementSizesNeverSplitUnevenly) {
    // A packet must divide the element exactly or not split at all.
    const auto packet = codes::preferred_packet_size(552, 5000);
    EXPECT_TRUE(packet == 5000 || 5000 % packet == 0);
}

TEST(Packetization, OptimalCodePacketizedMatchesWhole) {
    // k=22/p=23 with 4 KiB elements triggers the packet loop; the result
    // must be bit-identical to an 8-byte-element encode of the same data
    // prefix (packetization must not change any math).
    const core::liberation_optimal_code code(22, 23);
    util::xoshiro256 rng(3);
    codes::stripe_buffer big(23, 24, 4096);
    big.fill_random(rng, 22);
    codes::stripe_buffer small(23, 24, 8);
    for (std::uint32_t c = 0; c < 22; ++c) {
        for (std::uint32_t r = 0; r < 23; ++r) {
            std::memcpy(small.view().element(r, c), big.view().element(r, c),
                        8);
        }
    }
    code.encode(big.view());
    code.encode(small.view());
    for (std::uint32_t c : {22u, 23u}) {
        for (std::uint32_t r = 0; r < 23; ++r) {
            EXPECT_EQ(std::memcmp(big.view().element(r, c),
                                  small.view().element(r, c), 8),
                      0)
                << "col " << c << " row " << r;
        }
    }

    // Decode through the packet loop as well.
    codes::stripe_buffer pristine(23, 24, 4096);
    codes::copy_stripe(pristine.view(), big.view());
    const std::vector<std::uint32_t> pat{3, 17};
    test_support::trash_columns(big.view(), pat, 5);
    code.decode(big.view(), pat);
    EXPECT_TRUE(codes::stripes_equal(big.view(), pristine.view()));
}

TEST(Packetization, BaselinePacketizedMatchesWhole) {
    const codes::liberation_bitmatrix_code auto_packet(22, 23, false, 0);
    const codes::liberation_bitmatrix_code whole(22, 23, false, 4096);
    util::xoshiro256 rng(4);
    codes::stripe_buffer a(23, 24, 4096), b(23, 24, 4096);
    a.fill_random(rng, 22);
    codes::copy_stripe(b.view(), a.view());
    auto_packet.encode(a.view());
    whole.encode(b.view());
    EXPECT_TRUE(codes::stripes_equal(a.view(), b.view()));
}

}  // namespace
