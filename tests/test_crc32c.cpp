#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::integrity;

std::uint32_t crc_str(const char* s) {
    return crc32c(reinterpret_cast<const std::byte*>(s), std::strlen(s));
}

TEST(Crc32c, CheckValue) {
    // The universal CRC32C check value — any conforming implementation
    // must reproduce it.
    EXPECT_EQ(crc_str("123456789"), 0xE3069283u);
}

TEST(Crc32c, KnownVectors) {
    // RFC 3720 (iSCSI) appendix test patterns.
    const std::vector<std::byte> zeros(32, std::byte{0});
    EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
    const std::vector<std::byte> ones(32, std::byte{0xff});
    EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
    EXPECT_EQ(crc32c(zeros.data(), 0), 0u);
}

TEST(Crc32c, SeedChainsStreams) {
    util::xoshiro256 rng(1);
    std::vector<std::byte> buf(1000);
    rng.fill(buf);
    const std::uint32_t whole = crc32c(buf.data(), buf.size());
    for (const std::size_t split : {0u, 1u, 7u, 64u, 999u, 1000u}) {
        const std::uint32_t first = crc32c(buf.data(), split);
        EXPECT_EQ(crc32c(buf.data() + split, buf.size() - split, first),
                  whole);
    }
}

TEST(Crc32c, SoftwareMatchesHardware) {
    if (!hardware_available()) GTEST_SKIP() << "no CRC32C instruction";
    util::xoshiro256 rng(2);
    std::vector<std::byte> buf(4096 + 9);
    rng.fill(buf);
    // Every tail length crosses the 8-byte kernel boundary differently.
    for (std::size_t n = 0; n <= 70; ++n) {
        EXPECT_EQ(crc32c_software(buf.data(), n),
                  crc32c_hardware(buf.data(), n))
            << "n=" << n;
    }
    const auto seed = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(crc32c_software(buf.data(), buf.size(), seed),
              crc32c_hardware(buf.data(), buf.size(), seed));
    // Misaligned starts exercise the byte head/tail of the hardware loop.
    for (std::size_t skew = 1; skew < 8; ++skew) {
        EXPECT_EQ(crc32c_software(buf.data() + skew, 100),
                  crc32c_hardware(buf.data() + skew, 100));
    }
}

TEST(Crc32c, ForceImplPinsDispatch) {
    const crc32c_impl original = active_impl();
    force_impl(crc32c_impl::software);
    EXPECT_EQ(active_impl(), crc32c_impl::software);
    EXPECT_EQ(crc_str("123456789"), 0xE3069283u);
    if (hardware_available()) {
        force_impl(crc32c_impl::hardware);
        EXPECT_EQ(active_impl(), crc32c_impl::hardware);
        EXPECT_EQ(crc_str("123456789"), 0xE3069283u);
    } else {
        // Forcing hardware without support silently stays on software.
        force_impl(crc32c_impl::hardware);
        EXPECT_EQ(active_impl(), crc32c_impl::software);
    }
    force_impl(original);
}

}  // namespace
