#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config cfg() {
    array_config c;
    c.k = 4;
    c.element_size = 256;
    c.stripes = 8;
    c.sector_size = 256;
    return c;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

/// Count stripes whose parity does not match their data.
std::size_t torn_stripes(raid6_array& a) {
    codes::stripe_buffer buf = a.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    std::size_t torn = 0;
    for (std::size_t s = 0; s < a.map().stripes(); ++s) {
        EXPECT_TRUE(a.load_stripe(s, buf.view(), erased));
        EXPECT_TRUE(erased.empty());
        if (!a.code().verify(buf.view())) ++torn;
    }
    return torn;
}

TEST(WriteHole, CleanShutdownLeavesEmptyJournal) {
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 1)));
    ASSERT_TRUE(a.write(777, pattern(5000, 2)));
    EXPECT_EQ(a.journal().size(), 0u);
    EXPECT_EQ(torn_stripes(a), 0u);
}

TEST(WriteHole, PowerLossMidStripeTearsParityAndJournalKnows) {
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 3)));

    // Allow exactly 2 of the 6 strip writes of the next full-stripe write.
    a.simulate_power_loss_after(2);
    const auto fresh = pattern(a.map().stripe_data_size(), 4);
    (void)a.write(0, fresh);  // the "host" believes it succeeded
    EXPECT_FALSE(a.powered());

    a.reboot();
    EXPECT_GE(a.journal().size(), 1u);
    EXPECT_TRUE(a.journal().is_dirty(0));
    EXPECT_GE(torn_stripes(a), 1u);  // the write hole is real
}

TEST(WriteHole, RecoveryResyncsExactlyTheJournaledStripes) {
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 5)));

    a.simulate_power_loss_after(3);
    (void)a.write(a.map().stripe_data_size() * 2, pattern(2000, 6));
    a.reboot();
    ASSERT_GE(a.journal().size(), 1u);

    const std::size_t resynced = a.recover_write_hole();
    EXPECT_GE(resynced, 1u);
    EXPECT_EQ(a.journal().size(), 0u);
    EXPECT_EQ(torn_stripes(a), 0u);

    // After resync the array tolerates double failures again on every
    // stripe (the hazard the write hole creates is exactly that it
    // doesn't).
    a.fail_disk(0);
    a.fail_disk(3);
    std::vector<std::byte> out(a.capacity());
    EXPECT_TRUE(a.read(0, out));
}

TEST(WriteHole, SmallWritePowerLossAlsoJournaled) {
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 7)));

    // A small write does parity RMW then the data write: cutting after 1
    // disk write leaves parity updated but data stale -> torn.
    a.simulate_power_loss_after(1);
    (void)a.write(100, pattern(50, 8));
    a.reboot();
    EXPECT_TRUE(a.journal().is_dirty(0));
    EXPECT_EQ(torn_stripes(a), 1u);
    EXPECT_EQ(a.recover_write_hole(), 1u);
    EXPECT_EQ(torn_stripes(a), 0u);
}

TEST(WriteHole, RecoverySkipsStripesWithUnreadableColumns) {
    // A journaled stripe that ALSO has an unreadable column cannot be
    // re-synced yet: parity must be recomputed from a full set of data
    // columns. recover_write_hole() leaves it journaled (the hazard is
    // still live) and picks it up once the column heals.
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 11)));

    a.simulate_power_loss_after(1);
    (void)a.write(100, pattern(50, 12));  // tears stripe 0
    a.reboot();
    ASSERT_TRUE(a.journal().is_dirty(0));

    // Stripe 0's P strip also becomes unreadable (latent error).
    const auto loc = a.map().locate(0, a.code().p_column());
    a.disk(loc.disk).inject_latent_error(loc.offset, 16);

    EXPECT_EQ(a.recover_write_hole(), 0u);
    EXPECT_TRUE(a.journal().is_dirty(0));  // still armed, not forgotten

    // The sector heals (drive remap / rewrite); recovery now completes.
    a.disk(loc.disk).clear_latent_errors();
    EXPECT_EQ(a.recover_write_hole(), 1u);
    EXPECT_EQ(a.journal().size(), 0u);
    EXPECT_EQ(torn_stripes(a), 0u);
}

/// A disk holding a data column of stripe 0 (not its P or Q strip), plus a
/// different, still-online data column of the same stripe to write to.
struct bail_setup {
    std::uint32_t pdisk, qdisk, victim;
    std::size_t addr;  ///< linear address inside the online data column
};

bail_setup pick_bail_setup(const raid6_array& a) {
    bail_setup s{};
    s.pdisk = a.map().locate(0, a.code().p_column()).disk;
    s.qdisk = a.map().locate(0, a.code().q_column()).disk;
    while (s.victim == s.pdisk || s.victim == s.qdisk) ++s.victim;
    std::uint32_t wcol = 0;
    while (wcol == a.map().column_of_disk(0, s.victim)) ++wcol;
    s.addr = static_cast<std::size_t>(wcol) * a.map().strip_size();
    return s;
}

TEST(WriteHole, MidApplyBailWithErasedDataColumnDoesNotCorrupt) {
    // A small write validates, starts patching parity, and then the Q
    // patch dies even after retries — while an unrelated data column is
    // erased (failed disk, no spares). The landed P patch must be rolled
    // back before the reconstruct-write fallback decodes the dead column;
    // decoding it from the half-patched parity would splice garbage into
    // the stripe and bake it into both parities.
    raid6_array a(cfg());
    auto data = pattern(a.capacity(), 13);
    ASSERT_TRUE(a.write(0, data));

    const bail_setup s = pick_bail_setup(a);
    a.fail_disk(s.victim);
    for (std::uint64_t i = 0; i < 4; ++i)  // all 1 + 3 retry attempts
        a.disk(s.qdisk).schedule_transient_fault(io_kind::write, i);

    const auto small = pattern(50, 14);
    ASSERT_TRUE(a.write(s.addr, small));
    std::copy(small.begin(), small.end(),
              data.begin() + static_cast<long>(s.addr));
    EXPECT_EQ(a.journal().size(), 0u);  // the fallback completed the write

    // Every byte — including the degraded-decoded dead column — must
    // still agree with the host's view.
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(WriteHole, UntrustedParityAfterFailedRollbackFailsLoudly) {
    // Same mid-apply bail, but the rollback of the landed P patch dies
    // too: the stripe is genuinely torn with a data column missing. The
    // write must fail and leave the stripe journaled — silently decoding
    // the dead column from the torn parity would be the write hole the
    // journal exists to close.
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 15)));

    const bail_setup s = pick_bail_setup(a);
    a.fail_disk(s.victim);
    for (std::uint64_t i = 0; i < 4; ++i)
        a.disk(s.qdisk).schedule_transient_fault(io_kind::write, i);
    for (std::uint64_t i = 1; i < 5; ++i)  // write 0 is the P patch itself
        a.disk(s.pdisk).schedule_transient_fault(io_kind::write, i);

    EXPECT_FALSE(a.write(s.addr, pattern(50, 16)));
    EXPECT_TRUE(a.journal().is_dirty(0));  // hazard recorded, not dropped

    // Downstream the failure stays loud: rebuilding the dead disk refuses
    // to reconstruct the torn stripe from the untrusted parity and reports
    // it failed, instead of writing garbage to the replacement.
    a.disk(s.pdisk).clear_transient_faults();
    a.disk(s.qdisk).clear_transient_faults();
    a.replace_disk(s.victim);
    const std::uint32_t disks[] = {s.victim};
    const rebuild_result r = rebuild_disks(a, disks);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.stripes_failed, 1u);
    EXPECT_EQ(r.first_failed_stripe, 0u);
    EXPECT_EQ(r.stripes_rebuilt, a.map().stripes() - 1);
}

TEST(WriteHole, ScrubWouldMisattributeTornStripe) {
    // Motivating contrast: without the journal, a torn small write looks
    // like silent corruption of whichever column happened to be updated —
    // the scrubber "fixes" it by restoring the OLD data, losing the write.
    // recover_write_hole instead re-syncs parity to the new data.
    raid6_array with_journal(cfg());
    ASSERT_TRUE(with_journal.write(0, pattern(with_journal.capacity(), 9)));
    // Let the parity RMW (2-3 writes) complete and cut before the data
    // element write: P/Q describe the new data, the data is old.
    with_journal.simulate_power_loss_after(2);
    (void)with_journal.write(0, pattern(256, 10));
    with_journal.reboot();
    ASSERT_EQ(torn_stripes(with_journal), 1u);
    with_journal.recover_write_hole();
    EXPECT_EQ(torn_stripes(with_journal), 0u);
    const auto scrubbed = scrub_array(with_journal);
    EXPECT_EQ(scrubbed.uncorrectable, 0u);
    EXPECT_EQ(scrubbed.clean, with_journal.map().stripes());
}

}  // namespace
