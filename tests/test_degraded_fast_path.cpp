#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config cfg() {
    array_config c;
    c.k = 6;  // p = 7, 8 disks
    c.element_size = 512;
    c.stripes = 6;
    c.sector_size = 512;
    return c;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

TEST(DegradedFastPath, SmallReadUsesElementRecovery) {
    raid6_array a(cfg());
    const auto img = pattern(a.capacity(), 1);
    ASSERT_TRUE(a.write(0, img));
    a.fail_disk(3);

    // One-element read hitting the failed disk.
    std::vector<std::byte> out(100);
    const std::size_t addr = 512 * 7;  // somewhere in the first stripe
    ASSERT_TRUE(a.read(addr, out));
    EXPECT_TRUE(std::equal(out.begin(), out.end(),
                           img.begin() + static_cast<long>(addr)));
    // Reads that needed reconstruction went through the element path, not
    // a full-stripe decode.
    EXPECT_EQ(a.stats().degraded_stripe_reads, 0u);
}

TEST(DegradedFastPath, LargeReadStillUsesStripeDecode) {
    raid6_array a(cfg());
    const auto img = pattern(a.capacity(), 2);
    ASSERT_TRUE(a.write(0, img));
    a.fail_disk(2);

    std::vector<std::byte> out(a.map().stripe_data_size());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_TRUE(std::equal(out.begin(), out.end(), img.begin()));
    EXPECT_GT(a.stats().degraded_stripe_reads, 0u);
}

TEST(DegradedFastPath, TwoFailuresFallBackToFullDecode) {
    raid6_array a(cfg());
    const auto img = pattern(a.capacity(), 3);
    ASSERT_TRUE(a.write(0, img));
    a.fail_disk(1);
    a.fail_disk(4);

    // Small read: the element path cannot work (two unknowns per row for
    // some rows), so it must transparently fall back and still be right.
    std::vector<std::byte> out(64);
    for (std::size_t addr : {0ul, 5000ul, 9999ul}) {
        ASSERT_TRUE(a.read(addr, out));
        EXPECT_TRUE(std::equal(out.begin(), out.end(),
                               img.begin() + static_cast<long>(addr)))
            << addr;
    }
}

TEST(DegradedFastPath, EveryElementOfFailedColumnReadable) {
    raid6_array a(cfg());
    const auto img = pattern(a.capacity(), 4);
    ASSERT_TRUE(a.write(0, img));
    a.fail_disk(5);
    const std::size_t elem = a.map().element_size();
    std::vector<std::byte> out(elem);
    for (std::size_t e = 0; e < a.capacity() / elem; ++e) {
        ASSERT_TRUE(a.read(e * elem, out)) << e;
        ASSERT_TRUE(std::equal(out.begin(), out.end(),
                               img.begin() + static_cast<long>(e * elem)))
            << e;
    }
}

TEST(Resilver, HealsParityStripMediaErrors) {
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 5)));

    // Latent errors on both a data strip and a parity strip of stripe 1.
    const auto ploc = a.map().locate(1, a.code().p_column());
    const auto dloc = a.map().locate(1, 2);
    a.disk(ploc.disk).inject_latent_error(ploc.offset, 64);
    a.disk(dloc.disk).inject_latent_error(dloc.offset, 64);
    EXPECT_EQ(a.disk(ploc.disk).latent_error_count() +
                  a.disk(dloc.disk).latent_error_count(),
              2u);

    const std::size_t healed = a.resilver();
    EXPECT_EQ(healed, 2u);
    EXPECT_EQ(a.disk(ploc.disk).latent_error_count(), 0u);
    EXPECT_EQ(a.disk(dloc.disk).latent_error_count(), 0u);
    // Second pass finds nothing.
    EXPECT_EQ(a.resilver(), 0u);
}

}  // namespace
