// Observability layer: histogram bucket math and quantiles, registry
// kind/reference semantics, the Prometheus text exposition and Chrome
// trace JSON golden formats, tracer ring bounding, and the deterministic
// virtual-clock latency contracts — retry backoff surfaces in the
// io_read_ns tail, and submission-queue depth changes the aio completion
// spans while execute spans stay put.
//
// The snapshot-under-concurrency hammers are the TSan targets
// (ctest under the `tsan` preset): exporters snapshot while writers
// mutate, which must stay a data-race-free protocol.
//
// The deep-telemetry additions live here too: the causal-tree acceptance
// test (one host read through a 2-shard volume with a retry renders as
// one connected parent chain in the merged trace), ring-wrap disclosure,
// the flight recorder's wait-free ring, exact SLO window math on the
// virtual clock, the scrape endpoint, and postmortem bundles.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "liberation/aio/queue_pair.hpp"
#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/obs.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/obs/serve.hpp"
#include "liberation/obs/slo.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/io_policy.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/volume/volume.hpp"

namespace {

using namespace liberation;

// ---- histogram -------------------------------------------------------

TEST(ObsHistogram, BucketMath) {
    using h = obs::latency_histogram;
    EXPECT_EQ(h::bucket_of(0), 0u);
    EXPECT_EQ(h::bucket_of(1), 0u);
    EXPECT_EQ(h::bucket_of(2), 1u);
    EXPECT_EQ(h::bucket_of(3), 1u);
    EXPECT_EQ(h::bucket_of(4), 2u);
    EXPECT_EQ(h::bucket_of(1023), 9u);
    EXPECT_EQ(h::bucket_of(1024), 10u);
    EXPECT_EQ(h::bucket_of(~std::uint64_t{0}), h::kBuckets - 1);
    // bucket_upper is the exclusive top: every value lands strictly below
    // its bucket's reported quantile value.
    for (const std::uint64_t v : {1u, 2u, 100u, 4096u, 1000000u}) {
        EXPECT_LT(v, h::bucket_upper(h::bucket_of(v)));
        EXPECT_GE(v, std::uint64_t{1} << h::bucket_of(v));
    }
    EXPECT_EQ(h::bucket_upper(h::kBuckets - 1), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordAndQuantiles) {
    obs::latency_histogram h;
    // 89 fast samples, 9 medium, 2 slow: p50 in the fast bucket, p95 in
    // the medium one, p99 covering the slow tail (quantiles report the
    // smallest bucket upper bound covering at least round(q*count)
    // samples, so the tail must hold more than 1% to move p99).
    for (int i = 0; i < 89; ++i) h.record(100);     // bucket 6, upper 128
    for (int i = 0; i < 9; ++i) h.record(10'000);   // bucket 13, upper 16384
    h.record(1'000'000);                            // bucket 19, upper 2^20
    h.record(1'000'000);
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.sum, 89u * 100 + 9u * 10'000 + 2u * 1'000'000);
    EXPECT_EQ(s.max, 1'000'000u);
    EXPECT_EQ(s.p50, 128u);
    EXPECT_EQ(s.p95, 16'384u);
    EXPECT_EQ(s.p99, std::uint64_t{1} << 20);
    EXPECT_EQ(s.quantile(1.0), std::uint64_t{1} << 20);
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
    const auto s = obs::latency_histogram{}.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50, 0u);
    EXPECT_EQ(s.p99, 0u);
    EXPECT_EQ(s.max, 0u);
}

// ---- registry --------------------------------------------------------

TEST(ObsRegistry, StableReferencesAndKindMismatch) {
    obs::registry r;
    obs::counter& c1 = r.get_counter("ops_total", "ops");
    obs::counter& c2 = r.get_counter("ops_total");
    EXPECT_EQ(&c1, &c2);  // same heap node on re-registration
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_THROW((void)r.get_gauge("ops_total"), std::logic_error);
    EXPECT_THROW((void)r.get_histogram("ops_total"), std::logic_error);
}

TEST(ObsRegistry, MetricsTextGoldenFormat) {
    obs::registry r;
    r.get_gauge("depth").set(-2);
    obs::latency_histogram& h = r.get_histogram("lat_ns", "op latency");
    h.record(100);
    h.record(100);
    r.get_counter("ops_total", "ops completed").inc(7);
    // Families render in name order with the export prefix; histograms as
    // summaries with quantile labels plus _sum/_count and a _max gauge.
    const std::string expect =
        "# TYPE liberation_depth gauge\n"
        "liberation_depth -2\n"
        "# HELP liberation_lat_ns op latency\n"
        "# TYPE liberation_lat_ns summary\n"
        "liberation_lat_ns{quantile=\"0.5\"} 128\n"
        "liberation_lat_ns{quantile=\"0.95\"} 128\n"
        "liberation_lat_ns{quantile=\"0.99\"} 128\n"
        "liberation_lat_ns_sum 200\n"
        "liberation_lat_ns_count 2\n"
        "# TYPE liberation_lat_ns_max gauge\n"
        "liberation_lat_ns_max 100\n"
        "# HELP liberation_ops_total ops completed\n"
        "# TYPE liberation_ops_total counter\n"
        "liberation_ops_total 7\n";
    EXPECT_EQ(r.metrics_text(), expect);
}

TEST(ObsHub, CollectorRunsBeforeExport) {
    obs::hub h;
    std::atomic<std::uint64_t> source{41};
    h.add_collector([&] {
        h.metrics().get_counter("mirrored_total")
            .mirror(source.load(std::memory_order_relaxed));
    });
    source.store(42);
    const std::string text = h.metrics_text();
    EXPECT_NE(text.find("liberation_mirrored_total 42\n"), std::string::npos);
}

// ---- tracer ----------------------------------------------------------

TEST(ObsTracer, BoundedRingKeepsFreshestAndOrders) {
    obs::tracer t(4);
    t.enable();
    // 10 events through a 4-slot ring: only the last 4 survive, ordered.
    for (std::uint64_t i = 0; i < 10; ++i) t.record("e", "t", 100 - i, 1);
    EXPECT_EQ(t.size(), 4u);
    const auto events = t.ordered();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
    }
    // Timestamps descended 100..91, so the freshest four are ts 91..94.
    EXPECT_EQ(events.front().ts_ns, 91u);
    EXPECT_EQ(events.back().ts_ns, 94u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
}

TEST(ObsTracer, TraceJsonGoldenFormat) {
    obs::tracer t;
    t.record("raid.write", "raid", 1500, 2250);
    const std::string json = t.trace_json();
    // Chrome trace_event complete-events: ts/dur in microseconds with the
    // nanosecond remainder as fractions. (The tid is this thread's
    // process-wide registration number, so only everything up to it is
    // golden-comparable.)
    const std::string prefix =
        "{\"traceEvents\":[{\"name\":\"raid.write\",\"cat\":\"raid\","
        "\"ph\":\"X\",\"ts\":1.500,\"dur\":2.250,\"pid\":1,\"tid\":";
    ASSERT_GE(json.size(), prefix.size());
    EXPECT_EQ(json.substr(0, prefix.size()), prefix);
    EXPECT_EQ(json.substr(json.size() - 3), "}]}");
}

// ---- virtual-clock spans --------------------------------------------

TEST(ObsSpan, VirtualClockSpanIsExact) {
    raid::virtual_clock clock;
    obs::hub h;
    h.set_clock(&raid::virtual_clock_now_ns, &clock);
    obs::latency_histogram& hist = h.metrics().get_histogram("span_ns");
    {
        obs::timed_span span(h, &hist, "test.span");
        clock.advance(123);  // microseconds
    }
    const auto s = hist.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.sum, 123'000u);
    EXPECT_EQ(s.max, 123'000u);
}

// Retry backoff is the only thing that advances an array's virtual clock,
// so on a virtual-time hub a mediated read's span IS its backoff: the
// distribution is exactly "zero for clean reads, the exponential-backoff
// schedule for retried ones", and the retry tail surfaces in p99 while
// p50 stays in the zero bucket. The histogram's total must equal the
// policy's own backoff accounting converted to nanoseconds.
TEST(ObsArray, RetryBackoffVisibleInReadTail) {
    raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 8;
    cfg.sector_size = 512;
    cfg.io_queue_depth = 1;
    cfg.obs_virtual_time = true;
    raid::raid6_array a(cfg);

    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(7);
    rng.fill(image);
    ASSERT_TRUE(a.write(0, image));  // clean fill: no faults armed yet

    for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
        a.disk(d).set_transient_fault_rates(0.3, 0.0, 1000 + d);
    }
    std::vector<std::byte> buf(a.map().stripe_data_size());
    for (int i = 0; i < 200; ++i) {
        const std::size_t addr =
            rng.next_below(a.capacity() - buf.size() + 1);
        ASSERT_TRUE(a.read(addr, buf));
    }

    const raid::io_policy_stats io = a.io_stats();
    ASSERT_GT(io.retries, 0u);
    const auto hists = a.obs().histogram_snapshots();
    const obs::latency_histogram::snapshot_t* read_hist = nullptr;
    for (const auto& [name, snap] : hists) {
        if (name == "io_read_ns") read_hist = &snap;
    }
    ASSERT_NE(read_hist, nullptr);
    EXPECT_GT(read_hist->count, 0u);
    // Every nanosecond in the read histogram is backoff, and all backoff
    // was charged by reads (write fault rate is zero after the fill).
    EXPECT_EQ(read_hist->sum, io.backoff_us * 1000);
    // Most mediated reads never retried: the median sits in the zero
    // bucket. The first retry waits initial_backoff_us = 100us, so the
    // tail quantile must report at least that bucket's upper bound.
    EXPECT_LE(read_hist->p50, 2u);
    EXPECT_GE(read_hist->p99, obs::latency_histogram::bucket_upper(
                                  obs::latency_histogram::bucket_of(100'000)));
    EXPECT_GE(read_hist->max, 100'000u);
}

// ---- aio stage latencies --------------------------------------------

// Backend that charges a fixed virtual service time per transfer.
class metered_backend : public aio::io_backend {
public:
    metered_backend(raid::virtual_clock& clock, std::uint64_t us)
        : clock_(clock), us_(us) {}
    raid::io_status execute(const aio::io_desc&) override {
        clock_.advance(us_);
        return raid::io_status::ok;
    }

private:
    raid::virtual_clock& clock_;
    std::uint64_t us_;
};

// Submit-to-completion latency depends on the in-flight window while
// execute latency does not: at depth 1 every request runs the moment it
// is submitted, at depth 8 the last request of a window waits behind
// seven 10us transfers. Deterministic on the virtual clock.
TEST(ObsAio, QueueDepthShapesCompletionSpans) {
    const auto run = [](std::size_t depth) {
        raid::virtual_clock clock;
        obs::hub hub;
        hub.set_clock(&raid::virtual_clock_now_ns, &clock);
        metered_backend backend(clock, 10);  // 10us per transfer
        aio::aio_config cfg;
        cfg.queue_depth = depth;
        cfg.obs = &hub;
        aio::queue_pair qp(backend, /*disks=*/1, cfg);
        std::byte block[16] = {};
        for (int i = 0; i < 8; ++i) {
            aio::io_desc d;
            d.disk = 0;
            d.kind = aio::op_kind::write;  // writes never coalesce
            d.offset = static_cast<std::size_t>(i) * sizeof block;
            d.data = block;
            d.len = sizeof block;
            qp.submit(d);
        }
        qp.drain();
        obs::latency_histogram::snapshot_t complete{}, execute{};
        for (const auto& [name, snap] : hub.histogram_snapshots()) {
            if (name == "aio_complete_ns") complete = snap;
            if (name == "aio_execute_ns") execute = snap;
        }
        return std::pair{complete, execute};
    };

    const auto [complete1, execute1] = run(1);
    const auto [complete8, execute8] = run(8);
    ASSERT_EQ(complete1.count, 8u);
    ASSERT_EQ(complete8.count, 8u);
    // Execute cost is 10us per transfer regardless of depth.
    EXPECT_EQ(execute1.max, 10'000u);
    EXPECT_EQ(execute8.max, 10'000u);
    // Depth 1: completion == its own transfer. Depth 8: the window's last
    // request completes after all eight transfers.
    EXPECT_EQ(complete1.max, 10'000u);
    EXPECT_EQ(complete8.max, 80'000u);
    EXPECT_EQ(complete8.sum, (10 + 20 + 30 + 40 + 50 + 60 + 70 + 80) * 1000u);
    EXPECT_GT(complete8.p50, complete1.p50);
}

// ---- snapshot coherence under concurrency (TSan target) -------------

// One thread mutates an array (writes, reads, a failure + rebuild) while
// another continuously snapshots every exporter surface. The contract
// (docs/STATS.md): individually-exact relaxed counters, no torn values,
// no data races — TSan proves the last part when run under the `tsan`
// preset.
TEST(ObsConcurrency, SnapshotWhileMutatingHammer) {
    raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 16;
    cfg.sector_size = 512;
    cfg.hot_spares = 1;
    raid::raid6_array a(cfg);
    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(11);
    rng.fill(image);
    ASSERT_TRUE(a.write(0, image));

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        std::uint64_t last_writes = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const raid::array_stats s = a.stats();
            // Each counter is individually monotonic across snapshots.
            EXPECT_GE(s.full_stripe_writes, last_writes);
            last_writes = s.full_stripe_writes;
            const std::string text = a.obs().metrics_text();
            EXPECT_NE(text.find("liberation_raid_full_stripe_writes_total"),
                      std::string::npos);
            (void)a.obs().histogram_snapshots();
        }
    });

    std::vector<std::byte> buf(a.map().stripe_data_size());
    for (int i = 0; i < 400; ++i) {
        const std::size_t addr =
            rng.next_below(a.capacity() - buf.size() + 1);
        if (i % 3 == 0) {
            rng.fill(buf);
            ASSERT_TRUE(a.write(addr, buf));
        } else {
            ASSERT_TRUE(a.read(addr, buf));
        }
        if (i == 200) a.fail_disk(2);  // spare promotion + rebuild traffic
    }
    a.drain_background_rebuild();
    stop.store(true);
    sampler.join();

    // The sampler saw live values; the final snapshot must reconcile.
    const raid::array_stats end = a.stats();
    EXPECT_GE(end.spares_promoted, 1u);
    EXPECT_GE(end.rebuilds_completed, 1u);
}

// ---- causal trace context -------------------------------------------

// One exported span with its (trace, span, parent) args, pulled out of
// the fixed snprintf rendering — no JSON library needed.
struct parsed_span {
    std::string name;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    bool has_ctx = false;
};

std::vector<parsed_span> parse_ctx_spans(const std::string& json) {
    std::vector<parsed_span> out;
    std::size_t pos = 0;
    while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
        const std::size_t name_begin = pos + 9;
        const std::size_t name_end = json.find('"', name_begin);
        std::size_t next = json.find("{\"name\":\"", name_begin);
        if (next == std::string::npos) next = json.size();
        parsed_span s;
        s.name = json.substr(name_begin, name_end - name_begin);
        const std::string chunk = json.substr(pos, next - pos);
        const std::size_t a = chunk.find("\"args\":{\"trace\":\"");
        if (a != std::string::npos &&
            chunk.find("\"ph\":\"X\"") != std::string::npos) {
            s.has_ctx = true;
            s.trace = std::strtoull(chunk.c_str() + a + 17, nullptr, 10);
            const std::size_t sp = chunk.find("\"span\":\"", a);
            s.span = std::strtoull(chunk.c_str() + sp + 8, nullptr, 10);
            const std::size_t pa = chunk.find("\"parent\":\"", a);
            s.parent = std::strtoull(chunk.c_str() + pa + 10, nullptr, 10);
        }
        out.push_back(std::move(s));
        pos = next;
    }
    return out;
}

// The acceptance contract for the deep-telemetry layer: a host read
// through a 2-shard volume whose degraded shard retries inside an aio
// fragment must render as ONE connected causal tree in the merged trace
// — io.retry.read up through aio.execute, the array read span, the
// dispatcher leg, to a volume_read root with parent 0, all sharing the
// retry's trace id.
TEST(ObsTrace, CausalTreeConnectsVolumeReadToAioRetry) {
    volume::volume_config vcfg;
    vcfg.shards = 2;
    vcfg.shard.k = 4;
    vcfg.shard.element_size = 512;
    vcfg.shard.stripes = 8;
    vcfg.shard.sector_size = 512;
    vcfg.shard.hot_spares = 0;  // stay degraded: no spare to promote
    vcfg.shard.io_queue_depth = 4;
    vcfg.shard.obs_virtual_time = true;
    vcfg.chunk_stripes = 1;
    vcfg.threaded_dispatch = true;
    volume::volume v(vcfg);

    std::vector<std::byte> image(v.capacity());
    util::xoshiro256 rng(21);
    rng.fill(image);
    ASSERT_TRUE(v.write(0, image));

    v.set_tracing(true);
    // Shard 0 degraded plus transient read faults on the survivors:
    // every read of it reconstructs through the aio engine and soon
    // retries inside a fragment.
    v.shard(0).fail_disk(1);
    for (std::uint32_t d = 0; d < v.shard(0).disk_count(); ++d) {
        v.shard(0).disk(d).set_transient_fault_rates(0.15, 0.0, 500 + d);
    }

    // Two chunks = both shards: the host op fans out on the dispatcher
    // threads, so the tree crosses a thread hop on its way down.
    std::vector<std::byte> buf(2 * v.chunk_bytes());
    for (int i = 0; i < 300 && v.shard(0).io_stats().retries == 0; ++i) {
        (void)v.read(0, buf);
    }
    ASSERT_GT(v.shard(0).io_stats().retries, 0u);

    const std::string json = v.trace_json();
    const std::vector<parsed_span> spans = parse_ctx_spans(json);
    std::unordered_map<std::uint64_t, const parsed_span*> by_span;
    for (const parsed_span& s : spans) {
        if (s.has_ctx && s.span != 0) by_span.emplace(s.span, &s);
    }

    bool found = false;
    for (const parsed_span& s : spans) {
        if (!s.has_ctx || s.name != "io.retry.read") continue;
        bool saw_aio = false;
        bool saw_raid = false;
        bool saw_dispatch = false;
        const parsed_span* cur = &s;
        std::string root_name;
        for (int hops = 0; hops < 32 && cur->parent != 0; ++hops) {
            const auto it = by_span.find(cur->parent);
            if (it == by_span.end()) break;
            EXPECT_EQ(it->second->trace, s.trace);  // one tree end to end
            cur = it->second;
            if (cur->name == "aio.execute") saw_aio = true;
            if (cur->name.rfind("raid.", 0) == 0) saw_raid = true;
            if (cur->name == "volume.shard_dispatch") saw_dispatch = true;
            root_name = cur->name;
        }
        if (saw_aio && saw_raid && saw_dispatch && cur->parent == 0 &&
            root_name == "volume_read") {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found);
    // The merged export names both processes.
    EXPECT_NE(json.find("\\\"0\\\""), std::string::npos);
    EXPECT_NE(json.find("volume"), std::string::npos);
}

// ---- ring-wrap disclosure -------------------------------------------

TEST(ObsTracer, RingWrapDisclosedInTraceAndCounter) {
    obs::hub h;
    h.trace().enable();
    // One thread = one ring of the default 8192 slots: 9000 records wrap
    // it by exactly 808.
    for (std::uint64_t i = 0; i < 9000; ++i) {
        h.trace().record("e", "t", i, 1);
    }
    EXPECT_EQ(h.trace().dropped(), 808u);
    const std::string json = h.trace().trace_json();
    EXPECT_NE(json.find("obs.spans_dropped"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":808"), std::string::npos);
    const std::string text = h.metrics_text();
    EXPECT_NE(text.find("liberation_obs_spans_dropped_total 808"),
              std::string::npos);
}

// ---- flight recorder ------------------------------------------------

TEST(ObsFlightRecorder, WrapKeepsNewestInOrder) {
    auto& fr = obs::flight_recorder::instance();
    fr.reset();
    const std::uint64_t n = obs::flight_recorder::kCapacity + 100;
    for (std::uint64_t i = 0; i < n; ++i) {
        fr.record(obs::fr_kind::intent_mark, i, 7, i);
    }
    EXPECT_EQ(fr.total(), n);
    EXPECT_EQ(fr.dropped(), 100u);
    const std::vector<obs::fr_record> snap = fr.snapshot();
    ASSERT_EQ(snap.size(), obs::flight_recorder::kCapacity);
    // The oldest 100 fell off; what's left is gapless and ordered.
    EXPECT_EQ(snap.front().ts_ns, 100u);
    EXPECT_EQ(snap.back().ts_ns, n - 1);
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].ts_ns, snap[i - 1].ts_ns + 1);
    }
    EXPECT_EQ(snap.front().a, 7u);
    EXPECT_EQ(snap.front().kind, obs::fr_kind::intent_mark);
    EXPECT_NE(fr.text().find("intent_mark"), std::string::npos);
    fr.reset();
    EXPECT_EQ(fr.total(), 0u);
}

TEST(ObsFlightRecorder, CapturesAmbientTraceId) {
    auto& fr = obs::flight_recorder::instance();
    fr.reset();
    {
        obs::trace_scope scope(obs::trace_context{777, 9});
        fr.record(obs::fr_kind::disk_tripped, 1, 2);
    }
    fr.record(obs::fr_kind::disk_tripped, 2, 3);
    const auto snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].trace_id, 777u);
    EXPECT_EQ(snap[1].trace_id, 0u);
    fr.reset();
}

// ---- SLO window math ------------------------------------------------

TEST(ObsSlo, WindowMathExactOnVirtualClock) {
    raid::virtual_clock clock;
    obs::hub h;
    h.set_clock(&raid::virtual_clock_now_ns, &clock);
    obs::latency_histogram& lat = h.metrics().get_histogram("read_ns");
    obs::counter& errs = h.metrics().get_counter("errs_total");
    obs::counter& ops = h.metrics().get_counter("ops_total");

    std::vector<obs::slo_objective> objs(2);
    objs[0].name = "read_p99";
    objs[0].kind = obs::slo_objective::kind_t::latency_quantile;
    objs[0].source = "read_ns";
    objs[0].threshold_ns = 1024;  // buckets through upper 1024 are good
    objs[0].budget = 0.25;
    objs[1].name = "err_rate";
    objs[1].kind = obs::slo_objective::kind_t::event_ratio;
    objs[1].source = "errs_total";
    objs[1].denominator = "ops_total";
    objs[1].budget = 0.0;  // any error pages

    obs::slo_engine slo(h, objs, /*window_ns=*/1'000'000);
    ops.inc(10);
    slo.evaluate();  // first frame is the baseline: nothing can violate
    EXPECT_TRUE(slo.all_ok());
    EXPECT_FALSE(slo.ever_violated());

    // 3 good + 1 bad = bad fraction exactly at the 0.25 budget: burn
    // rate 1.0 is *at* budget, not over it.
    for (int i = 0; i < 3; ++i) lat.record(100);
    lat.record(10'000);
    ops.inc(10);
    clock.advance(100);  // microseconds
    const auto& s2 = slo.evaluate();
    EXPECT_EQ(s2[0].window_total, 4u);
    EXPECT_EQ(s2[0].window_bad, 1u);
    EXPECT_DOUBLE_EQ(s2[0].burn_rate, 1.0);
    EXPECT_FALSE(s2[0].violated);
    EXPECT_EQ(s2[1].window_total, 10u);
    EXPECT_EQ(s2[1].window_bad, 0u);
    EXPECT_FALSE(slo.ever_violated());

    // One more bad sample tips it: 2/5 bad against a 0.25 budget burns
    // at 1.6; one error against a zero budget pages immediately.
    lat.record(10'000);
    errs.inc(1);
    ops.inc(10);
    clock.advance(100);
    const auto& s3 = slo.evaluate();
    EXPECT_EQ(s3[0].window_total, 5u);
    EXPECT_EQ(s3[0].window_bad, 2u);
    EXPECT_DOUBLE_EQ(s3[0].burn_rate, 0.4 / 0.25);
    EXPECT_TRUE(s3[0].violated);
    EXPECT_EQ(s3[1].window_bad, 1u);
    EXPECT_TRUE(s3[1].violated);
    EXPECT_TRUE(slo.ever_violated());
    EXPECT_FALSE(slo.all_ok());

    // Slide past the window with no new traffic: the burn clears but the
    // sticky verdict does not.
    clock.advance(2000);
    const auto& s4 = slo.evaluate();
    EXPECT_EQ(s4[0].window_total, 0u);
    EXPECT_FALSE(s4[0].violated);
    EXPECT_FALSE(s4[1].violated);
    EXPECT_TRUE(slo.all_ok());
    EXPECT_TRUE(slo.ever_violated());

    const std::string text = h.metrics_text();
    EXPECT_NE(
        text.find("liberation_slo_burn_rate_milli{objective=\"read_p99\"}"),
        std::string::npos);
    EXPECT_NE(text.find("liberation_slo_violated{objective=\"err_rate\"} 0"),
              std::string::npos);
    EXPECT_NE(slo.text().find("slo read_p99:"), std::string::npos);
}

// ---- multi-writer hammer (TSan target) ------------------------------

// Four threads append to the flight recorder and the tracer while the
// main thread snapshots, renders, and exports everything. TSan (the
// `tsan` ctest preset) proves the wait-free ring protocol and the tracer
// flush stay race-free; release builds assert the structural invariants.
TEST(ObsConcurrency, FlightRecorderAndTracerHammer) {
    auto& fr = obs::flight_recorder::instance();
    fr.reset();
    obs::hub h;
    h.trace().enable();

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&h, &fr, &stop, w] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                fr.record(obs::fr_kind::hedge_issued, ++i,
                          static_cast<std::uint32_t>(w));
                obs::timed_span span(h, nullptr, "hammer.span", "test");
                h.trace().record("hammer.leaf", "test", i, 0);
            }
        });
    }
    // Keep reading until the writers have wrapped the ring at least once,
    // so snapshots race live overwrites, not a quiet buffer.
    for (int r = 0;
         r < 100 || fr.total() <= obs::flight_recorder::kCapacity; ++r) {
        const auto snap = fr.snapshot();
        EXPECT_LE(snap.size(), obs::flight_recorder::kCapacity);
        for (const obs::fr_record& rec : snap) {
            EXPECT_EQ(rec.kind, obs::fr_kind::hedge_issued);
            EXPECT_LT(rec.a, 4u);
        }
        (void)fr.text();
        (void)h.trace().trace_json();
        (void)h.metrics_text();
    }
    stop.store(true);
    for (std::thread& t : writers) t.join();
    EXPECT_GT(fr.total(), 0u);
    fr.reset();
}

// ---- scrape endpoint ------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    ssize_t off = 0;
    while (off < static_cast<ssize_t>(req.size())) {
        const ssize_t n = ::write(fd, req.data() + off, req.size() - off);
        if (n <= 0) break;
        off += n;
    }
    std::string resp;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) {
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

TEST(ObsServe, RoutesAndBoundedServe) {
    obs::scrape_handlers handlers;
    handlers.metrics = [] {
        return std::string("# TYPE liberation_up gauge\nliberation_up 1\n");
    };
    handlers.trace = [] { return std::string("{\"traceEvents\":[]}"); };
    obs::scrape_server srv;
    ASSERT_TRUE(srv.listen(0, handlers));  // kernel-assigned port
    ASSERT_NE(srv.port(), 0);
    std::thread server([&srv] { EXPECT_EQ(srv.serve(4), 4u); });

    const std::string m = http_get(srv.port(), "/metrics");
    EXPECT_NE(m.find("200"), std::string::npos);
    EXPECT_NE(m.find("liberation_up 1"), std::string::npos);
    const std::string hz = http_get(srv.port(), "/healthz");
    EXPECT_NE(hz.find("ok"), std::string::npos);  // default handler
    const std::string tr = http_get(srv.port(), "/trace");
    EXPECT_NE(tr.find("traceEvents"), std::string::npos);
    const std::string nf = http_get(srv.port(), "/nope");
    EXPECT_NE(nf.find("404"), std::string::npos);
    server.join();  // serve() returned after exactly 4 connections
}

// ---- postmortem bundles ---------------------------------------------

TEST(ObsPostmortem, WriteBundleAndAutoTripPoint) {
    namespace fs = std::filesystem;
    const fs::path root = fs::temp_directory_path() / "liberation_obs_pm";
    fs::remove_all(root);
    auto& fr = obs::flight_recorder::instance();
    fr.reset();
    fr.record(obs::fr_kind::mount_refused, 5, 3, 1);

    obs::postmortem_bundle b;
    b.reason = "unit";
    b.metrics_text = "# snapshot\n";
    b.slo_text = "slo x: total=1 bad=0\n";
    const std::string dir =
        obs::write_postmortem((root / "manual").string(), b);
    ASSERT_FALSE(dir.empty());
    EXPECT_TRUE(fs::exists(fs::path(dir) / "MANIFEST.json"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "flight_recorder.log"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "metrics.prom"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "slo.txt"));
    // Empty sections are skipped and the manifest lists only real files.
    EXPECT_FALSE(fs::exists(fs::path(dir) / "trace.json"));
    EXPECT_FALSE(fs::exists(fs::path(dir) / "census.txt"));
    std::ifstream in(fs::path(dir) / "flight_recorder.log");
    const std::string log((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    EXPECT_NE(log.find("mount_refused"), std::string::npos);
    std::ifstream min(fs::path(dir) / "MANIFEST.json");
    const std::string manifest((std::istreambuf_iterator<char>(min)),
                               std::istreambuf_iterator<char>());
    EXPECT_NE(manifest.find("\"reason\":\"unit\""), std::string::npos);
    EXPECT_NE(manifest.find("slo.txt"), std::string::npos);
    EXPECT_EQ(manifest.find("trace.json"), std::string::npos);

    // The automatic trip point is env-gated: a no-op unless
    // LIBERATION_POSTMORTEM_DIR points somewhere.
    unsetenv("LIBERATION_POSTMORTEM_DIR");
    EXPECT_TRUE(obs::auto_postmortem("unit", nullptr).empty());
    setenv("LIBERATION_POSTMORTEM_DIR", (root / "auto").c_str(), 1);
    obs::hub h;
    const std::string adir = obs::auto_postmortem("unit", &h);
    ASSERT_FALSE(adir.empty());
    EXPECT_NE(adir.find("unit-"), std::string::npos);
    EXPECT_TRUE(fs::exists(fs::path(adir) / "MANIFEST.json"));
    // The hub filled the empty metrics section.
    EXPECT_TRUE(fs::exists(fs::path(adir) / "metrics.prom"));
    unsetenv("LIBERATION_POSTMORTEM_DIR");
    fr.reset();
    fs::remove_all(root);
}

}  // namespace
