// Observability layer: histogram bucket math and quantiles, registry
// kind/reference semantics, the Prometheus text exposition and Chrome
// trace JSON golden formats, tracer ring bounding, and the deterministic
// virtual-clock latency contracts — retry backoff surfaces in the
// io_read_ns tail, and submission-queue depth changes the aio completion
// spans while execute spans stay put.
//
// The snapshot-under-concurrency hammer at the end is the TSan target
// (ctest under the `tsan` preset): exporters snapshot while a writer
// mutates, which must stay a data-race-free (relaxed-atomic) protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "liberation/aio/queue_pair.hpp"
#include "liberation/obs/obs.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/io_policy.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;

// ---- histogram -------------------------------------------------------

TEST(ObsHistogram, BucketMath) {
    using h = obs::latency_histogram;
    EXPECT_EQ(h::bucket_of(0), 0u);
    EXPECT_EQ(h::bucket_of(1), 0u);
    EXPECT_EQ(h::bucket_of(2), 1u);
    EXPECT_EQ(h::bucket_of(3), 1u);
    EXPECT_EQ(h::bucket_of(4), 2u);
    EXPECT_EQ(h::bucket_of(1023), 9u);
    EXPECT_EQ(h::bucket_of(1024), 10u);
    EXPECT_EQ(h::bucket_of(~std::uint64_t{0}), h::kBuckets - 1);
    // bucket_upper is the exclusive top: every value lands strictly below
    // its bucket's reported quantile value.
    for (const std::uint64_t v : {1u, 2u, 100u, 4096u, 1000000u}) {
        EXPECT_LT(v, h::bucket_upper(h::bucket_of(v)));
        EXPECT_GE(v, std::uint64_t{1} << h::bucket_of(v));
    }
    EXPECT_EQ(h::bucket_upper(h::kBuckets - 1), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordAndQuantiles) {
    obs::latency_histogram h;
    // 89 fast samples, 9 medium, 2 slow: p50 in the fast bucket, p95 in
    // the medium one, p99 covering the slow tail (quantiles report the
    // smallest bucket upper bound covering at least round(q*count)
    // samples, so the tail must hold more than 1% to move p99).
    for (int i = 0; i < 89; ++i) h.record(100);     // bucket 6, upper 128
    for (int i = 0; i < 9; ++i) h.record(10'000);   // bucket 13, upper 16384
    h.record(1'000'000);                            // bucket 19, upper 2^20
    h.record(1'000'000);
    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.sum, 89u * 100 + 9u * 10'000 + 2u * 1'000'000);
    EXPECT_EQ(s.max, 1'000'000u);
    EXPECT_EQ(s.p50, 128u);
    EXPECT_EQ(s.p95, 16'384u);
    EXPECT_EQ(s.p99, std::uint64_t{1} << 20);
    EXPECT_EQ(s.quantile(1.0), std::uint64_t{1} << 20);
}

TEST(ObsHistogram, EmptySnapshotIsZero) {
    const auto s = obs::latency_histogram{}.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p50, 0u);
    EXPECT_EQ(s.p99, 0u);
    EXPECT_EQ(s.max, 0u);
}

// ---- registry --------------------------------------------------------

TEST(ObsRegistry, StableReferencesAndKindMismatch) {
    obs::registry r;
    obs::counter& c1 = r.get_counter("ops_total", "ops");
    obs::counter& c2 = r.get_counter("ops_total");
    EXPECT_EQ(&c1, &c2);  // same heap node on re-registration
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_THROW((void)r.get_gauge("ops_total"), std::logic_error);
    EXPECT_THROW((void)r.get_histogram("ops_total"), std::logic_error);
}

TEST(ObsRegistry, MetricsTextGoldenFormat) {
    obs::registry r;
    r.get_gauge("depth").set(-2);
    obs::latency_histogram& h = r.get_histogram("lat_ns", "op latency");
    h.record(100);
    h.record(100);
    r.get_counter("ops_total", "ops completed").inc(7);
    // Families render in name order with the export prefix; histograms as
    // summaries with quantile labels plus _sum/_count and a _max gauge.
    const std::string expect =
        "# TYPE liberation_depth gauge\n"
        "liberation_depth -2\n"
        "# HELP liberation_lat_ns op latency\n"
        "# TYPE liberation_lat_ns summary\n"
        "liberation_lat_ns{quantile=\"0.5\"} 128\n"
        "liberation_lat_ns{quantile=\"0.95\"} 128\n"
        "liberation_lat_ns{quantile=\"0.99\"} 128\n"
        "liberation_lat_ns_sum 200\n"
        "liberation_lat_ns_count 2\n"
        "# TYPE liberation_lat_ns_max gauge\n"
        "liberation_lat_ns_max 100\n"
        "# HELP liberation_ops_total ops completed\n"
        "# TYPE liberation_ops_total counter\n"
        "liberation_ops_total 7\n";
    EXPECT_EQ(r.metrics_text(), expect);
}

TEST(ObsHub, CollectorRunsBeforeExport) {
    obs::hub h;
    std::atomic<std::uint64_t> source{41};
    h.add_collector([&] {
        h.metrics().get_counter("mirrored_total")
            .mirror(source.load(std::memory_order_relaxed));
    });
    source.store(42);
    const std::string text = h.metrics_text();
    EXPECT_NE(text.find("liberation_mirrored_total 42\n"), std::string::npos);
}

// ---- tracer ----------------------------------------------------------

TEST(ObsTracer, BoundedRingKeepsFreshestAndOrders) {
    obs::tracer t(4);
    t.enable();
    // 10 events through a 4-slot ring: only the last 4 survive, ordered.
    for (std::uint64_t i = 0; i < 10; ++i) t.record("e", "t", 100 - i, 1);
    EXPECT_EQ(t.size(), 4u);
    const auto events = t.ordered();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
    }
    // Timestamps descended 100..91, so the freshest four are ts 91..94.
    EXPECT_EQ(events.front().ts_ns, 91u);
    EXPECT_EQ(events.back().ts_ns, 94u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
}

TEST(ObsTracer, TraceJsonGoldenFormat) {
    obs::tracer t;
    t.record("raid.write", "raid", 1500, 2250);
    const std::string json = t.trace_json();
    // Chrome trace_event complete-events: ts/dur in microseconds with the
    // nanosecond remainder as fractions. (The tid is this thread's
    // process-wide registration number, so only everything up to it is
    // golden-comparable.)
    const std::string prefix =
        "{\"traceEvents\":[{\"name\":\"raid.write\",\"cat\":\"raid\","
        "\"ph\":\"X\",\"ts\":1.500,\"dur\":2.250,\"pid\":1,\"tid\":";
    ASSERT_GE(json.size(), prefix.size());
    EXPECT_EQ(json.substr(0, prefix.size()), prefix);
    EXPECT_EQ(json.substr(json.size() - 3), "}]}");
}

// ---- virtual-clock spans --------------------------------------------

TEST(ObsSpan, VirtualClockSpanIsExact) {
    raid::virtual_clock clock;
    obs::hub h;
    h.set_clock(&raid::virtual_clock_now_ns, &clock);
    obs::latency_histogram& hist = h.metrics().get_histogram("span_ns");
    {
        obs::timed_span span(h, &hist, "test.span");
        clock.advance(123);  // microseconds
    }
    const auto s = hist.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.sum, 123'000u);
    EXPECT_EQ(s.max, 123'000u);
}

// Retry backoff is the only thing that advances an array's virtual clock,
// so on a virtual-time hub a mediated read's span IS its backoff: the
// distribution is exactly "zero for clean reads, the exponential-backoff
// schedule for retried ones", and the retry tail surfaces in p99 while
// p50 stays in the zero bucket. The histogram's total must equal the
// policy's own backoff accounting converted to nanoseconds.
TEST(ObsArray, RetryBackoffVisibleInReadTail) {
    raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 8;
    cfg.sector_size = 512;
    cfg.io_queue_depth = 1;
    cfg.obs_virtual_time = true;
    raid::raid6_array a(cfg);

    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(7);
    rng.fill(image);
    ASSERT_TRUE(a.write(0, image));  // clean fill: no faults armed yet

    for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
        a.disk(d).set_transient_fault_rates(0.3, 0.0, 1000 + d);
    }
    std::vector<std::byte> buf(a.map().stripe_data_size());
    for (int i = 0; i < 200; ++i) {
        const std::size_t addr =
            rng.next_below(a.capacity() - buf.size() + 1);
        ASSERT_TRUE(a.read(addr, buf));
    }

    const raid::io_policy_stats io = a.io_stats();
    ASSERT_GT(io.retries, 0u);
    const auto hists = a.obs().histogram_snapshots();
    const obs::latency_histogram::snapshot_t* read_hist = nullptr;
    for (const auto& [name, snap] : hists) {
        if (name == "io_read_ns") read_hist = &snap;
    }
    ASSERT_NE(read_hist, nullptr);
    EXPECT_GT(read_hist->count, 0u);
    // Every nanosecond in the read histogram is backoff, and all backoff
    // was charged by reads (write fault rate is zero after the fill).
    EXPECT_EQ(read_hist->sum, io.backoff_us * 1000);
    // Most mediated reads never retried: the median sits in the zero
    // bucket. The first retry waits initial_backoff_us = 100us, so the
    // tail quantile must report at least that bucket's upper bound.
    EXPECT_LE(read_hist->p50, 2u);
    EXPECT_GE(read_hist->p99, obs::latency_histogram::bucket_upper(
                                  obs::latency_histogram::bucket_of(100'000)));
    EXPECT_GE(read_hist->max, 100'000u);
}

// ---- aio stage latencies --------------------------------------------

// Backend that charges a fixed virtual service time per transfer.
class metered_backend : public aio::io_backend {
public:
    metered_backend(raid::virtual_clock& clock, std::uint64_t us)
        : clock_(clock), us_(us) {}
    raid::io_status execute(const aio::io_desc&) override {
        clock_.advance(us_);
        return raid::io_status::ok;
    }

private:
    raid::virtual_clock& clock_;
    std::uint64_t us_;
};

// Submit-to-completion latency depends on the in-flight window while
// execute latency does not: at depth 1 every request runs the moment it
// is submitted, at depth 8 the last request of a window waits behind
// seven 10us transfers. Deterministic on the virtual clock.
TEST(ObsAio, QueueDepthShapesCompletionSpans) {
    const auto run = [](std::size_t depth) {
        raid::virtual_clock clock;
        obs::hub hub;
        hub.set_clock(&raid::virtual_clock_now_ns, &clock);
        metered_backend backend(clock, 10);  // 10us per transfer
        aio::aio_config cfg;
        cfg.queue_depth = depth;
        cfg.obs = &hub;
        aio::queue_pair qp(backend, /*disks=*/1, cfg);
        std::byte block[16] = {};
        for (int i = 0; i < 8; ++i) {
            aio::io_desc d;
            d.disk = 0;
            d.kind = aio::op_kind::write;  // writes never coalesce
            d.offset = static_cast<std::size_t>(i) * sizeof block;
            d.data = block;
            d.len = sizeof block;
            qp.submit(d);
        }
        qp.drain();
        obs::latency_histogram::snapshot_t complete{}, execute{};
        for (const auto& [name, snap] : hub.histogram_snapshots()) {
            if (name == "aio_complete_ns") complete = snap;
            if (name == "aio_execute_ns") execute = snap;
        }
        return std::pair{complete, execute};
    };

    const auto [complete1, execute1] = run(1);
    const auto [complete8, execute8] = run(8);
    ASSERT_EQ(complete1.count, 8u);
    ASSERT_EQ(complete8.count, 8u);
    // Execute cost is 10us per transfer regardless of depth.
    EXPECT_EQ(execute1.max, 10'000u);
    EXPECT_EQ(execute8.max, 10'000u);
    // Depth 1: completion == its own transfer. Depth 8: the window's last
    // request completes after all eight transfers.
    EXPECT_EQ(complete1.max, 10'000u);
    EXPECT_EQ(complete8.max, 80'000u);
    EXPECT_EQ(complete8.sum, (10 + 20 + 30 + 40 + 50 + 60 + 70 + 80) * 1000u);
    EXPECT_GT(complete8.p50, complete1.p50);
}

// ---- snapshot coherence under concurrency (TSan target) -------------

// One thread mutates an array (writes, reads, a failure + rebuild) while
// another continuously snapshots every exporter surface. The contract
// (docs/STATS.md): individually-exact relaxed counters, no torn values,
// no data races — TSan proves the last part when run under the `tsan`
// preset.
TEST(ObsConcurrency, SnapshotWhileMutatingHammer) {
    raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 16;
    cfg.sector_size = 512;
    cfg.hot_spares = 1;
    raid::raid6_array a(cfg);
    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(11);
    rng.fill(image);
    ASSERT_TRUE(a.write(0, image));

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        std::uint64_t last_writes = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const raid::array_stats s = a.stats();
            // Each counter is individually monotonic across snapshots.
            EXPECT_GE(s.full_stripe_writes, last_writes);
            last_writes = s.full_stripe_writes;
            const std::string text = a.obs().metrics_text();
            EXPECT_NE(text.find("liberation_raid_full_stripe_writes_total"),
                      std::string::npos);
            (void)a.obs().histogram_snapshots();
        }
    });

    std::vector<std::byte> buf(a.map().stripe_data_size());
    for (int i = 0; i < 400; ++i) {
        const std::size_t addr =
            rng.next_below(a.capacity() - buf.size() + 1);
        if (i % 3 == 0) {
            rng.fill(buf);
            ASSERT_TRUE(a.write(addr, buf));
        } else {
            ASSERT_TRUE(a.read(addr, buf));
        }
        if (i == 200) a.fail_disk(2);  // spare promotion + rebuild traffic
    }
    a.drain_background_rebuild();
    stop.store(true);
    sampler.join();

    // The sampler saw live values; the final snapshot must reconcile.
    const raid::array_stats end = a.stats();
    EXPECT_GE(end.spares_promoted, 1u);
    EXPECT_GE(end.rebuilds_completed, 1u);
}

}  // namespace
