#include <gtest/gtest.h>

#include "liberation/codes/stripe.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;

TEST(Stripe, GeometryAccessors) {
    codes::stripe_buffer sb(5, 7, 16);
    const auto v = sb.view();
    EXPECT_EQ(v.rows(), 5u);
    EXPECT_EQ(v.cols(), 7u);
    EXPECT_EQ(v.element_size(), 16u);
    EXPECT_EQ(v.strip_size(), 80u);
}

TEST(Stripe, ElementsAreDisjointAndOrdered) {
    codes::stripe_buffer sb(4, 3, 8);
    const auto v = sb.view();
    // Elements within a strip are contiguous and ordered by row.
    for (std::uint32_t c = 0; c < 3; ++c) {
        for (std::uint32_t r = 0; r + 1 < 4; ++r) {
            EXPECT_EQ(v.element(r, c) + 8, v.element(r + 1, c));
        }
    }
    // Writes to one element never alias another.
    v.element(2, 1)[0] = std::byte{0x5A};
    for (std::uint32_t c = 0; c < 3; ++c) {
        for (std::uint32_t r = 0; r < 4; ++r) {
            if (r == 2 && c == 1) continue;
            EXPECT_EQ(v.element(r, c)[0], std::byte{0});
        }
    }
}

TEST(Stripe, FillRandomZeroesParity) {
    util::xoshiro256 rng(1);
    codes::stripe_buffer sb(3, 5, 32);  // 3 data + 2 parity
    sb.fill_random(rng, 3);
    const auto v = sb.view();
    bool any_data_nonzero = false;
    for (std::uint32_t c = 0; c < 3; ++c) {
        for (auto b : v.strip(c)) {
            if (b != std::byte{0}) any_data_nonzero = true;
        }
    }
    EXPECT_TRUE(any_data_nonzero);
    for (std::uint32_t c = 3; c < 5; ++c) {
        for (auto b : v.strip(c)) EXPECT_EQ(b, std::byte{0});
    }
}

TEST(Stripe, CopyAndEquality) {
    util::xoshiro256 rng(2);
    codes::stripe_buffer a(5, 4, 16), b(5, 4, 16);
    a.fill_random(rng, 4);
    EXPECT_FALSE(codes::stripes_equal(a.view(), b.view()));
    codes::copy_stripe(b.view(), a.view());
    EXPECT_TRUE(codes::stripes_equal(a.view(), b.view()));
    b.view().element(4, 3)[15] ^= std::byte{1};
    EXPECT_FALSE(codes::stripes_equal(a.view(), b.view()));
    EXPECT_TRUE(codes::strips_equal(a.view(), b.view(), 0));
    EXPECT_FALSE(codes::strips_equal(a.view(), b.view(), 3));
}

TEST(Stripe, MismatchedGeometryNotEqual) {
    codes::stripe_buffer a(4, 4, 8), b(4, 4, 16), c(5, 4, 8);
    EXPECT_FALSE(codes::stripes_equal(a.view(), b.view()));
    EXPECT_FALSE(codes::stripes_equal(a.view(), c.view()));
}

}  // namespace
