#include <gtest/gtest.h>

#include "liberation/codes/rs_raid6.hpp"
#include "code_testkit.hpp"

namespace {

using liberation::codes::rs_raid6_code;

class RsSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RsSweep, AllErasuresRoundTrip) {
    const rs_raid6_code code(GetParam(), 4);
    code_testkit::check_all_erasures(code, 16, 21);
}

TEST_P(RsSweep, VerifyDetectsCorruption) {
    const rs_raid6_code code(GetParam(), 2);
    code_testkit::check_verify(code, 22);
}

TEST_P(RsSweep, UpdatesKeepParityConsistent) {
    const rs_raid6_code code(GetParam(), 3);
    code_testkit::check_updates(code, 23);
}

TEST_P(RsSweep, Linearity) {
    const rs_raid6_code code(GetParam(), 2);
    code_testkit::check_linearity(code, 24);
}

INSTANTIATE_TEST_SUITE_P(Widths, RsSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 32u, 100u));

TEST(RsRaid6, UpdateAlwaysTouchesExactlyTwo) {
    const rs_raid6_code code(12, 2);
    auto stripe = test_support::make_encoded_stripe(code, 8, 5);
    const std::vector<std::byte> delta(8, std::byte{0x5A});
    for (std::uint32_t col = 0; col < 12; ++col) {
        EXPECT_EQ(code.apply_update(stripe.view(), 0, col, delta), 2u);
    }
}

TEST(RsRaid6, SingleRowCodewords) {
    const rs_raid6_code code(5, 1);
    EXPECT_EQ(code.rows(), 1u);
    code_testkit::check_all_erasures(code, 64, 31);
}

TEST(RsRaid6, LargeWidth) {
    // Beyond any prime-based array code width at w=1: k = 200 disks.
    const rs_raid6_code code(200, 1);
    auto ref = test_support::make_encoded_stripe(code, 16, 41);
    const std::vector<std::uint32_t> pat{7, 150};
    liberation::codes::stripe_buffer broke(1, 202, 16);
    liberation::codes::copy_stripe(broke.view(), ref.view());
    test_support::trash_columns(broke.view(), pat, 42);
    code.decode(broke.view(), pat);
    EXPECT_TRUE(liberation::codes::stripes_equal(broke.view(), ref.view()));
}

}  // namespace
