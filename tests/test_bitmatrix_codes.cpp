#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/bitmatrix_code.hpp"
#include "liberation/bitmatrix/liberation_matrix.hpp"
#include "liberation/codes/rs_raid6.hpp"
#include "liberation/gf/gf256.hpp"
#include "liberation/xorops/xorops.hpp"
#include "code_testkit.hpp"

namespace {

using namespace liberation;
using codes::blaum_roth_code;
using codes::rs_bitmatrix_code;

class BlaumRothSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    blaum_roth_code make() const {
        return {std::get<1>(GetParam()), std::get<0>(GetParam())};
    }
};

TEST_P(BlaumRothSweep, AllErasuresRoundTrip) {
    code_testkit::check_all_erasures(make(), 16, 91);
}

TEST_P(BlaumRothSweep, VerifyDetectsCorruption) {
    code_testkit::check_verify(make(), 92);
}

TEST_P(BlaumRothSweep, UpdatesKeepParityConsistent) {
    code_testkit::check_updates(make(), 93);
}

TEST_P(BlaumRothSweep, Linearity) { code_testkit::check_linearity(make(), 94); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlaumRothSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(5u, 3u),
                      std::make_tuple(5u, 4u), std::make_tuple(7u, 6u),
                      std::make_tuple(11u, 8u), std::make_tuple(13u, 12u)));

TEST(BlaumRoth, GeneratorStructure) {
    // w = p-1; P rows are identity blocks; the Q block of column 0 is the
    // identity (x^0) and every Q block is invertible (x^j is a unit in the
    // ring because gcd(x^j, M_p) = 1).
    const std::uint32_t p = 7, k = 5, w = p - 1;
    const auto gen = codes::blaum_roth_generator(p, k);
    ASSERT_EQ(gen.rows(), 2 * w);
    ASSERT_EQ(gen.cols(), k * w);
    for (std::uint32_t i = 0; i < w; ++i) {
        EXPECT_EQ(gen.row_weight(i), k);           // P rows
        EXPECT_TRUE(gen.get(w + i, i));            // Q block 0 = identity
    }
    std::vector<std::uint32_t> q_rows;
    for (std::uint32_t i = 0; i < w; ++i) q_rows.push_back(w + i);
    for (std::uint32_t j = 0; j < k; ++j) {
        std::vector<std::uint32_t> bits;
        for (std::uint32_t i = 0; i < w; ++i) bits.push_back(j * w + i);
        EXPECT_TRUE(
            gen.select_rows(q_rows).select_cols(bits).inverted().has_value())
            << "column " << j;
    }
}

TEST(BlaumRoth, RingPresentationDensity) {
    // In the polynomial-ring presentation, the Q block for x^j (j >= 1)
    // has one all-ones column (the x^(p-1) reduction) and w-1 unit
    // columns: weight 2w-1. Total = kw (P) + w + (k-1)(2w-1). That is
    // ~40% above Liberation's minimum density 2kw + (k-1) — exactly the
    // update-cost gap that motivates the paper's preference for
    // Liberation among this family of codes.
    const std::uint32_t p = 11, k = 10, w = p - 1;
    const auto gen = codes::blaum_roth_generator(p, k);
    EXPECT_EQ(gen.ones(),
              static_cast<std::uint64_t>(k) * w + w +
                  static_cast<std::uint64_t>(k - 1) * (2 * w - 1));
    const auto lib = bitmatrix::liberation_generator(11, 10);
    EXPECT_GT(gen.ones(), lib.ones());
}

TEST(BlaumRoth, MdsAllDataPairs) {
    const std::uint32_t p = 11, k = 10, w = p - 1;
    const auto gen = codes::blaum_roth_generator(p, k);
    for (std::uint32_t a = 0; a < k; ++a) {
        for (std::uint32_t b = a + 1; b < k; ++b) {
            std::vector<std::uint32_t> bits;
            for (std::uint32_t i = 0; i < w; ++i) bits.push_back(a * w + i);
            for (std::uint32_t i = 0; i < w; ++i) bits.push_back(b * w + i);
            EXPECT_TRUE(gen.select_cols(bits).inverted().has_value())
                << a << "," << b;
        }
    }
}

class RsBitmatrixSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RsBitmatrixSweep, AllErasuresRoundTrip) {
    const rs_bitmatrix_code code(GetParam());
    code_testkit::check_all_erasures(code, 16, 95);
}

TEST_P(RsBitmatrixSweep, UpdatesKeepParityConsistent) {
    const rs_bitmatrix_code code(GetParam());
    code_testkit::check_updates(code, 96);
}

INSTANTIATE_TEST_SUITE_P(Widths, RsBitmatrixSweep,
                         ::testing::Values(2u, 4u, 8u, 12u, 20u));

TEST(RsBitmatrix, ImplementsGf256Arithmetic) {
    // The bit-matrix code works on bit planes: for every byte offset b and
    // bit position z, the GF(2^8) symbol of column j is assembled from bit
    // z of byte b across the 8 element rows. Check Q = sum g^j * d_j holds
    // symbol-by-symbol against the scalar field arithmetic.
    const std::uint32_t k = 9;
    const rs_bitmatrix_code bm(k);
    util::xoshiro256 rng(7);
    codes::stripe_buffer sb(8, k + 2, 4);
    sb.fill_random(rng, k);
    bm.encode(sb.view());

    const auto& field = gf::gf256::instance();
    const auto symbol = [&](std::uint32_t col, std::size_t byte, int z) {
        std::uint8_t s = 0;
        for (std::uint32_t i = 0; i < 8; ++i) {
            const auto bit =
                (static_cast<std::uint8_t>(sb.view().element(i, col)[byte]) >>
                 z) & 1u;
            s = static_cast<std::uint8_t>(s | (bit << i));
        }
        return s;
    };
    for (std::size_t byte = 0; byte < 4; ++byte) {
        for (int z = 0; z < 8; ++z) {
            std::uint8_t expect_p = 0, expect_q = 0;
            for (std::uint32_t j = 0; j < k; ++j) {
                const std::uint8_t d = symbol(j, byte, z);
                expect_p ^= d;
                expect_q ^= field.mul(field.pow_g(j), d);
            }
            EXPECT_EQ(symbol(k, byte, z), expect_p) << byte << "/" << z;
            EXPECT_EQ(symbol(k + 1, byte, z), expect_q) << byte << "/" << z;
        }
    }
}

TEST(RsBitmatrix, DenserThanArrayCodes) {
    // The RS generator's Q blocks are dense (~w/2 bits per column), which
    // is exactly why XOR-based array codes beat RS on XOR count.
    const auto rs = codes::rs_bitmatrix_generator(10);
    const auto lib = bitmatrix::liberation_generator(11, 10);
    const double rs_density =
        static_cast<double>(rs.ones()) / (rs.rows() * rs.cols());
    const double lib_density =
        static_cast<double>(lib.ones()) / (lib.rows() * lib.cols());
    EXPECT_GT(rs_density, 1.5 * lib_density);
}

}  // namespace
