#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/stripe_map.hpp"
#include "liberation/raid/vdisk.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation::raid;

TEST(VDisk, ReadWriteRoundTrip) {
    vdisk d(0, 8192, 512);
    std::vector<std::byte> out(100), in(100, std::byte{0x7E});
    EXPECT_EQ(d.write(300, in), io_status::ok);
    EXPECT_EQ(d.read(300, out), io_status::ok);
    EXPECT_EQ(out, in);
    EXPECT_EQ(d.stats().reads, 1u);
    EXPECT_EQ(d.stats().writes, 1u);
    EXPECT_EQ(d.stats().bytes_read, 100u);
}

TEST(VDisk, FreshDiskReadsZero) {
    vdisk d(0, 1024);
    std::vector<std::byte> out(64, std::byte{0xFF});
    EXPECT_EQ(d.read(0, out), io_status::ok);
    for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(VDisk, OutOfRangeRejected) {
    vdisk d(0, 1024);
    std::vector<std::byte> buf(64);
    EXPECT_EQ(d.read(1000, buf), io_status::out_of_range);
    EXPECT_EQ(d.write(1024, buf), io_status::out_of_range);
    EXPECT_EQ(d.read(1024 - 64, buf), io_status::ok);  // boundary is fine
}

TEST(VDisk, FailStopAndReplace) {
    vdisk d(3, 2048);
    std::vector<std::byte> buf(32, std::byte{1});
    EXPECT_EQ(d.write(0, buf), io_status::ok);
    d.fail();
    EXPECT_FALSE(d.online());
    EXPECT_EQ(d.read(0, buf), io_status::disk_failed);
    EXPECT_EQ(d.write(0, buf), io_status::disk_failed);
    d.replace();
    EXPECT_TRUE(d.online());
    EXPECT_EQ(d.read(0, buf), io_status::ok);
    for (auto b : buf) EXPECT_EQ(b, std::byte{0});  // blank replacement
}

TEST(VDisk, LatentSectorErrors) {
    vdisk d(0, 8192, 512);
    std::vector<std::byte> buf(512);
    d.inject_latent_error(1024, 10);  // sector 2
    EXPECT_EQ(d.read(1024, buf), io_status::unreadable_sector);
    EXPECT_EQ(d.read(0, buf), io_status::ok);        // sector 0 fine
    EXPECT_EQ(d.read(512, buf), io_status::ok);      // sector 1 fine
    std::vector<std::byte> big(2048);
    EXPECT_EQ(d.read(512, big), io_status::unreadable_sector);  // spans bad
    // Rewriting the whole sector heals it.
    EXPECT_EQ(d.write(1024, buf), io_status::ok);
    EXPECT_EQ(d.read(1024, buf), io_status::ok);
    EXPECT_EQ(d.latent_error_count(), 0u);
}

TEST(VDisk, PartialRewriteDoesNotHeal) {
    vdisk d(0, 4096, 512);
    d.inject_latent_error(512, 512);
    std::vector<std::byte> half(256);
    EXPECT_EQ(d.write(512, half), io_status::ok);  // only half the sector
    EXPECT_EQ(d.latent_error_count(), 1u);
}

TEST(VDisk, SilentCorruptionChangesData) {
    vdisk d(0, 4096);
    liberation::util::xoshiro256 rng(5);
    std::vector<std::byte> orig(128, std::byte{0x33});
    ASSERT_EQ(d.write(256, orig), io_status::ok);
    d.inject_silent_corruption(256, 128, rng);
    std::vector<std::byte> now(128);
    ASSERT_EQ(d.read(256, now), io_status::ok);  // read still succeeds!
    EXPECT_NE(now, orig);
}

TEST(StripeMap, CapacitiesAndSizes) {
    stripe_map m(4, 5, 1024, 10);
    EXPECT_EQ(m.n(), 6u);
    EXPECT_EQ(m.strip_size(), 5120u);
    EXPECT_EQ(m.stripe_data_size(), 4u * 5120u);
    EXPECT_EQ(m.capacity(), 10u * 4u * 5120u);
    EXPECT_EQ(m.disk_capacity(), 10u * 5120u);
}

TEST(StripeMap, RotationIsBijectivePerStripe) {
    stripe_map m(5, 7, 64, 21);
    for (std::size_t s = 0; s < 21; ++s) {
        std::vector<bool> used(m.n(), false);
        for (std::uint32_t col = 0; col < m.n(); ++col) {
            const auto loc = m.locate(s, col);
            EXPECT_FALSE(used[loc.disk]);
            used[loc.disk] = true;
            EXPECT_EQ(m.column_of_disk(s, loc.disk), col);
        }
    }
}

TEST(StripeMap, ParityMovesAcrossDisks) {
    stripe_map m(4, 5, 64, 12);
    const std::uint32_t p_col = 4;
    std::vector<bool> seen(m.n(), false);
    for (std::size_t s = 0; s < m.n(); ++s) {
        seen[m.locate(s, p_col).disk] = true;
    }
    for (bool b : seen) EXPECT_TRUE(b);  // P visits every disk
}

TEST(StripeMap, LogicalAddressDecomposition) {
    stripe_map m(3, 4, 100, 8);  // strip = 400, stripe data = 1200
    const auto loc = m.locate_logical(1200 + 400 + 250);
    EXPECT_EQ(loc.stripe, 1u);
    EXPECT_EQ(loc.data_column, 1u);
    EXPECT_EQ(loc.row, 2u);
    EXPECT_EQ(loc.byte_in_element, 50u);
    const auto zero = m.locate_logical(0);
    EXPECT_EQ(zero.stripe, 0u);
    EXPECT_EQ(zero.data_column, 0u);
    EXPECT_EQ(zero.row, 0u);
}

}  // namespace
