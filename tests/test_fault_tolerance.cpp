// Fault-tolerance layer: transient fault injection on vdisks, the retrying
// io_policy (bounded retries, exponential backoff on a virtual clock), the
// per-disk health monitor, hot-spare promotion with incremental background
// rebuild, and per-stripe failure reporting from the rebuild engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/health.hpp"
#include "liberation/raid/io_policy.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/raid/vdisk.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

// ---- vdisk transient fault injection ---------------------------------

TEST(VdiskTransient, ScheduledFaultFiresExactlyOnce) {
    vdisk d(0, 4096, 512);
    std::vector<std::byte> buf(512);

    d.schedule_transient_fault(io_kind::read, 1);  // the read after next
    EXPECT_EQ(d.read(0, buf), io_status::ok);
    EXPECT_EQ(d.read(0, buf), io_status::transient_error);
    EXPECT_EQ(d.read(0, buf), io_status::ok);  // fires once, not sticky
    EXPECT_EQ(d.stats().transient_read_errors, 1u);
    EXPECT_EQ(d.stats().transient_write_errors, 0u);
}

TEST(VdiskTransient, ScheduledWriteFaultLeavesMediumUntouched) {
    vdisk d(0, 4096, 512);
    const auto data = pattern_bytes(512, 1);
    ASSERT_EQ(d.write(0, data), io_status::ok);

    d.schedule_transient_fault(io_kind::write, 0);  // the very next write
    EXPECT_EQ(d.write(0, pattern_bytes(512, 2)), io_status::transient_error);

    // The failed write must not have partially landed.
    std::vector<std::byte> back(512);
    ASSERT_EQ(d.read(0, back), io_status::ok);
    EXPECT_EQ(back, data);
}

TEST(VdiskTransient, ProbabilisticFaultsReplayFromSeed) {
    const auto run = [](std::uint64_t seed) {
        vdisk d(0, 4096, 512);
        d.set_transient_fault_rates(0.5, 0.5, seed);
        std::vector<std::byte> buf(64);
        std::vector<io_status> outcomes;
        for (int i = 0; i < 64; ++i) outcomes.push_back(d.read(0, buf));
        for (int i = 0; i < 64; ++i) outcomes.push_back(d.write(0, buf));
        return outcomes;
    };
    EXPECT_EQ(run(99), run(99));     // same seed, same campaign
    EXPECT_NE(run(99), run(100));    // different seed, different faults
}

TEST(VdiskTransient, ClearAndReplaceDisarm) {
    vdisk d(0, 4096, 512);
    std::vector<std::byte> buf(64);
    d.set_transient_fault_rates(1.0, 1.0, 5);
    EXPECT_EQ(d.read(0, buf), io_status::transient_error);
    d.clear_transient_faults();
    EXPECT_EQ(d.read(0, buf), io_status::ok);

    d.set_transient_fault_rates(1.0, 1.0, 5);
    d.replace();  // new hardware: fault config belongs to the old disk
    EXPECT_EQ(d.read(0, buf), io_status::ok);
}

// ---- io_policy -------------------------------------------------------

TEST(IoPolicy, MasksSingleTransientAndBacksOff) {
    virtual_clock clock;
    io_policy policy({.max_retries = 3, .initial_backoff_us = 100,
                      .max_backoff_us = 10'000},
                     clock);
    vdisk d(0, 4096, 512);
    d.schedule_transient_fault(io_kind::read, 0);

    std::vector<std::byte> buf(64);
    const io_result r = policy.read(d, 0, buf);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.transient_seen, 1u);
    EXPECT_EQ(clock.now_us(), 100u);  // one backoff before the retry

    const auto st = policy.stats();
    EXPECT_EQ(st.retries, 1u);
    EXPECT_EQ(st.transient_masked, 1u);
    EXPECT_EQ(st.retries_exhausted, 0u);
}

TEST(IoPolicy, ExhaustsBudgetWithExponentialBackoff) {
    virtual_clock clock;
    io_policy policy({.max_retries = 3, .initial_backoff_us = 100,
                      .max_backoff_us = 10'000},
                     clock);
    vdisk d(0, 4096, 512);
    for (std::uint64_t i = 0; i < 4; ++i)
        d.schedule_transient_fault(io_kind::read, i);  // all 4 attempts fail

    std::vector<std::byte> buf(64);
    const io_result r = policy.read(d, 0, buf);
    EXPECT_EQ(r.status, io_status::transient_error);
    EXPECT_EQ(r.transient_seen, 4u);
    EXPECT_EQ(clock.now_us(), 100u + 200u + 400u);  // doubling backoff
    EXPECT_EQ(policy.stats().retries_exhausted, 1u);
    EXPECT_EQ(policy.stats().retries, 3u);

    // The medium is fine: the next policy read succeeds.
    EXPECT_TRUE(policy.read(d, 0, buf).ok());
}

TEST(IoPolicy, BackoffSaturatesAtCap) {
    virtual_clock clock;
    io_policy policy({.max_retries = 5, .initial_backoff_us = 100,
                      .max_backoff_us = 400},
                     clock);
    vdisk d(0, 4096, 512);
    for (std::uint64_t i = 0; i < 6; ++i)
        d.schedule_transient_fault(io_kind::write, i);
    const io_result r = policy.write(d, 0, pattern_bytes(64, 3));
    EXPECT_EQ(r.status, io_status::transient_error);
    // 100, 200, 400, 400, 400 — capped, not 800/1600.
    EXPECT_EQ(clock.now_us(), 1500u);
}

TEST(IoPolicy, PermanentErrorsAreNotRetried) {
    virtual_clock clock;
    io_policy policy({}, clock);
    vdisk d(0, 4096, 512);
    d.fail();
    std::vector<std::byte> buf(64);
    EXPECT_EQ(policy.read(d, 0, buf).status, io_status::disk_failed);
    EXPECT_EQ(policy.stats().retries, 0u);
    EXPECT_EQ(clock.now_us(), 0u);  // no pointless backoff on fail-stop
}

// ---- health monitor --------------------------------------------------

TEST(Health, TripsOnceAtWriteThreshold) {
    health_monitor mon(3, {.max_write_errors = 1});
    EXPECT_EQ(mon.state(1), disk_health::healthy);
    // First hard write error trips — and reports the transition once.
    EXPECT_TRUE(mon.record(1, io_kind::write, io_status::transient_error, 4));
    EXPECT_EQ(mon.state(1), disk_health::tripped);
    EXPECT_FALSE(mon.record(1, io_kind::write, io_status::transient_error, 4));
    EXPECT_EQ(mon.state(0), disk_health::healthy);  // others untouched
}

TEST(Health, ReadThresholdWithSuspectWindow) {
    health_monitor mon(2, {.max_read_errors = 4});
    for (int i = 0; i < 2; ++i)
        EXPECT_FALSE(
            mon.record(0, io_kind::read, io_status::unreadable_sector, 0));
    EXPECT_EQ(mon.state(0), disk_health::suspect);  // half the threshold
    EXPECT_FALSE(mon.record(0, io_kind::read, io_status::unreadable_sector, 0));
    EXPECT_TRUE(mon.record(0, io_kind::read, io_status::unreadable_sector, 0));
    EXPECT_EQ(mon.state(0), disk_health::tripped);
    EXPECT_EQ(mon.stats(0).hard_read_errors, 4u);
}

TEST(Health, MaskedTransientsCountWhenEnabled) {
    health_monitor mon(1, {.max_transient_errors = 8});
    // Six successful ops that each needed one retry, then one that needed
    // two: 8 transient errors total -> too flaky, trip.
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(mon.record(0, io_kind::read, io_status::ok, 1));
    EXPECT_TRUE(mon.record(0, io_kind::read, io_status::ok, 2));
    EXPECT_EQ(mon.stats(0).transient_errors, 8u);
}

TEST(Health, WriteErrorsAloneMarkDiskSuspect) {
    // Writes are a trip criterion, so a disk accumulating hard write
    // errors must enter the suspect window too — not only read-side ones.
    health_monitor mon(1, {.max_write_errors = 4});
    EXPECT_FALSE(mon.record(0, io_kind::write, io_status::transient_error, 0));
    EXPECT_FALSE(mon.record(0, io_kind::write, io_status::transient_error, 0));
    EXPECT_EQ(mon.state(0), disk_health::suspect);  // half the threshold
    EXPECT_FALSE(mon.record(0, io_kind::write, io_status::transient_error, 0));
    EXPECT_TRUE(mon.record(0, io_kind::write, io_status::transient_error, 0));
    EXPECT_EQ(mon.state(0), disk_health::tripped);
}

TEST(Health, DisabledByDefaultAndResetRestoresHealthy) {
    health_monitor off(1, {});  // all thresholds 0 = monitoring disabled
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(
            off.record(0, io_kind::write, io_status::unreadable_sector, 3));
    EXPECT_EQ(off.state(0), disk_health::healthy);

    health_monitor mon(1, {.max_write_errors = 1});
    EXPECT_TRUE(mon.record(0, io_kind::write, io_status::transient_error, 0));
    mon.reset(0);  // fresh hardware in the slot
    EXPECT_EQ(mon.state(0), disk_health::healthy);
    EXPECT_EQ(mon.stats(0).hard_write_errors, 0u);
    EXPECT_TRUE(mon.record(0, io_kind::write, io_status::transient_error, 0));
}

// ---- array: retry funnel, tripping, hot spares, background rebuild ---

array_config ft_config(std::uint32_t spares = 0) {
    array_config cfg;
    cfg.k = 4;
    cfg.element_size = 128;
    cfg.stripes = 12;
    cfg.sector_size = 128;
    cfg.hot_spares = spares;
    cfg.rebuild_batch_stripes = 2;
    return cfg;
}

TEST(ArrayFaults, TransientErrorsAreMaskedByRetries) {
    raid6_array a(ft_config());
    const auto data = pattern_bytes(a.capacity(), 20);
    ASSERT_TRUE(a.write(0, data));

    // A modest transient rate on every disk: reads and writes keep
    // succeeding, the policy absorbs the noise.
    for (std::uint32_t d = 0; d < a.disk_count(); ++d)
        a.disk(d).set_transient_fault_rates(0.2, 0.2, 1000 + d);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    ASSERT_TRUE(a.write(100, pattern_bytes(3000, 21)));
    EXPECT_GT(a.io_stats().transient_masked, 0u);
    EXPECT_GT(a.stats().transient_errors_masked, 0u);
    EXPECT_EQ(a.stats().disks_tripped, 0u);  // monitoring off by default
}

TEST(ArrayFaults, HealthTripPromotesSpareAndRebuilds) {
    array_config cfg = ft_config(1);
    cfg.health.max_read_errors = 1;  // first hard read error trips
    raid6_array a(cfg);
    const auto data = pattern_bytes(a.capacity(), 22);
    ASSERT_TRUE(a.write(0, data));

    // Disk 2 goes bad: every access fails even after retries.
    a.disk(2).set_transient_fault_rates(1.0, 1.0, 7);

    // Reads still return correct data (degraded decode around the flaky
    // column) and the health monitor trips the disk under the covers.
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(a.stats().disks_tripped, 1u);

    // The next operation promotes the spare and rebuild proceeds in the
    // background; service to completion and verify full redundancy.
    a.drain_background_rebuild();
    EXPECT_EQ(a.stats().spares_promoted, 1u);
    EXPECT_EQ(a.stats().rebuilds_completed, 1u);
    EXPECT_EQ(a.spare_count(), 0u);
    EXPECT_EQ(a.failed_disk_count(), 0u);
    EXPECT_TRUE(a.disk(2).online());  // the slot holds the promoted spare

    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(scrub_array(a).uncorrectable, 0u);
}

TEST(ArrayFaults, ForegroundIoDuringIncrementalRebuildStaysCorrect) {
    raid6_array a(ft_config(1));
    const auto data = pattern_bytes(a.capacity(), 23);
    ASSERT_TRUE(a.write(0, data));
    std::vector<std::byte> shadow = data;

    a.fail_disk(1);  // promotion + rebuild start on the next operation

    // Interleave reads and writes with the incremental rebuild; every op
    // must see/produce correct data even though the spare is half-built.
    util::xoshiro256 rng(24);
    std::vector<std::byte> buf(2048);
    bool saw_active_rebuild = false;
    for (int op = 0; op < 40; ++op) {
        saw_active_rebuild = saw_active_rebuild || a.rebuild_active();
        const std::size_t len = 1 + rng.next_below(buf.size());
        const std::size_t addr = rng.next_below(a.capacity() - len);
        const std::span<std::byte> io(buf.data(), len);
        if (op % 2 == 0) {
            rng.fill(io);
            ASSERT_TRUE(a.write(addr, io)) << "op " << op;
            std::copy(io.begin(), io.end(),
                      shadow.begin() + static_cast<long>(addr));
        } else {
            ASSERT_TRUE(a.read(addr, io)) << "op " << op;
            EXPECT_TRUE(std::equal(io.begin(), io.end(),
                                   shadow.begin() + static_cast<long>(addr)))
                << "op " << op;
        }
    }
    EXPECT_TRUE(saw_active_rebuild);  // the interleaving actually happened

    a.drain_background_rebuild();
    EXPECT_FALSE(a.rebuild_active());
    EXPECT_EQ(a.stats().spares_promoted, 1u);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, shadow);
    EXPECT_EQ(scrub_array(a).uncorrectable, 0u);
}

TEST(ArrayFaults, ServiceBackgroundRebuildAdvancesInBatches) {
    raid6_array a(ft_config(1));
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 25)));
    a.fail_disk(0);

    // Service manually on an idle array: progress arrives in bounded
    // batches, remaining count ticks down monotonically.
    std::size_t serviced = a.service_background_rebuild(3);
    EXPECT_EQ(serviced, 3u);
    ASSERT_TRUE(a.rebuild_active());
    const std::size_t remaining = a.rebuild_stripes_remaining();
    EXPECT_EQ(remaining, a.map().stripes() - 3);
    while (a.rebuild_active()) {
        if (a.service_background_rebuild(3) == 0) break;
    }
    EXPECT_FALSE(a.rebuild_active());
    EXPECT_EQ(a.rebuild_stripes_remaining(), 0u);
    EXPECT_EQ(a.stats().rebuilds_completed, 1u);
}

TEST(ArrayFaults, SecondFailureKeepsFirstSparesWatermark) {
    raid6_array a(ft_config(2));
    const auto data = pattern_bytes(a.capacity(), 30);
    ASSERT_TRUE(a.write(0, data));

    // Disk 1 fails and its spare rebuilds the first 4 stripes...
    a.fail_disk(1);
    ASSERT_EQ(a.service_background_rebuild(4), 4u);
    // ...then disk 3 fails mid-session. Disk 1's watermark must survive:
    // its rebuilt (and since write-maintained) extent stays trusted.
    a.fail_disk(3);
    EXPECT_EQ(a.stats().spares_promoted, 2u);

    // Stripe 1 now also loses a third column to a latent error. Trusting
    // the first spare's extent leaves two erasures (new spare + latent) —
    // decodable; re-masking it would make three and lose the stripe.
    const std::uint32_t lcol = a.map().column_of_disk(1, 0);
    a.disk(0).inject_latent_error(a.map().locate(1, lcol).offset, 16);

    codes::stripe_buffer buf = a.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    ASSERT_TRUE(a.load_stripe(1, buf.view(), erased));
    EXPECT_EQ(erased.size(), 2u);
    const std::uint32_t first_spare_col = a.map().column_of_disk(1, 1);
    EXPECT_EQ(std::find(erased.begin(), erased.end(), first_spare_col),
              erased.end());
    a.code().decode(buf.view(), erased);
    for (std::uint32_t col = 0; col < a.map().k(); ++col) {
        EXPECT_EQ(std::memcmp(buf.view().strip(col).data(),
                              data.data() + a.map().stripe_data_size() +
                                  static_cast<std::size_t>(col) *
                                      a.map().strip_size(),
                              a.map().strip_size()),
                  0)
            << "col " << col;
    }

    // Both members finish; everything reads back correct.
    a.drain_background_rebuild();
    EXPECT_EQ(a.stats().rebuilds_completed, 2u);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(ArrayFaults, TripleLossStallIsSurfacedNotSilent) {
    raid6_array a(ft_config(3));
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 31)));
    a.fail_disk(0);
    a.fail_disk(2);
    a.fail_disk(4);
    EXPECT_EQ(a.stats().spares_promoted, 3u);

    // Three masked columns exceed RAID-6's erasure budget: the session
    // cannot advance and must say so instead of spinning quietly.
    EXPECT_EQ(a.service_background_rebuild(4), 0u);
    EXPECT_TRUE(a.rebuild_stalled());
    EXPECT_EQ(a.stats().rebuild_sessions_stalled, 1u);
    EXPECT_EQ(a.service_background_rebuild(4), 0u);
    EXPECT_EQ(a.stats().rebuild_sessions_stalled, 1u);  // reported once

    // Reads of the stalled region fail loudly, not with blank spares.
    std::vector<std::byte> out(a.map().stripe_data_size());
    EXPECT_FALSE(a.read(0, out));

    // The operator reclaims one slot: back inside the two-erasure budget,
    // the session resumes and the stall flag drops.
    a.replace_disk(0);
    EXPECT_GT(a.service_background_rebuild(4), 0u);
    EXPECT_FALSE(a.rebuild_stalled());
}

TEST(ArrayFaults, NoSpareMeansFailureWaitsForOperator) {
    raid6_array a(ft_config(0));
    const auto data = pattern_bytes(a.capacity(), 26);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(3);
    a.drain_background_rebuild();  // nothing to do: no spare
    EXPECT_EQ(a.failed_disk_count(), 1u);
    EXPECT_EQ(a.stats().spares_promoted, 0u);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));  // degraded but serviceable
    EXPECT_EQ(out, data);
}

TEST(ArrayFaults, DoubleFailureConsumesBothSpares) {
    raid6_array a(ft_config(2));
    const auto data = pattern_bytes(a.capacity(), 27);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(0);
    a.fail_disk(4);
    a.drain_background_rebuild();
    EXPECT_EQ(a.stats().spares_promoted, 2u);
    EXPECT_EQ(a.spare_count(), 0u);
    EXPECT_EQ(a.failed_disk_count(), 0u);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(scrub_array(a).clean, a.map().stripes());
}

// ---- scrub classification under transient noise ----------------------

TEST(Scrub, DistinguishesTransientFromLatentColumns) {
    raid6_array a(ft_config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 28)));

    // Disk 1 fails transiently on every access (even after retries). One
    // unavailable column is within the decode budget, so the
    // checksum-first scrubber decodes around the noise instead of
    // skipping the stripe — but still classifies the column as transient
    // (retry soon) rather than degraded.
    a.disk(1).set_transient_fault_rates(1.0, 1.0, 9);
    const auto noisy = scrub_array(a);
    EXPECT_EQ(noisy.skipped_transient, 0u);
    EXPECT_EQ(noisy.skipped_degraded, 0u);
    EXPECT_EQ(noisy.degraded_scrubbed, a.map().stripes());
    EXPECT_GT(noisy.transient_columns, 0u);
    EXPECT_EQ(noisy.latent_columns, 0u);

    // A latent sector is a real (persistent) degradation — and scrubbing
    // through it heals it in place (md's read-error rewrite).
    a.disk(1).clear_transient_faults();
    const auto loc = a.map().locate(2, a.map().column_of_disk(2, 3));
    a.disk(3).inject_latent_error(loc.offset, 32);
    const auto degraded = scrub_array(a);
    EXPECT_EQ(degraded.skipped_degraded, 0u);
    EXPECT_EQ(degraded.skipped_transient, 0u);
    EXPECT_EQ(degraded.degraded_scrubbed, 1u);
    EXPECT_EQ(degraded.latent_columns, 1u);
    EXPECT_EQ(a.disk(3).latent_error_count(), 0u);
}

// ---- rebuild_result per-stripe failure reporting ---------------------

TEST(Rebuild, ReportsFirstFailedStripeInsteadOfTotalLoss) {
    raid6_array a(ft_config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 29)));

    // While disk 2 is being rebuilt, stripe 5 has latent errors on two
    // *other* columns: that stripe alone is beyond two erasures.
    a.fail_disk(2);
    a.replace_disk(2);
    std::uint32_t injected = 0;
    for (std::uint32_t col = 0; col < a.map().n() && injected < 2; ++col) {
        const auto loc = a.map().locate(5, col);
        if (loc.disk == 2) continue;
        a.disk(loc.disk).inject_latent_error(loc.offset, 16);
        ++injected;
    }
    ASSERT_EQ(injected, 2u);

    const std::uint32_t disks[] = {2};
    const rebuild_result r = rebuild_disks(a, disks);
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.stripes_failed, 1u);
    EXPECT_EQ(r.first_failed_stripe, 5u);
    // Every other stripe was still rebuilt — not total loss.
    EXPECT_EQ(r.stripes_rebuilt, a.map().stripes() - 1);
}

TEST(Rebuild, ResultDefaultsToNoFailure) {
    const rebuild_result r;
    EXPECT_EQ(r.stripes_failed, 0u);
    EXPECT_EQ(r.first_failed_stripe, rebuild_result::npos);
}

}  // namespace
