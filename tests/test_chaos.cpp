// Chaos campaign: the acceptance test of the fault-tolerance and
// integrity layers. A seeded campaign interleaves 10k random reads/writes
// with transient faults on every disk, one health-tripped disk, one
// injected fail-stop, latent sector errors, a mid-write power loss,
// periodic silent multi-column bit-flips, and checksum-metadata damage —
// while two hot spares absorb the failures and background rebuilds race
// the workload. Every read is verified against a shadow copy; no host
// read may ever return bytes that fail their checksum; the whole run must
// replay bit-for-bit from its seed.
#include <gtest/gtest.h>

#include "liberation/raid/chaos.hpp"

namespace {

using namespace liberation::raid;

TEST(Chaos, AcceptanceCampaignRunsClean) {
    const chaos_config cfg = default_chaos_config(42, 10'000);
    const chaos_report rep = run_chaos_campaign(cfg);

    // Zero corruption anywhere...
    EXPECT_EQ(rep.mismatches, 0u);
    EXPECT_EQ(rep.failed_reads, 0u);
    EXPECT_EQ(rep.failed_writes, 0u);
    EXPECT_EQ(rep.final_torn, 0u);
    EXPECT_EQ(rep.final_degraded, 0u);
    EXPECT_EQ(rep.final_unrecovered, 0u);
    EXPECT_EQ(rep.scrub_uncorrectable, 0u);
    EXPECT_EQ(rep.final_checksum_bad, 0u);
    EXPECT_EQ(rep.stats.reads_unrecoverable, 0u);
    EXPECT_EQ(rep.stats.rebuild_sessions_stalled, 0u);

    // ...while the full fault plan actually fired.
    EXPECT_EQ(rep.ops, 10'000u);
    EXPECT_EQ(rep.injected_fail_stops, 1u);
    EXPECT_GE(rep.health_trips, 1u);
    EXPECT_EQ(rep.power_losses, 1u);
    EXPECT_GE(rep.latent_errors_injected, 1u);
    EXPECT_GE(rep.corruptions_injected, 1u);
    EXPECT_GE(rep.integrity_corruptions_injected, 1u);
    EXPECT_EQ(rep.spares_promoted, 2u);  // fail-stop + health trip
    EXPECT_GE(rep.rebuilds_completed, 2u);
    EXPECT_GT(rep.io.transient_masked, 0u);  // retries actually earned keep

    // The integrity layer earned its keep: bit-flips were caught in-line
    // (self-healed reads), stale CRC metadata was refreshed, and the
    // degraded-stripe scrub repaired corruption the seed scrubber skipped.
    EXPECT_GE(rep.stats.reads_self_healed, 1u);
    EXPECT_GE(rep.stats.checksum_metadata_repaired, 1u);
    EXPECT_GE(rep.degraded_scrub_repairs, 1u);
    EXPECT_TRUE(rep.success);
}

TEST(Chaos, CampaignReplaysBitForBitFromSeed) {
    const chaos_config cfg = default_chaos_config(7, 4'000);
    const chaos_report a = run_chaos_campaign(cfg);
    const chaos_report b = run_chaos_campaign(cfg);

    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.power_losses, b.power_losses);
    EXPECT_EQ(a.resynced_stripes, b.resynced_stripes);
    EXPECT_EQ(a.latent_errors_injected, b.latent_errors_injected);
    EXPECT_EQ(a.corruptions_injected, b.corruptions_injected);
    EXPECT_EQ(a.integrity_corruptions_injected, b.integrity_corruptions_injected);
    EXPECT_EQ(a.health_trips, b.health_trips);
    EXPECT_EQ(a.spares_promoted, b.spares_promoted);
    EXPECT_EQ(a.rebuilds_completed, b.rebuilds_completed);
    EXPECT_EQ(a.success, b.success);
    // Down to the per-disk fault streams and retry totals.
    EXPECT_EQ(a.io.retries, b.io.retries);
    EXPECT_EQ(a.io.transient_masked, b.io.transient_masked);
    EXPECT_EQ(a.io.retries_exhausted, b.io.retries_exhausted);
    EXPECT_EQ(a.io.backoff_us, b.io.backoff_us);
    EXPECT_EQ(a.stats.degraded_stripe_reads, b.stats.degraded_stripe_reads);
    EXPECT_EQ(a.stats.media_errors_recovered, b.stats.media_errors_recovered);
    EXPECT_EQ(a.stats.checksum_mismatches, b.stats.checksum_mismatches);
    EXPECT_EQ(a.stats.reads_self_healed, b.stats.reads_self_healed);
    EXPECT_EQ(a.degraded_scrub_repairs, b.degraded_scrub_repairs);
    EXPECT_EQ(a.settle_scrub_healed, b.settle_scrub_healed);
}

TEST(Chaos, DifferentSeedsStillPassButDiverge) {
    chaos_config c1 = default_chaos_config(1234, 4'000);
    c1.events.fail_stop_at_op = 800;
    c1.events.health_storm_at_op = 2'000;
    c1.events.power_loss_at_op = 3'200;
    chaos_config c2 = c1;
    c2.seed = 4321;

    const chaos_report a = run_chaos_campaign(c1);
    const chaos_report b = run_chaos_campaign(c2);
    EXPECT_TRUE(a.success);
    EXPECT_TRUE(b.success);
    // The seed drives the workload, not just the faults.
    EXPECT_NE(a.io.retries, b.io.retries);
}

}  // namespace
