#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "liberation/tool/sharder.hpp"
#include "liberation/util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using namespace liberation::tool;

class SharderTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("liberation_sharder_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path make_input(std::size_t size, std::uint64_t seed) {
        const fs::path path = dir_ / "input.bin";
        liberation::util::xoshiro256 rng(seed);
        std::vector<std::byte> data(size);
        rng.fill(data);
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(size));
        return path;
    }

    static std::vector<char> slurp(const fs::path& p) {
        std::ifstream in(p, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    fs::path dir_;
};

TEST_F(SharderTest, SplitJoinRoundTrip) {
    const auto input = make_input(100000, 1);
    shard_params params{4, 0, 512};
    const auto split = split_file(input, dir_ / "shards", params);
    EXPECT_EQ(split.shards, 6u);
    EXPECT_EQ(split.payload_bytes, 100000u);

    const auto join = join_file(dir_ / "shards", dir_ / "out.bin");
    EXPECT_TRUE(join.missing.empty());
    EXPECT_EQ(join.bytes_written, 100000u);
    EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(SharderTest, JoinWithTwoMissingShards) {
    const auto input = make_input(77777, 2);  // non-aligned size
    split_file(input, dir_ / "shards", {5, 0, 256});
    fs::remove(dir_ / "shards" / shard_file_name(1));
    fs::remove(dir_ / "shards" / shard_file_name(6));  // Q shard

    const auto join = join_file(dir_ / "shards", dir_ / "out.bin");
    EXPECT_EQ(join.missing, (std::vector<std::uint32_t>{1, 6}));
    EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));

    // The missing shards were re-materialized: a second join needs no
    // reconstruction at all.
    const auto again = join_file(dir_ / "shards", dir_ / "out2.bin");
    EXPECT_TRUE(again.missing.empty());
    EXPECT_EQ(slurp(input), slurp(dir_ / "out2.bin"));
}

TEST_F(SharderTest, TruncatedShardCountsAsMissing) {
    const auto input = make_input(50000, 3);
    split_file(input, dir_ / "shards", {4, 5, 512});
    // Chop the tail off one shard.
    const auto victim = dir_ / "shards" / shard_file_name(2);
    fs::resize_file(victim, fs::file_size(victim) / 2);

    const auto join = join_file(dir_ / "shards", dir_ / "out.bin");
    EXPECT_EQ(join.missing, (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(SharderTest, ThreeMissingShardsIsDataLoss) {
    const auto input = make_input(30000, 4);
    split_file(input, dir_ / "shards", {4, 0, 256});
    fs::remove(dir_ / "shards" / shard_file_name(0));
    fs::remove(dir_ / "shards" / shard_file_name(2));
    fs::remove(dir_ / "shards" / shard_file_name(4));
    EXPECT_THROW(join_file(dir_ / "shards", dir_ / "out.bin"), sharder_error);
}

TEST_F(SharderTest, VerifyCleanAndRepairCorruption) {
    const auto input = make_input(60000, 5);
    split_file(input, dir_ / "shards", {4, 0, 256});

    auto clean = verify_shards(dir_ / "shards", false);
    EXPECT_EQ(clean.repaired, 0u);
    EXPECT_EQ(clean.uncorrectable, 0u);
    EXPECT_EQ(clean.clean, clean.stripes);

    // Flip bytes inside shard 3's payload (one stripe's worth).
    {
        std::fstream f(dir_ / "shards" / shard_file_name(3),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(64 + 100);
        f.put('\x42');
        f.put('\x43');
    }
    auto report = verify_shards(dir_ / "shards", true);
    EXPECT_EQ(report.repaired, 1u);
    EXPECT_EQ(report.uncorrectable, 0u);
    EXPECT_EQ(report.repaired_shards, (std::vector<std::uint32_t>{3}));

    // After repair: clean again, and the data joins back exactly.
    auto after = verify_shards(dir_ / "shards", false);
    EXPECT_EQ(after.clean, after.stripes);
    join_file(dir_ / "shards", dir_ / "out.bin");
    EXPECT_EQ(slurp(input), slurp(dir_ / "out.bin"));
}

TEST_F(SharderTest, EmptyInputRejected) {
    const fs::path empty = dir_ / "empty.bin";
    std::ofstream(empty, std::ios::binary).flush();
    EXPECT_THROW(split_file(empty, dir_ / "shards", {4, 0, 256}),
                 sharder_error);
}

TEST_F(SharderTest, BadParamsRejected) {
    const auto input = make_input(1000, 6);
    EXPECT_THROW(split_file(input, dir_ / "s1", {4, 9, 256}), sharder_error);
    EXPECT_THROW(split_file(input, dir_ / "s2", {0, 0, 256}), sharder_error);
    EXPECT_THROW(split_file(input, dir_ / "s3", {8, 7, 256}), sharder_error);
}

TEST_F(SharderTest, ShardFileNameFormat) {
    EXPECT_EQ(shard_file_name(0), "shard_000.l6s");
    EXPECT_EQ(shard_file_name(12), "shard_012.l6s");
}

TEST_F(SharderTest, NoShardsInDirectory) {
    fs::create_directories(dir_ / "nothing");
    EXPECT_THROW(join_file(dir_ / "nothing", dir_ / "out.bin"), sharder_error);
}

}  // namespace
