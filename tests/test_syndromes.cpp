#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "liberation/core/geometry.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/core/syndromes.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;
using core::geometry;

// Reference syndrome computation straight from the paper's definition:
// S^P_i / S^Q_i = parity element XOR surviving members, excluding members
// that belong to an *unknown* common expression. Byte-plane granularity.
struct syndrome_oracle {
    const geometry& g;
    std::uint32_t l, r;

    // Memberships covered by common expression j (pair (j-1, j), row r_j):
    //   first member  (r_j, j-1): its P row and its normal anti-diagonal
    //   extra member  (r_j, j):   its P row and its extra anti-diagonal
    // CE j is unknown iff j-1 or j is erased.
    [[nodiscard]] bool ce_unknown(std::uint32_t j) const {
        return j - 1 == l || j - 1 == r || j == l || j == r;
    }

    /// Should data element (i, j)'s P-row membership be excluded?
    [[nodiscard]] bool exclude_from_p(std::uint32_t i, std::uint32_t j) const {
        // first member of CE j+1?
        if (j + 1 < g.p() && i == g.ce_row(j + 1) && ce_unknown(j + 1)) {
            return true;
        }
        // extra member of CE j?
        if (j >= 1 && i == g.ce_row(j) && ce_unknown(j)) return true;
        return false;
    }

    /// Should (i, j)'s *normal* anti-diagonal membership be excluded?
    [[nodiscard]] bool exclude_from_q(std::uint32_t i, std::uint32_t j) const {
        // Only the first member's normal membership belongs to the CE.
        return j + 1 < g.p() && i == g.ce_row(j + 1) && ce_unknown(j + 1);
    }

    /// Extra membership of Q_q is included iff the hosting CE is known.
    [[nodiscard]] bool include_extra(std::uint32_t q) const {
        if (q == 0) return false;
        const std::uint32_t col = g.mod(-2 * static_cast<std::int64_t>(q));
        if (col == 0 || col >= g.k()) return false;  // phantom extra
        if (col == l || col == r) return false;      // erased survivor? no
        return !ce_unknown(col);
    }

    [[nodiscard]] std::vector<std::uint8_t> expected_sp(
        const codes::stripe_view& v, std::size_t byte) const {
        std::vector<std::uint8_t> out(g.p(), 0);
        for (std::uint32_t i = 0; i < g.p(); ++i) {
            out[i] = static_cast<std::uint8_t>(v.element(i, g.k())[byte]);
            for (std::uint32_t j = 0; j < g.k(); ++j) {
                if (j == l || j == r || exclude_from_p(i, j)) continue;
                out[i] ^= static_cast<std::uint8_t>(v.element(i, j)[byte]);
            }
        }
        return out;
    }

    [[nodiscard]] std::vector<std::uint8_t> expected_sq(
        const codes::stripe_view& v, std::size_t byte) const {
        std::vector<std::uint8_t> out(g.p(), 0);
        for (std::uint32_t q = 0; q < g.p(); ++q) {
            out[q] =
                static_cast<std::uint8_t>(v.element(q, g.k() + 1)[byte]);
            for (std::uint32_t j = 0; j < g.k(); ++j) {
                if (j == l || j == r) continue;
                const std::uint32_t i = g.diag_member_row(q, j);
                if (exclude_from_q(i, j)) continue;
                out[q] ^= static_cast<std::uint8_t>(v.element(i, j)[byte]);
            }
            if (include_extra(q)) {
                const std::uint32_t col =
                    g.mod(-2 * static_cast<std::int64_t>(q));
                out[q] ^= static_cast<std::uint8_t>(
                    v.element(g.extra_row(col), col)[byte]);
            }
        }
        return out;
    }
};

class SyndromeSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(SyndromeSweep, MatchesDefinitionForAllPairsBothOrientations) {
    const geometry g(p(), k());
    core::liberation_optimal_code code(k(), p());
    const auto ref = test_support::make_encoded_stripe(code, 4, 99);

    for (std::uint32_t l = 0; l < k(); ++l) {
        for (std::uint32_t r = 0; r < k(); ++r) {
            if (l == r) continue;
            codes::stripe_buffer work(p(), k() + 2, 4);
            codes::copy_stripe(
                work.view(),
                const_cast<codes::stripe_buffer&>(ref).view());
            core::compute_syndromes(work.view(), g, l, r);

            const syndrome_oracle oracle{g, l, r};
            const auto want_sp = oracle.expected_sp(
                const_cast<codes::stripe_buffer&>(ref).view(), 1);
            const auto want_sq = oracle.expected_sq(
                const_cast<codes::stripe_buffer&>(ref).view(), 1);

            // S^P_i lives in strip l element i; S^Q_i in strip r at <i+r>.
            for (std::uint32_t i = 0; i < p(); ++i) {
                EXPECT_EQ(
                    static_cast<std::uint8_t>(work.view().element(i, l)[1]),
                    want_sp[i])
                    << "SP p=" << p() << " k=" << k() << " l=" << l
                    << " r=" << r << " i=" << i;
                EXPECT_EQ(static_cast<std::uint8_t>(
                              work.view().element((i + r) % p(), r)[1]),
                          want_sq[i])
                    << "SQ p=" << p() << " k=" << k() << " l=" << l
                    << " r=" << r << " i=" << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SyndromeSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(3u, 3u),
                      std::make_tuple(5u, 3u), std::make_tuple(5u, 5u),
                      std::make_tuple(7u, 4u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 7u), std::make_tuple(11u, 11u),
                      std::make_tuple(13u, 9u)));

}  // namespace
