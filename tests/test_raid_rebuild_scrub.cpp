#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config config(std::uint32_t k = 4, std::size_t stripes = 8) {
    array_config cfg;
    cfg.k = k;
    cfg.element_size = 128;
    cfg.stripes = stripes;
    cfg.sector_size = 128;
    return cfg;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

TEST(Rebuild, SingleDiskRestoresContents) {
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 1);
    ASSERT_TRUE(a.write(0, data));

    const auto result = fail_replace_rebuild(a, 3);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.stripes_rebuilt, a.map().stripes());
    EXPECT_EQ(result.columns_rebuilt, a.map().stripes());

    // After rebuild everything reads back clean with no degraded paths.
    const auto degraded_before = a.stats().degraded_stripe_reads;
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(a.stats().degraded_stripe_reads, degraded_before);
}

TEST(Rebuild, DoubleDiskRestoresContents) {
    raid6_array a(config(6, 10));  // p = 7, 8 disks
    const auto data = pattern_bytes(a.capacity(), 2);
    ASSERT_TRUE(a.write(0, data));

    a.fail_disk(0);
    a.fail_disk(7);
    a.replace_disk(0);
    a.replace_disk(7);
    const std::uint32_t disks[] = {0, 7};
    const auto result = rebuild_disks(a, disks);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.columns_rebuilt, 2 * a.map().stripes());

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(Rebuild, ParallelMatchesSerial) {
    raid6_array serial(config(5, 16));
    raid6_array parallel(config(5, 16));
    const auto data = pattern_bytes(serial.capacity(), 3);
    ASSERT_TRUE(serial.write(0, data));
    ASSERT_TRUE(parallel.write(0, data));

    fail_replace_rebuild(serial, 2);
    util::thread_pool pool(4);
    fail_replace_rebuild(parallel, 2, &pool);

    std::vector<std::byte> a(serial.capacity()), b(parallel.capacity());
    ASSERT_TRUE(serial.read(0, a));
    ASSERT_TRUE(parallel.read(0, b));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, data);
}

TEST(Rebuild, RebuildWithConcurrentLatentErrorOnSurvivor) {
    // The RAID-6 motivation (paper Section I): hitting an unreadable
    // sector on a surviving disk *during* single-disk rebuild still
    // recovers, because two erasures are tolerated.
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 4);
    ASSERT_TRUE(a.write(0, data));

    // Latent error on disk 1's strip of stripe 2 before rebuilding disk 0.
    const auto loc = a.map().locate(2, a.map().column_of_disk(2, 1));
    a.disk(1).inject_latent_error(loc.offset, 32);

    const auto result = fail_replace_rebuild(a, 0);
    EXPECT_TRUE(result.success);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(Scrub, CleanArray) {
    raid6_array a(config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 5)));
    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.stripes_scanned, a.map().stripes());
    EXPECT_EQ(summary.clean, a.map().stripes());
    EXPECT_EQ(summary.repaired_data + summary.repaired_parity, 0u);
}

TEST(Scrub, RepairsSilentDataCorruption) {
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 6);
    ASSERT_TRUE(a.write(0, data));

    // Corrupt one strip of stripe 1 silently.
    util::xoshiro256 rng(7);
    const auto loc = a.map().locate(1, 2);
    a.disk(loc.disk).inject_silent_corruption(loc.offset, 64, rng);

    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.repaired_data, 1u);
    EXPECT_EQ(summary.uncorrectable, 0u);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    // A second scrub finds nothing.
    EXPECT_EQ(scrub_array(a).clean, a.map().stripes());
}

TEST(Scrub, RepairsParityCorruption) {
    raid6_array a(config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 8)));
    util::xoshiro256 rng(9);
    const auto loc = a.map().locate(3, a.code().q_column());
    a.disk(loc.disk).inject_silent_corruption(loc.offset, 32, rng);
    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.repaired_parity, 1u);
    EXPECT_EQ(scrub_array(a).clean, a.map().stripes());
}

TEST(Scrub, ScrubsDegradedStripes) {
    // The seed scrubber had to skip degraded stripes (its parity
    // cross-check needs every column); the checksum-first scrubber scans
    // them — and still repairs corruption there.
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 10);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(4);

    util::xoshiro256 rng(17);
    std::uint32_t col = 0;
    while (a.map().locate(3, col).disk == 4u) ++col;
    const auto loc = a.map().locate(3, col);
    a.disk(loc.disk).inject_silent_corruption(loc.offset, 48, rng);

    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.skipped_degraded, 0u);
    EXPECT_EQ(summary.degraded_scrubbed, a.map().stripes());
    EXPECT_EQ(summary.repaired_on_degraded, 1u);
    EXPECT_EQ(summary.uncorrectable, 0u);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(Resilver, HealsParityStripLatentErrors) {
    // Plain reads only touch data columns, so a latent error in a P or Q
    // strip is invisible to the workload — and silently costs redundancy.
    // Only the resilver patrol walks parity strips and heals them.
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 13);
    ASSERT_TRUE(a.write(0, data));

    const auto p_loc = a.map().locate(2, a.code().p_column());
    const auto q_loc = a.map().locate(5, a.code().q_column());
    a.disk(p_loc.disk).inject_latent_error(p_loc.offset, 32);
    a.disk(q_loc.disk).inject_latent_error(q_loc.offset, 32);

    // The whole device reads back fine without healing anything: no data
    // column is affected, heal-on-read never sees the parity strips.
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(a.disk(p_loc.disk).latent_error_count() +
                  a.disk(q_loc.disk).latent_error_count(),
              2u);

    EXPECT_EQ(a.resilver(), 2u);  // exactly the two bad strips rewritten
    EXPECT_EQ(a.disk(p_loc.disk).latent_error_count(), 0u);
    EXPECT_EQ(a.disk(q_loc.disk).latent_error_count(), 0u);
    EXPECT_EQ(a.resilver(), 0u);  // second patrol finds nothing

    // Redundancy is actually restored: both stripes survive a double
    // failure that includes the previously-unreadable parity disks.
    a.fail_disk(p_loc.disk);
    if (q_loc.disk != p_loc.disk) a.fail_disk(q_loc.disk);
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(Scrub, TwoCorruptColumnsRepaired) {
    // The seed scrubber's single-corruption assumption made two corrupt
    // columns uncorrectable; the checksum domains pinpoint both, which
    // brings them within the two-erasure decode budget.
    raid6_array a(config());
    const auto data = pattern_bytes(a.capacity(), 11);
    ASSERT_TRUE(a.write(0, data));
    util::xoshiro256 rng(12);
    a.disk(a.map().locate(0, 0).disk)
        .inject_silent_corruption(a.map().locate(0, 0).offset, 16, rng);
    a.disk(a.map().locate(0, 3).disk)
        .inject_silent_corruption(a.map().locate(0, 3).offset, 16, rng);
    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.uncorrectable, 0u);
    EXPECT_EQ(summary.repaired_data, 2u);
    EXPECT_EQ(summary.checksum_mismatch_columns, 2u);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(scrub_array(a).clean, a.map().stripes());
}

TEST(Scrub, ThreeCorruptColumnsReportedUncorrectable) {
    // Three corrupt columns exceed what two parities can ever repair; the
    // scrubber must say so rather than guess.
    raid6_array a(config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 14)));
    util::xoshiro256 rng(15);
    for (const std::uint32_t col : {0u, 2u, 3u}) {
        const auto loc = a.map().locate(0, col);
        a.disk(loc.disk).inject_silent_corruption(loc.offset, 16, rng);
    }
    const auto summary = scrub_array(a);
    EXPECT_EQ(summary.uncorrectable, 1u);
    EXPECT_EQ(summary.repaired_data, 0u);
}

}  // namespace
