#include <gtest/gtest.h>

#include <vector>

#include "liberation/bitmatrix/bitmatrix.hpp"
#include "liberation/util/rng.hpp"

namespace {

using liberation::bitmatrix::bit_matrix;

bit_matrix random_matrix(std::uint32_t rows, std::uint32_t cols,
                         std::uint64_t seed, double density = 0.5) {
    liberation::util::xoshiro256 rng(seed);
    bit_matrix m(rows, cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (rng.next_double() < density) m.set(r, c, true);
        }
    }
    return m;
}

TEST(BitMatrix, SetGetFlip) {
    bit_matrix m(3, 70);  // > 64 columns: crosses the word boundary
    EXPECT_FALSE(m.get(1, 65));
    m.set(1, 65, true);
    EXPECT_TRUE(m.get(1, 65));
    m.flip(1, 65);
    EXPECT_FALSE(m.get(1, 65));
    m.set(2, 0, true);
    EXPECT_TRUE(m.get(2, 0));
    EXPECT_FALSE(m.get(0, 0));
}

TEST(BitMatrix, IdentityProperties) {
    const auto id = bit_matrix::identity(10);
    EXPECT_EQ(id.ones(), 10u);
    EXPECT_EQ(id.rank(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(id.row_weight(i), 1u);
}

TEST(BitMatrix, RowWeightAndDistance) {
    bit_matrix m(2, 130);
    m.set(0, 0, true);
    m.set(0, 64, true);
    m.set(0, 129, true);
    m.set(1, 0, true);
    m.set(1, 65, true);
    EXPECT_EQ(m.row_weight(0), 3u);
    EXPECT_EQ(m.row_weight(1), 2u);
    EXPECT_EQ(m.row_distance(0, m, 1), 3u);  // {64,129} vs {65}
    EXPECT_EQ(m.row_distance(0, m, 0), 0u);
}

TEST(BitMatrix, RowOnesAscending) {
    bit_matrix m(1, 200);
    for (std::uint32_t c : {3u, 64u, 65u, 199u}) m.set(0, c, true);
    const auto ones = m.row_ones(0);
    const std::vector<std::uint32_t> expected{3, 64, 65, 199};
    EXPECT_EQ(ones, expected);
}

TEST(BitMatrix, MultiplyByIdentity) {
    const auto m = random_matrix(7, 7, 42);
    const auto id = bit_matrix::identity(7);
    EXPECT_EQ(m.multiply(id), m);
    EXPECT_EQ(id.multiply(m), m);
}

TEST(BitMatrix, MultiplyKnownSmall) {
    // [1 1; 0 1] * [1 0; 1 1] = [0 1; 1 1] over GF(2)
    bit_matrix a(2, 2), b(2, 2);
    a.set(0, 0, true);
    a.set(0, 1, true);
    a.set(1, 1, true);
    b.set(0, 0, true);
    b.set(1, 0, true);
    b.set(1, 1, true);
    const auto c = a.multiply(b);
    EXPECT_FALSE(c.get(0, 0));
    EXPECT_TRUE(c.get(0, 1));
    EXPECT_TRUE(c.get(1, 0));
    EXPECT_TRUE(c.get(1, 1));
}

TEST(BitMatrix, InvertRoundTrip) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        auto m = random_matrix(16, 16, seed);
        const auto inv = m.inverted();
        if (!inv) continue;  // singular random matrix; skip
        EXPECT_EQ(m.multiply(*inv), bit_matrix::identity(16)) << seed;
        EXPECT_EQ(inv->multiply(m), bit_matrix::identity(16)) << seed;
    }
}

TEST(BitMatrix, SingularDetected) {
    bit_matrix m(3, 3);
    m.set(0, 0, true);
    m.set(1, 1, true);
    // row 2 all zero -> singular
    EXPECT_FALSE(m.inverted().has_value());
    // duplicate rows -> singular
    bit_matrix d(2, 2);
    d.set(0, 0, true);
    d.set(0, 1, true);
    d.set(1, 0, true);
    d.set(1, 1, true);
    EXPECT_FALSE(d.inverted().has_value());
}

TEST(BitMatrix, RankOfRandomProducts) {
    // rank(AB) <= min(rank A, rank B)
    const auto a = random_matrix(10, 14, 5);
    const auto b = random_matrix(14, 9, 6);
    const auto ab = a.multiply(b);
    EXPECT_LE(ab.rank(), std::min(a.rank(), b.rank()));
}

TEST(BitMatrix, SelectRowsAndCols) {
    const auto m = random_matrix(6, 8, 7);
    const std::uint32_t rows[] = {4, 1};
    const std::uint32_t cols[] = {0, 7, 3};
    const auto sub = m.select_rows(rows).select_cols(cols);
    EXPECT_EQ(sub.rows(), 2u);
    EXPECT_EQ(sub.cols(), 3u);
    EXPECT_EQ(sub.get(0, 0), m.get(4, 0));
    EXPECT_EQ(sub.get(0, 1), m.get(4, 7));
    EXPECT_EQ(sub.get(1, 2), m.get(1, 3));
}

TEST(BitMatrix, ConcatCols) {
    const auto a = random_matrix(4, 5, 8);
    const auto b = random_matrix(4, 70, 9);
    const auto c = a.concat_cols(b);
    EXPECT_EQ(c.cols(), 75u);
    for (std::uint32_t r = 0; r < 4; ++r) {
        for (std::uint32_t i = 0; i < 5; ++i) {
            EXPECT_EQ(c.get(r, i), a.get(r, i));
        }
        for (std::uint32_t i = 0; i < 70; ++i) {
            EXPECT_EQ(c.get(r, 5 + i), b.get(r, i));
        }
    }
}

TEST(BitMatrix, XorAndSwapRows) {
    auto m = random_matrix(3, 100, 10);
    const auto orig = m;
    m.xor_rows(0, 1);
    for (std::uint32_t c = 0; c < 100; ++c) {
        EXPECT_EQ(m.get(0, c), orig.get(0, c) != orig.get(1, c));
    }
    m.xor_rows(0, 1);  // involution
    EXPECT_EQ(m, orig);
    m.swap_rows(0, 2);
    for (std::uint32_t c = 0; c < 100; ++c) {
        EXPECT_EQ(m.get(0, c), orig.get(2, c));
        EXPECT_EQ(m.get(2, c), orig.get(0, c));
    }
}

}  // namespace
