// Exact closed-form pins for every code's encoding XOR count. These are
// the formulas behind Table I and Figs. 5-6; any drift in the encoders'
// op accounting trips these immediately.
#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/raid/intent_log.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

std::uint64_t encode_xors(const codes::raid6_code& c) {
    util::xoshiro256 rng(9);
    codes::stripe_buffer sb(c.rows(), c.n(), 8);
    sb.fill_random(rng, c.k());
    xorops::counting_scope scope;
    c.encode(sb.view());
    return scope.xors();
}

class ClosedForms
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(ClosedForms, LiberationOptimalEncode) {
    // The paper's theorem: exactly 2p(k-1).
    const core::liberation_optimal_code c(k(), p());
    EXPECT_EQ(encode_xors(c), 2ull * p() * (k() - 1));
}

TEST_P(ClosedForms, LiberationOriginalEncode) {
    // Table I: 2p(k-1) + (k-1)  (the k-1 extra bits). At k = 2 the smart
    // scheduler occasionally shaves one further XOR by deriving a Q row
    // from a P row, so only the upper bound is pinned there.
    const codes::liberation_bitmatrix_code c(k(), p());
    const std::uint64_t closed = 2ull * p() * (k() - 1) + (k() - 1);
    if (k() >= 3) {
        EXPECT_EQ(encode_xors(c), closed);
    } else {
        const auto got = encode_xors(c);
        EXPECT_LE(got, closed);
        EXPECT_GE(got, 2ull * p() * (k() - 1));
    }
}

TEST_P(ClosedForms, EvenOddEncode) {
    // P: (p-1)(k-1). Adjuster S: k-2. Q_d: k-1 XORs when the imaginary-row
    // column <d+1> is real (d = <j-1> for j = 1..k-1), k otherwise.
    const codes::evenodd_code c(k(), p());
    if (k() < 2) return;  // S degenerates
    const std::uint64_t q =
        static_cast<std::uint64_t>(k() - 1) * (k() - 1) +
        static_cast<std::uint64_t>(p() - k()) * k();
    EXPECT_EQ(encode_xors(c),
              static_cast<std::uint64_t>(p() - 1) * (k() - 1) + (k() - 2) + q);
}

TEST_P(ClosedForms, RdpEncode) {
    // P: (p-1)(k-1). Q_d over k+1 real inner columns (data + P): k-1 XORs
    // when the imaginary-row column of diagonal d is real, k otherwise.
    // Real inner columns are 0..k-1 and p-1; diagonal d's imaginary-row
    // column is <d+1>.
    if (k() > p() - 1) return;  // RDP restriction
    const codes::rdp_code c(k(), p());
    std::uint64_t q = 0;
    for (std::uint32_t d = 0; d < p() - 1; ++d) {
        const std::uint32_t imag_col = (d + 1) % p();
        const bool real = imag_col < k() || imag_col == p() - 1;
        q += real ? (k() - 1) : k();
    }
    EXPECT_EQ(encode_xors(c),
              static_cast<std::uint64_t>(p() - 1) * (k() - 1) + q);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedForms,
    ::testing::Values(std::make_tuple(5u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(7u, 4u), std::make_tuple(7u, 6u),
                      std::make_tuple(11u, 6u), std::make_tuple(11u, 10u),
                      std::make_tuple(13u, 12u), std::make_tuple(17u, 12u),
                      std::make_tuple(23u, 20u), std::make_tuple(31u, 23u)));

TEST(IntentLog, BasicSetSemantics) {
    raid::intent_log log;
    EXPECT_EQ(log.size(), 0u);
    EXPECT_TRUE(log.mark(3));
    EXPECT_TRUE(log.mark(7));
    EXPECT_TRUE(log.mark(3));  // idempotent
    EXPECT_EQ(log.size(), 2u);
    EXPECT_TRUE(log.is_dirty(3));
    EXPECT_FALSE(log.is_dirty(4));
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{3, 7}));
    log.clear(3);
    log.clear(99);  // clearing a clean stripe is a no-op
    EXPECT_EQ(log.size(), 1u);
    EXPECT_FALSE(log.is_dirty(3));
}

}  // namespace
