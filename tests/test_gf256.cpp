#include <gtest/gtest.h>

#include <vector>

#include "liberation/gf/gf256.hpp"
#include "liberation/util/rng.hpp"

namespace {

using liberation::gf::gf256;

const gf256& f() { return gf256::instance(); }

TEST(GF256, AdditionIsXor) {
    EXPECT_EQ(f().add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(f().add(0, 0xFF), 0xFF);
}

TEST(GF256, MultiplicativeIdentityAndZero) {
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(f().mul(static_cast<std::uint8_t>(a), 1),
                  static_cast<std::uint8_t>(a));
        EXPECT_EQ(f().mul(1, static_cast<std::uint8_t>(a)),
                  static_cast<std::uint8_t>(a));
        EXPECT_EQ(f().mul(static_cast<std::uint8_t>(a), 0), 0);
    }
}

TEST(GF256, KnownProducts) {
    // Classic vectors for polynomial 0x11d, g = 2.
    EXPECT_EQ(f().mul(2, 0x80), 0x1d);  // x * x^7 = x^8 = 0x1d
    EXPECT_EQ(f().pow_g(0), 1);
    EXPECT_EQ(f().pow_g(1), 2);
    EXPECT_EQ(f().pow_g(8), 0x1d);
    EXPECT_EQ(f().pow_g(255), 1);  // g^255 = 1
}

TEST(GF256, MulCommutative) {
    for (int a = 0; a < 256; a += 3) {
        for (int b = 0; b < 256; b += 5) {
            EXPECT_EQ(f().mul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b)),
                      f().mul(static_cast<std::uint8_t>(b),
                              static_cast<std::uint8_t>(a)));
        }
    }
}

TEST(GF256, MulAssociativeSampled) {
    liberation::util::xoshiro256 rng(1);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.next());
        const auto b = static_cast<std::uint8_t>(rng.next());
        const auto c = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
    }
}

TEST(GF256, DistributiveSampled) {
    liberation::util::xoshiro256 rng(2);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.next());
        const auto b = static_cast<std::uint8_t>(rng.next());
        const auto c = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(f().mul(a, f().add(b, c)),
                  f().add(f().mul(a, b), f().mul(a, c)));
    }
}

TEST(GF256, InverseExhaustive) {
    for (int a = 1; a < 256; ++a) {
        const auto inv = f().inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(f().mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
    }
}

TEST(GF256, DivisionInvertsMultiplication) {
    for (int a = 0; a < 256; a += 7) {
        for (int b = 1; b < 256; b += 11) {
            const auto q = f().div(static_cast<std::uint8_t>(a),
                                   static_cast<std::uint8_t>(b));
            EXPECT_EQ(f().mul(q, static_cast<std::uint8_t>(b)),
                      static_cast<std::uint8_t>(a));
        }
    }
}

TEST(GF256, GeneratorOrderIs255) {
    // g^i distinct for i in 0..254 — required for k <= 254 data disks.
    std::vector<bool> seen(256, false);
    for (std::uint32_t i = 0; i < 255; ++i) {
        const auto v = f().pow_g(i);
        EXPECT_FALSE(seen[v]) << "repeat at i=" << i;
        seen[v] = true;
    }
}

TEST(GF256, LogExpRoundTrip) {
    for (int a = 1; a < 256; ++a) {
        EXPECT_EQ(f().pow_g(f().log_g(static_cast<std::uint8_t>(a))),
                  static_cast<std::uint8_t>(a));
    }
}

TEST(GF256, MulRegionXorMatchesScalar) {
    liberation::util::xoshiro256 rng(3);
    std::vector<std::byte> src(333), dst(333), expect(333);
    rng.fill(src);
    rng.fill(dst);
    expect = dst;
    const std::uint8_t c = 0x3b;
    for (std::size_t i = 0; i < src.size(); ++i) {
        expect[i] ^= static_cast<std::byte>(
            f().mul(c, static_cast<std::uint8_t>(src[i])));
    }
    f().mul_region_xor(c, src.data(), dst.data(), src.size());
    EXPECT_EQ(dst, expect);
}

TEST(GF256, MulRegionSpecialConstants) {
    liberation::util::xoshiro256 rng(4);
    std::vector<std::byte> src(64), dst(64, std::byte{0xAA});
    rng.fill(src);
    // c = 0 -> zero; c = 1 -> copy.
    f().mul_region(0, src.data(), dst.data(), 64);
    for (auto b : dst) EXPECT_EQ(b, std::byte{0});
    f().mul_region(1, src.data(), dst.data(), 64);
    EXPECT_EQ(dst, src);
}

}  // namespace
