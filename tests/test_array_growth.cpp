#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config growable_config(std::uint32_t k, std::uint32_t p) {
    array_config cfg;
    cfg.k = k;
    cfg.p = p;
    cfg.element_size = 256;
    cfg.stripes = 6;
    cfg.sector_size = 256;
    cfg.layout = parity_layout::parity_first;
    return cfg;
}

TEST(ParityFirstLayout, MappingIsStatic) {
    stripe_map m(4, 11, 64, 8, parity_layout::parity_first);
    for (std::size_t s = 0; s < 8; ++s) {
        EXPECT_EQ(m.locate(s, m.k()).disk, 0u);      // P on disk 0
        EXPECT_EQ(m.locate(s, m.k() + 1).disk, 1u);  // Q on disk 1
        for (std::uint32_t j = 0; j < 4; ++j) {
            EXPECT_EQ(m.locate(s, j).disk, j + 2);
            EXPECT_EQ(m.column_of_disk(s, j + 2), j);
        }
        EXPECT_EQ(m.column_of_disk(s, 0), m.k());
        EXPECT_EQ(m.column_of_disk(s, 1), m.k() + 1);
    }
}

TEST(ArrayGrowth, AddDiskWithoutParityRecomputation) {
    raid6_array a(growable_config(4, 11));
    util::xoshiro256 rng(1);
    std::vector<std::byte> image(a.capacity());
    rng.fill(image);
    ASSERT_TRUE(a.write(0, image));

    // Snapshot every stripe's strips before growth.
    std::vector<codes::stripe_buffer> before;
    std::vector<std::uint32_t> erased;
    for (std::size_t s = 0; s < a.map().stripes(); ++s) {
        before.emplace_back(a.make_stripe_buffer());
        ASSERT_TRUE(a.load_stripe(s, before.back().view(), erased));
        ASSERT_TRUE(erased.empty());
    }

    const std::size_t old_capacity = a.capacity();
    const std::uint64_t p_writes_before =
        a.disk(0).stats().bytes_written + a.disk(1).stats().bytes_written;
    a.add_data_disk();
    const std::uint64_t p_writes_after =
        a.disk(0).stats().bytes_written + a.disk(1).stats().bytes_written;

    EXPECT_EQ(a.map().k(), 5u);
    EXPECT_EQ(a.disk_count(), 7u);
    EXPECT_GT(a.capacity(), old_capacity);
    // THE property: growth wrote no parity at all.
    EXPECT_EQ(p_writes_before, p_writes_after);

    // Every stripe is immediately parity-consistent at the new width, the
    // old columns are untouched, and the new column reads zero.
    codes::stripe_buffer buf = a.make_stripe_buffer();
    for (std::size_t s = 0; s < a.map().stripes(); ++s) {
        ASSERT_TRUE(a.load_stripe(s, buf.view(), erased));
        ASSERT_TRUE(erased.empty());
        EXPECT_TRUE(a.code().verify(buf.view())) << "stripe " << s;
        for (std::uint32_t j = 0; j < 4; ++j) {  // old data columns
            EXPECT_EQ(std::memcmp(buf.view().strip(j).data(),
                                  before[s].view().strip(j).data(),
                                  buf.view().strip_size()),
                      0);
        }
        for (auto b : buf.view().strip(4)) EXPECT_EQ(b, std::byte{0});
    }
}

TEST(ArrayGrowth, GrownArrayIsFullyOperational) {
    raid6_array a(growable_config(3, 7));
    util::xoshiro256 rng(2);
    std::vector<std::byte> img(a.capacity());
    rng.fill(img);
    ASSERT_TRUE(a.write(0, img));
    a.add_data_disk();
    a.add_data_disk();
    EXPECT_EQ(a.map().k(), 5u);

    // Write fresh data across the grown device and survive 2 failures.
    std::vector<std::byte> fresh(a.capacity());
    rng.fill(fresh);
    ASSERT_TRUE(a.write(0, fresh));
    a.fail_disk(2);
    a.fail_disk(6);  // one original, one new disk
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, fresh);

    a.replace_disk(2);
    a.replace_disk(6);
    const std::uint32_t disks[] = {2, 6};
    ASSERT_TRUE(rebuild_disks(a, disks).success);
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, fresh);
}

TEST(ArrayGrowth, GrowthCappedByPrime) {
    raid6_array a(growable_config(4, 5));
    a.add_data_disk();  // k = 5 = p: at the cap now
    EXPECT_EQ(a.map().k(), 5u);
    EXPECT_DEATH(a.add_data_disk(), "precondition");
}

TEST(ArrayGrowth, RotatingLayoutRefusesGrowth) {
    array_config cfg;
    cfg.k = 4;
    cfg.element_size = 256;
    cfg.stripes = 4;
    raid6_array a(cfg);
    EXPECT_DEATH(a.add_data_disk(), "precondition");
}

}  // namespace
