#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/evenodd.hpp"
#include "code_testkit.hpp"

namespace {

using liberation::codes::evenodd_code;

class EvenOddSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    evenodd_code make() const {
        return {std::get<1>(GetParam()), std::get<0>(GetParam())};
    }
};

TEST_P(EvenOddSweep, AllErasuresRoundTrip) {
    code_testkit::check_all_erasures(make(), 16, 1);
}

TEST_P(EvenOddSweep, VerifyDetectsCorruption) {
    code_testkit::check_verify(make(), 2);
}

TEST_P(EvenOddSweep, UpdatesKeepParityConsistent) {
    code_testkit::check_updates(make(), 3);
}

TEST_P(EvenOddSweep, Linearity) { code_testkit::check_linearity(make(), 4); }

INSTANTIATE_TEST_SUITE_P(
    Sweep, EvenOddSweep,
    ::testing::Values(std::make_tuple(3u, 1u), std::make_tuple(3u, 3u),
                      std::make_tuple(5u, 2u), std::make_tuple(5u, 5u),
                      std::make_tuple(7u, 4u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 8u), std::make_tuple(11u, 11u),
                      std::make_tuple(13u, 13u)));

TEST(EvenOdd, GeometryAccessors) {
    const evenodd_code c(6, 7);
    EXPECT_EQ(c.k(), 6u);
    EXPECT_EQ(c.p(), 7u);
    EXPECT_EQ(c.rows(), 6u);  // p - 1
    EXPECT_EQ(c.n(), 8u);
    EXPECT_EQ(c.name(), "evenodd(k=6,p=7)");
}

TEST(EvenOdd, DefaultPrimeSelection) {
    EXPECT_EQ(evenodd_code(4).p(), 5u);
    EXPECT_EQ(evenodd_code(5).p(), 5u);
    EXPECT_EQ(evenodd_code(6).p(), 7u);
}

TEST(EvenOdd, UpdateCostIsHighOnAdjusterDiagonal) {
    // Bits on diagonal p-1 touch every Q element: cost 1 + (p-1).
    const evenodd_code c(5, 5);
    auto stripe = test_support::make_encoded_stripe(c, 8, 5);
    const std::vector<std::byte> delta(8, std::byte{0xAA});
    // (row, col) with row + col == p-1, e.g. (3, 1).
    EXPECT_EQ(c.apply_update(stripe.view(), 3, 1, delta), 1u + (5u - 1u));
    // Off-diagonal position costs exactly 2.
    EXPECT_EQ(c.apply_update(stripe.view(), 0, 1, delta), 2u);
}

}  // namespace
