#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "liberation/integrity/integrity_region.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/intent_log.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config cfg(std::uint32_t k = 4, std::size_t stripes = 8) {
    array_config c;
    c.k = k;
    c.element_size = 256;
    c.stripes = stripes;
    c.sector_size = 256;
    return c;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

void corrupt(raid6_array& a, std::size_t stripe, std::uint32_t col,
             std::uint64_t seed, std::size_t len = 32) {
    util::xoshiro256 rng(seed);
    const auto loc = a.map().locate(stripe, col);
    a.disk(loc.disk).inject_silent_corruption(loc.offset, len, rng);
}

TEST(IntegrityRegion, RecordVerifyRoundTrip) {
    integrity::integrity_region region(4096, 256);
    EXPECT_EQ(region.blocks(), 16u);
    const auto bytes = pattern(512, 1);

    // Freshly-constructed regions describe an all-zero device.
    const std::vector<std::byte> zeros(512, std::byte{0});
    EXPECT_TRUE(region.verify(0, zeros));
    EXPECT_FALSE(region.verify(0, bytes));

    region.record(256, std::span<const std::byte>(bytes).subspan(0, 256));
    EXPECT_TRUE(
        region.verify(256, std::span<const std::byte>(bytes).subspan(0, 256)));
    // Neighbouring blocks are untouched.
    EXPECT_TRUE(
        region.verify(0, std::span<const std::byte>(zeros).subspan(0, 256)));

    region.corrupt_block(1, 0xdeadbeef);
    EXPECT_FALSE(
        region.verify(256, std::span<const std::byte>(bytes).subspan(0, 256)));
}

TEST(VerifiedRead, HealsSilentCorruption) {
    raid6_array a(cfg());  // verify_reads defaults to true
    ASSERT_TRUE(a.verify_reads());
    const auto data = pattern(a.capacity(), 2);
    ASSERT_TRUE(a.write(0, data));

    corrupt(a, 1, 2, 3);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);  // the rot never reached the host

    const array_stats stats = a.stats();
    EXPECT_GE(stats.checksum_mismatches, 1u);
    EXPECT_GE(stats.reads_self_healed, 1u);
    EXPECT_EQ(stats.reads_unrecoverable, 0u);

    // Read-repair wrote the fix back: a second pass is mismatch-free.
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(a.stats().checksum_mismatches, stats.checksum_mismatches);
    EXPECT_EQ(scrub_array(a).clean, a.map().stripes());
}

TEST(VerifiedRead, SmallReadThroughCorruptElementHeals) {
    raid6_array a(cfg());
    const auto data = pattern(a.capacity(), 4);
    ASSERT_TRUE(a.write(0, data));

    // Corrupt exactly the element a small read will land on.
    corrupt(a, 0, 0, 5, 16);
    std::vector<std::byte> out(64);
    ASSERT_TRUE(a.read(32, out));
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 32));
    EXPECT_GE(a.stats().reads_self_healed, 1u);
}

TEST(VerifiedRead, TwoCorruptColumnsStillHeal) {
    // Two rotten columns of one stripe are within the two-erasure budget
    // once the checksums pinpoint them.
    raid6_array a(cfg());
    const auto data = pattern(a.capacity(), 6);
    ASSERT_TRUE(a.write(0, data));
    corrupt(a, 2, 0, 7);
    corrupt(a, 2, 3, 8);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GE(a.stats().reads_self_healed, 1u);
    EXPECT_EQ(a.stats().reads_unrecoverable, 0u);
}

TEST(VerifiedRead, ThreeCorruptColumnsFailLoudlyNotSilently) {
    // Beyond the decode budget the read must refuse — returning the rotten
    // bytes "successfully" is the one forbidden outcome.
    raid6_array a(cfg());
    ASSERT_TRUE(a.write(0, pattern(a.capacity(), 9)));
    corrupt(a, 0, 0, 10);
    corrupt(a, 0, 1, 11);
    corrupt(a, 0, 2, 12);

    std::vector<std::byte> out(a.capacity());
    EXPECT_FALSE(a.read(0, out));
    EXPECT_GE(a.stats().reads_unrecoverable, 1u);
}

TEST(VerifiedRead, StaleChecksumMetadataIsRepairedNotTrusted) {
    // Flip a stored CRC instead of the data. The decode matches the raw
    // bytes and both parities corroborate them, so the *metadata* is the
    // damaged side: refresh it, count it, and leave the data alone.
    raid6_array a(cfg());
    const auto data = pattern(a.capacity(), 13);
    ASSERT_TRUE(a.write(0, data));

    const auto loc = a.map().locate(1, 1);
    const std::size_t block = loc.offset / a.integrity_block();
    a.integrity(loc.disk).corrupt_block(block, 0x5a5a5a5a);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GE(a.stats().checksum_metadata_repaired, 1u);
    EXPECT_EQ(a.stats().reads_unrecoverable, 0u);

    // The refreshed CRC verifies again: next read is mismatch-free.
    const auto mismatches = a.stats().checksum_mismatches;
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(a.stats().checksum_mismatches, mismatches);
}

TEST(Rebuild, VerifiesReconstructionsAgainstCorruptSurvivor) {
    // Silent corruption on a survivor during rebuild: without checksums
    // the reconstruction would splice the rot into the replacement disk.
    // The verified rebuild pinpoints the rotten survivor, decodes around
    // it, and commits only checksum-clean strips.
    raid6_array a(cfg());
    const auto data = pattern(a.capacity(), 14);
    ASSERT_TRUE(a.write(0, data));

    corrupt(a, 2, a.map().column_of_disk(2, 1), 15);
    const auto result = fail_replace_rebuild(a, 0);
    EXPECT_TRUE(result.success);

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_EQ(scrub_array(a).uncorrectable, 0u);
}

TEST(IntentLog, CapacityHighWaterAndRejection) {
    intent_log log(2);
    EXPECT_EQ(log.capacity(), 2u);
    EXPECT_TRUE(log.mark(0));
    EXPECT_TRUE(log.mark(5, 0b1010));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.high_water(), 2u);

    // Full: a third stripe is refused; re-marking a present stripe is not.
    EXPECT_FALSE(log.mark(7));
    EXPECT_EQ(log.rejected(), 1u);
    EXPECT_TRUE(log.mark(5, 0b0100));
    EXPECT_EQ(log.columns(5), 0b1110u);

    log.clear(0);
    EXPECT_TRUE(log.mark(7));
    EXPECT_EQ(log.high_water(), 2u);  // never exceeded capacity
}

TEST(IntentLog, ArrayLogFullFailsWriteLoudly) {
    auto c = cfg();
    c.intent_log_entries = 1;
    raid6_array a(c);
    const auto data = pattern(a.capacity(), 16);
    ASSERT_TRUE(a.write(0, data));

    // Tear stripe 0 so its journal entry stays armed across the reboot.
    a.simulate_power_loss_after(1);
    (void)a.write(100, pattern(50, 17));
    a.reboot();
    ASSERT_EQ(a.journal().size(), 1u);

    // The single NVRAM slot is occupied: a write to a different stripe
    // must fail loudly rather than proceed unjournaled.
    const std::size_t other = a.map().stripe_data_size() * 2;
    EXPECT_FALSE(a.write(other, pattern(50, 18)));
    EXPECT_GE(a.stats().writes_rejected_log_full, 1u);

    // Recovery drains the log; the same write then succeeds.
    EXPECT_EQ(a.recover_write_hole(), 1u);
    EXPECT_EQ(a.journal().size(), 0u);
    EXPECT_TRUE(a.write(other, pattern(50, 18)));
}

TEST(Integrity, CrashPlusCorruptionOnSameStripe) {
    // The compound failure: power dies mid-small-write (stripe torn) AND
    // bit-rot lands on a *different* column of the same stripe while the
    // host is down. Replay must re-sync the tear using raw bytes for the
    // journaled columns only, heal the rotten untargeted column from the
    // candidate decode, and never serve a byte that fails its checksum.
    raid6_array a(cfg());
    const auto image = pattern(a.capacity(), 19);
    ASSERT_TRUE(a.write(0, image));

    a.simulate_power_loss_after(1);
    const auto fresh = pattern(50, 20);
    (void)a.write(100, fresh);  // targets data column 0 (+ P and Q)
    EXPECT_FALSE(a.powered());

    // Rot on untargeted data column 2 of the torn stripe, while unpowered.
    ASSERT_EQ(a.journal().columns(0) & (std::uint64_t{1} << 2), 0u);
    corrupt(a, 0, 2, 21);

    a.reboot();
    ASSERT_TRUE(a.journal().is_dirty(0));
    EXPECT_GE(a.recover_write_hole(), 1u);
    EXPECT_EQ(a.journal().size(), 0u);

    // Old-or-new at the torn extent, the original image everywhere else —
    // in particular the rotten column came back byte-exact.
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    const bool extent_old = std::equal(out.begin() + 100, out.begin() + 150,
                                       image.begin() + 100);
    const bool extent_new =
        std::equal(out.begin() + 100, out.begin() + 150, fresh.begin());
    EXPECT_TRUE(extent_old || extent_new);
    EXPECT_TRUE(std::equal(out.begin(), out.begin() + 100, image.begin()));
    EXPECT_TRUE(std::equal(out.begin() + 150, out.end(), image.begin() + 150));

    const auto scrub = scrub_array(a);
    EXPECT_EQ(scrub.uncorrectable, 0u);
    EXPECT_EQ(a.stats().reads_unrecoverable, 0u);
}

}  // namespace
