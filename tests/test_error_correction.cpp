#include <gtest/gtest.h>

#include <tuple>

#include "liberation/core/error_correction.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;
using core::scrub_status;

class ScrubSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(ScrubSweep, CleanStripeReportsClean) {
    const core::liberation_optimal_code code(k(), p());
    auto stripe = test_support::make_encoded_stripe(code, 16, 1);
    EXPECT_TRUE(core::stripe_consistent(stripe.view(), code.geom()));
    const auto report = code.scrub(stripe.view());
    EXPECT_EQ(report.status, scrub_status::clean);
}

TEST_P(ScrubSweep, EveryDataColumnCorruptionLocatedAndFixed) {
    const core::liberation_optimal_code code(k(), p());
    util::xoshiro256 rng(17);
    for (std::uint32_t c = 0; c < k(); ++c) {
        auto stripe = test_support::make_encoded_stripe(code, 16, 100 + c);
        codes::stripe_buffer pristine(p(), k() + 2, 16);
        codes::copy_stripe(pristine.view(), stripe.view());

        // Corrupt a few bytes across random elements of column c.
        for (int hit = 0; hit < 3; ++hit) {
            const auto row = static_cast<std::uint32_t>(rng.next_below(p()));
            std::byte flip{0};
            while (flip == std::byte{0}) {
                flip = static_cast<std::byte>(rng.next() & 0xff);
            }
            stripe.view().element(row, c)[rng.next_below(16)] ^= flip;
        }
        ASSERT_FALSE(core::stripe_consistent(stripe.view(), code.geom()));

        const auto report = code.scrub(stripe.view());
        EXPECT_EQ(report.status, scrub_status::corrected_data);
        EXPECT_EQ(report.column, c);
        EXPECT_TRUE(codes::stripes_equal(stripe.view(), pristine.view()));
    }
}

TEST_P(ScrubSweep, ParityCorruptionFixed) {
    const core::liberation_optimal_code code(k(), p());
    util::xoshiro256 rng(29);
    for (const bool corrupt_q : {false, true}) {
        auto stripe = test_support::make_encoded_stripe(code, 16, 7);
        codes::stripe_buffer pristine(p(), k() + 2, 16);
        codes::copy_stripe(pristine.view(), stripe.view());

        const std::uint32_t col = corrupt_q ? code.q_column() : code.p_column();
        stripe.view().element(0, col)[3] ^= std::byte{0x40};
        stripe.view().element(p() - 1, col)[9] ^= std::byte{0x04};

        const auto report = code.scrub(stripe.view());
        EXPECT_EQ(report.status, corrupt_q ? scrub_status::corrected_q
                                           : scrub_status::corrected_p);
        EXPECT_TRUE(codes::stripes_equal(stripe.view(), pristine.view()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScrubSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(7u, 5u),
                      std::make_tuple(11u, 11u), std::make_tuple(13u, 8u)));

TEST(Scrub, TwoColumnCorruptionUncorrectable) {
    // Two corrupt columns violate the single-column model; the scrubber
    // must refuse rather than "fix" the wrong column.
    const core::liberation_optimal_code code(6, 7);
    auto stripe = test_support::make_encoded_stripe(code, 16, 55);
    stripe.view().element(1, 0)[0] ^= std::byte{0xff};
    stripe.view().element(2, 3)[5] ^= std::byte{0x55};
    const auto report = code.scrub(stripe.view());
    EXPECT_EQ(report.status, scrub_status::uncorrectable);
}

TEST(Scrub, SingleBitFlipInEveryPosition) {
    // Property: a single flipped bit anywhere in the stripe is located and
    // repaired. (MDS columns => unique localization.)
    const core::liberation_optimal_code code(4, 5);
    for (std::uint32_t col = 0; col < code.n(); ++col) {
        for (std::uint32_t row = 0; row < code.rows(); ++row) {
            auto stripe = test_support::make_encoded_stripe(code, 8, 1000);
            codes::stripe_buffer pristine(5, 6, 8);
            codes::copy_stripe(pristine.view(), stripe.view());
            stripe.view().element(row, col)[row % 8] ^= std::byte{1};

            const auto report = code.scrub(stripe.view());
            EXPECT_NE(report.status, scrub_status::clean);
            EXPECT_NE(report.status, scrub_status::uncorrectable)
                << "col=" << col << " row=" << row;
            EXPECT_TRUE(codes::stripes_equal(stripe.view(), pristine.view()))
                << "col=" << col << " row=" << row;
        }
    }
}

}  // namespace
