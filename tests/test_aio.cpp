// Async submission-queue I/O pipeline: ring/queue_pair mechanics
// (merging, split-retry failure isolation, completion ordering),
// completion-stage decorator composition with the retrying io_policy,
// and end-to-end equivalence of the pipelined array paths (full-stripe
// writes, rebuild, scrub) against the synchronous queue-depth-1 paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "liberation/aio/queue_pair.hpp"
#include "liberation/aio/ring.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/thread_pool.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

array_config aio_config_with_depth(std::size_t qd) {
    array_config cfg;
    cfg.k = 4;  // p = 5, 6 disks
    cfg.element_size = 256;
    cfg.stripes = 16;
    cfg.sector_size = 256;
    cfg.io_queue_depth = qd;
    return cfg;
}

// Raw medium snapshot of every disk, for byte-identity comparisons.
std::vector<std::vector<std::byte>> disk_images(raid6_array& a) {
    std::vector<std::vector<std::byte>> images;
    const std::size_t cap = a.map().disk_capacity();
    for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
        std::vector<std::byte> img(cap);
        EXPECT_EQ(a.disk(d).read(0, img), io_status::ok);
        images.push_back(std::move(img));
    }
    return images;
}

// ---- ring ------------------------------------------------------------

TEST(AioRing, PushPopWrapAround) {
    aio::ring<int> r(3);
    EXPECT_EQ(r.capacity(), 3u);
    EXPECT_TRUE(r.empty());
    EXPECT_TRUE(r.push(1));
    EXPECT_TRUE(r.push(2));
    EXPECT_TRUE(r.push(3));
    EXPECT_TRUE(r.full());
    EXPECT_FALSE(r.push(4));  // full: refused
    EXPECT_EQ(r.pop(), 1);
    EXPECT_TRUE(r.push(4));  // wraps
    EXPECT_EQ(r.pop(), 2);
    EXPECT_EQ(r.pop(), 3);
    EXPECT_EQ(r.pop(), 4);
    EXPECT_TRUE(r.empty());
}

TEST(AioRing, ZeroCapacityIsClampedToOne) {
    aio::ring<int> r(0);
    EXPECT_EQ(r.capacity(), 1u);
    EXPECT_TRUE(r.push(7));
    EXPECT_TRUE(r.full());
}

// ---- queue_pair with a scripted backend ------------------------------

// Records every execute() and answers from a script keyed by
// (disk, offset, len); unscripted requests succeed.
struct fake_backend final : aio::io_backend {
    struct call {
        std::uint32_t disk;
        aio::op_kind kind;
        std::size_t offset;
        std::size_t len;
    };
    std::vector<call> calls;
    // (disk, offset, len) -> status for exactly-matching executes.
    std::vector<std::tuple<std::uint32_t, std::size_t, std::size_t, io_status>>
        script;

    io_status execute(const aio::io_desc& d) override {
        calls.push_back({d.disk, d.kind, d.offset, d.len});
        for (const auto& [disk, off, len, st] : script) {
            if (disk == d.disk && off == d.offset && len == d.len) return st;
        }
        return io_status::ok;
    }
};

TEST(AioQueuePair, AdjacentReadsMergeIntoOneTransfer) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 4;
    aio::queue_pair qp(backend, 2, cfg);

    std::vector<std::byte> buf(4 * 64);
    for (std::uint64_t i = 0; i < 4; ++i) {
        aio::io_desc d;
        d.disk = 0;
        d.kind = aio::op_kind::read;
        d.offset = i * 64;
        d.data = buf.data() + i * 64;
        d.len = 64;
        d.user_data = 100 + i;
        qp.submit(d);
    }
    qp.drain();

    ASSERT_EQ(backend.calls.size(), 1u);  // one coalesced transfer
    EXPECT_EQ(backend.calls[0].offset, 0u);
    EXPECT_EQ(backend.calls[0].len, 4u * 64u);
    EXPECT_EQ(qp.stats().merges, 3u);
    EXPECT_EQ(qp.stats().batches, 1u);

    // One completion per *submitted* request, in submission order.
    const auto cqes = qp.take_completions();
    ASSERT_EQ(cqes.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(cqes[i].user_data, 100 + i);
        EXPECT_EQ(cqes[i].status, io_status::ok);
    }
    EXPECT_EQ(qp.stats().completed, 4u);
}

TEST(AioQueuePair, WritesAreNeverCoalesced) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 4;
    aio::queue_pair qp(backend, 1, cfg);

    std::vector<std::byte> buf(4 * 64);
    for (std::uint64_t i = 0; i < 4; ++i) {
        aio::io_desc d;
        d.disk = 0;
        d.kind = aio::op_kind::write;
        d.offset = i * 64;
        d.data = buf.data() + i * 64;
        d.len = 64;
        qp.submit(d);
    }
    qp.drain();
    EXPECT_EQ(backend.calls.size(), 4u);  // adjacent, but writes stay split
    EXPECT_EQ(qp.stats().merges, 0u);
}

TEST(AioQueuePair, DiscontiguousMemoryPreventsMerge) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 2;
    aio::queue_pair qp(backend, 1, cfg);

    // Adjacent on the medium, but the destination buffers are not
    // contiguous — a single transfer could not land in place.
    std::vector<std::byte> b1(64), b2(64);
    aio::io_desc d;
    d.disk = 0;
    d.kind = aio::op_kind::read;
    d.offset = 0;
    d.data = b1.data();
    d.len = 64;
    qp.submit(d);
    d.offset = 64;
    d.data = b2.data();
    qp.submit(d);
    qp.drain();
    EXPECT_EQ(backend.calls.size(), 2u);
    EXPECT_EQ(qp.stats().merges, 0u);
}

TEST(AioQueuePair, SplitRetryLocalizesMergedFailure) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 3;
    aio::queue_pair qp(backend, 1, cfg);

    // The merged 192-byte transfer fails; on the per-fragment re-drive
    // only the middle strip is actually bad. (Scripted before submission:
    // the window flushes as soon as it fills.)
    backend.script.emplace_back(0, 0, 3 * 64, io_status::unreadable_sector);
    backend.script.emplace_back(0, 64, 64, io_status::unreadable_sector);

    std::vector<std::byte> buf(3 * 64);
    for (std::uint64_t i = 0; i < 3; ++i) {
        aio::io_desc d;
        d.disk = 0;
        d.kind = aio::op_kind::read;
        d.offset = i * 64;
        d.data = buf.data() + i * 64;
        d.len = 64;
        d.user_data = i;
        qp.submit(d);
    }
    qp.drain();

    // merged attempt + 3 fragment re-drives
    EXPECT_EQ(backend.calls.size(), 4u);
    EXPECT_EQ(qp.stats().split_retries, 1u);
    const auto cqes = qp.take_completions();
    ASSERT_EQ(cqes.size(), 3u);
    EXPECT_EQ(cqes[0].status, io_status::ok);
    EXPECT_EQ(cqes[1].status, io_status::unreadable_sector);
    EXPECT_EQ(cqes[2].status, io_status::ok);
}

TEST(AioQueuePair, OutOfRangeDiskCompletesWithoutBackend) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 2;
    aio::queue_pair qp(backend, 1, cfg);
    aio::io_desc d;
    d.disk = 9;
    d.user_data = 42;
    qp.submit(d);
    qp.drain();
    EXPECT_TRUE(backend.calls.empty());
    const auto cqes = qp.take_completions();
    ASSERT_EQ(cqes.size(), 1u);
    EXPECT_EQ(cqes[0].user_data, 42u);
    EXPECT_EQ(cqes[0].status, io_status::out_of_range);
}

TEST(AioQueuePair, CompletionStagesRunInRegistrationOrder) {
    fake_backend backend;
    aio::aio_config cfg;
    cfg.queue_depth = 1;
    aio::queue_pair qp(backend, 1, cfg);
    std::vector<int> order;
    qp.add_completion_stage([&](const aio::io_desc&, io_status s) {
        order.push_back(1);
        return s;
    });
    qp.add_completion_stage([&](const aio::io_desc&, io_status s) {
        order.push_back(2);
        // The last stage owns the final verdict.
        return s == io_status::ok ? io_status::checksum_mismatch : s;
    });
    std::vector<std::byte> buf(64);
    aio::io_desc d;
    d.disk = 0;
    d.kind = aio::op_kind::read;
    d.data = buf.data();
    d.len = 64;
    qp.submit(d);
    qp.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    ASSERT_EQ(qp.completions().size(), 1u);
    EXPECT_EQ(qp.completions()[0].status, io_status::checksum_mismatch);
}

// ---- decorator composition on the array's engine ---------------------

// Retry/backoff is an execution-stage concern (inside disk_backend via
// io_policy); checksum verification is a completion stage. A transient
// error must be retried *before* verification sees the request; a
// checksum mismatch must never be retried.
TEST(AioDecorators, TransientRetriedThenVerified) {
    raid6_array a(aio_config_with_depth(8));
    const auto data = pattern_bytes(a.capacity(), 11);
    ASSERT_TRUE(a.write(0, data));

    const strip_location loc = a.map().locate(0, 0);
    a.disk(loc.disk).schedule_transient_fault(io_kind::read, 0);

    std::vector<std::byte> buf(a.map().strip_size());
    aio::io_desc d;
    d.disk = loc.disk;
    d.kind = aio::op_kind::read;
    d.offset = loc.offset;
    d.data = buf.data();
    d.len = buf.size();
    d.flags = aio::flag_verify;
    a.aio_engine().submit(d);
    a.aio_engine().drain();
    const auto cqes = a.aio_engine().take_completions();
    ASSERT_EQ(cqes.size(), 1u);
    EXPECT_EQ(cqes[0].status, io_status::ok);          // retried, then clean
    EXPECT_GE(a.io_stats().transient_masked, 1u);      // policy did the retry
    EXPECT_EQ(a.stats().checksum_mismatches, 0u);      // verify saw good bytes
}

TEST(AioDecorators, ChecksumMismatchIsNotRetried) {
    raid6_array a(aio_config_with_depth(8));
    const auto data = pattern_bytes(a.capacity(), 12);
    ASSERT_TRUE(a.write(0, data));

    const strip_location loc = a.map().locate(0, 0);
    util::xoshiro256 rng(7);
    a.disk(loc.disk).inject_silent_corruption(loc.offset, 64, rng);
    const auto retries_before = a.io_stats().retries;

    std::vector<std::byte> buf(a.map().strip_size());
    aio::io_desc d;
    d.disk = loc.disk;
    d.kind = aio::op_kind::read;
    d.offset = loc.offset;
    d.data = buf.data();
    d.len = buf.size();
    d.flags = aio::flag_verify;
    a.aio_engine().submit(d);
    a.aio_engine().drain();
    const auto cqes = a.aio_engine().take_completions();
    ASSERT_EQ(cqes.size(), 1u);
    EXPECT_EQ(cqes[0].status, io_status::checksum_mismatch);
    EXPECT_GE(a.stats().checksum_mismatches, 1u);
    // Re-reading rotten bytes cannot un-rot them: no retry was spent.
    EXPECT_EQ(a.io_stats().retries, retries_before);
}

// ---- pipelined array paths vs the synchronous ones -------------------

TEST(AioArray, PipelinedFullStripeWritesAreByteIdentical) {
    raid6_array sync_a(aio_config_with_depth(1));
    raid6_array aio_a(aio_config_with_depth(8));
    const auto data = pattern_bytes(sync_a.capacity(), 21);
    ASSERT_TRUE(sync_a.write(0, data));
    ASSERT_TRUE(aio_a.write(0, data));

    EXPECT_EQ(disk_images(sync_a), disk_images(aio_a));
    EXPECT_EQ(sync_a.stats().full_stripe_writes,
              aio_a.stats().full_stripe_writes);
    EXPECT_GE(aio_a.stats().aio_inflight_highwater, 8u);

    std::vector<std::byte> out(aio_a.capacity());
    ASSERT_TRUE(aio_a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(AioArray, PipelinedRebuildMatchesSynchronousRebuild) {
    const auto run = [](std::size_t qd) {
        raid6_array a(aio_config_with_depth(qd));
        const auto data = pattern_bytes(a.capacity(), 22);
        EXPECT_TRUE(a.write(0, data));
        a.fail_disk(2);
        a.replace_disk(2);
        const std::uint32_t disks[] = {2};
        const rebuild_result res = rebuild_disks(a, disks, nullptr);
        EXPECT_TRUE(res.success);
        EXPECT_EQ(res.stripes_rebuilt, a.map().stripes());
        std::vector<std::byte> out(a.capacity());
        EXPECT_TRUE(a.read(0, out));
        EXPECT_EQ(out, data);
        return disk_images(a);
    };
    const auto sync_disks = run(1);
    const auto aio_disks = run(8);
    EXPECT_EQ(sync_disks, aio_disks);
}

TEST(AioArray, PipelinedRebuildCoalescesReads) {
    raid6_array a(aio_config_with_depth(8));
    const auto data = pattern_bytes(a.capacity(), 23);
    ASSERT_TRUE(a.write(0, data));
    const auto merges_before = a.stats().aio_merges;
    a.fail_disk(1);
    a.replace_disk(1);
    const std::uint32_t disks[] = {1};
    ASSERT_TRUE(rebuild_disks(a, disks, nullptr).success);
    EXPECT_GT(a.stats().aio_merges, merges_before);
    EXPECT_GT(a.stats().aio_batches, 0u);
}

TEST(AioArray, PipelinedScrubMatchesSynchronousScrub) {
    const auto run = [](std::size_t qd) {
        raid6_array a(aio_config_with_depth(qd));
        const auto data = pattern_bytes(a.capacity(), 24);
        EXPECT_TRUE(a.write(0, data));
        // Same deterministic damage in both arrays.
        const strip_location c = a.map().locate(3, 1);
        util::xoshiro256 rng(99);
        a.disk(c.disk).inject_silent_corruption(c.offset, 64, rng);
        const strip_location l = a.map().locate(7, 2);
        a.disk(l.disk).inject_latent_error(l.offset, 64);
        return scrub_array(a);
    };
    const scrub_summary s1 = run(1);
    const scrub_summary s8 = run(8);
    EXPECT_EQ(s1.stripes_scanned, s8.stripes_scanned);
    EXPECT_EQ(s1.clean, s8.clean);
    EXPECT_EQ(s1.repaired_data, s8.repaired_data);
    EXPECT_EQ(s1.repaired_parity, s8.repaired_parity);
    EXPECT_EQ(s1.repaired_metadata, s8.repaired_metadata);
    EXPECT_EQ(s1.uncorrectable, s8.uncorrectable);
    EXPECT_EQ(s1.degraded_scrubbed, s8.degraded_scrubbed);
    EXPECT_EQ(s1.latent_columns, s8.latent_columns);
    EXPECT_EQ(s1.checksum_mismatch_columns, s8.checksum_mismatch_columns);
    EXPECT_GE(s1.repaired_data + s1.degraded_scrubbed, 1u);  // damage seen
}

// A disk tripping mid-run must fail only its own column writes: the
// other columns of every stripe still land and the stripe set stays
// fully decodable — the ring does not wholesale-fail on one bad disk.
TEST(AioArray, DiskTripMidRunFailsOnlyThatDisk) {
    array_config cfg = aio_config_with_depth(8);
    cfg.health.max_transient_errors = 1;  // second exhausted I/O trips
    cfg.io_retry.max_retries = 1;
    raid6_array a(cfg);
    const auto data = pattern_bytes(a.capacity(), 25);

    // Every write to disk 3 fails; the policy exhausts its retries, the
    // health monitor trips the disk partway through the pipelined run.
    a.disk(3).set_transient_fault_rates(0.0, 1.0, 777);
    ASSERT_TRUE(a.write(0, data));  // <= 2 columns down: still a success
    EXPECT_EQ(a.failed_disk_count(), 1u);

    // Degraded but fully readable: every stripe decodes around the
    // tripped disk, so no other batch in the ring was poisoned.
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GT(a.stats().degraded_stripe_reads, 0u);
}

TEST(AioArray, WorkerPoolModeRoundTrips) {
    util::thread_pool pool(2);
    array_config cfg = aio_config_with_depth(8);
    cfg.io_workers = &pool;
    raid6_array a(cfg);
    const auto data = pattern_bytes(a.capacity(), 26);
    ASSERT_TRUE(a.write(0, data));
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);

    // Final medium state is order-independent: identical to inline mode.
    raid6_array inline_a(aio_config_with_depth(8));
    ASSERT_TRUE(inline_a.write(0, data));
    EXPECT_EQ(disk_images(a), disk_images(inline_a));
}

// A bounded intent log smaller than the queue depth must cap the write
// window instead of surfacing rejections a synchronous writer would
// never have produced.
TEST(AioArray, BoundedIntentLogCapsWindowWithoutRejections) {
    array_config cfg = aio_config_with_depth(8);
    cfg.intent_log_entries = 2;
    raid6_array a(cfg);
    const auto data = pattern_bytes(a.capacity(), 27);
    ASSERT_TRUE(a.write(0, data));
    EXPECT_EQ(a.stats().writes_rejected_log_full, 0u);
    EXPECT_EQ(a.journal().size(), 0u);  // every window cleared its marks

    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

// Power loss mid-pipeline: the budget dies inside a drained window, the
// journal still covers every stripe of that window, and write-hole
// recovery resyncs them on reboot.
TEST(AioArray, PowerLossMidWindowLeavesJournalCovering) {
    raid6_array a(aio_config_with_depth(8));
    const auto data = pattern_bytes(a.capacity(), 28);
    ASSERT_TRUE(a.write(0, data));

    const auto fresh = pattern_bytes(a.capacity(), 29);
    const auto n = a.map().n();
    // Die partway through the second pipelined window.
    a.simulate_power_loss_after(8 * n + 3);
    EXPECT_TRUE(a.write(0, fresh));  // the host never learns
    EXPECT_FALSE(a.powered());

    a.reboot();
    EXPECT_GT(a.journal().size(), 0u);  // the torn window stayed marked
    EXPECT_GT(a.recover_write_hole(), 0u);
    EXPECT_EQ(a.journal().size(), 0u);
    // Every stripe is internally consistent after resync.
    const scrub_summary s = scrub_array(a);
    EXPECT_EQ(s.uncorrectable, 0u);
}

}  // namespace
