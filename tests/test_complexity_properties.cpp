// Property tests pinning the complexity claims of the paper's Table I and
// Figs. 5-8 as machine-checked invariants, measured through the xorops
// counters on the real code paths.
#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

std::uint64_t encode_xors(const codes::raid6_code& c) {
    util::xoshiro256 rng(1);
    codes::stripe_buffer sb(c.rows(), c.n(), 8);
    sb.fill_random(rng, c.k());
    xorops::counting_scope scope;
    c.encode(sb.view());
    return scope.xors();
}

double avg_decode_norm(const codes::raid6_code& c, bool all_patterns) {
    // all_patterns follows the paper's methodology ("we test all the
    // possible erasure patterns and use their average value"), i.e. every
    // two-column pattern including parity columns; otherwise only the
    // two-data-column patterns are averaged.
    auto ref = test_support::make_encoded_stripe(c, 8, 2);
    const std::uint32_t hi = all_patterns ? c.n() : c.k();
    double sum = 0;
    int n = 0;
    for (std::uint32_t a = 0; a < hi; ++a) {
        for (std::uint32_t b = a + 1; b < hi; ++b) {
            codes::stripe_buffer broke(c.rows(), c.n(), 8);
            codes::copy_stripe(broke.view(), ref.view());
            const std::vector<std::uint32_t> pat{a, b};
            test_support::trash_columns(broke.view(), pat, 3);
            xorops::counting_scope scope;
            c.decode(broke.view(), pat);
            sum += static_cast<double>(scope.xors()) / (2.0 * c.rows()) /
                   (c.k() - 1);
            ++n;
        }
    }
    return sum / n;
}

double avg_two_data_decode_norm(const codes::raid6_code& c) {
    return avg_decode_norm(c, false);
}

class TableOne : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TableOne, EncodingComplexityRanking) {
    // Fig. 5 ordering at p varying with k:
    //   optimal Liberation = 1.0 (bound) <= RDP <= original Liberation
    //   <= EVENODD (for k >= 4).
    const std::uint32_t k = GetParam();
    const std::uint32_t p = util::next_odd_prime(k);
    const core::liberation_optimal_code opt(k, p);
    const codes::liberation_bitmatrix_code orig(k, p);
    const codes::evenodd_code eo(k, p);
    const codes::rdp_code rdp(k, util::next_odd_prime(k + 1));

    const auto norm = [&](const codes::raid6_code& c) {
        return static_cast<double>(encode_xors(c)) / (2.0 * c.rows()) /
               (k - 1);
    };

    EXPECT_DOUBLE_EQ(norm(opt), 1.0);
    EXPECT_LE(norm(rdp), norm(orig) + 1e-9);
    EXPECT_LT(norm(orig), norm(eo));
    // Original Liberation encode: exactly 1 + 1/(2p) (Table I).
    EXPECT_NEAR(norm(orig), 1.0 + 1.0 / (2.0 * p), 1e-12);
}

TEST_P(TableOne, DecodingComplexityRanking) {
    // Fig. 7 ordering: optimal Liberation within 3% of the bound; original
    // Liberation the worst of the four at k >= 6; EVENODD in between.
    const std::uint32_t k = GetParam();
    if (k < 6) return;
    const std::uint32_t p = util::next_odd_prime(k);
    const core::liberation_optimal_code opt(k, p);
    const codes::liberation_bitmatrix_code orig(k, p);
    const codes::evenodd_code eo(k, p);
    const codes::rdp_code rdp(k, util::next_odd_prime(k + 1));

    const double n_opt = avg_two_data_decode_norm(opt);
    const double n_orig = avg_two_data_decode_norm(orig);
    const double n_eo = avg_two_data_decode_norm(eo);
    const double n_rdp = avg_two_data_decode_norm(rdp);

    EXPECT_LT(n_opt, 1.03);
    EXPECT_GE(n_opt, 0.99);
    // The original bit-matrix decoder is the most expensive of the four
    // (EVENODD comes within a couple of percent at small k).
    EXPECT_GT(n_orig, n_eo - 0.02);
    EXPECT_GT(n_orig, n_rdp);
    EXPECT_GT(n_eo, n_rdp - 1e-9);
    // The headline: the optimal algorithm removes 10~25% of the original's
    // XORs (the paper reports 15~20% over its sweep).
    const double reduction = (n_orig - n_opt) / n_orig;
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.25);
}

INSTANTIATE_TEST_SUITE_P(K, TableOne,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u, 16u, 20u));

TEST(FixedPrime, LiberationScalabilityFlatCurves) {
    // Fig. 6/8 claim: at fixed p = 31, Liberation complexity stays flat as
    // k shrinks, while EVENODD/RDP blow up. Check encode at p = 31.
    const std::uint32_t p = 31;
    for (std::uint32_t k : {4u, 8u, 16u, 23u}) {
        const core::liberation_optimal_code opt(k, p);
        const auto norm = static_cast<double>(encode_xors(opt)) /
                          (2.0 * p) / (k - 1);
        EXPECT_DOUBLE_EQ(norm, 1.0) << "k=" << k;  // perfectly flat
        const codes::evenodd_code eo(k, p);
        const auto eo_norm = static_cast<double>(encode_xors(eo)) /
                             (2.0 * (p - 1)) / (k - 1);
        if (k <= 4) EXPECT_GT(eo_norm, 1.10) << "k=" << k;  // blows up
    }
}

TEST(FixedPrime, DecodeOptimalStaysNearBoundAtP31) {
    // Paper Fig. 8 (all-pattern average, the paper's methodology): the
    // proposed decoding is 0 ~ 2.5% above the lower bound at p = 31. Our
    // faithful implementation measures 0 ~ 3.7% (worst at small k, where
    // the starting-point syndrome subsets cost ~p/2 un-amortized XORs);
    // see EXPERIMENTS.md "deviations".
    const std::uint32_t p = 31;
    for (std::uint32_t k : {6u, 12u, 23u}) {
        const core::liberation_optimal_code opt(k, p);
        const double n = avg_decode_norm(opt, /*all_patterns=*/true);
        EXPECT_LT(n, 1.04) << "k=" << k;
        EXPECT_GE(n, 0.99) << "k=" << k;
    }
}

}  // namespace
