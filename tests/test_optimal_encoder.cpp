#include <gtest/gtest.h>

#include <tuple>

#include "liberation/core/geometry.hpp"
#include "liberation/core/optimal_encoder.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;
using core::geometry;

class EncoderSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(EncoderSweep, MatchesReferenceEncoder) {
    const geometry g(p(), k());
    util::xoshiro256 rng(p() * 1000 + k());
    codes::stripe_buffer a(p(), k() + 2, 24);
    a.fill_random(rng, k());
    codes::stripe_buffer b(p(), k() + 2, 24);
    codes::copy_stripe(b.view(), a.view());

    core::encode_optimal(a.view(), g);
    core::encode_reference(b.view(), g);
    EXPECT_TRUE(codes::stripes_equal(a.view(), b.view()));
}

TEST_P(EncoderSweep, XorCountHitsLowerBound) {
    // The paper's headline encoding result: exactly k-1 XORs per parity
    // element, i.e. 2p(k-1) total, for EVERY k <= p (Fig. 5/6 claim).
    const geometry g(p(), k());
    util::xoshiro256 rng(42);
    codes::stripe_buffer sb(p(), k() + 2, 8);
    sb.fill_random(rng, k());
    xorops::counting_scope scope;
    core::encode_optimal(sb.view(), g);
    EXPECT_EQ(scope.xors(), 2ull * p() * (k() - 1));
}

TEST_P(EncoderSweep, PartialEncodersMatchFull) {
    const geometry g(p(), k());
    util::xoshiro256 rng(7);
    codes::stripe_buffer full(p(), k() + 2, 16);
    full.fill_random(rng, k());
    codes::stripe_buffer part(p(), k() + 2, 16);
    codes::copy_stripe(part.view(), full.view());

    core::encode_optimal(full.view(), g);
    core::encode_p_only(part.view(), g);
    core::encode_q_only(part.view(), g);
    EXPECT_TRUE(codes::stripes_equal(full.view(), part.view()));
}

TEST_P(EncoderSweep, Linearity) {
    // enc(a ^ b) = enc(a) ^ enc(b): the code is linear over GF(2).
    const geometry g(p(), k());
    util::xoshiro256 rng(11);
    codes::stripe_buffer a(p(), k() + 2, 8), b(p(), k() + 2, 8),
        c(p(), k() + 2, 8);
    a.fill_random(rng, k());
    b.fill_random(rng, k());
    for (std::uint32_t j = 0; j < k(); ++j) {
        auto sa = a.view().strip(j);
        auto sb2 = b.view().strip(j);
        auto sc = c.view().strip(j);
        for (std::size_t i = 0; i < sa.size(); ++i) sc[i] = sa[i] ^ sb2[i];
    }
    core::encode_optimal(a.view(), g);
    core::encode_optimal(b.view(), g);
    core::encode_optimal(c.view(), g);
    for (std::uint32_t col : {k(), k() + 1}) {
        auto sa = a.view().strip(col);
        auto sb2 = b.view().strip(col);
        auto sc = c.view().strip(col);
        for (std::size_t i = 0; i < sa.size(); ++i) {
            ASSERT_EQ(sc[i], sa[i] ^ sb2[i]) << "col=" << col << " i=" << i;
        }
    }
}

TEST_P(EncoderSweep, ZeroDataGivesZeroParity) {
    const geometry g(p(), k());
    codes::stripe_buffer sb(p(), k() + 2, 8);
    core::encode_optimal(sb.view(), g);
    EXPECT_TRUE(xorops::is_zero(sb.view().strip(k()).data(),
                                sb.view().strip_size()));
    EXPECT_TRUE(xorops::is_zero(sb.view().strip(k() + 1).data(),
                                sb.view().strip_size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderSweep,
    ::testing::Values(
        std::make_tuple(3u, 1u), std::make_tuple(3u, 2u),
        std::make_tuple(3u, 3u), std::make_tuple(5u, 2u),
        std::make_tuple(5u, 4u), std::make_tuple(5u, 5u),
        std::make_tuple(7u, 3u), std::make_tuple(7u, 7u),
        std::make_tuple(11u, 5u), std::make_tuple(11u, 11u),
        std::make_tuple(13u, 8u), std::make_tuple(13u, 13u),
        std::make_tuple(17u, 10u), std::make_tuple(19u, 19u),
        std::make_tuple(23u, 14u), std::make_tuple(31u, 23u)));

TEST(OptimalEncoder, PaperExampleCountsP5K5) {
    // Section III-B: the p = 5 worked example uses exactly 40 XORs.
    const geometry g(5, 5);
    util::xoshiro256 rng(3);
    codes::stripe_buffer sb(5, 7, 8);
    sb.fill_random(rng, 5);
    xorops::counting_scope scope;
    core::encode_optimal(sb.view(), g);
    EXPECT_EQ(scope.xors(), 40u);
}

TEST(OptimalEncoder, SingleDataColumnIsPureCopies) {
    // k = 1: parity equals the lone data column; zero XORs.
    const geometry g(7, 1);
    util::xoshiro256 rng(5);
    codes::stripe_buffer sb(7, 3, 8);
    sb.fill_random(rng, 1);
    xorops::counting_scope scope;
    core::encode_optimal(sb.view(), g);
    EXPECT_EQ(scope.xors(), 0u);
    for (std::uint32_t i = 0; i < 7; ++i) {
        EXPECT_TRUE(xorops::equal(sb.view().element(i, 0),
                                  sb.view().element(i, 1), 8));
    }
}

}  // namespace
