#include <gtest/gtest.h>

#include <set>

#include "liberation/core/geometry.hpp"
#include "test_support.hpp"

namespace {

using liberation::core::geometry;

TEST(Geometry, PaperExampleP5) {
    // Fig. 3: common expressions of the p = 5 code sit at rows 2, 0, 3, 1
    // for column pairs (0,1), (1,2), (2,3), (3,4).
    const geometry g(5, 5);
    EXPECT_EQ(g.ce_row(1), 2u);
    EXPECT_EQ(g.ce_row(2), 0u);
    EXPECT_EQ(g.ce_row(3), 3u);
    EXPECT_EQ(g.ce_row(4), 1u);
    // Their anti-diagonal constraints: E2->C(2), E0->E(4), E3->B(1), E1->D(3)
    EXPECT_EQ(g.ce_q_index(1), 2u);
    EXPECT_EQ(g.ce_q_index(2), 4u);
    EXPECT_EQ(g.ce_q_index(3), 1u);
    EXPECT_EQ(g.ce_q_index(4), 3u);
}

TEST(Geometry, CommonExpressionRowsAreAPermutation) {
    // r_j must be distinct over j = 1..p-1 and never equal p-1, or common
    // expressions would collide in the parity columns.
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        std::set<std::uint32_t> rows;
        for (std::uint32_t j = 1; j < p; ++j) {
            const std::uint32_t r = g.ce_row(j);
            EXPECT_LT(r, p - 1);
            rows.insert(r);
        }
        EXPECT_EQ(rows.size(), p - 1);
    }
}

TEST(Geometry, ExtraPositionsMatchDefinition) {
    // (i, j) is an extra position iff it equals (<-m-1>, <-2m>) for some
    // m != 0 — cross-check against the closed form used by the library.
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        std::set<std::pair<std::uint32_t, std::uint32_t>> expected;
        for (std::uint32_t m = 1; m < p; ++m) {
            const std::uint32_t col = (2 * p - (2 * m) % (2 * p)) % p;
            const std::uint32_t row = (p - 1 - m) % p;
            expected.insert({row, col});
        }
        for (std::uint32_t i = 0; i < p; ++i) {
            for (std::uint32_t j = 0; j < p; ++j) {
                EXPECT_EQ(g.is_extra_position(i, j),
                          expected.count({i, j}) == 1)
                    << "p=" << p << " i=" << i << " j=" << j;
            }
        }
    }
}

TEST(Geometry, ExtraRowConsistentWithCeRow) {
    // The extra bit hosted by column y sits exactly on the common-
    // expression row r_y — the identity the whole encoder rests on.
    for (std::uint32_t p : test_support::sweep_primes) {
        const geometry g(p, p);
        for (std::uint32_t y = 1; y < p; ++y) {
            EXPECT_EQ(g.extra_row(y), g.ce_row(y));
            EXPECT_EQ(g.extra_q_index(y), p - 1 - g.ce_row(y));
        }
    }
}

TEST(Geometry, DiagHelpers) {
    const geometry g(7, 7);
    for (std::uint32_t i = 0; i < 7; ++i) {
        for (std::uint32_t j = 0; j < 7; ++j) {
            const std::uint32_t q = g.diag_of(i, j);
            EXPECT_EQ(g.diag_member_row(q, j), i);
        }
    }
}

TEST(Geometry, ModHandlesNegatives) {
    const geometry g(11, 11);
    EXPECT_EQ(g.mod(-1), 10u);
    EXPECT_EQ(g.mod(-11), 0u);
    EXPECT_EQ(g.mod(-12), 10u);
    EXPECT_EQ(g.mod(22), 0u);
}

TEST(Geometry, ReferenceEncoderMatchesOracle) {
    // encode_reference vs the test suite's independent byte oracle.
    for (std::uint32_t p : {3u, 5u, 7u, 11u}) {
        for (std::uint32_t k = 1; k <= p; ++k) {
            const geometry g(p, k);
            liberation::util::xoshiro256 rng(p * 100 + k);
            liberation::codes::stripe_buffer sb(p, k + 2, 4);
            sb.fill_random(rng, k);
            encode_reference(sb.view(), g);

            std::vector<std::vector<std::uint8_t>> data(k);
            for (std::uint32_t j = 0; j < k; ++j) {
                data[j] = test_support::column_bytes(sb.view(), j, 2);
            }
            const test_support::liberation_oracle oracle{p, k};
            EXPECT_EQ(test_support::column_bytes(sb.view(), k, 2),
                      oracle.parity_p(data))
                << "p=" << p << " k=" << k;
            EXPECT_EQ(test_support::column_bytes(sb.view(), k + 1, 2),
                      oracle.parity_q(data))
                << "p=" << p << " k=" << k;
        }
    }
}

}  // namespace
