#include <gtest/gtest.h>

#include <tuple>

#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/core/update.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

class UpdateSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(UpdateSweep, UpdateEquivalentToReencodeEveryPosition) {
    const core::liberation_optimal_code code(k(), p());
    auto stripe = test_support::make_encoded_stripe(code, 8, 77);
    util::xoshiro256 rng(123);

    for (std::uint32_t row = 0; row < p(); ++row) {
        for (std::uint32_t col = 0; col < k(); ++col) {
            // New random content for one element.
            std::vector<std::byte> fresh(8), delta(8);
            rng.fill(fresh);
            auto* elem = stripe.view().element(row, col);
            for (std::size_t i = 0; i < 8; ++i) delta[i] = elem[i] ^ fresh[i];

            code.apply_update(stripe.view(), row, col, delta);
            std::memcpy(elem, fresh.data(), 8);

            ASSERT_TRUE(code.verify(stripe.view()))
                << "row=" << row << " col=" << col;
        }
    }
}

TEST_P(UpdateSweep, UpdateCostDistribution) {
    // Exactly k-1 positions cost 3 parity updates (the extra bits); the
    // remaining kp-(k-1) cost 2 — so the average approaches the lower
    // bound of 2 (Table I).
    const core::geometry g(p(), k());
    std::uint64_t total = 0;
    std::uint32_t threes = 0;
    for (std::uint32_t row = 0; row < p(); ++row) {
        for (std::uint32_t col = 0; col < k(); ++col) {
            const auto c = core::update_cost(g, row, col);
            EXPECT_TRUE(c == 2 || c == 3);
            total += c;
            if (c == 3) ++threes;
        }
    }
    EXPECT_EQ(threes, k() - 1);
    const double avg = static_cast<double>(total) / (p() * k());
    EXPECT_NEAR(avg, 2.0 + static_cast<double>(k() - 1) / (p() * k()), 1e-12);
}

TEST_P(UpdateSweep, ReportedTouchesMatchActualXors) {
    const core::liberation_optimal_code code(k(), p());
    auto stripe = test_support::make_encoded_stripe(code, 8, 88);
    util::xoshiro256 rng(5);
    std::vector<std::byte> delta(8);
    rng.fill(delta);

    for (std::uint32_t row = 0; row < p(); ++row) {
        xorops::counting_scope scope;
        const auto touched =
            code.apply_update(stripe.view(), row, row % k(), delta);
        EXPECT_EQ(scope.xors(), touched);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UpdateSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 6u), std::make_tuple(13u, 13u),
                      std::make_tuple(17u, 11u)));

TEST(Update, ZeroDeltaIsNoop) {
    const core::liberation_optimal_code code(4, 5);
    auto stripe = test_support::make_encoded_stripe(code, 8, 99);
    codes::stripe_buffer before(5, 6, 8);
    codes::copy_stripe(before.view(), stripe.view());
    const std::vector<std::byte> zero(8, std::byte{0});
    code.apply_update(stripe.view(), 2, 1, zero);
    EXPECT_TRUE(codes::stripes_equal(before.view(), stripe.view()));
}

TEST(Update, ComparatorUpdateCosts) {
    // The motivating comparison (Table I): Liberation averages ~2 parity
    // updates, EVENODD and RDP ~3.
    util::xoshiro256 rng(1);
    const std::uint32_t k = 10, p = 11;

    const auto average = [&](const codes::raid6_code& c) {
        auto stripe = test_support::make_encoded_stripe(c, 8, 3);
        std::vector<std::byte> delta(8);
        rng.fill(delta);
        std::uint64_t total = 0;
        for (std::uint32_t row = 0; row < c.rows(); ++row) {
            for (std::uint32_t col = 0; col < c.k(); ++col) {
                total += c.apply_update(stripe.view(), row, col, delta);
            }
        }
        return static_cast<double>(total) / (c.rows() * c.k());
    };

    const core::liberation_optimal_code lib(k, p);
    EXPECT_LT(average(lib), 2.1);
    EXPECT_TRUE(lib.verify(test_support::make_encoded_stripe(lib, 8, 4).view()));
}

}  // namespace
