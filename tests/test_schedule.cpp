#include <gtest/gtest.h>

#include <vector>

#include "liberation/bitmatrix/schedule.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;
using bitmatrix::bit_matrix;
using bitmatrix::region_ref;

// A tiny fixture: inputs live in column 0 (rows 0..in-1), outputs in
// column 1 (rows 0..out-1) of one stripe.
struct fixture {
    fixture(std::uint32_t in, std::uint32_t out, std::size_t elem,
            std::uint64_t seed)
        : stripe(std::max(in, out), 2, elem) {
        util::xoshiro256 rng(seed);
        for (std::uint32_t i = 0; i < in; ++i) {
            rng.fill(stripe.view().element_span(i, 0));
        }
        for (std::uint32_t i = 0; i < in; ++i) inputs.push_back({0, i});
        for (std::uint32_t i = 0; i < out; ++i) outputs.push_back({1, i});
    }

    /// Expected output row r = XOR of inputs named by matrix row r.
    std::vector<std::byte> expected(const bit_matrix& m, std::uint32_t r) {
        std::vector<std::byte> acc(stripe.element_size(), std::byte{0});
        for (const auto c : m.row_ones(r)) {
            const auto* src = stripe.view().element(c, 0);
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= src[i];
        }
        return acc;
    }

    codes::stripe_buffer stripe;
    std::vector<region_ref> inputs;
    std::vector<region_ref> outputs;
};

bit_matrix random_matrix(std::uint32_t rows, std::uint32_t cols,
                         std::uint64_t seed) {
    util::xoshiro256 rng(seed);
    bit_matrix m(rows, cols);
    for (std::uint32_t r = 0; r < rows; ++r) {
        // Guarantee nonzero rows (schedules reject empty parities).
        m.set(r, static_cast<std::uint32_t>(rng.next_below(cols)), true);
        for (std::uint32_t c = 0; c < cols; ++c) {
            if (rng.next_double() < 0.4) m.set(r, c, true);
        }
    }
    return m;
}

class ScheduleKinds : public ::testing::TestWithParam<bool> {};  // smart?

TEST_P(ScheduleKinds, ComputesMatrixProduct) {
    const bool smart = GetParam();
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        fixture fx(12, 9, 64, seed);
        const auto m = random_matrix(9, 12, seed * 31 + 7);
        const auto sched =
            smart ? bitmatrix::make_smart_schedule(m, fx.inputs, fx.outputs)
                  : bitmatrix::make_dumb_schedule(m, fx.inputs, fx.outputs);
        bitmatrix::run_schedule(sched, fx.stripe.view());
        for (std::uint32_t r = 0; r < 9; ++r) {
            const auto want = fx.expected(m, r);
            const auto* got = fx.stripe.view().element(r, 1);
            EXPECT_TRUE(std::equal(want.begin(), want.end(), got))
                << "seed=" << seed << " row=" << r << " smart=" << smart;
        }
    }
}

TEST_P(ScheduleKinds, PacketizedExecutionMatchesWhole) {
    const bool smart = GetParam();
    fixture a(10, 6, 256, 99);
    fixture b(10, 6, 256, 99);  // identical inputs
    const auto m = random_matrix(6, 10, 123);
    const auto sched =
        smart ? bitmatrix::make_smart_schedule(m, a.inputs, a.outputs)
              : bitmatrix::make_dumb_schedule(m, a.inputs, a.outputs);
    bitmatrix::run_schedule(sched, a.stripe.view());        // one packet
    bitmatrix::run_schedule(sched, b.stripe.view(), 64);    // 4 packets
    EXPECT_TRUE(codes::stripes_equal(a.stripe.view(), b.stripe.view()));
}

INSTANTIATE_TEST_SUITE_P(DumbAndSmart, ScheduleKinds, ::testing::Bool());

TEST(Schedule, DumbCostIsOnesMinusRows) {
    fixture fx(12, 9, 8, 5);
    const auto m = random_matrix(9, 12, 17);
    const auto sched = bitmatrix::make_dumb_schedule(m, fx.inputs, fx.outputs);
    EXPECT_EQ(bitmatrix::schedule_xor_count(sched), m.ones() - m.rows());
}

TEST(Schedule, SmartNeverWorseThanDumb) {
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        fixture fx(14, 10, 8, seed);
        const auto m = random_matrix(10, 14, seed);
        const auto dumb =
            bitmatrix::make_dumb_schedule(m, fx.inputs, fx.outputs);
        const auto smart =
            bitmatrix::make_smart_schedule(m, fx.inputs, fx.outputs);
        EXPECT_LE(bitmatrix::schedule_xor_count(smart),
                  bitmatrix::schedule_xor_count(dumb))
            << seed;
    }
}

TEST(Schedule, SmartExploitsSimilarRows) {
    // Two rows differing in a single bit: the second must cost 2 ops
    // (copy + 1 xor) instead of weight many.
    bit_matrix m(2, 10);
    for (std::uint32_t c = 0; c < 10; ++c) m.set(0, c, true);
    for (std::uint32_t c = 0; c < 9; ++c) m.set(1, c, true);
    fixture fx(10, 2, 8, 3);
    const auto sched = bitmatrix::make_smart_schedule(m, fx.inputs, fx.outputs);
    // Greedy order computes the lighter row (weight 9) from scratch first,
    // then derives the other with copy + 1 xor: 11 ops, 9 xors total.
    EXPECT_EQ(sched.size(), 11u);
    EXPECT_EQ(bitmatrix::schedule_xor_count(sched), 9u);
    bitmatrix::run_schedule(sched, fx.stripe.view());
    for (std::uint32_t r = 0; r < 2; ++r) {
        const auto want = fx.expected(m, r);
        EXPECT_TRUE(std::equal(want.begin(), want.end(),
                               fx.stripe.view().element(r, 1)));
    }
}

}  // namespace
