#include <gtest/gtest.h>

#include <tuple>

#include "liberation/core/hybrid_rebuild.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;
using core::geometry;

class HybridSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    std::uint32_t p() const { return std::get<0>(GetParam()); }
    std::uint32_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(HybridSweep, RebuildsEveryDataColumnExactly) {
    const core::liberation_optimal_code code(k(), p());
    const geometry& g = code.geom();
    auto ref = test_support::make_encoded_stripe(code, 16, 7);

    for (std::uint32_t l = 0; l < k(); ++l) {
        const auto plan = core::plan_hybrid_rebuild(g, l);
        codes::stripe_buffer broke(p(), k() + 2, 16);
        codes::copy_stripe(broke.view(), ref.view());
        const std::vector<std::uint32_t> pat{l};
        test_support::trash_columns(broke.view(), pat, 11);
        core::rebuild_column_hybrid(broke.view(), g, plan);
        EXPECT_TRUE(codes::stripes_equal(broke.view(), ref.view()))
            << "p=" << p() << " k=" << k() << " l=" << l;
    }
}

TEST_P(HybridSweep, RebuildUsesOnlyPlannedElements) {
    // Zero every element NOT in the read set; the rebuild must still be
    // exact — proving the plan's read set is sufficient.
    const core::liberation_optimal_code code(k(), p());
    const geometry& g = code.geom();
    auto ref = test_support::make_encoded_stripe(code, 8, 13);

    for (std::uint32_t l = 0; l < k(); ++l) {
        const auto plan = core::plan_hybrid_rebuild(g, l);
        codes::stripe_buffer broke(p(), k() + 2, 8);
        codes::copy_stripe(broke.view(), ref.view());
        for (std::uint32_t c = 0; c < k() + 2; ++c) {
            for (std::uint32_t r = 0; r < p(); ++r) {
                const core::element_ref e{c, r};
                const bool planned =
                    std::binary_search(plan.reads.begin(), plan.reads.end(), e);
                if (!planned && c != l) {
                    std::memset(broke.view().element(r, c), 0xEE, 8);
                }
            }
        }
        const std::vector<std::uint32_t> pat{l};
        test_support::trash_columns(broke.view(), pat, 17);
        core::rebuild_column_hybrid(broke.view(), g, plan);
        EXPECT_TRUE(codes::strips_equal(broke.view(), ref.view(), l))
            << "p=" << p() << " k=" << k() << " l=" << l;
    }
}

TEST_P(HybridSweep, SavesReadsAtFullWidth) {
    // At k = p the hybrid plan should beat the all-rows baseline clearly;
    // the known bound for RDP-like geometries is ~25%.
    if (k() != p()) return;
    const geometry g(p(), k());
    double worst = 1.0;
    for (std::uint32_t l = 0; l < k(); ++l) {
        const auto plan = core::plan_hybrid_rebuild(g, l);
        EXPECT_LE(plan.reads.size(), plan.baseline_reads);
        worst = std::min(worst, plan.savings());
    }
    if (p() >= 7) EXPECT_GT(worst, 0.10) << "p=" << p();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(7u, 7u),
                      std::make_tuple(11u, 7u), std::make_tuple(11u, 11u),
                      std::make_tuple(13u, 13u), std::make_tuple(17u, 17u)));

TEST(HybridRebuild, ArrayLevelReadsFewerBytes) {
    raid::array_config cfg;
    cfg.k = 10;  // p = 11
    cfg.element_size = 512;
    cfg.stripes = 12;
    cfg.sector_size = 512;

    const auto fill = [](raid::raid6_array& a, std::uint64_t seed) {
        util::xoshiro256 rng(seed);
        std::vector<std::byte> img(a.capacity());
        rng.fill(img);
        ASSERT_TRUE(a.write(0, img));
    };

    raid::raid6_array standard(cfg), hybrid(cfg);
    fill(standard, 5);
    fill(hybrid, 5);

    const auto bytes_read = [](const raid::raid6_array& a) {
        std::uint64_t total = 0;
        for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
            total += a.disk(d).stats().bytes_read;
        }
        return total;
    };

    const std::uint64_t std_before = bytes_read(standard);
    standard.fail_disk(4);
    standard.replace_disk(4);
    const std::uint32_t disks[] = {4};
    ASSERT_TRUE(raid::rebuild_disks(standard, disks).success);
    const std::uint64_t std_reads = bytes_read(standard) - std_before;

    const std::uint64_t hyb_before = bytes_read(hybrid);
    hybrid.fail_disk(4);
    hybrid.replace_disk(4);
    ASSERT_TRUE(raid::rebuild_single_disk_hybrid(hybrid, 4).success);
    const std::uint64_t hyb_reads = bytes_read(hybrid) - hyb_before;

    EXPECT_LT(hyb_reads, std_reads);

    // Both arrays must read back identically afterwards.
    std::vector<std::byte> a(standard.capacity()), b(hybrid.capacity());
    ASSERT_TRUE(standard.read(0, a));
    ASSERT_TRUE(hybrid.read(0, b));
    EXPECT_EQ(a, b);
}

TEST(HybridRebuild, HybridRebuildHandlesParityColumns) {
    // Rotating layout puts P/Q of some stripes on the rebuilt disk; those
    // must be re-encoded correctly too.
    raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 256;
    cfg.stripes = 13;  // > n so every column lands on disk 2 somewhere
    cfg.sector_size = 256;
    raid::raid6_array a(cfg);
    util::xoshiro256 rng(9);
    std::vector<std::byte> img(a.capacity());
    rng.fill(img);
    ASSERT_TRUE(a.write(0, img));

    a.fail_disk(2);
    a.replace_disk(2);
    ASSERT_TRUE(raid::rebuild_single_disk_hybrid(a, 2).success);

    std::vector<std::byte> out(a.capacity());
    const auto degraded_before = a.stats().degraded_stripe_reads;
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, img);
    EXPECT_EQ(a.stats().degraded_stripe_reads, degraded_before);
}

}  // namespace
