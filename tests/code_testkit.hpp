// Reusable conformance checks run against every raid6_code implementation.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "liberation/codes/raid6_code.hpp"
#include "test_support.hpp"

namespace code_testkit {

/// Every <= 2-column erasure pattern must round-trip.
inline void check_all_erasures(const liberation::codes::raid6_code& code,
                               std::size_t elem, std::uint64_t seed) {
    auto ref = test_support::make_encoded_stripe(code, elem, seed);
    std::vector<std::vector<std::uint32_t>> patterns;
    for (std::uint32_t a = 0; a < code.n(); ++a) {
        patterns.push_back({a});
        for (std::uint32_t b = a + 1; b < code.n(); ++b) {
            patterns.push_back({a, b});
        }
    }
    for (const auto& pat : patterns) {
        liberation::codes::stripe_buffer broke(code.rows(), code.n(), elem);
        liberation::codes::copy_stripe(broke.view(), ref.view());
        test_support::trash_columns(broke.view(), pat, seed + 1);
        code.decode(broke.view(), pat);
        EXPECT_TRUE(liberation::codes::stripes_equal(broke.view(), ref.view()))
            << code.name() << " pattern {" << pat[0]
            << (pat.size() > 1 ? "," + std::to_string(pat[1]) : "") << "}";
    }
}

/// verify() accepts an encoded stripe and rejects a corrupted one.
inline void check_verify(const liberation::codes::raid6_code& code,
                         std::uint64_t seed) {
    auto stripe = test_support::make_encoded_stripe(code, 8, seed);
    EXPECT_TRUE(code.verify(stripe.view())) << code.name();
    stripe.view().element(0, 0)[0] ^= std::byte{1};
    EXPECT_FALSE(code.verify(stripe.view())) << code.name();
}

/// apply_update at every data position must keep the stripe consistent.
inline void check_updates(const liberation::codes::raid6_code& code,
                          std::uint64_t seed) {
    auto stripe = test_support::make_encoded_stripe(code, 8, seed);
    liberation::util::xoshiro256 rng(seed * 3 + 1);
    for (std::uint32_t row = 0; row < code.rows(); ++row) {
        for (std::uint32_t col = 0; col < code.k(); ++col) {
            std::vector<std::byte> fresh(8), delta(8);
            rng.fill(fresh);
            auto* elem = stripe.view().element(row, col);
            for (std::size_t i = 0; i < 8; ++i) delta[i] = elem[i] ^ fresh[i];
            const auto touched =
                code.apply_update(stripe.view(), row, col, delta);
            EXPECT_GE(touched, 2u);
            std::memcpy(elem, fresh.data(), 8);
            ASSERT_TRUE(code.verify(stripe.view()))
                << code.name() << " row=" << row << " col=" << col;
        }
    }
}

/// Linearity: enc(a ^ b) == enc(a) ^ enc(b).
inline void check_linearity(const liberation::codes::raid6_code& code,
                            std::uint64_t seed) {
    liberation::util::xoshiro256 rng(seed);
    const std::size_t elem = 8;
    liberation::codes::stripe_buffer a(code.rows(), code.n(), elem);
    liberation::codes::stripe_buffer b(code.rows(), code.n(), elem);
    liberation::codes::stripe_buffer c(code.rows(), code.n(), elem);
    a.fill_random(rng, code.k());
    b.fill_random(rng, code.k());
    for (std::uint32_t j = 0; j < code.k(); ++j) {
        auto sa = a.view().strip(j);
        auto sb = b.view().strip(j);
        auto sc = c.view().strip(j);
        for (std::size_t i = 0; i < sa.size(); ++i) sc[i] = sa[i] ^ sb[i];
    }
    code.encode(a.view());
    code.encode(b.view());
    code.encode(c.view());
    for (std::uint32_t col : {code.p_column(), code.q_column()}) {
        auto sa = a.view().strip(col);
        auto sb = b.view().strip(col);
        auto sc = c.view().strip(col);
        for (std::size_t i = 0; i < sa.size(); ++i) {
            ASSERT_EQ(sc[i], sa[i] ^ sb[i]) << code.name() << " col=" << col;
        }
    }
}

}  // namespace code_testkit
