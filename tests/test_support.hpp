// Shared helpers for the test suite: deterministic stripe construction and
// an *independent* bit-level oracle for the Liberation encoding equations.
// The oracle deliberately avoids every library code path (no xorops, no
// geometry helpers) so that encoder bugs cannot cancel out.
#pragma once

#include <cstdint>
#include <vector>

#include "liberation/codes/stripe.hpp"
#include "liberation/util/rng.hpp"

namespace test_support {

/// A freshly encoded random stripe for code `c` (data filled, parity via
/// c.encode). Element size in bytes.
template <class Code>
liberation::codes::stripe_buffer make_encoded_stripe(const Code& c,
                                                     std::size_t elem,
                                                     std::uint64_t seed) {
    liberation::util::xoshiro256 rng(seed);
    liberation::codes::stripe_buffer sb(c.rows(), c.n(), elem);
    sb.fill_random(rng, c.k());
    c.encode(sb.view());
    return sb;
}

/// Trash the given columns with random bytes (so decode cannot pass by
/// accident when it fails to write the output).
inline void trash_columns(liberation::codes::stripe_view v,
                          std::span<const std::uint32_t> cols,
                          std::uint64_t seed) {
    liberation::util::xoshiro256 rng(seed ^ 0xdecafbadULL);
    for (const auto c : cols) rng.fill(v.strip(c));
}

/// Independent oracle: compute Liberation P and Q parity bytes straight
/// from the paper's equations (1)-(2), byte-wise (a byte is 8 interleaved
/// codeword bits). `data[j][i]` = data byte at row i, column j.
struct liberation_oracle {
    std::uint32_t p;
    std::uint32_t k;

    [[nodiscard]] std::vector<std::uint8_t> parity_p(
        const std::vector<std::vector<std::uint8_t>>& data) const {
        std::vector<std::uint8_t> out(p, 0);
        for (std::uint32_t i = 0; i < p; ++i) {
            for (std::uint32_t j = 0; j < k; ++j) out[i] ^= data[j][i];
        }
        return out;
    }

    [[nodiscard]] std::vector<std::uint8_t> parity_q(
        const std::vector<std::vector<std::uint8_t>>& data) const {
        std::vector<std::uint8_t> out(p, 0);
        for (std::uint32_t i = 0; i < p; ++i) {
            for (std::uint32_t j = 0; j < k; ++j) {
                out[i] ^= data[j][(i + j) % p];
            }
            if (i != 0) {
                // a_i = b[(-i-1) mod p][(-2i) mod p]
                const std::uint32_t col = (2 * p - (2 * i) % (2 * p)) % p;
                const std::uint32_t row = (p - 1 - i % p + p) % p;
                if (col < k) out[i] ^= data[col][row];
            }
        }
        return out;
    }
};

/// Extract byte `b` of every element of column `col` as a row-indexed
/// vector (elementwise byte plane).
inline std::vector<std::uint8_t> column_bytes(
    const liberation::codes::stripe_view& v, std::uint32_t col,
    std::size_t byte_index) {
    std::vector<std::uint8_t> out(v.rows());
    for (std::uint32_t i = 0; i < v.rows(); ++i) {
        out[i] = static_cast<std::uint8_t>(v.element(i, col)[byte_index]);
    }
    return out;
}

/// The primes used as sweep parameters across the suite.
inline constexpr std::uint32_t sweep_primes[] = {3, 5, 7, 11, 13, 17, 19, 23};

}  // namespace test_support
