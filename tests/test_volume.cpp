// Volume layer: chunk-granular round-robin placement across raid6_array
// shards, boundary-straddling I/O, per-shard fault isolation (degraded
// serving, rebuild-one-shard-while-writing-others), the stats roll-up
// and labeled per-shard metric series, the CRC-protected volume manifest
// (torn-slot fallback, both-torn refusal), the mount-time shard census
// (missing / foreign shard directories reported, not crashed), and the
// multi-shard chaos campaign's determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "liberation/util/rng.hpp"
#include "liberation/volume/chaos.hpp"
#include "liberation/volume/manifest.hpp"
#include "liberation/volume/mount.hpp"
#include "liberation/volume/volume.hpp"

namespace {

using namespace liberation::volume;
namespace util = liberation::util;

std::string fresh_dir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "liberation-vol-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

volume_config small_volume(std::uint32_t shards,
                           std::size_t chunk_stripes = 1) {
    volume_config cfg;
    cfg.shards = shards;
    cfg.chunk_stripes = chunk_stripes;
    cfg.shard.k = 4;
    cfg.shard.element_size = 512;
    cfg.shard.stripes = 8;
    cfg.shard.sector_size = 512;
    cfg.shard.io_queue_depth = 1;
    return cfg;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> out(n);
    util::xoshiro256 rng(seed);
    rng.fill(out);
    return out;
}

/// XOR `len` bytes at `offset` with 0xFF — the torn-write simulator.
void flip_bytes(const std::string& path, std::size_t offset,
                std::size_t len) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    std::vector<unsigned char> buf(len);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fread(buf.data(), 1, len, f), len);
    for (unsigned char& b : buf) b ^= 0xFF;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(buf.data(), 1, len, f), len);
    std::fclose(f);
}

// ---------------------------------------------------------------------
// Address mapping
// ---------------------------------------------------------------------

TEST(VolumeMapping, ChunkRoundRobinAcrossGeometries) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
        for (const std::size_t chunk_stripes : {std::size_t{1},
                                                std::size_t{2}}) {
            volume vol(small_volume(shards, chunk_stripes));
            const std::size_t cb = vol.chunk_bytes();
            ASSERT_EQ(cb, chunk_stripes *
                              vol.shard(0).map().stripe_data_size());
            const std::size_t chunks = vol.capacity() / cb;
            for (std::size_t c = 0; c < chunks; ++c) {
                const extent_location lo = vol.locate(c * cb);
                EXPECT_EQ(lo.shard, c % shards);
                EXPECT_EQ(lo.addr, (c / shards) * cb);
                // Interior offsets stay inside the same chunk.
                const extent_location mid = vol.locate(c * cb + cb / 2);
                EXPECT_EQ(mid.shard, lo.shard);
                EXPECT_EQ(mid.addr, lo.addr + cb / 2);
            }
        }
    }
}

TEST(VolumeMapping, CoversEveryShardByteExactlyOnce) {
    for (const std::uint32_t shards : {2u, 3u, 4u}) {
        volume vol(small_volume(shards));
        const std::size_t cb = vol.chunk_bytes();
        const std::size_t per_shard = vol.shard(0).capacity();
        // One bit per shard-local chunk; every volume chunk must land on
        // a distinct (shard, local chunk) slot.
        std::vector<std::vector<bool>> seen(
            shards, std::vector<bool>(per_shard / cb, false));
        for (std::size_t addr = 0; addr < vol.capacity(); addr += cb) {
            const extent_location loc = vol.locate(addr);
            ASSERT_LT(loc.shard, shards);
            ASSERT_LT(loc.addr, per_shard);
            ASSERT_EQ(loc.addr % cb, 0u);
            ASSERT_FALSE(seen[loc.shard][loc.addr / cb]);
            seen[loc.shard][loc.addr / cb] = true;
        }
        for (const auto& bitmap : seen) {
            for (const bool b : bitmap) EXPECT_TRUE(b);
        }
    }
}

// ---------------------------------------------------------------------
// I/O correctness
// ---------------------------------------------------------------------

TEST(VolumeIO, MirrorsAFlatBufferUnderRandomBoundaryStraddlingOps) {
    volume vol(small_volume(3));
    const std::size_t cap = vol.capacity();
    std::vector<std::byte> mirror(cap, std::byte{0});
    ASSERT_TRUE(vol.write(0, mirror));

    util::xoshiro256 rng(99);
    std::vector<std::byte> buf(3 * vol.chunk_bytes());
    for (int op = 0; op < 300; ++op) {
        // Lengths up to three chunks guarantee plenty of multi-shard and
        // chunk-boundary-straddling extents.
        const std::size_t len = 1 + rng.next_below(buf.size());
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (rng.next_below(2) == 0) {
            rng.fill(io);
            ASSERT_TRUE(vol.write(addr, io));
            std::memcpy(mirror.data() + addr, buf.data(), len);
        } else {
            ASSERT_TRUE(vol.read(addr, io));
            ASSERT_EQ(std::memcmp(mirror.data() + addr, buf.data(), len), 0)
                << "op " << op << " at " << addr << "+" << len;
        }
    }
    std::vector<std::byte> out(cap);
    ASSERT_TRUE(vol.read(0, out));
    EXPECT_EQ(out, mirror);

    const volume_stats vs = vol.stats();
    EXPECT_GT(vs.multi_shard_ops, 0u);
    EXPECT_GT(vs.staged_bytes, 0u);  // straddling extents used staging
    EXPECT_GE(vs.chunks_routed, vs.reads + vs.writes);
}

TEST(VolumeIO, ThreadedAndInlineDispatchAreByteIdentical) {
    volume_config threaded = small_volume(4);
    threaded.threaded_dispatch = true;
    volume_config inline_cfg = small_volume(4);
    inline_cfg.threaded_dispatch = false;
    volume a(threaded);
    volume b(inline_cfg);

    const std::size_t cap = a.capacity();
    ASSERT_EQ(cap, b.capacity());
    util::xoshiro256 rng(7);
    std::vector<std::byte> buf(2 * a.chunk_bytes());
    for (int op = 0; op < 200; ++op) {
        const std::size_t len = 1 + rng.next_below(buf.size());
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        rng.fill(io);
        ASSERT_TRUE(a.write(addr, io));
        ASSERT_TRUE(b.write(addr, io));
    }
    std::vector<std::byte> out_a(cap);
    std::vector<std::byte> out_b(cap);
    ASSERT_TRUE(a.read(0, out_a));
    ASSERT_TRUE(b.read(0, out_b));
    EXPECT_EQ(out_a, out_b);
}

TEST(VolumeIO, WorkerPoolsProduceTheSameBytes) {
    volume_config pooled = small_volume(2);
    pooled.shard.io_queue_depth = 8;
    pooled.io_workers_per_shard = 2;
    volume_config plain = small_volume(2);
    plain.shard.io_queue_depth = 8;
    volume a(pooled);
    volume b(plain);

    const std::vector<std::byte> data = pattern_bytes(a.capacity(), 5);
    ASSERT_TRUE(a.write(0, data));
    ASSERT_TRUE(b.write(0, data));
    std::vector<std::byte> out_a(a.capacity());
    std::vector<std::byte> out_b(b.capacity());
    ASSERT_TRUE(a.read(0, out_a));
    ASSERT_TRUE(b.read(0, out_b));
    EXPECT_EQ(out_a, out_b);
    EXPECT_EQ(out_a, data);
}

// ---------------------------------------------------------------------
// Fault isolation
// ---------------------------------------------------------------------

TEST(VolumeFaults, DegradedShardServesWhileOthersStayClean) {
    volume vol(small_volume(3));  // no spares: shard 1 stays degraded
    const std::vector<std::byte> data = pattern_bytes(vol.capacity(), 11);
    ASSERT_TRUE(vol.write(0, data));

    vol.shard(1).fail_disk(2);
    vol.shard(1).fail_disk(4);  // two erasures: worst decodable case

    std::vector<std::byte> out(vol.capacity());
    ASSERT_TRUE(vol.read(0, out));
    EXPECT_EQ(out, data);

    const volume_stats vs = vol.stats();
    EXPECT_GT(vol.shard(1).stats().degraded_stripe_reads, 0u);
    EXPECT_EQ(vol.shard(0).stats().degraded_stripe_reads, 0u);
    EXPECT_EQ(vol.shard(2).stats().degraded_stripe_reads, 0u);
    EXPECT_EQ(vs.failed_reads, 0u);
    EXPECT_EQ(vol.failed_disk_count(), 2u);
}

TEST(VolumeFaults, RebuildsOneShardWhileWritingTheOthers) {
    volume_config cfg = small_volume(3);
    cfg.shard.hot_spares = 1;
    volume vol(cfg);
    std::vector<std::byte> data = pattern_bytes(vol.capacity(), 13);
    ASSERT_TRUE(vol.write(0, data));

    vol.shard(0).fail_disk(3);
    ASSERT_GT(vol.shard(0).service_background_rebuild(1), 0u);
    ASSERT_TRUE(vol.rebuild_active());

    // Keep writing everywhere while shard 0 rebuilds in the background.
    util::xoshiro256 rng(17);
    std::vector<std::byte> buf(vol.chunk_bytes());
    for (int op = 0; op < 40; ++op) {
        const std::size_t len = 1 + rng.next_below(buf.size());
        const std::size_t addr = rng.next_below(vol.capacity() - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        rng.fill(io);
        ASSERT_TRUE(vol.write(addr, io));
        std::memcpy(data.data() + addr, buf.data(), len);
    }
    vol.drain_background_rebuilds();
    EXPECT_FALSE(vol.rebuild_active());
    EXPECT_EQ(vol.shard(0).stats().rebuilds_completed, 1u);
    EXPECT_EQ(vol.shard(0).stats().spares_promoted, 1u);
    EXPECT_EQ(vol.shard(1).stats().rebuilds_completed, 0u);

    std::vector<std::byte> out(vol.capacity());
    ASSERT_TRUE(vol.read(0, out));
    EXPECT_EQ(out, data);
}

// ---------------------------------------------------------------------
// Stats roll-up and labeled series
// ---------------------------------------------------------------------

TEST(VolumeStats, RollsUpShardsAndExportsLabeledSeries) {
    volume vol(small_volume(2));
    const std::vector<std::byte> data = pattern_bytes(vol.capacity(), 3);
    ASSERT_TRUE(vol.write(0, data));
    std::vector<std::byte> out(vol.capacity());
    ASSERT_TRUE(vol.read(0, out));

    const volume_stats vs = vol.stats();
    EXPECT_EQ(vs.reads, 1u);
    EXPECT_EQ(vs.writes, 1u);
    EXPECT_EQ(vs.shard_total.full_stripe_writes,
              vol.shard(0).stats().full_stripe_writes +
                  vol.shard(1).stats().full_stripe_writes);
    EXPECT_GT(vs.shard_total.full_stripe_writes, 0u);

    const std::string text = vol.obs().metrics_text();
    EXPECT_NE(text.find("liberation_volume_reads_total 1"),
              std::string::npos);
    EXPECT_NE(text.find("liberation_volume_writes_total 1"),
              std::string::npos);
    EXPECT_NE(text.find(
                  "liberation_shard_full_stripe_writes_total{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find(
                  "liberation_shard_full_stripe_writes_total{shard=\"1\"}"),
              std::string::npos);
    EXPECT_NE(text.find("liberation_shard_failed_disks{shard=\"1\"}"),
              std::string::npos);
    EXPECT_NE(text.find("liberation_volume_read_ns"), std::string::npos);
}

// ---------------------------------------------------------------------
// Manifest codec
// ---------------------------------------------------------------------

persist::manifest sample_manifest() {
    persist::manifest m;
    m.seq = 5;
    m.volume_uuid = 0xF00DF00DF00DF00DULL;
    m.clean = true;
    m.shards = 3;
    m.chunk_stripes = 2;
    m.k = 4;
    m.p = 5;
    m.element_size = 512;
    m.stripes = 8;
    m.sector_size = 512;
    m.layout = 0;
    m.shard_uuids = {0x11, 0x22, 0x33};
    return m;
}

TEST(VolumeManifest, EncodeDecodeRoundtrip) {
    const persist::manifest m = sample_manifest();
    const std::vector<std::byte> blob = persist::encode(m);
    ASSERT_LE(blob.size(), persist::manifest_slot_size);
    const auto back = persist::decode(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seq, m.seq);
    EXPECT_EQ(back->volume_uuid, m.volume_uuid);
    EXPECT_EQ(back->clean, m.clean);
    EXPECT_EQ(back->shards, m.shards);
    EXPECT_EQ(back->chunk_stripes, m.chunk_stripes);
    EXPECT_EQ(back->k, m.k);
    EXPECT_EQ(back->p, m.p);
    EXPECT_EQ(back->stripes, m.stripes);
    EXPECT_EQ(back->shard_uuids, m.shard_uuids);
}

TEST(VolumeManifest, TornBytesFailTheCrc) {
    std::vector<std::byte> blob = persist::encode(sample_manifest());
    blob[blob.size() / 2] ^= std::byte{0x40};
    EXPECT_FALSE(persist::decode(blob).has_value());
    EXPECT_FALSE(persist::decode({}).has_value());
}

// ---------------------------------------------------------------------
// Persistence round-trip and the crash-point matrix
// ---------------------------------------------------------------------

persist::volume_mount_options mount_opts(const std::string& dir) {
    persist::volume_mount_options mo;
    mo.store.dir = dir;
    mo.io_queue_depth = 1;
    return mo;
}

TEST(VolumePersist, CreateWriteUnmountMountRoundtrip) {
    const std::string dir = fresh_dir("roundtrip");
    const volume_config cfg = small_volume(2);
    std::vector<std::byte> data;
    std::uint64_t chunk_bytes = 0;
    {
        auto vol = persist::create_volume(cfg, {.dir = dir});
        ASSERT_NE(vol, nullptr);
        ASSERT_TRUE(vol->persistent());
        data = pattern_bytes(vol->capacity(), 21);
        chunk_bytes = vol->chunk_bytes();
        ASSERT_TRUE(vol->write(0, data));
        ASSERT_TRUE(vol->unmount());
    }
    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_FALSE(m.report.unclean);  // clean unmount was recorded
    EXPECT_EQ(m.report.manifest_torn_slots, 0);
    EXPECT_EQ(m.report.shards_mounted, 2u);
    ASSERT_EQ(m.report.census.size(), 2u);
    for (const persist::shard_census_entry& e : m.report.census) {
        EXPECT_TRUE(e.dir_present);
        EXPECT_TRUE(e.mounted);
        EXPECT_FALSE(e.foreign);
        EXPECT_FALSE(e.geometry_mismatch);
    }
    EXPECT_EQ(m.vol->chunk_bytes(), chunk_bytes);
    std::vector<std::byte> out(m.vol->capacity());
    ASSERT_TRUE(m.vol->read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_TRUE(m.vol->unmount());
}

TEST(VolumePersist, DroppedWithoutUnmountRemountsUnclean) {
    const std::string dir = fresh_dir("unclean");
    {
        auto vol = persist::create_volume(small_volume(2), {.dir = dir});
        ASSERT_NE(vol, nullptr);
        const std::vector<std::byte> data =
            pattern_bytes(vol->capacity(), 23);
        ASSERT_TRUE(vol->write(0, data));
        // Destroyed with no unmount: the abrupt-death state.
    }
    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_TRUE(m.report.unclean);
    EXPECT_TRUE(m.vol->unmount());
}

TEST(VolumePersist, TornNewestManifestSlotFallsBackToPreviousEpoch) {
    const std::string dir = fresh_dir("torn-slot");
    {
        auto vol = persist::create_volume(small_volume(2), {.dir = dir});
        ASSERT_NE(vol, nullptr);
        ASSERT_TRUE(vol->unmount());
    }
    // The newest slot is the one the last persist (unmount, even seq or
    // odd) wrote; tearing it must elect the previous epoch, not refuse.
    const persist::manifest_probe before =
        persist::load_manifest(dir);
    ASSERT_TRUE(before.m.has_value());
    const std::size_t newest_slot = before.m->seq % 2;
    flip_bytes(persist::manifest_path(dir),
               newest_slot * persist::manifest_slot_size + 32, 16);

    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.manifest_torn_slots, 1);
    EXPECT_TRUE(m.report.manifest_fell_back);
    // The surviving epoch predates the clean-unmount stamp.
    EXPECT_TRUE(m.report.unclean);
    EXPECT_TRUE(m.vol->unmount());
}

TEST(VolumePersist, BothManifestSlotsTornRefusesLoudly) {
    const std::string dir = fresh_dir("both-torn");
    {
        auto vol = persist::create_volume(small_volume(2), {.dir = dir});
        ASSERT_NE(vol, nullptr);
        ASSERT_TRUE(vol->unmount());
    }
    flip_bytes(persist::manifest_path(dir), 32, 16);
    flip_bytes(persist::manifest_path(dir),
               persist::manifest_slot_size + 32, 16);
    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    EXPECT_FALSE(m.report.ok);
    EXPECT_EQ(m.vol, nullptr);
    EXPECT_EQ(m.report.manifest_torn_slots, 2);
    EXPECT_NE(m.report.error.find("manifest"), std::string::npos);
}

TEST(VolumePersist, MissingShardDirectoryIsReportedInTheCensus) {
    const std::string dir = fresh_dir("missing-shard");
    {
        auto vol = persist::create_volume(small_volume(3), {.dir = dir});
        ASSERT_NE(vol, nullptr);
        ASSERT_TRUE(vol->unmount());
    }
    std::filesystem::remove_all(persist::shard_dir(dir, 1));
    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    EXPECT_FALSE(m.report.ok);
    EXPECT_EQ(m.vol, nullptr);
    ASSERT_EQ(m.report.census.size(), 3u);
    EXPECT_TRUE(m.report.census[0].dir_present);
    EXPECT_FALSE(m.report.census[1].dir_present);
    EXPECT_TRUE(m.report.census[2].dir_present);
    EXPECT_NE(m.report.error.find("shard directory missing"),
              std::string::npos);
}

TEST(VolumePersist, ForeignShardIsReportedAndNeverMounted) {
    const std::string dir_a = fresh_dir("foreign-a");
    const std::string dir_b = fresh_dir("foreign-b");
    {
        auto va = persist::create_volume(small_volume(2), {.dir = dir_a});
        auto vb = persist::create_volume(small_volume(2), {.dir = dir_b});
        ASSERT_NE(va, nullptr);
        ASSERT_NE(vb, nullptr);
        ASSERT_TRUE(va->unmount());
        ASSERT_TRUE(vb->unmount());
    }
    // Drop volume B's shard 1 into volume A's slot 1: same geometry,
    // wrong identity. The census must flag it without writing to it.
    std::filesystem::remove_all(persist::shard_dir(dir_a, 1));
    std::filesystem::copy(persist::shard_dir(dir_b, 1),
                          persist::shard_dir(dir_a, 1),
                          std::filesystem::copy_options::recursive);
    const auto before = std::filesystem::last_write_time(
        persist::shard_dir(dir_a, 1) + "/disk-00.img");

    persist::mounted_volume m = persist::mount_volume(mount_opts(dir_a));
    EXPECT_FALSE(m.report.ok);
    EXPECT_EQ(m.vol, nullptr);
    ASSERT_EQ(m.report.census.size(), 2u);
    EXPECT_FALSE(m.report.census[0].foreign);
    EXPECT_TRUE(m.report.census[1].foreign);
    EXPECT_FALSE(m.report.census[1].mounted);
    EXPECT_NE(m.report.error.find("foreign shard"), std::string::npos);
    EXPECT_EQ(std::filesystem::last_write_time(
                  persist::shard_dir(dir_a, 1) + "/disk-00.img"),
              before);
    // The foreign shard still mounts fine where it belongs.
    persist::mounted_volume b = persist::mount_volume(mount_opts(dir_b));
    ASSERT_TRUE(b.report.ok) << b.report.error;
    EXPECT_TRUE(b.vol->unmount());
}

// ---------------------------------------------------------------------
// Multi-shard chaos
// ---------------------------------------------------------------------

TEST(VolumeChaos, CampaignReplaysBitForBitFromSeed) {
    volume_chaos_config cfg = default_volume_chaos_config(7, 3, 1'800);
    // Denser corruption cadence: the short run still must demonstrate a
    // self-healing read, not just survive.
    cfg.events.corrupt_every = 300;
    const volume_chaos_report a = run_volume_chaos_campaign(cfg);
    const volume_chaos_report b = run_volume_chaos_campaign(cfg);

    EXPECT_TRUE(a.success);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.injected_fail_stops, b.injected_fail_stops);
    EXPECT_EQ(a.corruptions_injected, b.corruptions_injected);
    EXPECT_EQ(a.power_losses, b.power_losses);
    EXPECT_EQ(a.resynced_stripes, b.resynced_stripes);
    EXPECT_EQ(a.spares_promoted, b.spares_promoted);
    EXPECT_EQ(a.rebuilds_completed, b.rebuilds_completed);
    EXPECT_EQ(a.settle_scrub_healed, b.settle_scrub_healed);
    EXPECT_EQ(a.success, b.success);
    // Down to the per-shard fault streams: every shard counter equal.
    EXPECT_EQ(a.stats.shard_total.transient_errors_masked,
              b.stats.shard_total.transient_errors_masked);
    EXPECT_EQ(a.stats.shard_total.degraded_stripe_reads,
              b.stats.shard_total.degraded_stripe_reads);
    EXPECT_EQ(a.stats.shard_total.checksum_mismatches,
              b.stats.shard_total.checksum_mismatches);
    EXPECT_EQ(a.stats.shard_total.reads_self_healed,
              b.stats.shard_total.reads_self_healed);
    EXPECT_EQ(a.stats.chunks_routed, b.stats.chunks_routed);
    EXPECT_EQ(a.stats.multi_shard_ops, b.stats.multi_shard_ops);
}

TEST(VolumeChaos, PersistentCampaignKillsAndRemounts) {
    const std::string dir = fresh_dir("chaos");
    volume_chaos_config cfg = default_volume_chaos_config(11, 2, 1'800);
    cfg.persist_enabled = true;
    cfg.dir = dir;
    const volume_chaos_report rep = run_volume_chaos_campaign(cfg);

    EXPECT_EQ(rep.mismatches, 0u);
    EXPECT_EQ(rep.failed_reads, 0u);
    EXPECT_EQ(rep.failed_writes, 0u);
    EXPECT_EQ(rep.scrub_uncorrectable, 0u);
    EXPECT_GE(rep.kills, 2u);  // mid-rebuild + mid-write
    EXPECT_EQ(rep.kills, rep.remounts);
    EXPECT_EQ(rep.mount_failures, 0u);
    EXPECT_GE(rep.rebuilds_resumed, 1u);
    EXPECT_GE(rep.mount_intent_replayed, 1u);
    EXPECT_TRUE(rep.success);

    // The campaign's own exit was clean; the directory mounts clean.
    persist::mounted_volume m = persist::mount_volume(mount_opts(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_FALSE(m.report.unclean);
    EXPECT_TRUE(m.vol->unmount());
}

}  // namespace
