#include <gtest/gtest.h>

#include <vector>

#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/core/parallel.hpp"
#include "liberation/util/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace liberation;

struct batch {
    batch(const codes::raid6_code& code, std::size_t count, std::size_t elem,
          std::uint64_t seed) {
        util::xoshiro256 rng(seed);
        buffers.reserve(count);
        views.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            buffers.emplace_back(code.rows(), code.n(), elem);
            buffers.back().fill_random(rng, code.k());
            views.push_back(buffers.back().view());
        }
    }
    std::vector<codes::stripe_buffer> buffers;
    std::vector<codes::stripe_view> views;
};

TEST(ParallelCodec, BatchEncodeMatchesSerial) {
    const core::liberation_optimal_code code(6, 7);
    util::thread_pool pool(4);
    const core::parallel_codec codec(code, pool);

    batch par(code, 24, 64, 3);
    batch ser(code, 24, 64, 3);  // identical contents
    codec.encode_all(par.views);
    for (const auto& v : ser.views) code.encode(v);
    for (std::size_t i = 0; i < par.views.size(); ++i) {
        EXPECT_TRUE(codes::stripes_equal(par.views[i], ser.views[i])) << i;
    }
}

TEST(ParallelCodec, BatchDecodeRecoversAll) {
    const core::liberation_optimal_code code(5, 5);
    util::thread_pool pool(3);
    const core::parallel_codec codec(code, pool);

    batch b(code, 16, 32, 4);
    codec.encode_all(b.views);
    std::vector<codes::stripe_buffer> pristine;
    for (auto& buf : b.buffers) {
        pristine.emplace_back(code.rows(), code.n(), 32);
        codes::copy_stripe(pristine.back().view(), buf.view());
    }

    const std::vector<std::uint32_t> erased{1, 3};
    for (std::size_t i = 0; i < b.views.size(); ++i) {
        test_support::trash_columns(b.views[i], erased, i);
    }
    codec.decode_all(b.views, erased);
    for (std::size_t i = 0; i < b.views.size(); ++i) {
        EXPECT_TRUE(codes::stripes_equal(b.views[i], pristine[i].view())) << i;
    }
}

TEST(ParallelCodec, VerifyAllFlagsExactlyTheBadStripes) {
    const core::liberation_optimal_code code(4, 5);
    util::thread_pool pool(2);
    const core::parallel_codec codec(code, pool);

    batch b(code, 10, 16, 5);
    codec.encode_all(b.views);
    // Corrupt stripes 2 and 7.
    b.views[2].element(1, 0)[0] ^= std::byte{1};
    b.views[7].element(3, 2)[5] ^= std::byte{0x40};

    const auto bad = codec.verify_all(b.views);
    EXPECT_EQ(bad, (std::vector<std::size_t>{2, 7}));
}

TEST(ParallelCodec, EmptyBatchIsFine) {
    const core::liberation_optimal_code code(4, 5);
    util::thread_pool pool(2);
    const core::parallel_codec codec(code, pool);
    std::vector<codes::stripe_view> none;
    codec.encode_all(none);
    EXPECT_TRUE(codec.verify_all(none).empty());
}

}  // namespace
