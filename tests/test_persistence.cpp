// Persistence layer: file-backed disks, versioned CRC-protected
// superblocks with A/B shadow slots, mount/unmount, intent-log replay
// across a process kill, and the crash-point matrix — a deliberately
// damaged store must either heal (torn slot falls back to its shadow,
// an unreadable member is kicked to a rebuild target) or degrade loudly
// (refuse to assemble past the two-erasure budget), never silently
// assemble corrupt state.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "liberation/aio/file_backend.hpp"
#include "liberation/raid/intent_log.hpp"
#include "liberation/raid/persist/mount.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;
using namespace liberation::raid::persist;

std::string fresh_dir(const std::string& name) {
    const std::string dir =
        ::testing::TempDir() + "liberation-persist-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

array_config small_config() {
    array_config cfg;
    cfg.k = 4;
    cfg.element_size = 512;
    cfg.stripes = 16;
    cfg.sector_size = 512;
    cfg.io_queue_depth = 1;  // synchronous paths: simplest determinism
    return cfg;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> out(n);
    util::xoshiro256 rng(seed);
    rng.fill(out);
    return out;
}

/// XOR `len` bytes at `offset` with 0xFF — the torn-write simulator.
void flip_bytes(const std::string& path, std::size_t offset,
                std::size_t len) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr) << path;
    std::vector<unsigned char> buf(len);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fread(buf.data(), 1, len, f), len);
    for (unsigned char& b : buf) b ^= 0xFF;
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(buf.data(), 1, len, f), len);
    std::fclose(f);
}

std::vector<std::byte> slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return {};
    std::fseek(f, 0, SEEK_END);
    std::vector<std::byte> out(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
    std::fclose(f);
    return out;
}

mount_options options_for(const std::string& dir) {
    mount_options mo;
    mo.store.dir = dir;
    mo.io_queue_depth = 1;
    return mo;
}

superblock sample_superblock() {
    superblock sb;
    sb.seq = 7;
    sb.array_uuid = 0xDEADBEEFCAFEF00DULL;
    sb.events = 3;
    sb.clean = true;
    sb.slot = 2;
    sb.disk_id = 9;
    sb.k = 4;
    sb.p = 5;
    sb.element_size = 512;
    sb.stripes = 16;
    sb.sector_size = 512;
    sb.layout = 0;
    sb.spares_available = 1;
    sb.next_disk_id = 8;
    sb.intent_capacity = 8;
    sb.slot_states = {0, 0, 2, 0, 1, 0};
    sb.watermarks = {16, 16, 5, 16, 0, 16};
    sb.intents = {{3, 0x3F, 11}, {9, intent_log::all_columns, 12}};
    sb.crcs = {1, 2, 3, 4, 5, 6, 7, 8};
    return sb;
}

// ---------------------------------------------------------------------
// Superblock codec
// ---------------------------------------------------------------------

TEST(Superblock, EncodeDecodeRoundtrip) {
    const superblock sb = sample_superblock();
    const std::vector<std::byte> blob = encode(sb);
    EXPECT_EQ(blob.size(),
              encoded_size(static_cast<std::uint32_t>(sb.slot_states.size()),
                           sb.intent_capacity, sb.crcs.size()));

    const auto back = decode(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seq, sb.seq);
    EXPECT_EQ(back->array_uuid, sb.array_uuid);
    EXPECT_EQ(back->events, sb.events);
    EXPECT_EQ(back->clean, sb.clean);
    EXPECT_EQ(back->slot, sb.slot);
    EXPECT_EQ(back->disk_id, sb.disk_id);
    EXPECT_TRUE(back->geometry_matches(sb));
    EXPECT_EQ(back->slot_states, sb.slot_states);
    EXPECT_EQ(back->watermarks, sb.watermarks);
    EXPECT_EQ(back->crcs, sb.crcs);
    ASSERT_EQ(back->intents.size(), sb.intents.size());
    for (std::size_t i = 0; i < sb.intents.size(); ++i) {
        EXPECT_EQ(back->intents[i].stripe, sb.intents[i].stripe);
        EXPECT_EQ(back->intents[i].columns, sb.intents[i].columns);
        EXPECT_EQ(back->intents[i].seq, sb.intents[i].seq);
    }
}

TEST(Superblock, EncodedSizeIndependentOfIntentOccupancy) {
    // The on-disk framing must be fixed at format time: a fuller intent
    // log must not change the encoded extent (unused slots are padding).
    superblock sb = sample_superblock();
    sb.intents.clear();
    const std::size_t empty = encode(sb).size();
    sb.intents = {{1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
    EXPECT_EQ(encode(sb).size(), empty);
}

TEST(Superblock, TornSlotFailsItsCrc) {
    const superblock sb = sample_superblock();
    std::vector<std::byte> blob = encode(sb);
    ASSERT_TRUE(decode(blob).has_value());
    for (const std::size_t at :
         {std::size_t{0}, blob.size() / 2, blob.size() - 1}) {
        std::vector<std::byte> torn = blob;
        torn[at] ^= std::byte{0x01};
        EXPECT_FALSE(decode(torn).has_value()) << "flip at " << at;
    }
    // Truncation is torn too.
    std::vector<std::byte> shorter(blob.begin(), blob.end() - 1);
    EXPECT_FALSE(decode(shorter).has_value());
}

TEST(Superblock, FileHeaderRoundtripAndTearDetection) {
    file_header h;
    h.array_uuid = 0x1234;
    h.slot = 3;
    h.slot_bytes = 4096;
    h.data_offset = file_header_size + 2 * 4096;
    std::vector<std::byte> blob = encode_header(h);
    EXPECT_EQ(blob.size(), file_header_size);
    const auto back = decode_header(blob);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->array_uuid, h.array_uuid);
    EXPECT_EQ(back->slot, h.slot);
    EXPECT_EQ(back->slot_bytes, h.slot_bytes);
    EXPECT_EQ(back->data_offset, h.data_offset);
    blob[9] ^= std::byte{0x80};
    EXPECT_FALSE(decode_header(blob).has_value());
}

// ---------------------------------------------------------------------
// Intent log replay order + full-log behavior (in-memory contract the
// persistence layer serializes)
// ---------------------------------------------------------------------

TEST(IntentLogOrder, ReplayOrderIsOldestMarkFirst) {
    intent_log log;
    EXPECT_TRUE(log.mark(5));
    EXPECT_TRUE(log.mark(3));
    EXPECT_TRUE(log.mark(9));
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{5, 3, 9}));
    // Clearing and re-marking moves a stripe to the back: its hazard
    // re-began, the older in-flight stripes replay first.
    log.clear(3);
    EXPECT_TRUE(log.mark(3));
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{5, 9, 3}));
}

TEST(IntentLogOrder, RemarkWidensMaskButKeepsStamp) {
    intent_log log;
    EXPECT_TRUE(log.mark(4, 0x3));
    EXPECT_TRUE(log.mark(8, 0x1));
    EXPECT_TRUE(log.mark(4, 0xC));  // second update of the same stripe
    EXPECT_EQ(log.columns(4), 0xFu);
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{4, 8}));
    const auto entries = log.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_LT(entries[0].seq, entries[1].seq);
    EXPECT_EQ(entries[0].stripe, 4u);
}

TEST(IntentLogOrder, FullLogRejectsLoudlyAndNeverShedsEntries) {
    intent_log log(2);
    EXPECT_TRUE(log.mark(1));
    EXPECT_TRUE(log.mark(2));
    EXPECT_FALSE(log.mark(3));  // full: refuse, do not evict
    EXPECT_EQ(log.rejected(), 1u);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_FALSE(log.is_dirty(3));
    // Re-marking a present stripe is not a new entry and must succeed.
    EXPECT_TRUE(log.mark(1, 0x1));
    // Draining the oldest entry frees capacity for the refused one.
    log.clear(1);
    EXPECT_TRUE(log.mark(3));
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{2, 3}));
}

TEST(IntentLogOrder, RestoreRebuildsReplayOrderFromStamps) {
    intent_log log;
    // Scrambled insertion order; stamps decide.
    log.restore(12, 0xF, 30);
    log.restore(7, intent_log::all_columns, 10);
    log.restore(2, 0x1, 20);
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{7, 2, 12}));
    EXPECT_EQ(log.columns(7), intent_log::all_columns);
    // New marks stamp after everything restored.
    EXPECT_TRUE(log.mark(1));
    EXPECT_EQ(log.dirty_stripes(), (std::vector<std::size_t>{7, 2, 12, 1}));
}

// ---------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------

TEST(FileBackend, DataSurvivesReopen) {
    const std::string dir = fresh_dir("filebackend");
    const std::string path = dir + "/fb.img";
    aio::file_backend_config bc;
    bc.data_offset = 4096;
    const std::vector<std::byte> data = pattern_bytes(8192, 77);
    {
        aio::file_backend fb({path}, 8192, bc);
        ASSERT_TRUE(fb.ok(0));
        ASSERT_TRUE(fb.write_data(0, 0, data));
        ASSERT_TRUE(fb.flush_all());
    }
    EXPECT_EQ(std::filesystem::file_size(path), 4096u + 8192u);
    {
        aio::file_backend fb({path}, 8192, bc);
        std::vector<std::byte> back(8192);
        ASSERT_TRUE(fb.read_data(0, 0, back));
        EXPECT_EQ(back, data);
        // Raw access sees the metadata area below data_offset (all zeros
        // here — nothing wrote it).
        std::vector<std::byte> raw(4096);
        ASSERT_TRUE(fb.pread_raw(0, 0, raw));
        for (std::byte b : raw) ASSERT_EQ(b, std::byte{0});
    }
}

TEST(FileBackend, UnopenablePathDegradesNotCrashes) {
    aio::file_backend fb({"/nonexistent-dir-xyz/disk.img"}, 4096, {});
    EXPECT_FALSE(fb.ok(0));
    std::vector<std::byte> buf(64);
    EXPECT_FALSE(fb.read_data(0, 0, buf));
    EXPECT_FALSE(fb.write_data(0, 0, buf));
}

// ---------------------------------------------------------------------
// Mount / unmount roundtrip
// ---------------------------------------------------------------------

TEST(Persistence, CreateWriteUnmountMountRoundtrip) {
    const std::string dir = fresh_dir("roundtrip");
    const array_config cfg = small_config();
    store_config scfg;
    scfg.dir = dir;

    std::vector<std::byte> data;
    {
        auto a = create_array(cfg, scfg, 0xFEED);
        ASSERT_NE(a, nullptr);
        EXPECT_TRUE(a->persistent());
        data = pattern_bytes(a->capacity(), 1);
        ASSERT_TRUE(a->write(0, data));
        EXPECT_TRUE(a->unmount());
        EXPECT_FALSE(a->persistent());  // detached
    }
    mounted_array m = mount_array(options_for(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    ASSERT_NE(m.array, nullptr);
    EXPECT_FALSE(m.report.unclean);  // unmount stamped the store clean
    EXPECT_EQ(m.report.disks_total, cfg.k + 2);
    EXPECT_EQ(m.report.disks_online, cfg.k + 2);
    EXPECT_EQ(m.report.torn_superblock_slots, 0u);
    EXPECT_EQ(m.report.intent_entries, 0u);
    EXPECT_GT(m.report.mount_s, 0.0);

    std::vector<std::byte> back(m.array->capacity());
    ASSERT_TRUE(m.array->read(0, back));
    EXPECT_EQ(back, data);
    // Every stored checksum must also have survived: a scrub finds
    // nothing to repair.
    const scrub_summary s = scrub_array(*m.array);
    EXPECT_EQ(s.repaired_data + s.repaired_parity + s.repaired_metadata, 0u);
    EXPECT_EQ(s.uncorrectable, 0u);
    EXPECT_TRUE(m.array->unmount());
}

TEST(Persistence, MountEmptyDirectoryFailsLoudly) {
    const std::string dir = fresh_dir("empty");
    mounted_array m = mount_array(options_for(dir));
    EXPECT_FALSE(m.report.ok);
    EXPECT_EQ(m.array, nullptr);
    EXPECT_FALSE(m.report.error.empty());
}

TEST(Persistence, UncleanCrashReplaysIntentLog) {
    const std::string dir = fresh_dir("crash-midwrite");
    const array_config cfg = small_config();
    store_config scfg;
    scfg.dir = dir;

    auto a = create_array(cfg, scfg, 0xFEED);
    ASSERT_NE(a, nullptr);
    const std::vector<std::byte> data = pattern_bytes(a->capacity(), 2);
    ASSERT_TRUE(a->write(0, data));

    // Pull the plug a couple of disk writes into a stripe update, then
    // "kill the process": destroy the array with no unmount. The intent
    // entry was persisted before the data writes began.
    a->simulate_power_loss_after(2);
    const std::vector<std::byte> update =
        pattern_bytes(3 * cfg.element_size, 3);
    (void)a->write(5 * cfg.element_size, update);
    ASSERT_FALSE(a->powered());
    a.reset();  // crash

    mounted_array m = mount_array(options_for(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_TRUE(m.report.unclean);
    EXPECT_GE(m.report.intent_entries, 1u);
    EXPECT_GE(m.report.intent_replayed, 1u);
    EXPECT_EQ(m.array->journal().size(), 0u);
    EXPECT_GE(m.array->stats().intent_replayed, 1u);
    // The replay counter is exported through the metrics hub.
    EXPECT_NE(m.array->obs().metrics_text().find(
                  "liberation_raid_intent_replayed_total"),
              std::string::npos);

    // Whatever old/new mix the torn write left is now ground truth; the
    // invariant is parity consistency, which the scrubber certifies.
    const scrub_summary s = scrub_array(*m.array);
    EXPECT_EQ(s.uncorrectable, 0u);
    EXPECT_TRUE(m.array->unmount());
}

TEST(Persistence, RestoredJournalPreservesReplayOrder) {
    const std::string dir = fresh_dir("replay-order");
    array_config cfg = small_config();
    cfg.io_queue_depth = 4;  // window writes journal several stripes
    store_config scfg;
    scfg.dir = dir;

    auto a = create_array(cfg, scfg, 0xFEED);
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->write(0, pattern_bytes(a->capacity(), 4)));

    // Die inside a multi-stripe full-stripe window: several stripes are
    // journaled, few of their writes landed.
    a->simulate_power_loss_after(3);
    const std::size_t stripe_bytes = a->map().stripe_data_size();
    (void)a->write(0, pattern_bytes(4 * stripe_bytes, 5));
    ASSERT_FALSE(a->powered());
    a.reset();  // crash

    mount_options mo = options_for(dir);
    mo.replay_intent = false;  // inspect the restored journal
    mounted_array m = mount_array(mo);
    ASSERT_TRUE(m.report.ok) << m.report.error;
    ASSERT_GE(m.array->journal().size(), 1u);
    // Stamps must have survived serialization: entries() strictly
    // ascending in seq, which is the replay order.
    const auto entries = m.array->journal().entries();
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_LT(entries[i - 1].seq, entries[i].seq);
    }
    // Replay drains the journal front-to-back.
    while (m.array->journal().size() > 0) {
        if (m.array->recover_write_hole() == 0) break;
    }
    EXPECT_EQ(m.array->journal().size(), 0u);
    const scrub_summary s = scrub_array(*m.array);
    EXPECT_EQ(s.uncorrectable, 0u);
    EXPECT_TRUE(m.array->unmount());
}

// ---------------------------------------------------------------------
// Crash-point matrix: deliberately damaged stores
// ---------------------------------------------------------------------

class CrashPointMatrix : public ::testing::Test {
protected:
    void make_store(const std::string& dir) {
        dir_ = dir;
        array_config cfg = small_config();
        store_config scfg;
        scfg.dir = dir_;
        auto a = create_array(cfg, scfg, 0xFEED);
        ASSERT_NE(a, nullptr);
        data_ = pattern_bytes(a->capacity(), 6);
        ASSERT_TRUE(a->write(0, data_));
        ASSERT_TRUE(a->unmount());
        const auto probes = probe_dir(dir_);
        ASSERT_EQ(probes.size(), 6u);
        ASSERT_TRUE(probes[0].header_ok);
        slot_bytes_ = probes[0].header.slot_bytes;
        data_offset_ = probes[0].header.data_offset;
    }

    void expect_data_intact(raid6_array& a) {
        std::vector<std::byte> back(a.capacity());
        ASSERT_TRUE(a.read(0, back));
        EXPECT_EQ(back, data_);
    }

    std::string disk(std::uint32_t slot) const {
        return store::disk_path(dir_, slot);
    }

    std::string dir_;
    std::vector<std::byte> data_;
    std::uint64_t slot_bytes_ = 0;
    std::uint64_t data_offset_ = 0;
};

TEST_F(CrashPointMatrix, TornSuperblockSlotFallsBackToShadow) {
    make_store(fresh_dir("torn-one-slot"));
    // Tear slot A of disk 1 (a torn shadow write: CRC fails, the other
    // copy carries the mount).
    flip_bytes(disk(1), file_header_size + 8, 16);
    mounted_array m = mount_array(options_for(dir_));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.torn_superblock_slots, 1u);
    EXPECT_EQ(m.report.unreadable, 0u);
    EXPECT_EQ(m.report.disks_online, 6u);
    expect_data_intact(*m.array);
    EXPECT_TRUE(m.array->unmount());
}

TEST_F(CrashPointMatrix, BothSlotsTornKicksDiskToRebuild) {
    make_store(fresh_dir("torn-both-slots"));
    flip_bytes(disk(1), file_header_size + 8, 16);
    flip_bytes(disk(1), file_header_size + slot_bytes_ + 8, 16);
    mounted_array m = mount_array(options_for(dir_));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.unreadable, 1u);
    EXPECT_GE(m.report.torn_superblock_slots, 2u);
    EXPECT_EQ(m.array->stats().stale_disks_kicked, 1u);
    EXPECT_TRUE(m.array->rebuild_active());
    m.array->drain_background_rebuild();
    expect_data_intact(*m.array);
    EXPECT_TRUE(m.array->unmount());

    // The healed store mounts clean: the kick was persisted, the rebuild
    // completed, nothing is degraded on the second mount.
    mounted_array again = mount_array(options_for(dir_));
    ASSERT_TRUE(again.report.ok) << again.report.error;
    EXPECT_EQ(again.report.unreadable, 0u);
    EXPECT_EQ(again.report.disks_online, 6u);
    expect_data_intact(*again.array);
    EXPECT_TRUE(again.array->unmount());
}

TEST_F(CrashPointMatrix, CorruptFileHeaderKicksDiskToRebuild) {
    make_store(fresh_dir("bad-header"));
    flip_bytes(disk(2), 16, 8);
    mounted_array m = mount_array(options_for(dir_));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.unreadable, 1u);
    m.array->drain_background_rebuild();
    expect_data_intact(*m.array);
    EXPECT_TRUE(m.array->unmount());
}

TEST_F(CrashPointMatrix, MissingDiskFileKicksDiskToRebuild) {
    make_store(fresh_dir("missing-file"));
    std::filesystem::remove(disk(3));
    mounted_array m = mount_array(options_for(dir_));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.unreadable, 1u);
    m.array->drain_background_rebuild();
    expect_data_intact(*m.array);
    EXPECT_TRUE(m.array->unmount());
}

TEST_F(CrashPointMatrix, ThreeUntrustedMembersRefuseLoudly) {
    make_store(fresh_dir("three-gone"));
    for (std::uint32_t d : {1u, 2u, 3u}) {
        flip_bytes(disk(d), file_header_size + 8, 16);
        flip_bytes(disk(d), file_header_size + slot_bytes_ + 8, 16);
    }
    mounted_array m = mount_array(options_for(dir_));
    EXPECT_FALSE(m.report.ok);
    EXPECT_EQ(m.array, nullptr);
    EXPECT_NE(m.report.error.find("refusing to assemble"), std::string::npos)
        << m.report.error;
}

TEST_F(CrashPointMatrix, MidStripeTornDataIsDetectedAndHealed) {
    make_store(fresh_dir("torn-data"));
    // Damage data bytes directly in the file — a torn data write the
    // persisted checksums still describe correctly.
    flip_bytes(disk(0), data_offset_ + 3 * 512, 64);
    mounted_array m = mount_array(options_for(dir_));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    // Never served silently: the verified read path or the scrubber must
    // catch the mismatch and reconstruct from the surviving columns.
    const scrub_summary s = scrub_array(*m.array);
    EXPECT_GE(s.repaired_data + s.repaired_parity, 1u);
    EXPECT_EQ(s.uncorrectable, 0u);
    expect_data_intact(*m.array);
    EXPECT_TRUE(m.array->unmount());
}

// ---------------------------------------------------------------------
// Stale and foreign members
// ---------------------------------------------------------------------

TEST(Persistence, StaleDiskIsKickedNotTrusted) {
    const std::string dir = fresh_dir("stale");
    const array_config cfg = small_config();
    store_config scfg;
    scfg.dir = dir;
    std::vector<std::byte> data;
    {
        auto a = create_array(cfg, scfg, 0xFEED);
        ASSERT_NE(a, nullptr);
        data = pattern_bytes(a->capacity(), 8);
        ASSERT_TRUE(a->write(0, data));
        ASSERT_TRUE(a->unmount());
    }
    // Keep an old copy of one member, advance the array's epoch twice
    // (each mount/unmount cycle bumps the membership events), then slide
    // the old copy back in — the classic restored-from-backup disk.
    const std::string victim = store::disk_path(dir, 3);
    const std::vector<std::byte> old_copy = slurp(victim);
    for (int cycle = 0; cycle < 2; ++cycle) {
        mounted_array m = mount_array(options_for(dir));
        ASSERT_TRUE(m.report.ok) << m.report.error;
        ASSERT_TRUE(m.array->unmount());
    }
    {
        std::FILE* f = std::fopen(victim.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(old_copy.data(), 1, old_copy.size(), f),
                  old_copy.size());
        std::fclose(f);
    }
    mounted_array m = mount_array(options_for(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.stale_kicked, 1u);
    EXPECT_EQ(m.array->stats().stale_disks_kicked, 1u);
    EXPECT_TRUE(m.array->rebuild_active());
    m.array->drain_background_rebuild();
    std::vector<std::byte> back(m.array->capacity());
    ASSERT_TRUE(m.array->read(0, back));
    EXPECT_EQ(back, data);
    EXPECT_TRUE(m.array->unmount());
}

TEST(Persistence, ForeignDiskIsNeverOverwritten) {
    const std::string dir_a = fresh_dir("foreign-a");
    const std::string dir_b = fresh_dir("foreign-b");
    const array_config cfg = small_config();
    std::vector<std::byte> data;
    {
        store_config scfg;
        scfg.dir = dir_a;
        auto a = create_array(cfg, scfg, 0xAAAA);
        ASSERT_NE(a, nullptr);
        data = pattern_bytes(a->capacity(), 9);
        ASSERT_TRUE(a->write(0, data));
        ASSERT_TRUE(a->unmount());
    }
    {
        store_config scfg;
        scfg.dir = dir_b;
        auto b = create_array(cfg, scfg, 0xBBBB);
        ASSERT_NE(b, nullptr);
        ASSERT_TRUE(b->write(0, pattern_bytes(b->capacity(), 10)));
        ASSERT_TRUE(b->unmount());
    }
    // Array B's disk lands in array A's slot 2 — wrong cable, wrong bay.
    const std::string slot_path = store::disk_path(dir_a, 2);
    std::filesystem::copy_file(
        store::disk_path(dir_b, 2), slot_path,
        std::filesystem::copy_options::overwrite_existing);
    const std::vector<std::byte> foreign_before = slurp(slot_path);

    mounted_array m = mount_array(options_for(dir_a));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_EQ(m.report.foreign, 1u);
    EXPECT_EQ(m.report.disks_online, 5u);
    EXPECT_FALSE(m.array->disk(2).online());
    // Degraded but fully readable, and writes still land.
    std::vector<std::byte> back(m.array->capacity());
    ASSERT_TRUE(m.array->read(0, back));
    EXPECT_EQ(back, data);
    ASSERT_TRUE(
        m.array->write(0, pattern_bytes(2 * cfg.element_size, 11)));
    (void)m.array->unmount();  // degraded unmount; foreign slot excluded
    // The foreign file was not touched by mount, I/O, or unmount.
    EXPECT_EQ(slurp(slot_path), foreign_before);
}

// ---------------------------------------------------------------------
// Rebuild watermarks
// ---------------------------------------------------------------------

TEST(Persistence, InterruptedRebuildResumesFromWatermark) {
    const std::string dir = fresh_dir("watermark");
    array_config cfg = small_config();
    cfg.stripes = 64;  // long enough to interrupt
    cfg.hot_spares = 1;
    cfg.rebuild_batch_stripes = 2;
    store_config scfg;
    scfg.dir = dir;

    auto a = create_array(cfg, scfg, 0xFEED);
    ASSERT_NE(a, nullptr);
    const std::vector<std::byte> data = pattern_bytes(a->capacity(), 12);
    ASSERT_TRUE(a->write(0, data));
    a->fail_disk(1);  // spare promotes, background rebuild starts
    // Service a few batches, then die mid-rebuild.
    std::vector<std::byte> probe(cfg.element_size);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(a->read(static_cast<std::size_t>(i) * probe.size(),
                            probe));
    }
    ASSERT_TRUE(a->rebuild_active());
    a.reset();  // crash

    mounted_array m = mount_array(options_for(dir));
    ASSERT_TRUE(m.report.ok) << m.report.error;
    EXPECT_TRUE(m.report.unclean);
    EXPECT_EQ(m.report.rebuilds_resumed, 1u);
    EXPECT_TRUE(m.array->rebuild_active());
    m.array->drain_background_rebuild();
    EXPECT_GE(m.array->stats().rebuilds_completed, 1u);
    std::vector<std::byte> back(m.array->capacity());
    ASSERT_TRUE(m.array->read(0, back));
    EXPECT_EQ(back, data);
    const scrub_summary s = scrub_array(*m.array);
    EXPECT_EQ(s.uncorrectable, 0u);
    EXPECT_TRUE(m.array->unmount());
}

}  // namespace
