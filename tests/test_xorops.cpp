#include <gtest/gtest.h>

#include <vector>

#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

class XorOpsSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XorOpsSizes, XorIntoMatchesScalar) {
    const std::size_t n = GetParam();
    auto dst = random_bytes(n, 1);
    const auto src = random_bytes(n, 2);
    auto expected = dst;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    xorops::xor_into(dst.data(), src.data(), n);
    EXPECT_EQ(dst, expected);
}

TEST_P(XorOpsSizes, Xor2MatchesScalar) {
    const std::size_t n = GetParam();
    const auto a = random_bytes(n, 3);
    const auto b = random_bytes(n, 4);
    std::vector<std::byte> dst(n);
    xorops::xor2(dst.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i], a[i] ^ b[i]) << "i=" << i << " n=" << n;
    }
}

// Sizes straddle the unrolled body (32B), the word loop (8B) and the byte
// tail, plus typical element sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, XorOpsSizes,
                         ::testing::Values(1, 7, 8, 9, 31, 32, 33, 63, 64,
                                           100, 4096, 4099));

TEST(XorOps, SelfXorZeroes) {
    auto buf = random_bytes(64, 5);
    xorops::xor_into(buf.data(), buf.data(), buf.size());
    EXPECT_TRUE(xorops::is_zero(buf.data(), buf.size()));
}

TEST(XorOps, XorIsInvolution) {
    auto dst = random_bytes(256, 6);
    const auto orig = dst;
    const auto src = random_bytes(256, 7);
    xorops::xor_into(dst.data(), src.data(), dst.size());
    EXPECT_NE(dst, orig);
    xorops::xor_into(dst.data(), src.data(), dst.size());
    EXPECT_EQ(dst, orig);
}

TEST(XorOps, CountersTrackOps) {
    xorops::counting_scope scope;
    auto a = random_bytes(128, 8);
    const auto b = random_bytes(128, 9);
    std::vector<std::byte> c(128);

    xorops::xor_into(a.data(), b.data(), 128);
    xorops::xor2(c.data(), a.data(), b.data(), 128);
    xorops::copy(c.data(), a.data(), 128);

    const auto stats = scope.snapshot();
    EXPECT_EQ(stats.xor_ops, 2u);
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.bytes_xored, 256u);
    EXPECT_EQ(stats.bytes_copied, 128u);
}

TEST(XorOps, CountingScopeResets) {
    auto a = random_bytes(16, 10);
    xorops::xor_into(a.data(), a.data(), 16);
    {
        xorops::counting_scope scope;
        EXPECT_EQ(scope.xors(), 0u);
        xorops::xor_into(a.data(), a.data(), 16);
        EXPECT_EQ(scope.xors(), 1u);
    }
}

TEST(XorOps, ZeroNotCounted) {
    xorops::counting_scope scope;
    std::vector<std::byte> buf(64, std::byte{0xff});
    xorops::zero(buf.data(), buf.size());
    EXPECT_TRUE(xorops::is_zero(buf.data(), buf.size()));
    EXPECT_EQ(scope.xors(), 0u);
    EXPECT_EQ(scope.copies(), 0u);
}

TEST(XorOps, IsZeroAndEqual) {
    std::vector<std::byte> a(32, std::byte{0});
    EXPECT_TRUE(xorops::is_zero(a.data(), a.size()));
    a[31] = std::byte{1};
    EXPECT_FALSE(xorops::is_zero(a.data(), a.size()));
    auto b = a;
    EXPECT_TRUE(xorops::equal(a.data(), b.data(), a.size()));
    b[0] = std::byte{7};
    EXPECT_FALSE(xorops::equal(a.data(), b.data(), a.size()));
}

TEST(XorOps, SpanOverloads) {
    auto a = random_bytes(48, 11);
    const auto b = random_bytes(48, 12);
    auto expected = a;
    for (std::size_t i = 0; i < 48; ++i) expected[i] ^= b[i];
    xorops::xor_into(std::span<std::byte>(a),
                     std::span<const std::byte>(b.data(), b.size()));
    EXPECT_EQ(a, expected);
}

TEST(XorOps, UnalignedPointers) {
    // Kernels must be correct for arbitrary (sector-offset) pointers.
    auto raw = random_bytes(200, 13);
    auto src = random_bytes(200, 14);
    auto expected = raw;
    for (std::size_t i = 3; i < 3 + 100; ++i) expected[i] ^= src[i + 2];
    xorops::xor_into(raw.data() + 3, src.data() + 5, 100);
    EXPECT_EQ(raw, expected);
}

}  // namespace
