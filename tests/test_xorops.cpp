#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

class XorOpsSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XorOpsSizes, XorIntoMatchesScalar) {
    const std::size_t n = GetParam();
    auto dst = random_bytes(n, 1);
    const auto src = random_bytes(n, 2);
    auto expected = dst;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    xorops::xor_into(dst.data(), src.data(), n);
    EXPECT_EQ(dst, expected);
}

TEST_P(XorOpsSizes, Xor2MatchesScalar) {
    const std::size_t n = GetParam();
    const auto a = random_bytes(n, 3);
    const auto b = random_bytes(n, 4);
    std::vector<std::byte> dst(n);
    xorops::xor2(dst.data(), a.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(dst[i], a[i] ^ b[i]) << "i=" << i << " n=" << n;
    }
}

// Sizes straddle the unrolled body (32B), the word loop (8B) and the byte
// tail, plus typical element sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, XorOpsSizes,
                         ::testing::Values(1, 7, 8, 9, 31, 32, 33, 63, 64,
                                           100, 4096, 4099));

TEST(XorOps, SelfXorZeroes) {
    auto buf = random_bytes(64, 5);
    xorops::xor_into(buf.data(), buf.data(), buf.size());
    EXPECT_TRUE(xorops::is_zero(buf.data(), buf.size()));
}

TEST(XorOps, XorIsInvolution) {
    auto dst = random_bytes(256, 6);
    const auto orig = dst;
    const auto src = random_bytes(256, 7);
    xorops::xor_into(dst.data(), src.data(), dst.size());
    EXPECT_NE(dst, orig);
    xorops::xor_into(dst.data(), src.data(), dst.size());
    EXPECT_EQ(dst, orig);
}

TEST(XorOps, CountersTrackOps) {
    xorops::counting_scope scope;
    auto a = random_bytes(128, 8);
    const auto b = random_bytes(128, 9);
    std::vector<std::byte> c(128);

    xorops::xor_into(a.data(), b.data(), 128);
    xorops::xor2(c.data(), a.data(), b.data(), 128);
    xorops::copy(c.data(), a.data(), 128);

    const auto stats = scope.snapshot();
    EXPECT_EQ(stats.xor_ops, 2u);
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.bytes_xored, 256u);
    EXPECT_EQ(stats.bytes_copied, 128u);
}

TEST(XorOps, CountingScopeResets) {
    auto a = random_bytes(16, 10);
    xorops::xor_into(a.data(), a.data(), 16);
    {
        xorops::counting_scope scope;
        EXPECT_EQ(scope.xors(), 0u);
        xorops::xor_into(a.data(), a.data(), 16);
        EXPECT_EQ(scope.xors(), 1u);
    }
}

TEST(XorOps, ZeroNotCounted) {
    xorops::counting_scope scope;
    std::vector<std::byte> buf(64, std::byte{0xff});
    xorops::zero(buf.data(), buf.size());
    EXPECT_TRUE(xorops::is_zero(buf.data(), buf.size()));
    EXPECT_EQ(scope.xors(), 0u);
    EXPECT_EQ(scope.copies(), 0u);
}

TEST(XorOps, IsZeroAndEqual) {
    std::vector<std::byte> a(32, std::byte{0});
    EXPECT_TRUE(xorops::is_zero(a.data(), a.size()));
    a[31] = std::byte{1};
    EXPECT_FALSE(xorops::is_zero(a.data(), a.size()));
    auto b = a;
    EXPECT_TRUE(xorops::equal(a.data(), b.data(), a.size()));
    b[0] = std::byte{7};
    EXPECT_FALSE(xorops::equal(a.data(), b.data(), a.size()));
}

TEST(XorOps, SpanOverloads) {
    auto a = random_bytes(48, 11);
    const auto b = random_bytes(48, 12);
    auto expected = a;
    for (std::size_t i = 0; i < 48; ++i) expected[i] ^= b[i];
    xorops::xor_into(std::span<std::byte>(a),
                     std::span<const std::byte>(b.data(), b.size()));
    EXPECT_EQ(a, expected);
}

TEST(XorOps, UnalignedPointers) {
    // Kernels must be correct for arbitrary (sector-offset) pointers.
    auto raw = random_bytes(200, 13);
    auto src = random_bytes(200, 14);
    auto expected = raw;
    for (std::size_t i = 3; i < 3 + 100; ++i) expected[i] ^= src[i + 2];
    xorops::xor_into(raw.data() + 3, src.data() + 5, 100);
    EXPECT_EQ(raw, expected);
}

// ---------------------------------------------------------------------------
// Impl-sweep correctness: every available tier, exhaustively over the
// alignment x size grid that covers each kernel's vector body, partial head,
// and scalar tail, checked against a byte-wise reference.

std::vector<xorops::xor_impl> available_impls() {
    std::vector<xorops::xor_impl> v;
    for (const auto impl :
         {xorops::xor_impl::scalar, xorops::xor_impl::avx2,
          xorops::xor_impl::avx512, xorops::xor_impl::neon}) {
        if (xorops::impl_available(impl)) v.push_back(impl);
    }
    return v;
}

class XorOpsImplSweep
    : public ::testing::TestWithParam<xorops::xor_impl> {};

TEST_P(XorOpsImplSweep, XorIntoUnalignedGrid) {
    xorops::impl_scope scope(GetParam());
    // Guard bytes around the destination window catch out-of-bounds stores.
    constexpr std::size_t kPad = 256;
    for (std::size_t off = 0; off < 64; ++off) {
        for (std::size_t n = 0; n <= 129; ++n) {
            auto dst = random_bytes(kPad + n + kPad, 100 + off);
            const auto src = random_bytes(kPad + n, 200 + n);
            auto expected = dst;
            for (std::size_t i = 0; i < n; ++i) {
                expected[kPad + i] ^= src[off + i];
            }
            xorops::xor_into(dst.data() + kPad, src.data() + off, n);
            ASSERT_EQ(dst, expected) << "off=" << off << " n=" << n;
        }
    }
}

TEST_P(XorOpsImplSweep, Xor2UnalignedGrid) {
    xorops::impl_scope scope(GetParam());
    constexpr std::size_t kPad = 256;
    for (std::size_t off = 0; off < 64; ++off) {
        for (std::size_t n = 0; n <= 129; ++n) {
            const auto a = random_bytes(kPad + n, 300 + off);
            const auto b = random_bytes(kPad + n, 400 + n);
            auto dst = random_bytes(kPad + n + kPad, 500);
            auto expected = dst;
            for (std::size_t i = 0; i < n; ++i) {
                expected[kPad + i] = a[off + i] ^ b[off + i];
            }
            xorops::xor2(dst.data() + kPad, a.data() + off, b.data() + off, n);
            ASSERT_EQ(dst, expected) << "off=" << off << " n=" << n;
        }
    }
}

TEST_P(XorOpsImplSweep, LargeRegions) {
    xorops::impl_scope scope(GetParam());
    // Sizes chosen to exercise many full vector chunks plus ragged tails.
    for (const std::size_t n : {4096ul, 65536ul, 65536ul + 61}) {
        auto dst = random_bytes(n, 600 + n);
        const auto src = random_bytes(n, 700 + n);
        auto expected = dst;
        for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
        xorops::xor_into(dst.data(), src.data(), n);
        ASSERT_EQ(dst, expected) << "n=" << n;
    }
}

TEST_P(XorOpsImplSweep, XorManyFanInSweep) {
    xorops::impl_scope scope(GetParam());
    // Fan-ins 1..12 cross the max_fused_sources() pass boundary, so both
    // the single-pass and the split multi-pass paths are covered.
    ASSERT_GE(12u, xorops::max_fused_sources());
    for (const std::size_t n : {1ul, 63ul, 64ul, 129ul, 4099ul}) {
        std::vector<std::vector<std::byte>> bufs;
        std::vector<const std::byte*> srcs;
        for (std::size_t s = 0; s < 12; ++s) {
            bufs.push_back(random_bytes(n, 800 + 16 * n + s));
            srcs.push_back(bufs.back().data());
        }
        for (std::size_t fan = 1; fan <= 12; ++fan) {
            std::vector<std::byte> expected(n, std::byte{0});
            for (std::size_t s = 0; s < fan; ++s) {
                for (std::size_t i = 0; i < n; ++i) expected[i] ^= bufs[s][i];
            }
            std::vector<std::byte> dst = random_bytes(n, 900);
            xorops::xor_many(dst.data(), srcs.data(), fan, n);
            ASSERT_EQ(dst, expected) << "fan=" << fan << " n=" << n;

            auto acc = random_bytes(n, 901);
            auto expected_acc = acc;
            for (std::size_t i = 0; i < n; ++i) expected_acc[i] ^= expected[i];
            xorops::xor_many_into(acc.data(), srcs.data(), fan, n);
            ASSERT_EQ(acc, expected_acc) << "fan=" << fan << " n=" << n;
        }
    }
}

TEST_P(XorOpsImplSweep, Aliasing) {
    xorops::impl_scope scope(GetParam());
    for (const std::size_t n : {1ul, 65ul, 4099ul}) {
        // dst == src zeroes the region.
        auto a = random_bytes(n, 1000 + n);
        xorops::xor_into(a.data(), a.data(), n);
        ASSERT_TRUE(xorops::is_zero(a.data(), n)) << "n=" << n;

        // xor2 with dst aliasing one operand.
        auto d = random_bytes(n, 1100 + n);
        const auto orig = d;
        const auto b = random_bytes(n, 1200 + n);
        xorops::xor2(d.data(), d.data(), b.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(d[i], orig[i] ^ b[i]) << "i=" << i << " n=" << n;
        }

        // xor_many with dst aliasing a source inside the first fused pass.
        auto m = random_bytes(n, 1300 + n);
        const auto m0 = m;
        const auto other = random_bytes(n, 1400 + n);
        const std::byte* srcs[2] = {m.data(), other.data()};
        xorops::xor_many(m.data(), srcs, 2, n);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(m[i], m0[i] ^ other[i]) << "i=" << i << " n=" << n;
        }
    }
}

std::string impl_param_name(
    const ::testing::TestParamInfo<xorops::xor_impl>& info) {
    return xorops::impl_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(Impls, XorOpsImplSweep,
                         ::testing::ValuesIn(available_impls()),
                         impl_param_name);

// ---------------------------------------------------------------------------
// Cross-implementation equivalence: the forced scalar tier and the
// dispatched tier must produce bit-identical results (and counts).

TEST(XorOpsDispatch, ScalarMatchesDispatched) {
    const std::size_t n = 4099;
    const auto base = random_bytes(n, 2000);
    std::vector<std::vector<std::byte>> bufs;
    std::vector<const std::byte*> srcs;
    for (std::size_t s = 0; s < 9; ++s) {
        bufs.push_back(random_bytes(n, 2001 + s));
        srcs.push_back(bufs.back().data());
    }

    auto run = [&](xorops::xor_impl impl) {
        xorops::impl_scope scope(impl);
        auto out = base;
        xorops::xor_many_into(out.data(), srcs.data(), srcs.size(), n);
        return out;
    };

    const auto scalar_out = run(xorops::xor_impl::scalar);
    const auto dispatched_out = run(xorops::default_impl());
    EXPECT_EQ(scalar_out, dispatched_out);
}

TEST(XorOpsDispatch, ForceImplPinsAndRestores) {
    const auto before = xorops::active_impl();
    {
        xorops::impl_scope scope(xorops::xor_impl::scalar);
        EXPECT_EQ(xorops::active_impl(), xorops::xor_impl::scalar);
    }
    EXPECT_EQ(xorops::active_impl(), before);
}

TEST(XorOpsDispatch, UnavailableForceDegradesToDefault) {
#if !defined(__aarch64__)
    xorops::impl_scope scope(xorops::xor_impl::neon);
    EXPECT_EQ(xorops::active_impl(), xorops::default_impl());
#else
    xorops::impl_scope scope(xorops::xor_impl::avx2);
    EXPECT_EQ(xorops::active_impl(), xorops::default_impl());
#endif
}

TEST(XorOpsDispatch, ImplFromNameRoundTrips) {
    xorops::xor_impl out{};
    for (const auto impl : available_impls()) {
        ASSERT_TRUE(xorops::impl_from_name(xorops::impl_name(impl), out));
        EXPECT_EQ(out, impl);
    }
    // "auto" maps to the best *hardware* tier, which need not equal
    // default_impl() when a LIBERATION_XOR_IMPL override is in force.
    EXPECT_TRUE(xorops::impl_from_name("auto", out));
    EXPECT_TRUE(xorops::impl_available(out));
    EXPECT_TRUE(xorops::impl_from_name("software", out));
    EXPECT_EQ(out, xorops::xor_impl::scalar);
    EXPECT_FALSE(xorops::impl_from_name("mmx", out));
    EXPECT_FALSE(xorops::impl_from_name("", out));
}

// ---------------------------------------------------------------------------
// Counting convention: fused reductions must count exactly like the chains
// they replace, or every complexity figure would silently change.

TEST(XorOpsCounters, XorManyCountsCopyPlusXors) {
    const std::size_t n = 64;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<const std::byte*> srcs;
    for (std::size_t s = 0; s < 5; ++s) {
        bufs.push_back(random_bytes(n, 3000 + s));
        srcs.push_back(bufs.back().data());
    }
    std::vector<std::byte> dst(n);

    xorops::counting_scope scope;
    xorops::xor_many(dst.data(), srcs.data(), 5, n);
    auto stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.xor_ops, 4u);
    EXPECT_EQ(stats.bytes_copied, n);
    EXPECT_EQ(stats.bytes_xored, 4 * n);

    // nsrc == 1 degenerates to a pure copy.
    xorops::reset_counters();
    xorops::xor_many(dst.data(), srcs.data(), 1, n);
    stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.xor_ops, 0u);
}

TEST(XorOpsCounters, XorManyIntoCountsNXors) {
    const std::size_t n = 64;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<const std::byte*> srcs;
    for (std::size_t s = 0; s < 9; ++s) {  // crosses the 8-source pass split
        bufs.push_back(random_bytes(n, 3100 + s));
        srcs.push_back(bufs.back().data());
    }
    auto dst = random_bytes(n, 3200);

    xorops::counting_scope scope;
    xorops::xor_many_into(dst.data(), srcs.data(), 9, n);
    const auto stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 0u);
    EXPECT_EQ(stats.xor_ops, 9u);
    EXPECT_EQ(stats.bytes_xored, 9 * n);

    xorops::reset_counters();
    xorops::xor_many_into(dst.data(), srcs.data(), 0, n);  // no-op
    EXPECT_EQ(scope.xors(), 0u);
}

TEST(XorOpsCounters, XorBroadcastCountsPerDestination) {
    const std::size_t n = 64;
    const auto src = random_bytes(n, 3300);
    auto d0 = random_bytes(n, 3301);
    auto d1 = random_bytes(n, 3302);
    auto d2 = random_bytes(n, 3303);
    const auto e0 = d0;
    std::byte* dsts[3] = {d0.data(), d1.data(), d2.data()};

    xorops::counting_scope scope;
    xorops::xor_broadcast(dsts, 3, src.data(), n);
    EXPECT_EQ(scope.xors(), 3u);
    EXPECT_EQ(scope.copies(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(d0[i], e0[i] ^ src[i]) << "i=" << i;
    }
}

}  // namespace
