// Fused CRC32C + XOR kernel equivalence (the single-pass hot path).
//
// The fused blocked entry points (crc32c_blocks, copy_crc32c_blocks,
// xor_many_crc32c_blocks, xor_many_into_crc32c_blocks) must produce
// byte-identical regions AND checksums identical to the separate
// reference path (xor_many / memcpy followed by integrity::crc32c per
// block) on every dispatch tier, every pointer alignment, ragged sizes,
// and every fan-in across the pass split — the same grid discipline as
// test_xorops.cpp. The counting convention is pinned too: fusing the
// checksum into a traversal must not change any complexity figure.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/core/optimal_encoder.hpp"
#include "liberation/integrity/crc32c.hpp"
#include "liberation/integrity/integrity_region.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

/// Reference: per-block CRC32C via the scalar one-shot routine.
std::vector<std::uint32_t> reference_crcs(const std::byte* p, std::size_t n,
                                          std::size_t block) {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < n; i += block) {
        out.push_back(integrity::crc32c(p + i, block));
    }
    return out;
}

std::vector<xorops::xor_impl> available_impls() {
    std::vector<xorops::xor_impl> v;
    for (const auto impl :
         {xorops::xor_impl::scalar, xorops::xor_impl::avx2,
          xorops::xor_impl::avx512, xorops::xor_impl::neon}) {
        if (xorops::impl_available(impl)) v.push_back(impl);
    }
    return v;
}

class FusedImplSweep : public ::testing::TestWithParam<xorops::xor_impl> {};

// Checksum-only sweep: every alignment x size combination of the 3-lane
// split (lanes degenerate below 24 bytes) against the one-shot reference.
TEST_P(FusedImplSweep, Crc32cBlocksUnalignedGrid) {
    xorops::impl_scope scope(GetParam());
    for (std::size_t off = 0; off < 64; ++off) {
        for (std::size_t n = 1; n <= 129; ++n) {
            const auto buf = random_bytes(off + n, 100 + off * 7 + n);
            std::uint32_t got = 0xdeadbeef;
            xorops::crc32c_blocks(buf.data() + off, n, n, &got);
            ASSERT_EQ(got, integrity::crc32c(buf.data() + off, n))
                << "off=" << off << " n=" << n;
        }
    }
}

// Multi-block regions, including block sizes around the lane-combiner
// cache and large streaming runs.
TEST_P(FusedImplSweep, Crc32cBlocksMultiBlock) {
    xorops::impl_scope scope(GetParam());
    struct shape {
        std::size_t n, block;
    };
    for (const shape s : {shape{4096, 512}, shape{65536, 4096},
                          shape{24 * 40, 40}, shape{3 * 8192, 8192}}) {
        const auto buf = random_bytes(s.n, 7000 + s.n + s.block);
        std::vector<std::uint32_t> got(s.n / s.block, 0u);
        xorops::crc32c_blocks(buf.data(), s.n, s.block, got.data());
        ASSERT_EQ(got, reference_crcs(buf.data(), s.n, s.block))
            << "n=" << s.n << " block=" << s.block;
    }
}

// Fused copy: bytes identical to memcpy, checksums identical to the
// reference, across the alignment x size grid (guard bytes catch
// out-of-bounds stores).
TEST_P(FusedImplSweep, CopyCrcUnalignedGrid) {
    xorops::impl_scope scope(GetParam());
    constexpr std::size_t kPad = 256;
    for (std::size_t off = 0; off < 64; ++off) {
        for (std::size_t n = 1; n <= 129; ++n) {
            const auto src = random_bytes(off + n, 200 + off + 3 * n);
            auto dst = random_bytes(kPad + n + kPad, 300 + n);
            auto expected = dst;
            std::memcpy(expected.data() + kPad, src.data() + off, n);
            std::uint32_t got = 0;
            xorops::copy_crc32c_blocks(dst.data() + kPad, src.data() + off, n,
                                       n, &got);
            ASSERT_EQ(dst, expected) << "off=" << off << " n=" << n;
            ASSERT_EQ(got, integrity::crc32c(src.data() + off, n))
                << "off=" << off << " n=" << n;
        }
    }
}

// Fused xor_many / xor_many_into vs the separate path, fan-in 1..12 so
// both the single-pass and the split multi-pass shapes run, single- and
// multi-block checksum windows.
TEST_P(FusedImplSweep, XorManyCrcFanInSweep) {
    xorops::impl_scope scope(GetParam());
    ASSERT_GE(12u, xorops::max_fused_sources());
    struct shape {
        std::size_t n, block;
    };
    for (const shape sh : {shape{64, 64}, shape{129, 129}, shape{320, 64},
                           shape{4096, 512}}) {
        const std::size_t n = sh.n;
        std::vector<std::vector<std::byte>> bufs;
        std::vector<const std::byte*> srcs;
        for (std::size_t s = 0; s < 12; ++s) {
            bufs.push_back(random_bytes(n, 800 + 16 * n + s));
            srcs.push_back(bufs.back().data());
        }
        for (std::size_t fan = 1; fan <= 12; ++fan) {
            // Reference: plain xor_many, then per-block one-shot CRC.
            std::vector<std::byte> ref(n);
            xorops::xor_many(ref.data(), srcs.data(), fan, n);
            const auto ref_crcs = reference_crcs(ref.data(), n, sh.block);

            std::vector<std::byte> dst = random_bytes(n, 900 + fan);
            std::vector<std::uint32_t> got(n / sh.block, 0u);
            xorops::xor_many_crc32c_blocks(dst.data(), srcs.data(), fan, n,
                                           sh.block, got.data());
            ASSERT_EQ(dst, ref) << "fan=" << fan << " n=" << n;
            ASSERT_EQ(got, ref_crcs) << "fan=" << fan << " n=" << n;

            // Accumulating variant.
            auto acc = random_bytes(n, 901 + fan);
            auto ref_acc = acc;
            xorops::xor_many_into(ref_acc.data(), srcs.data(), fan, n);
            const auto ref_acc_crcs =
                reference_crcs(ref_acc.data(), n, sh.block);
            std::vector<std::uint32_t> got_acc(n / sh.block, 0u);
            xorops::xor_many_into_crc32c_blocks(acc.data(), srcs.data(), fan,
                                                n, sh.block, got_acc.data());
            ASSERT_EQ(acc, ref_acc) << "fan=" << fan << " n=" << n;
            ASSERT_EQ(got_acc, ref_acc_crcs) << "fan=" << fan << " n=" << n;
        }
    }
}

// nsrc == 0 on the accumulating variant degenerates to a pure checksum
// sweep of the existing destination bytes (no XOR work, no counts).
TEST_P(FusedImplSweep, XorManyIntoCrcZeroSources) {
    xorops::impl_scope scope(GetParam());
    const std::size_t n = 512, block = 128;
    auto dst = random_bytes(n, 1500);
    const auto before = dst;
    std::vector<std::uint32_t> got(n / block, 0u);
    xorops::counting_scope counts;
    xorops::xor_many_into_crc32c_blocks(dst.data(), nullptr, 0, n, block,
                                        got.data());
    EXPECT_EQ(dst, before);
    EXPECT_EQ(got, reference_crcs(dst.data(), n, block));
    EXPECT_EQ(counts.xors(), 0u);
    EXPECT_EQ(counts.copies(), 0u);
}

// The NT-store routed paths must stay bit-identical to the cached paths.
TEST_P(FusedImplSweep, NonTemporalEquivalence) {
    xorops::impl_scope scope(GetParam());
    const std::size_t saved = xorops::nt_threshold();
    const std::size_t n = 65536 + 61;  // ragged: head peel + NT body + tail
    const auto a = random_bytes(n, 1600);
    const auto b = random_bytes(n, 1601);
    std::vector<const std::byte*> srcs{a.data(), b.data()};

    auto run = [&](std::size_t threshold) {
        xorops::set_nt_threshold(threshold);
        auto into = random_bytes(n, 1602);
        xorops::xor_into(into.data(), a.data(), n);
        std::vector<std::byte> two(n);
        xorops::xor2(two.data(), a.data(), b.data(), n);
        std::vector<std::byte> many(n);
        xorops::xor_many(many.data(), srcs.data(), 2, n);
        auto macc = random_bytes(n, 1603);
        xorops::xor_many_into(macc.data(), srcs.data(), 2, n);
        return std::tuple{into, two, many, macc};
    };

    const auto cached = run(0);    // 0 disables streaming
    const auto streamed = run(1);  // every region beyond threshold
    xorops::set_nt_threshold(saved);
    EXPECT_EQ(cached, streamed);
}

std::string impl_param_name(
    const ::testing::TestParamInfo<xorops::xor_impl>& info) {
    return xorops::impl_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(Impls, FusedImplSweep,
                         ::testing::ValuesIn(available_impls()),
                         impl_param_name);

// ---------------------------------------------------------------------------
// Cross-implementation: forced scalar and the dispatched tier must agree
// on every checksum (the combiner math is tier-independent).

TEST(FusedDispatch, ScalarMatchesDispatched) {
    const std::size_t n = 4096, block = 256;
    const auto a = random_bytes(n, 2000);
    const auto b = random_bytes(n, 2001);
    const auto c = random_bytes(n, 2002);
    std::vector<const std::byte*> srcs{a.data(), b.data(), c.data()};

    auto run = [&](xorops::xor_impl impl) {
        xorops::impl_scope scope(impl);
        std::vector<std::byte> dst(n);
        std::vector<std::uint32_t> crcs(n / block, 0u);
        xorops::xor_many_crc32c_blocks(dst.data(), srcs.data(), srcs.size(),
                                       n, block, crcs.data());
        return std::pair{dst, crcs};
    };

    EXPECT_EQ(run(xorops::xor_impl::scalar), run(xorops::default_impl()));
}

// ---------------------------------------------------------------------------
// Counting convention: the fused variants must count exactly like the
// traversals they replace — checksum work is free, or every complexity
// figure would silently change.

TEST(FusedCounters, FusedCountsMatchUnfused) {
    const std::size_t n = 512, block = 128;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<const std::byte*> srcs;
    for (std::size_t s = 0; s < 9; ++s) {  // crosses the 8-source pass split
        bufs.push_back(random_bytes(n, 3000 + s));
        srcs.push_back(bufs.back().data());
    }
    std::vector<std::byte> dst(n);
    std::vector<std::uint32_t> crcs(n / block);

    xorops::counting_scope scope;
    xorops::crc32c_blocks(dst.data(), n, block, crcs.data());
    EXPECT_EQ(scope.xors(), 0u);
    EXPECT_EQ(scope.copies(), 0u);

    xorops::reset_counters();
    xorops::copy_crc32c_blocks(dst.data(), srcs[0], n, block, crcs.data());
    auto stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.xor_ops, 0u);
    EXPECT_EQ(stats.bytes_copied, n);

    xorops::reset_counters();
    xorops::xor_many_crc32c_blocks(dst.data(), srcs.data(), 9, n, block,
                                   crcs.data());
    stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 1u);
    EXPECT_EQ(stats.xor_ops, 8u);
    EXPECT_EQ(stats.bytes_copied, n);
    EXPECT_EQ(stats.bytes_xored, 8 * n);

    xorops::reset_counters();
    xorops::xor_many_into_crc32c_blocks(dst.data(), srcs.data(), 9, n, block,
                                        crcs.data());
    stats = scope.snapshot();
    EXPECT_EQ(stats.copy_ops, 0u);
    EXPECT_EQ(stats.xor_ops, 9u);
    EXPECT_EQ(stats.bytes_xored, 9 * n);
}

// ---------------------------------------------------------------------------
// encode_crc: the fused encoder must reproduce encode()'s bytes, the
// reference checksums of both parity strips, and encode()'s exact
// counter deltas, across geometries and checksum granularities (window
// rounding included).

struct encode_case {
    std::uint32_t k, p;
    std::size_t elem, crc_block;
};

class EncodeCrcSweep : public ::testing::TestWithParam<encode_case> {};

TEST_P(EncodeCrcSweep, MatchesEncodePlusSweep) {
    const encode_case c = GetParam();
    core::liberation_optimal_code code(c.k, c.p);
    const std::uint32_t n = c.k + 2;

    codes::stripe_buffer ref_buf(code.rows(), n, c.elem);
    codes::stripe_buffer fused_buf(code.rows(), n, c.elem);
    util::xoshiro256 rng(42 + c.k + c.p + c.elem);
    for (std::uint32_t col = 0; col < c.k; ++col) {
        rng.fill(ref_buf.view().strip(col));
        std::memcpy(fused_buf.view().strip(col).data(),
                    ref_buf.view().strip(col).data(),
                    ref_buf.view().strip(col).size());
    }

    xorops::counting_scope scope;
    code.encode(ref_buf.view());
    const auto ref_stats = scope.snapshot();

    const std::size_t strip_blocks =
        static_cast<std::size_t>(code.rows()) * c.elem / c.crc_block;
    std::vector<std::uint32_t> p_crcs(strip_blocks, 0u);
    std::vector<std::uint32_t> q_crcs(strip_blocks, 0u);
    xorops::reset_counters();
    code.encode_crc(fused_buf.view(), c.crc_block, p_crcs.data(),
                    q_crcs.data());
    const auto fused_stats = scope.snapshot();

    for (std::uint32_t col = 0; col < n; ++col) {
        const auto ref = ref_buf.view().strip(col);
        const auto fused = fused_buf.view().strip(col);
        ASSERT_TRUE(std::equal(ref.begin(), ref.end(), fused.begin()))
            << "col=" << col;
    }
    const auto ps = ref_buf.view().strip(c.k);
    const auto qs = ref_buf.view().strip(c.k + 1);
    EXPECT_EQ(p_crcs, reference_crcs(ps.data(), ps.size(), c.crc_block));
    EXPECT_EQ(q_crcs, reference_crcs(qs.data(), qs.size(), c.crc_block));

    // The complexity-figure invariant: identical op multiset.
    EXPECT_EQ(fused_stats.xor_ops, ref_stats.xor_ops);
    EXPECT_EQ(fused_stats.copy_ops, ref_stats.copy_ops);
    EXPECT_EQ(fused_stats.bytes_xored, ref_stats.bytes_xored);
    EXPECT_EQ(fused_stats.bytes_copied, ref_stats.bytes_copied);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, EncodeCrcSweep,
    ::testing::Values(encode_case{4, 5, 4096, 512},    // windowed encode
                      encode_case{4, 5, 4096, 4096},   // block == element
                      encode_case{7, 7, 1024, 256},    // k == p
                      encode_case{1, 3, 512, 512},     // degenerate k=1
                      encode_case{5, 7, 8192, 4096},   // k < p, large elem
                      encode_case{10, 11, 2048, 1024},
                      // block > element: exercises the unfused fallback
                      // (encode + separate sweep) behind the same API.
                      encode_case{4, 5, 4096, 5 * 4096}),
    [](const ::testing::TestParamInfo<encode_case>& info) {
        const encode_case& c = info.param;
        return "k" + std::to_string(c.k) + "p" + std::to_string(c.p) + "e" +
               std::to_string(c.elem) + "b" + std::to_string(c.crc_block);
    });

// Forced-scalar encode_crc must equal the dispatched tier bit-for-bit.
TEST(EncodeCrcDispatch, ScalarMatchesDispatched) {
    core::liberation_optimal_code code(6, 7);
    const std::size_t elem = 4096, block = 512;
    const std::uint32_t n = 8;

    auto run = [&](xorops::xor_impl impl) {
        xorops::impl_scope scope(impl);
        codes::stripe_buffer buf(code.rows(), n, elem);
        util::xoshiro256 rng(99);
        for (std::uint32_t col = 0; col < 6; ++col) {
            rng.fill(buf.view().strip(col));
        }
        const std::size_t strip_blocks =
            static_cast<std::size_t>(code.rows()) * elem / block;
        std::vector<std::uint32_t> p_crcs(strip_blocks), q_crcs(strip_blocks);
        code.encode_crc(buf.view(), block, p_crcs.data(), q_crcs.data());
        std::vector<std::byte> parity(buf.view().strip(6).begin(),
                                      buf.view().strip(6).end());
        parity.insert(parity.end(), buf.view().strip(7).begin(),
                      buf.view().strip(7).end());
        return std::tuple{parity, p_crcs, q_crcs};
    };

    EXPECT_EQ(run(xorops::xor_impl::scalar), run(xorops::default_impl()));
}

// ---------------------------------------------------------------------------
// integrity_region fused-path semantics: install()ed words behave exactly
// like record()ed ones, matches() agrees with verify(), and
// verify_capture() returns the words verify computed.

TEST(IntegrityRegionFused, InstallMatchesCaptureRoundTrip) {
    const std::size_t block = 512, capacity = 8 * block;
    integrity::integrity_region region(capacity, block);
    const auto data = random_bytes(4 * block, 5000);

    // record() path as the reference.
    integrity::integrity_region ref(capacity, block);
    ref.record(block, data);

    // install() of externally computed words must be equivalent.
    const auto crcs = reference_crcs(data.data(), data.size(), block);
    region.install(block, crcs);
    for (std::size_t b = 0; b < capacity / block; ++b) {
        EXPECT_EQ(region.stored(b), ref.stored(b)) << "b=" << b;
    }
    EXPECT_TRUE(region.verify(block, data));
    EXPECT_TRUE(region.matches(block, crcs));

    // verify_capture: same verdict as verify(), words out even on
    // mismatch (the caller installs them after a repair writes back).
    std::vector<std::uint32_t> captured(crcs.size(), 0u);
    EXPECT_TRUE(region.verify_capture(block, data, captured.data()));
    EXPECT_EQ(captured, crcs);

    auto tampered = data;
    tampered[7] ^= std::byte{0x40};
    std::fill(captured.begin(), captured.end(), 0u);
    EXPECT_FALSE(region.verify_capture(block, tampered, captured.data()));
    EXPECT_EQ(captured,
              reference_crcs(tampered.data(), tampered.size(), block));
    EXPECT_FALSE(region.matches(block, captured));
    region.install(block, captured);
    EXPECT_TRUE(region.verify(block, tampered));
}

}  // namespace
