#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config small_config() {
    array_config cfg;
    cfg.k = 4;            // p = 5, 6 disks
    cfg.element_size = 256;
    cfg.stripes = 8;
    cfg.sector_size = 256;
    return cfg;
}

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    util::xoshiro256 rng(seed);
    rng.fill(v);
    return v;
}

TEST(RaidArray, CapacityMatchesMap) {
    raid6_array a(small_config());
    EXPECT_EQ(a.capacity(), a.map().capacity());
    EXPECT_EQ(a.disk_count(), 6u);
}

TEST(RaidArray, WholeDeviceWriteReadRoundTrip) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 1);
    ASSERT_TRUE(a.write(0, data));
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GT(a.stats().full_stripe_writes, 0u);
}

TEST(RaidArray, UnalignedExtentRoundTrip) {
    raid6_array a(small_config());
    const std::size_t off = 777;
    const auto data = pattern_bytes(4321, 2);
    ASSERT_TRUE(a.write(off, data));
    std::vector<std::byte> out(data.size());
    ASSERT_TRUE(a.read(off, out));
    EXPECT_EQ(out, data);
    EXPECT_GT(a.stats().small_writes, 0u);
}

TEST(RaidArray, SmallWriteTouchesOnlyTwoOrThreeParityElements) {
    raid6_array a(small_config());
    const auto base = pattern_bytes(a.capacity(), 3);
    ASSERT_TRUE(a.write(0, base));
    const auto before = a.stats().parity_elements_updated;

    // One element-sized write, element-aligned: exactly one data element.
    const auto data = pattern_bytes(a.map().element_size(), 4);
    ASSERT_TRUE(a.write(a.map().element_size() * 3, data));
    const auto touched = a.stats().parity_elements_updated - before;
    EXPECT_GE(touched, 2u);
    EXPECT_LE(touched, 3u);
}

TEST(RaidArray, SmallWritesKeepEveryStripeConsistent) {
    raid6_array a(small_config());
    const auto base = pattern_bytes(a.capacity(), 5);
    ASSERT_TRUE(a.write(0, base));
    util::xoshiro256 rng(6);
    for (int i = 0; i < 50; ++i) {
        const std::size_t len = 1 + rng.next_below(1000);
        const std::size_t off = rng.next_below(a.capacity() - len);
        ASSERT_TRUE(a.write(off, pattern_bytes(len, 100 + i)));
    }
    // Every stripe must still verify against the code.
    codes::stripe_buffer buf = a.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    for (std::size_t s = 0; s < a.map().stripes(); ++s) {
        ASSERT_TRUE(a.load_stripe(s, buf.view(), erased));
        ASSERT_TRUE(erased.empty());
        EXPECT_TRUE(a.code().verify(buf.view())) << "stripe " << s;
    }
}

TEST(RaidArray, DegradedReadOneDisk) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 7);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(2);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GT(a.stats().degraded_stripe_reads, 0u);
}

TEST(RaidArray, DegradedReadTwoDisks) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 8);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(0);
    a.fail_disk(5);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
}

TEST(RaidArray, LatentErrorRecoveredThroughDecode) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 9);
    ASSERT_TRUE(a.write(0, data));
    // Hit one strip of stripe 0 with an unreadable sector.
    const auto loc = a.map().locate(0, 1);
    a.disk(loc.disk).inject_latent_error(loc.offset, 64);
    std::vector<std::byte> out(a.capacity());
    ASSERT_TRUE(a.read(0, out));
    EXPECT_EQ(out, data);
    EXPECT_GT(a.stats().media_errors_recovered, 0u);
}

TEST(RaidArray, WritesWhileDegradedStayDecodable) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 10);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(1);

    auto fresh = pattern_bytes(3000, 11);
    ASSERT_TRUE(a.write(500, fresh));

    std::vector<std::byte> out(3000);
    ASSERT_TRUE(a.read(500, out));
    EXPECT_EQ(out, fresh);

    // The rest of the device is unchanged.
    std::vector<std::byte> head(500);
    ASSERT_TRUE(a.read(0, head));
    EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
}

TEST(RaidArray, ThreeFailuresAreDataLoss) {
    raid6_array a(small_config());
    const auto data = pattern_bytes(a.capacity(), 12);
    ASSERT_TRUE(a.write(0, data));
    a.fail_disk(0);
    a.fail_disk(1);
    a.fail_disk(2);
    std::vector<std::byte> out(a.capacity());
    EXPECT_FALSE(a.read(0, out));
}

TEST(RaidArray, ElementAlignedSingleElementWriteUsesFastPath) {
    raid6_array a(small_config());
    ASSERT_TRUE(a.write(0, pattern_bytes(a.capacity(), 13)));
    const auto small_before = a.stats().small_writes;
    const auto full_before = a.stats().full_stripe_writes;
    ASSERT_TRUE(a.write(0, pattern_bytes(64, 14)));  // sub-element write
    EXPECT_EQ(a.stats().small_writes, small_before + 1);
    EXPECT_EQ(a.stats().full_stripe_writes, full_before);
}

}  // namespace
