// Randomized integration fuzz: drive a RAID-6 array through thousands of
// random operations (reads, writes of every shape, disk failures,
// replacements, rebuilds, latent errors, silent corruption + scrub)
// against a plain byte-vector shadow model. Any divergence between the
// array and the model is a bug somewhere in the stack.
#include <gtest/gtest.h>

#include <vector>

#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

class ArrayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayFuzz, ThousandOpsAgainstShadowModel) {
    array_config cfg;
    cfg.k = 5;  // p = 5, 7 disks
    cfg.element_size = 128;
    cfg.stripes = 10;
    cfg.sector_size = 128;
    raid6_array a(cfg);
    util::xoshiro256 rng(GetParam());

    std::vector<std::byte> shadow(a.capacity(), std::byte{0});
    ASSERT_TRUE(a.write(0, shadow));  // initialize parity over zeros

    std::vector<std::uint32_t> failed;
    bool latent_pending = false;
    int scrubs = 0, rebuilds = 0, corruptions = 0;

    // Full-array read: verifies against the shadow AND (via the array's
    // heal-on-read) rewrites any latent sectors, restoring full redundancy.
    const auto full_check = [&] {
        a.resilver();  // parity-strip media errors only heal here
        std::vector<std::byte> all(a.capacity());
        ASSERT_TRUE(a.read(0, all));
        ASSERT_EQ(all, shadow);
        latent_pending = false;
    };

    for (int op = 0; op < 1200; ++op) {
        const auto dice = rng.next_below(100);
        if (dice < 45) {
            // Random write (1 byte .. ~2 stripes).
            const std::size_t len = 1 + rng.next_below(2 * a.map().stripe_data_size());
            const std::size_t off = rng.next_below(a.capacity() - len);
            std::vector<std::byte> data(len);
            rng.fill(data);
            ASSERT_TRUE(a.write(off, data)) << "op " << op;
            std::copy(data.begin(), data.end(), shadow.begin() +
                                                    static_cast<long>(off));
        } else if (dice < 80) {
            // Random read must match the shadow exactly.
            const std::size_t len = 1 + rng.next_below(3 * a.map().strip_size());
            const std::size_t off = rng.next_below(a.capacity() - len);
            std::vector<std::byte> got(len);
            ASSERT_TRUE(a.read(off, got)) << "op " << op;
            ASSERT_TRUE(std::equal(got.begin(), got.end(),
                                   shadow.begin() + static_cast<long>(off)))
                << "op " << op << " read mismatch at " << off;
        } else if (dice < 88) {
            // Fail a disk (keep at most 2 down). Heal latent sectors first
            // — failing a disk while another holds unreadable sectors is a
            // genuine triple-fault, which no RAID-6 survives.
            if (latent_pending) full_check();
            if (failed.size() < 2) {
                const auto d = static_cast<std::uint32_t>(
                    rng.next_below(a.disk_count()));
                if (std::find(failed.begin(), failed.end(), d) ==
                    failed.end()) {
                    a.fail_disk(d);
                    failed.push_back(d);
                }
            }
        } else if (dice < 94) {
            // Replace + rebuild everything that is down.
            if (!failed.empty()) {
                for (const auto d : failed) a.replace_disk(d);
                const auto result = rebuild_disks(a, failed);
                ASSERT_TRUE(result.success) << "op " << op;
                failed.clear();
                ++rebuilds;
            }
        } else if (dice < 97 && failed.empty() && !latent_pending) {
            // Silent corruption somewhere + scrub heals it. (Scrub skips
            // stripes with unreadable columns, hence the latent guard.)
            const auto d =
                static_cast<std::uint32_t>(rng.next_below(a.disk_count()));
            const std::size_t off =
                rng.next_below(a.disk(d).capacity() - 64);
            a.disk(d).inject_silent_corruption(off, 64, rng);
            ++corruptions;
            const auto summary = scrub_array(a);
            ASSERT_EQ(summary.uncorrectable, 0u) << "op " << op;
            ++scrubs;
        } else if (failed.empty()) {
            // Latent sector error; the next read through it must still
            // return correct data (recovered via decode).
            const auto d =
                static_cast<std::uint32_t>(rng.next_below(a.disk_count()));
            const std::size_t off =
                rng.next_below(a.disk(d).capacity() - 32);
            a.disk(d).inject_latent_error(off, 32);
            latent_pending = true;
        }
    }

    // Final: heal everything and do a full compare.
    if (!failed.empty() && latent_pending) a.resilver();
    if (!failed.empty()) {
        for (const auto d : failed) a.replace_disk(d);
        ASSERT_TRUE(rebuild_disks(a, failed).success);
    }
    std::vector<std::byte> all(a.capacity());
    ASSERT_TRUE(a.read(0, all));
    EXPECT_EQ(all, shadow);
    // Exercised enough of the interesting machinery?
    EXPECT_GT(scrubs + rebuilds + corruptions, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayFuzz,
                         ::testing::Values(0xA11CEull, 0xB0Bull, 0xCAFEull,
                                           0xD00Dull));

}  // namespace
