#include <gtest/gtest.h>

#include <tuple>

#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/xorops/xorops.hpp"
#include "code_testkit.hpp"

namespace {

using liberation::codes::liberation_bitmatrix_code;

class BitmatrixCodeSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
protected:
    liberation_bitmatrix_code make() const {
        return {std::get<1>(GetParam()), std::get<0>(GetParam())};
    }
};

TEST_P(BitmatrixCodeSweep, AllErasuresRoundTrip) {
    code_testkit::check_all_erasures(make(), 16, 61);
}

TEST_P(BitmatrixCodeSweep, VerifyDetectsCorruption) {
    code_testkit::check_verify(make(), 62);
}

TEST_P(BitmatrixCodeSweep, UpdatesKeepParityConsistent) {
    code_testkit::check_updates(make(), 63);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitmatrixCodeSweep,
    ::testing::Values(std::make_tuple(3u, 2u), std::make_tuple(5u, 4u),
                      std::make_tuple(5u, 5u), std::make_tuple(7u, 6u),
                      std::make_tuple(11u, 8u), std::make_tuple(13u, 13u)));

TEST(BitmatrixCode, EncodeXorCountMatchesTableI) {
    // Table I closed form: total XORs = 2p(k-1) + (k-1), i.e. complexity
    // k-1 + (k-1)/2p per parity element — the "original" encoding cost.
    for (const auto [p, k] :
         {std::pair{5u, 5u}, std::pair{7u, 7u}, std::pair{11u, 11u},
          std::pair{13u, 10u}, std::pair{17u, 17u}}) {
        const liberation_bitmatrix_code code(k, p);
        EXPECT_EQ(code.encode_xor_count(), 2ull * p * (k - 1) + (k - 1))
            << "p=" << p << " k=" << k;
    }
}

TEST(BitmatrixCode, ScheduledEncodeCountsMatchPlan) {
    // The executed XOR count must equal the compiled schedule's count.
    const liberation_bitmatrix_code code(7, 7);
    auto stripe = test_support::make_encoded_stripe(code, 8, 71);
    liberation::xorops::counting_scope scope;
    code.encode(stripe.view());
    EXPECT_EQ(scope.xors(), code.encode_xor_count());
}

TEST(BitmatrixCode, DecodeXorCountAboveOptimal) {
    // The baseline's decoding overhead (the gap the paper attacks): always
    // at least the lower bound, typically 10-30% above it.
    const liberation_bitmatrix_code code(10, 11);
    double worst = 0, best = 1e9;
    for (std::uint32_t a = 0; a < 10; ++a) {
        for (std::uint32_t b = a + 1; b < 10; ++b) {
            const std::uint32_t pat[] = {a, b};
            const auto xors = code.decode_xor_count(pat);
            const double norm =
                static_cast<double>(xors) / (2.0 * 11) / (10 - 1);
            worst = std::max(worst, norm);
            best = std::min(best, norm);
        }
    }
    EXPECT_GE(best, 1.0);
    EXPECT_GT(worst, 1.05);  // it is NOT optimal...
    EXPECT_LT(worst, 1.6);   // ...but scheduling keeps it bounded
}

TEST(BitmatrixCode, CachedPlansGiveSameResult) {
    const liberation_bitmatrix_code cached(6, 7, /*cache_decode_plans=*/true);
    const liberation_bitmatrix_code uncached(6, 7, false);
    auto ref = test_support::make_encoded_stripe(cached, 8, 81);
    const std::vector<std::uint32_t> pat{1, 4};
    liberation::codes::stripe_buffer a(7, 8, 8), b(7, 8, 8);
    liberation::codes::copy_stripe(a.view(), ref.view());
    liberation::codes::copy_stripe(b.view(), ref.view());
    test_support::trash_columns(a.view(), pat, 1);
    test_support::trash_columns(b.view(), pat, 2);
    cached.decode(a.view(), pat);
    cached.decode(a.view(), pat);  // second call exercises the cache
    uncached.decode(b.view(), pat);
    EXPECT_TRUE(liberation::codes::stripes_equal(a.view(), b.view()));
}

TEST(BitmatrixCode, PacketizedExecutionMatches) {
    const liberation_bitmatrix_code whole(5, 5, false, 0);
    const liberation_bitmatrix_code packets(5, 5, false, 64);
    liberation::util::xoshiro256 rng(3);
    liberation::codes::stripe_buffer a(5, 7, 256), b(5, 7, 256);
    a.fill_random(rng, 5);
    liberation::codes::copy_stripe(b.view(), a.view());
    whole.encode(a.view());
    packets.encode(b.view());
    EXPECT_TRUE(liberation::codes::stripes_equal(a.view(), b.view()));
}

}  // namespace
