# Strict-but-practical warning set applied to all first-party targets.
function(liberation_set_warnings target)
  target_compile_options(${target} INTERFACE
    -Wall
    -Wextra
    -Wpedantic
    -Wshadow
    -Wconversion
    -Wsign-conversion
    -Wnon-virtual-dtor
    -Wold-style-cast
    -Wcast-align
    -Woverloaded-virtual
    -Wnull-dereference
    -Wdouble-promotion)
endfunction()
