// Async I/O pipeline bench: full-stripe write and rebuild throughput of
// the RAID-6 simulator at increasing submission-queue depth. qd=1 is the
// synchronous baseline (one request at a time, per-stripe buffers); the
// pipelined paths batch all k+2 column I/Os per stripe, reuse long-lived
// window buffers, coalesce adjacent reads per disk, and skip reads of
// rebuild-target columns. Results are byte-identical across depths — the
// speedup column is the operational win of the submission-queue engine.
//
// Each section runs the geometry its path is sensitive to: full-stripe
// writes are bandwidth-bound, so large elements expose the zero-copy and
// buffer-reuse savings; rebuild reads are request-bound at small strips,
// where per-disk coalescing collapses a window of reads into one
// transfer. (The simulated disks complete in memcpy time, so request
// overhead is the "seek cost" of this model.)
//
// Usage: bench_aio_pipeline [--json]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/timer.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config config(std::uint32_t k, std::size_t elem, std::size_t stripes,
                    std::size_t qd) {
    array_config cfg;
    cfg.k = k;
    cfg.element_size = elem;
    cfg.stripes = stripes;
    cfg.io_queue_depth = qd;
    return cfg;
}

std::vector<std::byte> host_image(std::size_t bytes) {
    std::vector<std::byte> v(bytes);
    util::xoshiro256 rng(bench::kSeed);
    rng.fill(v);
    return v;
}

// Best-of-three full-device rewrite rate (GB/s of host data). Every pass
// is all-full-stripe: the pipelined run detection covers the whole span.
// 8 KiB elements: a 64-byte multiple, so data columns go zero-copy.
constexpr std::uint32_t kWriteK = 8;
constexpr std::size_t kWriteElem = 8192;
constexpr std::size_t kWriteStripes = 64;

double write_gbps(std::size_t qd, const std::vector<std::byte>& image) {
    raid6_array a(config(kWriteK, kWriteElem, kWriteStripes, qd));
    if (!a.write(0, image)) std::abort();  // warm-up + page-in
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t iters = 0;
        util::stopwatch timer;
        do {
            if (!a.write(0, image)) std::abort();
            ++iters;
        } while (timer.seconds() < 0.15);
        best = std::max(best, util::throughput_gbps(iters * image.size(),
                                                    timer.seconds()));
    }
    return best;
}

// Best-of-five single-disk rebuild rate (GB/s of reconstructed bytes).
// Small strips: the request-bound regime where read coalescing pays.
constexpr std::uint32_t kRebuildK = 4;
constexpr std::size_t kRebuildElem = 128;
constexpr std::size_t kRebuildStripes = 512;

// Render every populated latency histogram of `h` as one JSON object
// (name → count/p50/p95/p99/max in ns) for the reporter's meta header.
std::string histograms_json(obs::hub& h) {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, snap] : h.histogram_snapshots()) {
        if (snap.count == 0) continue;
        if (!first) out += ',';
        first = false;
        out += '"' + name + "\":{\"count\":" + std::to_string(snap.count) +
               ",\"p50_ns\":" + std::to_string(snap.p50) +
               ",\"p95_ns\":" + std::to_string(snap.p95) +
               ",\"p99_ns\":" + std::to_string(snap.p99) +
               ",\"max_ns\":" + std::to_string(snap.max) + '}';
    }
    out += '}';
    return out;
}

double rebuild_gbps(std::size_t qd, const std::vector<std::byte>& image) {
    raid6_array a(config(kRebuildK, kRebuildElem, kRebuildStripes, qd));
    if (!a.write(0, image)) std::abort();
    double best = 0.0;
    for (int trial = 0; trial < 5; ++trial) {
        a.fail_disk(1);
        a.replace_disk(1);
        const std::uint32_t disks[] = {1};
        const rebuild_result res = rebuild_disks(a, disks, nullptr);
        if (!res.success) std::abort();
        best = std::max(best, res.throughput_gbps());
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    bench::reporter rep(argc, argv, "aio_pipeline");
    rep.banner("Async I/O pipeline: throughput vs submission-queue depth "
               "(speedup vs qd=1)\n");

    const std::size_t depths[] = {1, 8, 16};

    {
        char title[128];
        std::snprintf(title, sizeof title,
                      "full-stripe write, k=%u elem=%zu (GB/s)", kWriteK,
                      kWriteElem);
        rep.section(title, "full_stripe_write");
        rep.header({"qd", "GBps", "speedup"});
        const raid6_array probe(config(kWriteK, kWriteElem, kWriteStripes, 1));
        const std::vector<std::byte> image = host_image(probe.capacity());
        double base = 0.0;
        for (const std::size_t qd : depths) {
            const double gbps = write_gbps(qd, image);
            if (qd == 1) base = gbps;
            rep.row(static_cast<std::uint32_t>(qd), {gbps, gbps / base});
        }
    }
    {
        char title[128];
        std::snprintf(title, sizeof title,
                      "single-disk rebuild, k=%u elem=%zu (GB/s)", kRebuildK,
                      kRebuildElem);
        rep.section(title, "rebuild");
        rep.header({"qd", "GBps", "speedup"});
        const raid6_array probe(
            config(kRebuildK, kRebuildElem, kRebuildStripes, 1));
        const std::vector<std::byte> image = host_image(probe.capacity());
        double base = 0.0;
        for (const std::size_t qd : depths) {
            const double gbps = rebuild_gbps(qd, image);
            if (qd == 1) base = gbps;
            rep.row(static_cast<std::uint32_t>(qd), {gbps, gbps / base});
        }
    }

    // Stamp one observability sample into the JSON header: the latency
    // histograms of a qd=8 full-device rewrite, so a recorded bench run
    // carries the stage distributions that produced its numbers.
    if (rep.json()) {
        raid6_array a(config(kWriteK, kWriteElem, kWriteStripes, 8));
        const std::vector<std::byte> image = host_image(a.capacity());
        if (!a.write(0, image) || !a.write(0, image)) std::abort();
        rep.meta("obs_histograms", histograms_json(a.obs()));
    }
    return 0;
}
