// Array-level bench: rebuild and degraded-read throughput on the RAID-6
// simulator. Translates the decoding-throughput advantage (Figs. 12-13)
// into the operational metric storage operators actually feel.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/thread_pool.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

array_config config(std::uint32_t k) {
    array_config cfg;
    cfg.k = k;
    cfg.element_size = 4096;
    cfg.stripes = 48;
    return cfg;
}

void fill(raid6_array& a) {
    util::xoshiro256 rng(bench::kSeed);
    std::vector<std::byte> chunk(1 << 20);
    for (std::size_t off = 0; off < a.capacity();) {
        const std::size_t n = std::min(chunk.size(), a.capacity() - off);
        rng.fill({chunk.data(), n});
        if (!a.write(off, {chunk.data(), n})) std::abort();
        off += n;
    }
}

}  // namespace

int main() {
    std::printf("RAID simulator: rebuild / degraded-read / scrub rates\n\n");
    std::printf("%4s %10s | %9s %9s %9s | %9s | %9s\n", "k", "capacity",
                "1disk", "2disk", "1d-pool", "degr-rd", "scrub");
    util::thread_pool pool;
    for (const std::uint32_t k : {4u, 8u, 12u, 16u}) {
        raid6_array a(config(k));
        fill(a);

        // Single-disk rebuild (serial).
        auto r1 = fail_replace_rebuild(a, 1);
        // Double-disk rebuild (serial).
        a.fail_disk(0);
        a.fail_disk(2);
        a.replace_disk(0);
        a.replace_disk(2);
        const std::uint32_t two[] = {0, 2};
        auto r2 = rebuild_disks(a, two);
        // Single-disk rebuild with the thread pool.
        a.fail_disk(3);
        a.replace_disk(3);
        const std::uint32_t one[] = {3};
        auto r3 = rebuild_disks(a, one, &pool);

        // Degraded read rate.
        a.fail_disk(1);
        std::vector<std::byte> out(a.capacity());
        util::stopwatch timer;
        if (!a.read(0, out)) std::abort();
        const double degraded =
            util::throughput_gbps(out.size(), timer.seconds());
        a.replace_disk(1);
        const std::uint32_t fix[] = {1};
        rebuild_disks(a, fix);

        // Scrub rate (clean array).
        util::stopwatch scrub_timer;
        const auto summary = scrub_array(a);
        const double scrub_rate = util::throughput_gbps(
            summary.stripes_scanned * a.map().stripe_data_size(),
            scrub_timer.seconds());

        std::printf("%4u %7zu MB | %8.2f ", k, a.capacity() >> 20,
                    r1.throughput_gbps());
        std::printf("%9.2f %9.2f | %9.2f | %9.2f   (GB/s)\n",
                    r2.throughput_gbps(), r3.throughput_gbps(), degraded,
                    scrub_rate);
        if (!r1.success || !r2.success || !r3.success) {
            std::printf("rebuild FAILED\n");
            return 1;
        }
    }
    return 0;
}
