// CRC32C kernel throughput — software slice-by-8 vs the hardware
// instruction path — and the end-to-end cost of verify-on-read: the same
// sequential full-device read workload against two arrays that differ only
// in array_config::verify_reads. The delta is what the integrity layer
// charges the hot read path (one checksum pass per strip plus the bounce
// buffer).
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "liberation/integrity/crc32c.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"

namespace {

double crc_gbps(liberation::integrity::crc32c_impl impl,
                std::span<const std::byte> buf, double seconds = 0.15) {
    namespace integrity = liberation::integrity;
    integrity::force_impl(impl);
    std::uint32_t sink = integrity::crc32c(buf);  // warm-up + page-in
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t iters = 0;
        liberation::util::stopwatch timer;
        do {
            sink ^= integrity::crc32c(buf);
            ++iters;
        } while (timer.seconds() < seconds / 3);
        best = std::max(best, liberation::util::throughput_gbps(
                                  iters * buf.size(), timer.seconds()));
    }
    // Keep the checksum observable so the loop cannot be elided.
    if (sink == 0xdeadbeef) std::printf("\n");
    return best;
}

double read_gbps(bool verify, double seconds = 0.3) {
    liberation::raid::array_config cfg;
    cfg.k = 4;
    cfg.element_size = 4096;
    cfg.sector_size = 512;
    cfg.stripes = 64;
    cfg.verify_reads = verify;
    liberation::raid::raid6_array a(cfg);

    liberation::util::xoshiro256 rng(bench::kSeed);
    std::vector<std::byte> data(a.capacity());
    rng.fill(data);
    if (!a.write(0, data)) return 0.0;

    std::vector<std::byte> out(a.capacity());
    if (!a.read(0, out)) return 0.0;  // warm-up
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t iters = 0;
        liberation::util::stopwatch timer;
        do {
            if (!a.read(0, out)) return 0.0;
            ++iters;
        } while (timer.seconds() < seconds / 3);
        best = std::max(best, liberation::util::throughput_gbps(
                                  iters * out.size(), timer.seconds()));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    namespace integrity = liberation::integrity;
    bench::reporter rep(argc, argv, "crc32c");
    const bool hw = integrity::hardware_available();
    rep.banner("CRC32C kernel and verify-on-read overhead\n");
    rep.banner(std::string("hardware CRC32C: ") +
               (hw ? "available" : "not available (rows report 0)") + "\n");

    liberation::util::xoshiro256 rng(bench::kSeed);
    std::vector<std::byte> buf(1u << 20);
    rng.fill(buf);

    rep.section("(kernel throughput, GB/s)", "kernel");
    rep.header({"bytes", "software", "hardware"});
    for (const std::size_t n : {64u, 512u, 4096u, 65536u, 1048576u}) {
        const std::span<const std::byte> s(buf.data(), n);
        const double sw = crc_gbps(integrity::crc32c_impl::software, s);
        const double hws =
            hw ? crc_gbps(integrity::crc32c_impl::hardware, s) : 0.0;
        rep.row(static_cast<std::uint32_t>(n), {sw, hws}, "%14.3f");
    }

    // Restore runtime dispatch to its natural choice before the end-to-end
    // read benchmark — that is what production reads pay.
    integrity::force_impl(hw ? integrity::crc32c_impl::hardware
                             : integrity::crc32c_impl::software);

    rep.section("(array sequential read, GB/s; k=4, 4 KiB elements)",
                "verified-read");
    rep.header({"verify", "read"});
    const double off = read_gbps(false);
    const double on = read_gbps(true);
    rep.row(0, {off}, "%14.3f");
    rep.row(1, {on}, "%14.3f");
    if (!rep.json() && on > 0.0 && off > 0.0) {
        std::printf("\nverify-on-read overhead: %.1f%%\n",
                    (off / on - 1.0) * 100.0);
    }
    return 0;
}
