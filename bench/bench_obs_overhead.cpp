// Always-on telemetry overhead: the same RAID-6 workloads with span
// tracing off (the production default — one relaxed load and a branch
// per span site) and on (full causal-context recording into the bounded
// per-thread rings), in one binary. The contract this bench enforces is
// the deep-telemetry budget: tracing ON may cost at most ~1% of the
// tracing-OFF throughput on the fused-codec read path and the pipelined
// aio write path — the two hottest instrumented surfaces.
//
// Both modes run with metrics recording live (histograms and counters
// are never gated) and the process-wide flight recorder armed, so the
// "off" side is exactly what a production scrape sees and the "on" side
// adds only the tracer stores. The encode/decode kernels themselves
// contain zero instrumentation either way (docs/OBSERVABILITY.md).
//
// Sections (ratio = on/off; 0.99 means tracing cost 1%):
//   verified_read  — streaming verified reads (fused CRC+copy traversal)
//   aio_write_qd8  — full-device pipelined full-stripe rewrites
//
// Usage: bench_obs_overhead [--json]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/util/timer.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

constexpr std::uint32_t kK = 8;
constexpr std::size_t kElem = 8192;
constexpr std::size_t kStripes = 64;

array_config config(std::size_t qd) {
    array_config cfg;
    cfg.k = kK;
    cfg.element_size = kElem;
    cfg.stripes = kStripes;
    cfg.io_queue_depth = qd;
    return cfg;
}

// Best-of-three streaming read rate over the whole device (GB/s of host
// data), stripe-sized requests so every read crosses the instrumented
// raid.read span plus the per-chunk io spans.
double read_gbps(bool tracing) {
    raid6_array a(config(1));
    a.obs().trace().enable(tracing);
    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(bench::kSeed);
    rng.fill(image);
    if (!a.write(0, image)) std::abort();

    const std::size_t req = a.map().stripe_data_size();
    std::vector<std::byte> buf(req);
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t bytes = 0;
        util::stopwatch timer;
        do {
            for (std::size_t addr = 0; addr + req <= a.capacity();
                 addr += req) {
                if (!a.read(addr, buf)) std::abort();
            }
            bytes += a.capacity();
        } while (timer.seconds() < 0.12);
        best = std::max(best,
                        util::throughput_gbps(bytes, timer.seconds()));
    }
    return best;
}

// Best-of-three full-device rewrite rate through the pipelined aio
// engine at depth 8 — each stripe batches k+2 column writes, so this is
// the densest aio.execute/aio.complete span traffic per host byte.
double write_gbps(bool tracing) {
    raid6_array a(config(8));
    a.obs().trace().enable(tracing);
    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(bench::kSeed);
    rng.fill(image);
    if (!a.write(0, image)) std::abort();

    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t bytes = 0;
        util::stopwatch timer;
        do {
            if (!a.write(0, image)) std::abort();
            bytes += image.size();
        } while (timer.seconds() < 0.12);
        best = std::max(best,
                        util::throughput_gbps(bytes, timer.seconds()));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    bench::reporter rep(argc, argv, "obs_overhead");
    rep.banner("Span-tracing overhead: identical workloads, tracing off "
               "vs on\n(ratio = on/off; the budget is >= 0.99)\n");

    rep.section("verified_read (k=8, elem=8KiB)", "verified_read");
    rep.header({"k", "off_GBps", "on_GBps", "ratio"});
    {
        const double off = read_gbps(false);
        const double on = read_gbps(true);
        rep.row(kK, {off, on, off > 0 ? on / off : 0.0});
    }

    rep.section("aio_write_qd8 (k=8, elem=8KiB)", "aio_write_qd8");
    rep.header({"k", "off_GBps", "on_GBps", "ratio"});
    {
        const double off = write_gbps(false);
        const double on = write_gbps(true);
        rep.row(kK, {off, on, off > 0 ? on / off : 0.0});
    }
    return 0;
}
