// Ablation B — update (small-write) cost across codes.
//
// Measures (a) the average number of parity elements written per single
// data-element update, and (b) the small-write throughput of the paths.
// This is the property that motivates Liberation in the first place
// (Table I: update complexity 2 vs ~3 for EVENODD/RDP), and directly
// scales SSD wear and small-write latency in a real array.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/codes/rs_raid6.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

namespace {

using namespace liberation;

struct result {
    double avg_parity_writes;
    double updates_per_sec;
};

result measure(const codes::raid6_code& c, std::size_t elem) {
    util::xoshiro256 rng(bench::kSeed);
    codes::stripe_buffer sb(c.rows(), c.n(), elem);
    sb.fill_random(rng, c.k());
    c.encode(sb.view());
    std::vector<std::byte> delta(elem);
    rng.fill(delta);

    std::uint64_t writes = 0, updates = 0;
    util::stopwatch timer;
    do {
        for (std::uint32_t row = 0; row < c.rows(); ++row) {
            for (std::uint32_t col = 0; col < c.k(); ++col) {
                writes += c.apply_update(sb.view(), row, col, delta);
                ++updates;
            }
        }
    } while (timer.seconds() < 0.1);
    return {static_cast<double>(writes) / static_cast<double>(updates),
            static_cast<double>(updates) / timer.seconds()};
}

}  // namespace

int main() {
    std::printf(
        "Ablation B: parity-update cost per data-element write"
        " (element = 4 KiB)\n\n");
    std::printf("%4s | %22s %10s | %22s %10s | %22s %10s | %22s %10s\n", "k",
                "liberation", "upd/s", "evenodd", "upd/s", "rdp", "upd/s",
                "reed-solomon", "upd/s");
    for (const std::uint32_t k : {4u, 8u, 12u, 16u, 20u}) {
        const std::uint32_t p = util::next_odd_prime(k);
        const core::liberation_optimal_code lib(k, p);
        const codes::evenodd_code evenodd(k, p);
        const codes::rdp_code rdp(k, util::next_odd_prime(k + 1));
        const codes::rs_raid6_code rs(k, 4);

        const auto a = measure(lib, 4096);
        const auto b = measure(evenodd, 4096);
        const auto c = measure(rdp, 4096);
        const auto d = measure(rs, 4096);
        std::printf(
            "%4u | %22.4f %10.0f | %22.4f %10.0f | %22.4f %10.0f |"
            " %22.4f %10.0f\n",
            k, a.avg_parity_writes, a.updates_per_sec, b.avg_parity_writes,
            b.updates_per_sec, c.avg_parity_writes, c.updates_per_sec,
            d.avg_parity_writes, d.updates_per_sec);
    }
    std::printf(
        "\n(lower bound: 2 parity writes per update; Liberation attains"
        " 2 + (k-1)/kp)\n");
    return 0;
}
