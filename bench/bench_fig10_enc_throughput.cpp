// Figure 10 — encoding throughput vs k, p varying with k, element sizes
// 4 KiB and 8 KiB, optimal vs original.
//
// Expected shape: both decline with k (more XORs, bigger stripes, more
// cache misses); the optimal encoder stays above the original at every k
// (paper: up to 22.3% higher).
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    bench::reporter rep(argc, argv, "fig10_enc_throughput");
    rep.banner("Fig. 10: encoding throughput (GB/s), p varying with k\n");
    for (const std::size_t elem : {4096ull, 8192ull}) {
        rep.section("(element size = " + std::to_string(elem / 1024) + " KB)",
                    "elem=" + std::to_string(elem));
        rep.header({"k", "optimal", "original", "opt/orig"});
        for (std::uint32_t k = 4; k <= 22; k += 2) {
            const std::uint32_t p = util::next_odd_prime(k);
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o = bench::encode_throughput_gbps(optimal, elem);
            const double b = bench::encode_throughput_gbps(original, elem);
            rep.row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
