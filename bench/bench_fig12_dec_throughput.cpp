// Figure 12 — decoding throughput vs k, p varying with k, element sizes
// 4 KiB and 8 KiB, averaged over all two-column erasure patterns.
//
// Every timed decode call includes the baseline's per-call matrix
// inversion + scheduling (exactly what jerasure_schedule_decode_lazy
// pays), which is what collapses the original's throughput at large p —
// the paper reports the optimal decoder up to 155% faster.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    bench::reporter rep(argc, argv, "fig12_dec_throughput");
    rep.banner(
        "Fig. 12: decoding throughput (GB/s), p varying with k,\n"
        "         averaged over all two-column erasure patterns\n");
    for (const std::size_t elem : {4096ull, 8192ull}) {
        rep.section("(element size = " + std::to_string(elem / 1024) + " KB)",
                    "elem=" + std::to_string(elem));
        rep.header({"k", "optimal", "original", "opt/orig"});
        for (const std::uint32_t k : {4u, 7u, 10u, 13u, 16u, 19u, 22u}) {
            const std::uint32_t p = util::next_odd_prime(k);
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o = bench::decode_throughput_gbps(optimal, elem);
            const double b = bench::decode_throughput_gbps(original, elem);
            rep.row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
