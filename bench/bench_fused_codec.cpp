// Fused single-pass hot path vs the two-pass structure it replaced.
//
// The array is memory-bound at streaming footprints, so every leg runs
// over arenas well beyond the cache hierarchy and all three legs use the
// *same* xorops traversal engine — the only variable is where the
// checksum work happens:
//
//   raw     — the no-integrity ceiling: the same copy/XOR traversals
//             with the checksum lanes off ("raw-XOR GB/s").
//   twopass — deferred checksumming: run the raw pass over the batch,
//             then a separate CRC32C sweep when the batch has gone cold
//             (the structure of a non-fused pipeline that checksums at
//             drain/scrub time — every byte re-read from memory).
//   fused   — CRC32C riding inside the single traversal
//             (copy_crc32c_blocks / encode_crc).
//
// Sections (per dispatch tier):
//   <impl>_read  — verified strip ingest in 128 KiB requests, CRC block =
//                  elem; GB/s of payload.
//   <impl>_write — full-stripe write pipeline (stage k strips + encode +
//                  checksum all n strips), streamed over a batch of
//                  stripes; GB/s of stripe *data* (k strips), the same
//                  accounting as the figure harnesses.
//
// Flags: --json one-line machine output; --check gates the fused wins on
// the dispatched tier (fused >= 1.4x twopass, fused within 15% of raw at
// elem 4096-8192) so CI catches a defused hot path; --threads N replaces
// the default tables with a thread-scaling sweep of the fused write
// pipeline (private buffers, aggregate GB/s) — kept out of the recorded
// baseline because shared runners make it contention-noisy.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

/// Past every cache level on the machines we care about; the twopass
/// second sweep must find its bytes evicted, as it does in a real array.
constexpr std::size_t kArena = std::size_t{256} << 20;
constexpr std::size_t kReadRequest = std::size_t{128} << 10;

/// Best-of-trials GB/s; each fn() call is one full pass over an arena.
template <typename Fn>
double measure_gbps(std::uint64_t bytes_per_pass, Fn&& fn, int trials = 3) {
    double best = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        util::stopwatch timer;
        fn();
        best = std::max(best, util::throughput_gbps(bytes_per_pass,
                                                    timer.seconds()));
    }
    return best;
}

/// xorops-engine copy (fan-in-1 reduction): the raw leg's data movement,
/// so raw/twopass/fused differ only in checksum placement, not kernels.
void raw_copy(std::byte* dst, const std::byte* src, std::size_t n) {
    const std::byte* srcs[1] = {src};
    xorops::xor_many(dst, srcs, 1, n);
}

struct read_result {
    double twopass, fused, raw;
};

/// Verified strip ingest: stream the arena in 128 KiB requests with one
/// CRC32C per elem-sized block. Five trials per leg: the read legs are
/// short enough that one-sided scheduler noise moves single runs ~5%.
read_result bench_verified_read(std::size_t elem) {
    util::aligned_buffer src(kArena), dst(kArena);
    util::xoshiro256 rng(bench::kSeed);
    rng.fill(src.span());
    std::vector<std::uint32_t> crcs(kReadRequest / elem);

    constexpr int kReadTrials = 5;
    read_result r{};
    r.raw = measure_gbps(kArena, [&] {
        for (std::size_t o = 0; o < kArena; o += kReadRequest)
            raw_copy(dst.data() + o, src.data() + o, kReadRequest);
    }, kReadTrials);
    r.twopass = measure_gbps(kArena, [&] {
        for (std::size_t o = 0; o < kArena; o += kReadRequest)
            raw_copy(dst.data() + o, src.data() + o, kReadRequest);
        // Second pass: by now the front of the arena is cold again.
        for (std::size_t o = 0; o < kArena; o += kReadRequest)
            xorops::crc32c_blocks(dst.data() + o, kReadRequest, elem,
                                  crcs.data());
    }, kReadTrials);
    r.fused = measure_gbps(kArena, [&] {
        for (std::size_t o = 0; o < kArena; o += kReadRequest)
            xorops::copy_crc32c_blocks(dst.data() + o, src.data() + o,
                                       kReadRequest, elem, crcs.data());
    }, kReadTrials);
    return r;
}

/// A batch of stripes whose combined footprint exceeds the cache, plus
/// the user data that feeds them.
struct write_batch {
    core::liberation_optimal_code code;
    std::vector<std::unique_ptr<codes::stripe_buffer>> stripes;
    util::aligned_buffer user;
    std::vector<std::uint32_t> crcs;
    std::size_t elem, strip, nstripes, data_bytes;

    write_batch(std::uint32_t k, std::size_t elem_size)
        : code(k),
          user(0),
          elem(elem_size),
          strip(static_cast<std::size_t>(code.rows()) * elem_size),
          nstripes(kArena / (static_cast<std::size_t>(code.n()) * strip)),
          data_bytes(0) {
        for (std::size_t s = 0; s < nstripes; ++s) {
            stripes.push_back(std::make_unique<codes::stripe_buffer>(
                code.rows(), code.n(), elem));
        }
        data_bytes = nstripes * code.k() * strip;
        user = util::aligned_buffer(data_bytes);
        util::xoshiro256 rng(bench::kSeed);
        rng.fill(user.span());
        crcs.resize(static_cast<std::size_t>(code.n()) * strip / elem);
    }

    const std::byte* user_strip(std::size_t s, std::uint32_t col) const {
        return user.data() + (s * code.k() + col) * strip;
    }
    std::uint32_t* col_crcs(std::uint32_t col) {
        return crcs.data() + col * (strip / elem);
    }
};

/// Stage + encode with the checksum lanes off: the raw-XOR ceiling.
void write_raw_pass(write_batch& b) {
    for (std::size_t s = 0; s < b.nstripes; ++s) {
        const codes::stripe_view v = b.stripes[s]->view();
        for (std::uint32_t c = 0; c < b.code.k(); ++c)
            raw_copy(v.strip(c).data(), b.user_strip(s, c), b.strip);
        b.code.encode(v);
    }
}

/// Raw pass over the whole batch, then the deferred CRC sweep of every
/// strip (data and parity) — the bytes have left the cache by then.
void write_twopass(write_batch& b) {
    write_raw_pass(b);
    for (std::size_t s = 0; s < b.nstripes; ++s) {
        const codes::stripe_view v = b.stripes[s]->view();
        for (std::uint32_t c = 0; c < b.code.n(); ++c)
            xorops::crc32c_blocks(v.strip(c).data(), b.strip, b.elem,
                                  b.col_crcs(c));
    }
}

/// Fused staging + fused encode: every byte touched exactly once.
void write_fused(write_batch& b) {
    for (std::size_t s = 0; s < b.nstripes; ++s) {
        const codes::stripe_view v = b.stripes[s]->view();
        for (std::uint32_t c = 0; c < b.code.k(); ++c)
            xorops::copy_crc32c_blocks(v.strip(c).data(), b.user_strip(s, c),
                                       b.strip, b.elem, b.col_crcs(c));
        b.code.encode_crc(v, b.elem, b.col_crcs(b.code.k()),
                          b.col_crcs(b.code.k() + 1));
    }
}

/// Aggregate GB/s of `threads` workers each running the fused write
/// pipeline on a private (cache-sized) batch.
double bench_write_threads(unsigned threads, std::size_t elem) {
    std::vector<std::unique_ptr<write_batch>> batches;
    for (unsigned t = 0; t < threads; ++t) {
        batches.push_back(std::make_unique<write_batch>(8, elem));
    }
    std::atomic<bool> go{false}, stop{false};
    std::atomic<std::uint64_t> bytes{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {}
            std::uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                write_fused(*batches[t]);
                local += batches[t]->data_bytes;
            }
            bytes.fetch_add(local, std::memory_order_relaxed);
        });
    }
    util::stopwatch timer;
    go.store(true, std::memory_order_release);
    while (timer.seconds() < 0.6) {}
    const double elapsed = timer.seconds();
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    return util::throughput_gbps(bytes.load(), elapsed);
}

}  // namespace

int main(int argc, char** argv) {
    bool check = false;
    unsigned threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        }
    }

    bench::reporter rep(argc, argv, "fused_codec");

    if (threads != 0) {
        rep.banner("Fused full-stripe-write thread scaling (k=8, aggregate "
                   "GB/s of stripe data)\n");
        rep.section("threads", "threads");
        rep.header({"threads", "elem4k", "elem8k"});
        for (unsigned t = 1; t <= threads; t *= 2) {
            rep.row(t, {bench_write_threads(t, 4096),
                        bench_write_threads(t, 8192)},
                    "%14.2f");
        }
        return 0;
    }

    rep.banner(
        "Fused CRC32C+parity hot path vs deferred two-pass (streaming "
        "arenas,\nGB/s of payload; raw = same kernels, checksum off)\n");

    const xorops::xor_impl all[] = {
        xorops::xor_impl::scalar, xorops::xor_impl::avx2,
        xorops::xor_impl::avx512, xorops::xor_impl::neon};
    std::vector<xorops::xor_impl> impls;
    for (const auto impl : all) {
        if (xorops::impl_available(impl)) impls.push_back(impl);
    }

    // Gate inputs: worst rows of the dispatched tier at elem 4096-8192.
    double worst_speedup = 1e9, worst_vs_raw = 1e9;

    for (const auto impl : impls) {
        xorops::impl_scope scope(impl);
        const std::string name = xorops::impl_name(impl);
        const bool dispatched = impl == xorops::default_impl();

        rep.section("verified read, impl = " + name +
                        (dispatched ? "  (dispatched)" : ""),
                    name + "_read");
        rep.header({"elem", "twopass", "fused", "speedup", "raw", "vs_raw"});
        for (const std::size_t elem : {std::size_t{4096}, std::size_t{8192}}) {
            const read_result r = bench_verified_read(elem);
            const double speedup = r.fused / r.twopass;
            const double vs_raw = r.fused / r.raw;
            rep.row(static_cast<std::uint32_t>(elem),
                    {r.twopass, r.fused, speedup, r.raw, vs_raw}, "%14.2f");
            if (dispatched) {
                worst_speedup = std::min(worst_speedup, speedup);
                worst_vs_raw = std::min(worst_vs_raw, vs_raw);
            }
        }

        rep.section("full stripe write, impl = " + name +
                        (dispatched ? "  (dispatched)" : ""),
                    name + "_write");
        rep.header({"k", "two4k", "fused4k", "sp4k", "two8k", "fused8k",
                    "sp8k", "raw8k", "vsraw8k"});
        for (const std::uint32_t k : {4u, 8u}) {
            double vals[8] = {};
            const std::size_t elems[] = {4096, 8192};
            for (int e = 0; e < 2; ++e) {
                write_batch b(k, elems[e]);
                vals[3 * e + 0] = measure_gbps(b.data_bytes,
                                               [&] { write_twopass(b); });
                vals[3 * e + 1] =
                    measure_gbps(b.data_bytes, [&] { write_fused(b); });
                vals[3 * e + 2] = vals[3 * e + 1] / vals[3 * e + 0];
                if (e == 1) {
                    vals[6] = measure_gbps(b.data_bytes,
                                           [&] { write_raw_pass(b); });
                    vals[7] = vals[4] / vals[6];
                }
            }
            rep.row(k, {vals[0], vals[1], vals[2], vals[3], vals[4], vals[5],
                        vals[6], vals[7]},
                    "%14.2f");
            if (dispatched) {
                worst_speedup = std::min({worst_speedup, vals[2], vals[5]});
                worst_vs_raw = std::min(worst_vs_raw, vals[7]);
            }
        }
    }

    rep.finish();

    if (check) {
        const bool ok = worst_speedup >= 1.4 && worst_vs_raw >= 0.85;
        std::fprintf(stderr,
                     "FUSED_CODEC_CHECK %s: worst fused/two-pass speedup "
                     "%.2fx (need >= 1.40), worst fused/raw %.2f "
                     "(need >= 0.85) on the dispatched tier, elem 4-8 KiB\n",
                     ok ? "ok" : "FAILED", worst_speedup, worst_vs_raw);
        if (!ok) return 1;
    }
    return 0;
}
