// Figure 11 — encoding throughput vs k at fixed p = 31, element sizes
// 4 KiB and 8 KiB, optimal vs original.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main() {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    std::printf("Fig. 11: encoding throughput (GB/s), fixed p = %u\n", p);
    for (const std::size_t elem : {4096ull, 8192ull}) {
        std::printf("\n(element size = %zu KB)\n", elem / 1024);
        bench::print_header({"k", "optimal", "original", "opt/orig"});
        for (std::uint32_t k = 4; k <= 22; k += 2) {
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o = bench::encode_throughput_gbps(optimal, elem);
            const double b = bench::encode_throughput_gbps(original, elem);
            bench::print_row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
