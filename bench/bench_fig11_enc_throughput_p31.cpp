// Figure 11 — encoding throughput vs k at fixed p = 31, element sizes
// 4 KiB and 8 KiB, optimal vs original.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    bench::reporter rep(argc, argv, "fig11_enc_throughput_p31");
    rep.banner("Fig. 11: encoding throughput (GB/s), fixed p = 31\n");
    for (const std::size_t elem : {4096ull, 8192ull}) {
        rep.section("(element size = " + std::to_string(elem / 1024) + " KB)",
                    "elem=" + std::to_string(elem));
        rep.header({"k", "optimal", "original", "opt/orig"});
        for (std::uint32_t k = 4; k <= 22; k += 2) {
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o = bench::encode_throughput_gbps(optimal, elem);
            const double b = bench::encode_throughput_gbps(original, elem);
            rep.row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
