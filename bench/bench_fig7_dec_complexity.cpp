// Figure 7 — normalized decoding complexity, p varying with k, averaged
// over all two-column erasure patterns (the paper's methodology).
//
// Expected shape: the optimal Liberation decoder sits 0-3% above the
// bound; the original bit-matrix decoder 12-25% above (decreasing with k);
// the proposed algorithm removes ~15-20% of its XORs; RDP is optimal at
// k = p-1; EVENODD in between.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    bench::reporter rep(argc, argv, "fig7_dec_complexity");
    rep.banner(
        "Fig. 7: normalized decoding complexity (p varying with k,\n"
        "        averaged over all two-column erasure patterns)\n\n");
    rep.header({"k", "evenodd", "rdp", "lib-orig", "lib-opt"});
    for (std::uint32_t k = 2; k <= 23; ++k) {
        const std::uint32_t p = util::next_odd_prime(k);
        const codes::evenodd_code evenodd(k, p);
        const codes::rdp_code rdp(k, util::next_odd_prime(k + 1));
        const codes::liberation_bitmatrix_code original(k, p);
        const core::liberation_optimal_code optimal(k, p);
        rep.row(k, {bench::decode_complexity_norm(evenodd),
                    bench::decode_complexity_norm(rdp),
                    bench::decode_complexity_norm(original),
                    bench::decode_complexity_norm(optimal)});
    }
    return 0;
}
