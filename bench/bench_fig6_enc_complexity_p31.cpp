// Figure 6 — normalized encoding complexity at fixed p = 31
// (the "scalability" regime: disks can be added on the fly, so the code is
// built for a large prime and k varies below it).
//
// Expected shape: EVENODD and RDP degrade substantially as k shrinks
// relative to p, while both Liberation encoders stay flat — the optimal
// one exactly at 1.0.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    bench::reporter rep(argc, argv, "fig6_enc_complexity_p31");
    rep.banner("Fig. 6: normalized encoding complexity (fixed p = 31)\n\n");
    rep.header({"k", "evenodd", "rdp", "lib-orig", "lib-opt"});
    for (std::uint32_t k = 2; k <= 23; ++k) {
        const codes::evenodd_code evenodd(k, p);
        const codes::rdp_code rdp(k, p);
        const codes::liberation_bitmatrix_code original(k, p);
        const core::liberation_optimal_code optimal(k, p);
        rep.row(k, {bench::encode_complexity_norm(evenodd),
                    bench::encode_complexity_norm(rdp),
                    bench::encode_complexity_norm(original),
                    bench::encode_complexity_norm(optimal)});
    }
    return 0;
}
