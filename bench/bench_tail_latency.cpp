// Tail-latency bench: hedged reconstructed reads vs a fail-slow disk.
//
// One member of a k=4 array is armed with an intermittent-stall latency
// profile — mostly healthy service with a periodic multi-ms freeze, the
// firmware-GC shape that makes hedging pay. The same seeded stream of
// single-element reads runs twice: hedging off (every stall is paid in
// full) and hedging on (a read that outlives its per-disk deadline
// speculatively reconstructs the element from the surviving columns and
// takes whichever copy lands first). Latencies are virtual-clock deltas
// per read, so the distributions are deterministic for a fixed seed; the
// p99 column is the headline — the hedged run should beat the unhedged
// one by well over the 5x acceptance bar.
//
// The deadline ceiling (max_deadline_us) is configured to 2 ms here, the
// operator's tail SLA: with 20% of the straggler's samples stalling, its
// own p99 tracks the stall, so an adaptive deadline alone would ratchet
// up past the stall and stop hedging — the ceiling is what bounds the
// hedge trigger in stall-heavy regimes.
//
// Usage: bench_tail_latency [--json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "liberation/raid/array.hpp"

namespace {

using namespace liberation;
using namespace liberation::raid;

constexpr std::uint32_t kDisks = 4;         // k data columns (n = k + 2)
constexpr std::size_t kElem = 1024;
constexpr std::size_t kStripes = 64;
constexpr std::size_t kReads = 6000;
constexpr std::uint32_t kSlowDisk = 2;
constexpr std::uint64_t kProfileSeed = 0xfa11'510eULL;

latency_profile stall_profile() {
    latency_profile prof;
    prof.kind = latency_profile::shape::intermittent_stall;
    prof.base_us = 150;      // healthy service time of the straggler
    prof.jitter_us = 100;
    prof.stall_us = 100'000; // the periodic freeze: 100 ms
    prof.stall_every = 5;
    return prof;
}

struct tail_result {
    std::uint64_t p50_us = 0;
    std::uint64_t p99_us = 0;
    std::uint64_t max_us = 0;
    array_stats stats{};
};

tail_result run(bool hedged) {
    array_config cfg;
    cfg.k = kDisks;
    cfg.element_size = kElem;
    cfg.stripes = kStripes;
    cfg.latency.hedged_reads = hedged;
    cfg.latency.max_deadline_us = 2'000;  // tail SLA ceiling (see header)
    raid6_array a(cfg);

    std::vector<std::byte> image(a.capacity());
    util::xoshiro256 rng(bench::kSeed);
    rng.fill(image);
    if (!a.write(0, image)) std::abort();

    // Arm the straggler only after the fill: the bench measures the read
    // path, and both runs must replay the identical stall schedule.
    a.disk(kSlowDisk).set_latency_profile(stall_profile(), kProfileSeed);

    const std::size_t elems = a.capacity() / kElem;
    std::vector<std::byte> out(kElem);
    std::vector<std::uint64_t> lat;
    lat.reserve(kReads);
    for (std::size_t i = 0; i < kReads; ++i) {
        const std::size_t addr = (rng.next() % elems) * kElem;
        const std::uint64_t t0 = a.clock().now_us();
        if (!a.read(addr, out)) std::abort();
        lat.push_back(a.clock().now_us() - t0);
    }
    std::sort(lat.begin(), lat.end());
    const auto pct = [&](double p) {
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(lat.size() - 1));
        return lat[idx];
    };
    return {pct(0.50), pct(0.99), lat.back(), a.stats()};
}

}  // namespace

int main(int argc, char** argv) {
    bench::reporter rep(argc, argv, "tail_latency");
    rep.banner("Tail latency under one fail-slow disk: hedged reconstructed "
               "reads vs direct reads\n(virtual-clock microseconds per "
               "single-element read; 100 ms stall every 5th straggler op)\n");

    rep.section("read tail latency (us)", "tail_latency");
    rep.header({"hedge", "p50_us", "p99_us", "max_us", "hedged", "wins"});

    const tail_result off = run(false);
    const tail_result on = run(true);
    rep.row(0, {static_cast<double>(off.p50_us),
                static_cast<double>(off.p99_us),
                static_cast<double>(off.max_us),
                static_cast<double>(off.stats.hedged_reads),
                static_cast<double>(off.stats.hedge_wins)},
            "%14.0f");
    rep.row(1, {static_cast<double>(on.p50_us),
                static_cast<double>(on.p99_us),
                static_cast<double>(on.max_us),
                static_cast<double>(on.stats.hedged_reads),
                static_cast<double>(on.stats.hedge_wins)},
            "%14.0f");

    const double speedup =
        on.p99_us != 0 ? static_cast<double>(off.p99_us) /
                             static_cast<double>(on.p99_us)
                       : 0.0;
    if (!rep.json()) {
        std::printf("\np99 improvement with hedging: %.1fx\n", speedup);
    }
    rep.meta("p99_speedup", bench::reporter::num(speedup));
    return 0;
}
