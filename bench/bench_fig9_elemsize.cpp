// Figure 9 — encoding throughput vs element size for p = 5, 7, 11
// (k = p), optimal vs original encoder.
//
// Expected shape: throughput peaks around 4-8 KiB elements (cache-resident
// working set per pass) and tails off at 64 KiB; the optimal encoder sits
// above the original at every size.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    bench::reporter rep(argc, argv, "fig9_elemsize");
    rep.banner("Fig. 9: encoding throughput (GB/s) vs element size\n");
    for (const std::uint32_t p : {5u, 7u, 11u}) {
        const std::uint32_t k = p;
        const core::liberation_optimal_code optimal(k, p);
        const codes::liberation_bitmatrix_code original(k, p);
        rep.section("(p = " + std::to_string(p) + ", k = " +
                        std::to_string(k) + ")",
                    "p=" + std::to_string(p));
        rep.header({"log2(elem)", "optimal", "original"});
        for (std::uint32_t lg = 12; lg <= 16; ++lg) {
            const std::size_t elem = 1ull << lg;
            rep.row(lg, {bench::encode_throughput_gbps(optimal, elem),
                         bench::encode_throughput_gbps(original, elem)},
                    "%14.3f");
        }
    }
    return 0;
}
