// Shared machinery for the figure-reproduction harnesses.
//
// Complexity harnesses (Figs. 5-8, Table I) run the real encode/decode
// paths on 8-byte elements and read the xorops counters — one region op is
// one "XOR" in the paper's accounting. Throughput harnesses (Figs. 9-13)
// run the same paths on 4/8 KiB elements and report GB/s of stripe data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "liberation/codes/raid6_code.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"
#include "liberation/xorops/xorops.hpp"

namespace bench {

inline constexpr std::uint64_t kSeed = 0x5eed5eedULL;

/// Normalized encoding complexity: XORs per parity element / (k-1).
inline double encode_complexity_norm(const liberation::codes::raid6_code& c) {
    liberation::util::xoshiro256 rng(kSeed);
    liberation::codes::stripe_buffer sb(c.rows(), c.n(), 8);
    sb.fill_random(rng, c.k());
    liberation::xorops::counting_scope scope;
    c.encode(sb.view());
    return static_cast<double>(scope.xors()) / (2.0 * c.rows()) / (c.k() - 1);
}

/// Normalized decoding complexity averaged over erasure patterns
/// (the paper's methodology: all patterns; pass data_only=true to restrict
/// to two-data-column pairs).
inline double decode_complexity_norm(const liberation::codes::raid6_code& c,
                                     bool data_only = false) {
    liberation::util::xoshiro256 rng(kSeed);
    liberation::codes::stripe_buffer ref(c.rows(), c.n(), 8);
    ref.fill_random(rng, c.k());
    c.encode(ref.view());
    const std::uint32_t hi = data_only ? c.k() : c.n();
    double sum = 0;
    int n = 0;
    for (std::uint32_t a = 0; a < hi; ++a) {
        for (std::uint32_t b = a + 1; b < hi; ++b) {
            liberation::codes::stripe_buffer broke(c.rows(), c.n(), 8);
            liberation::codes::copy_stripe(broke.view(), ref.view());
            const std::vector<std::uint32_t> pat{a, b};
            liberation::xorops::counting_scope scope;
            c.decode(broke.view(), pat);
            sum += static_cast<double>(scope.xors()) / (2.0 * c.rows()) /
                   (c.k() - 1);
            ++n;
        }
    }
    return n != 0 ? sum / n : 0.0;
}

/// Encode throughput in GB/s of stripe *data* (k strips), median-free
/// simple timing: warm up once, then time `seconds` worth of iterations.
inline double encode_throughput_gbps(const liberation::codes::raid6_code& c,
                                     std::size_t elem,
                                     double seconds = 0.15) {
    liberation::util::xoshiro256 rng(kSeed);
    liberation::codes::stripe_buffer sb(c.rows(), c.n(), elem);
    sb.fill_random(rng, c.k());
    c.encode(sb.view());  // warm-up + page-in

    const std::uint64_t data_bytes =
        static_cast<std::uint64_t>(c.k()) * c.rows() * elem;
    // Best of three trials: throughput benches on a shared machine see
    // one-sided noise (preemption only ever slows a trial down).
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t iters = 0;
        liberation::util::stopwatch timer;
        do {
            c.encode(sb.view());
            ++iters;
        } while (timer.seconds() < seconds / 3);
        best = std::max(best, liberation::util::throughput_gbps(
                                  iters * data_bytes, timer.seconds()));
    }
    return best;
}

/// Decode throughput in GB/s of stripe data, averaged over all two-column
/// erasure patterns (paper Section IV-B). Each timed decode includes
/// whatever per-call work the implementation performs (for the bit-matrix
/// baseline that includes matrix inversion + scheduling, as in Jerasure).
inline double decode_throughput_gbps(const liberation::codes::raid6_code& c,
                                     std::size_t elem,
                                     double seconds_per_pattern = 0.006) {
    liberation::util::xoshiro256 rng(kSeed);
    liberation::codes::stripe_buffer sb(c.rows(), c.n(), elem);
    sb.fill_random(rng, c.k());
    c.encode(sb.view());

    const std::uint64_t data_bytes =
        static_cast<std::uint64_t>(c.k()) * c.rows() * elem;
    double gbps_sum = 0;
    int patterns = 0;
    for (std::uint32_t a = 0; a < c.n(); ++a) {
        for (std::uint32_t b = a + 1; b < c.n(); ++b) {
            const std::vector<std::uint32_t> pat{a, b};
            c.decode(sb.view(), pat);  // warm-up (also repairs the stripe)
            std::uint64_t iters = 0;
            liberation::util::stopwatch timer;
            do {
                c.decode(sb.view(), pat);
                ++iters;
            } while (timer.seconds() < seconds_per_pattern);
            gbps_sum += liberation::util::throughput_gbps(iters * data_bytes,
                                                          timer.seconds());
            ++patterns;
        }
    }
    return gbps_sum / patterns;
}

/// Fixed-width table printer.
inline void print_header(const std::vector<std::string>& cols) {
    for (const auto& c : cols) std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i) std::printf("  ------------");
    std::printf("\n");
}

inline void print_row(std::uint32_t key, const std::vector<double>& vals,
                      const char* fmt = "%14.4f") {
    std::printf("%14u", key);
    for (const double v : vals) std::printf(fmt, v);
    std::printf("\n");
}

/// Structured output for the figure drivers. Construct from argv and route
/// all printing through it: by default the human tables are unchanged, and
/// with `--json` the driver instead emits exactly one JSON object on one
/// line — `{"bench":<name>,"rows":[{...},...]}` — for dashboards and
/// regression scrapers.
class reporter {
public:
    reporter(int argc, char** argv, std::string name)
        : name_(std::move(name)) {
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--json") json_ = true;
        }
    }
    reporter(const reporter&) = delete;
    reporter& operator=(const reporter&) = delete;
    ~reporter() { finish(); }

    [[nodiscard]] bool json() const noexcept { return json_; }

    /// Free-form banner text; suppressed in JSON mode.
    void banner(const std::string& text) const {
        if (!json_) std::printf("%s", text.c_str());
    }

    /// Start a table section: prints "\n<human>\n" in table mode, and tags
    /// every subsequent row with "section":<label> in JSON mode.
    void section(const std::string& human, const std::string& label) {
        section_ = label;
        if (!json_) std::printf("\n%s\n", human.c_str());
    }

    void header(const std::vector<std::string>& cols) {
        cols_ = cols;
        if (!json_) print_header(cols);
    }

    /// A keyed numeric row: column names come from the last header().
    void row(std::uint32_t key, const std::vector<double>& vals,
             const char* fmt = "%14.4f") {
        if (!json_) {
            print_row(key, vals, fmt);
            return;
        }
        std::string r;
        r += '"';
        r += escape(cols_.empty() ? std::string("key") : cols_[0]);
        r += "\":";
        r += std::to_string(key);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            r += ",\"";
            r += escape(i + 1 < cols_.size() ? cols_[i + 1]
                                             : "v" + std::to_string(i));
            r += "\":";
            r += num(vals[i]);
        }
        push(std::move(r));
    }

    /// An irregular row (Table I): explicit fields with pre-rendered JSON
    /// values — use reporter::num()/str(). Human printing stays with the
    /// caller, gated on !json().
    void object(
        std::initializer_list<std::pair<const char*, std::string>> fields) {
        if (!json_) return;
        std::string r;
        for (const auto& [key, value] : fields) {
            if (!r.empty()) r += ',';
            r += '"';
            r += escape(key);
            r += "\":";
            r += value;
        }
        push(std::move(r));
    }

    /// Attach an extra header field to the JSON object: a pre-rendered
    /// JSON value (use num()/str(), or any rendered JSON — e.g. a nested
    /// object of histogram snapshots). No-op in table mode. Fields are
    /// emitted in insertion order, after "xor_impl" and before "rows".
    void meta(const std::string& key, const std::string& json_value) {
        if (!json_) return;
        meta_ += ",\"" + escape(key) + "\":" + json_value;
    }

    /// Render a double as a JSON number.
    [[nodiscard]] static std::string num(double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        return buf;
    }

    /// Render a string as a JSON string.
    [[nodiscard]] static std::string str(const std::string& s) {
        return '"' + escape(s) + '"';
    }

    /// Emit the JSON object (JSON mode only; called by the destructor, or
    /// explicitly to control ordering against other output). The header
    /// names the XOR impl that was dispatched at emit time, so every
    /// recorded number carries the tier that produced it.
    void finish() {
        if (!json_ || finished_) return;
        finished_ = true;
        std::printf("{\"bench\":\"%s\",\"xor_impl\":\"%s\"%s,\"rows\":[",
                    escape(name_).c_str(),
                    liberation::xorops::impl_name(
                        liberation::xorops::active_impl()),
                    meta_.c_str());
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::printf("%s{%s}", i != 0 ? "," : "", rows_[i].c_str());
        }
        std::printf("]}\n");
    }

private:
    [[nodiscard]] static std::string escape(const std::string& s) {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\') out += '\\';
            out += c;
        }
        return out;
    }

    void push(std::string row_fields) {
        if (!section_.empty()) {
            row_fields.insert(0, "\"section\":" + str(section_) + ",");
        }
        rows_.push_back(std::move(row_fields));
    }

    std::string name_;
    std::string section_;
    std::string meta_;
    std::vector<std::string> cols_;
    std::vector<std::string> rows_;
    bool json_ = false;
    bool finished_ = false;
};

}  // namespace bench
