// Ablation C — I/O-optimal single-disk rebuild (beyond-paper extension).
//
// Compares the conventional rebuild (read every surviving strip) against
// the hybrid row/anti-diagonal plan (core/hybrid_rebuild.hpp) on (a) the
// planner's element-read counts and (b) actual bytes read through the
// RAID simulator's disks.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/core/hybrid_rebuild.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/primes.hpp"

namespace {

using namespace liberation;

std::uint64_t array_bytes_read(const raid::raid6_array& a) {
    std::uint64_t total = 0;
    for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
        total += a.disk(d).stats().bytes_read;
    }
    return total;
}

}  // namespace

int main() {
    std::printf(
        "Ablation C: single-disk rebuild reads, conventional vs hybrid\n\n"
        "planner element counts (per stripe, averaged over erased column):\n");
    std::printf("%4s %4s %12s %12s %10s\n", "k", "p", "conventional",
                "hybrid", "savings");
    for (const std::uint32_t k : {4u, 8u, 12u, 16u, 20u}) {
        const std::uint32_t p = util::next_odd_prime(k);
        const core::geometry g(p, k);
        double base = 0, hybrid = 0;
        for (std::uint32_t l = 0; l < k; ++l) {
            const auto plan = core::plan_hybrid_rebuild(g, l);
            base += static_cast<double>(plan.baseline_reads);
            hybrid += static_cast<double>(plan.reads.size());
        }
        base /= k;
        hybrid /= k;
        std::printf("%4u %4u %12.1f %12.1f %9.1f%%\n", k, p, base, hybrid,
                    100.0 * (1.0 - hybrid / base));
    }

    std::printf("\narray-level bytes read during a full single-disk rebuild "
                "(k = 10, p = 11, 32 stripes x 4 KiB elements):\n");
    raid::array_config cfg;
    cfg.k = 10;
    cfg.element_size = 4096;
    cfg.stripes = 32;

    for (const bool use_hybrid : {false, true}) {
        raid::raid6_array a(cfg);
        util::xoshiro256 rng(bench::kSeed);
        std::vector<std::byte> img(a.capacity());
        rng.fill(img);
        if (!a.write(0, img)) return 1;

        const std::uint64_t before = array_bytes_read(a);
        a.fail_disk(5);
        a.replace_disk(5);
        util::stopwatch timer;
        raid::rebuild_result r;
        if (use_hybrid) {
            r = raid::rebuild_single_disk_hybrid(a, 5);
        } else {
            const std::uint32_t disks[] = {5};
            r = raid::rebuild_disks(a, disks);
        }
        if (!r.success) {
            std::printf("rebuild FAILED\n");
            return 1;
        }
        std::printf("  %-13s %8.1f MB read, %6.3f s, %.2f GB/s written\n",
                    use_hybrid ? "hybrid:" : "conventional:",
                    static_cast<double>(array_bytes_read(a) - before) / 1e6,
                    r.seconds, r.throughput_gbps());
    }
    return 0;
}
