// Ablation A — where does the encoding win come from?
//
// Four encoders on the same stripes:
//   1. bitmatrix-dumb      (schedule straight off the generator)
//   2. bitmatrix-smart     (Jerasure heuristic = the paper's baseline)
//   3. geometric-direct    (eqs. (1)-(2) as plain loops, NO common-
//                           expression reuse)
//   4. geometric-optimal   (Algorithm 1: common expressions reused)
//
// 3 vs 2 isolates "remove schedule interpretation overhead"; 4 vs 3
// isolates "common-expression reuse" (the paper's actual contribution);
// 4 vs 2 is the end-to-end Fig. 10 gap.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/bitmatrix/liberation_matrix.hpp"
#include "liberation/bitmatrix/schedule.hpp"
#include "liberation/core/geometry.hpp"
#include "liberation/core/optimal_encoder.hpp"
#include "liberation/util/primes.hpp"

namespace {

using namespace liberation;

struct sample {
    double xors_per_bit;
    double gbps;
};

template <class EncodeFn>
sample measure(std::uint32_t p, std::uint32_t k, std::size_t elem,
               EncodeFn&& encode) {
    util::xoshiro256 rng(bench::kSeed);
    codes::stripe_buffer sb(p, k + 2, elem);
    sb.fill_random(rng, k);
    encode(sb.view());  // warm-up

    xorops::counting_scope scope;
    encode(sb.view());
    const double xpb = static_cast<double>(scope.xors()) / (2.0 * p);

    const std::uint64_t data_bytes = static_cast<std::uint64_t>(k) * p * elem;
    std::uint64_t iters = 0;
    util::stopwatch timer;
    do {
        encode(sb.view());
        ++iters;
    } while (timer.seconds() < 0.1);
    return {xpb, util::throughput_gbps(iters * data_bytes, timer.seconds())};
}

}  // namespace

int main() {
    std::printf(
        "Ablation A: decomposing the encoding win (element = 4 KiB)\n"
        "  dumb   = bitmatrix, unscheduled\n"
        "  smart  = bitmatrix + Jerasure scheduling   (paper baseline)\n"
        "  direct = geometric loops, no CE reuse\n"
        "  optim  = Algorithm 1                        (paper proposal)\n\n");
    std::printf("%4s %4s | %7s %7s %7s %7s | %7s %7s %7s %7s\n", "k", "p",
                "dumbX", "smartX", "dirX", "optX", "dumbGB", "smartGB",
                "dirGB", "optGB");
    for (const std::uint32_t k : {6u, 10u, 14u, 18u, 22u}) {
        const std::uint32_t p = util::next_odd_prime(k);
        const core::geometry g(p, k);
        const auto gen = bitmatrix::liberation_generator(p, k);
        const auto inputs = bitmatrix::data_bit_regions(p, k);
        const auto outputs = bitmatrix::parity_bit_regions(p, k);
        const auto dumb = bitmatrix::make_dumb_schedule(gen, inputs, outputs);
        const auto smart = bitmatrix::make_smart_schedule(gen, inputs, outputs);

        const auto s_dumb = measure(p, k, 4096, [&](codes::stripe_view v) {
            bitmatrix::run_schedule(dumb, v);
        });
        const auto s_smart = measure(p, k, 4096, [&](codes::stripe_view v) {
            bitmatrix::run_schedule(smart, v);
        });
        const auto s_direct = measure(p, k, 4096, [&](codes::stripe_view v) {
            core::encode_reference(v, g);
        });
        const auto s_opt = measure(p, k, 4096, [&](codes::stripe_view v) {
            core::encode_optimal(v, g);
        });
        std::printf(
            "%4u %4u | %7.3f %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f %7.3f\n",
            k, p, s_dumb.xors_per_bit, s_smart.xors_per_bit,
            s_direct.xors_per_bit, s_opt.xors_per_bit, s_dumb.gbps,
            s_smart.gbps, s_direct.gbps, s_opt.gbps);
    }
    return 0;
}
