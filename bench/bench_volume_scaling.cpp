// Volume scale-out bench: one fixed pool of stripes, split across 1, 2,
// 4, and 8 raid6_array shards behind the volume dispatcher.
//
// The container pins this repo to a single CPU, so wall-clock threading
// numbers would measure the scheduler, not the design. Instead every disk
// of every shard is armed with a *constant* latency profile (jitter = 0)
// and the bench reports modeled GB/s in virtual time: each shard advances
// its own virtual clock by the device time its I/O would have cost, and a
// phase that fans out across shards completes when its slowest shard does
// — the phase time is max over shards of that shard's clock delta, which
// is exactly the wall time an N-spindle-group deployment would see.
// Because the total stripe pool is fixed (each shard holds TOTAL/N
// stripes), the N-shard rows show the scale-out win: N queue pairs, N
// rebuild pipelines, and N scrub scanners draining one workload
// concurrently. Virtual totals are order-independent sums, so the numbers
// are byte-deterministic even with the per-shard I/O worker pools on —
// safe for tight bench_compare gating.
//
// Sections: full-volume write, rebuild (one failed disk per shard,
// background pipeline), and scrub. Rows are keyed by shard count with
// modeled GB/s and the speedup over the 1-shard row.
//
// Usage: bench_volume_scaling [--json] [--check]
//   --check  exit non-zero unless the 4-shard write speedup is >= 1.6x
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/volume/volume.hpp"

namespace {

using namespace liberation::volume;
namespace raid = liberation::raid;
namespace util = liberation::util;

constexpr std::uint32_t kData = 8;          // k data columns per shard
constexpr std::size_t kElem = 4096;
constexpr std::size_t kTotalStripes = 32;   // pool split across the shards
constexpr std::uint64_t kDiskUs = 200;      // constant device service time
constexpr std::uint64_t kProfileSeed = 0x5ca1'ab1eULL;

struct phase_gbps {
    double write = 0;
    double rebuild = 0;
    double scrub = 0;
};

/// Virtual-clock reading of every shard, for phase deltas.
std::vector<std::uint64_t> clocks_us(volume& vol) {
    std::vector<std::uint64_t> t(vol.shard_count());
    for (std::uint32_t s = 0; s < vol.shard_count(); ++s) {
        t[s] = vol.shard(s).clock().now_us();
    }
    return t;
}

/// Modeled phase seconds: the slowest shard's clock delta.
double phase_seconds(volume& vol,
                     const std::vector<std::uint64_t>& t0) {
    std::uint64_t worst = 0;
    for (std::uint32_t s = 0; s < vol.shard_count(); ++s) {
        worst = std::max(worst, vol.shard(s).clock().now_us() - t0[s]);
    }
    return static_cast<double>(worst) / 1e6;
}

phase_gbps run(std::uint32_t shards) {
    volume_config cfg;
    cfg.shards = shards;
    cfg.chunk_stripes = 1;
    cfg.threaded_dispatch = true;
    cfg.io_workers_per_shard = 2;  // the multi-queue worker path, lit up
    cfg.shard.k = kData;
    cfg.shard.element_size = kElem;
    cfg.shard.stripes = kTotalStripes / shards;
    cfg.shard.sector_size = kElem;
    cfg.shard.io_queue_depth = 8;
    cfg.shard.hot_spares = 1;  // rebuild target
    volume vol(cfg);

    // Every disk pays the same modeled device time per op; jitter = 0
    // keeps the virtual totals independent of worker interleaving.
    raid::latency_profile prof;
    prof.kind = raid::latency_profile::shape::constant;
    prof.base_us = kDiskUs;
    for (std::uint32_t s = 0; s < shards; ++s) {
        for (std::uint32_t d = 0; d < vol.shard(s).disk_count(); ++d) {
            vol.shard(s).disk(d).set_latency_profile(prof, kProfileSeed);
        }
    }

    util::xoshiro256 rng(bench::kSeed);
    std::vector<std::byte> image(vol.capacity());
    rng.fill(image);

    phase_gbps out;
    constexpr int kWritePasses = 2;
    {
        const auto t0 = clocks_us(vol);
        for (int pass = 0; pass < kWritePasses; ++pass) {
            if (!vol.write(0, image)) std::abort();
        }
        out.write = static_cast<double>(image.size()) * kWritePasses / 1e9 /
                    phase_seconds(vol, t0);
    }
    {
        const auto t0 = clocks_us(vol);
        std::uint64_t rebuilt_bytes = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
            vol.shard(s).fail_disk(s % vol.shard(s).disk_count());
            rebuilt_bytes += vol.shard(s).map().disk_capacity();
        }
        vol.drain_background_rebuilds();
        out.rebuild = static_cast<double>(rebuilt_bytes) / 1e9 /
                      phase_seconds(vol, t0);
    }
    {
        const auto t0 = clocks_us(vol);
        for (std::uint32_t s = 0; s < shards; ++s) {
            const raid::scrub_summary sum = scrub_array(vol.shard(s));
            if (sum.uncorrectable != 0) std::abort();
        }
        out.scrub = static_cast<double>(vol.capacity()) / 1e9 /
                    phase_seconds(vol, t0);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) check = true;
    }
    bench::reporter rep(argc, argv, "volume_scaling");
    rep.banner(
        "Volume scale-out: one fixed stripe pool across N shards\n"
        "(modeled GB/s in per-shard virtual time; constant " +
        std::to_string(kDiskUs) +
        " us device latency,\nqd 8, 2 I/O workers per shard; phase time = "
        "slowest shard's clock delta)\n");

    const std::vector<std::uint32_t> counts{1, 2, 4, 8};
    std::vector<phase_gbps> results;
    results.reserve(counts.size());
    for (const std::uint32_t n : counts) results.push_back(run(n));
    const phase_gbps& base = results.front();

    rep.section("full-volume write", "write");
    rep.header({"shards", "GBps", "speedup"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
        rep.row(counts[i], {results[i].write, results[i].write / base.write});
    }
    rep.section("rebuild (one failed disk per shard)", "rebuild");
    rep.header({"shards", "GBps", "speedup"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
        rep.row(counts[i],
                {results[i].rebuild, results[i].rebuild / base.rebuild});
    }
    rep.section("scrub", "scrub");
    rep.header({"shards", "GBps", "speedup"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
        rep.row(counts[i], {results[i].scrub, results[i].scrub / base.scrub});
    }

    const double write_speedup_4 = results[2].write / base.write;
    rep.meta("write_speedup_4_shards", bench::reporter::num(write_speedup_4));
    rep.finish();
    if (check && write_speedup_4 < 1.6) {
        std::fprintf(stderr,
                     "FAIL: 4-shard write speedup %.2fx < 1.6x floor\n",
                     write_speedup_4);
        return 1;
    }
    if (check && !rep.json()) {
        std::printf("\n4-shard write speedup %.2fx >= 1.6x floor\n",
                    write_speedup_4);
    }
    return 0;
}
