// Figure 13 — decoding throughput vs k at fixed p = 31, element sizes
// 4 KiB and 8 KiB, averaged over all two-column erasure patterns.
//
// The fixed large prime maximizes the baseline's per-call matrix work
// (62x62 inversions + scheduling on every decode), so this is where the
// paper's ">150%" throughput gap appears.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    bench::reporter rep(argc, argv, "fig13_dec_throughput_p31");
    rep.banner(
        "Fig. 13: decoding throughput (GB/s), fixed p = 31,\n"
        "         averaged over all two-column erasure patterns\n");
    for (const std::size_t elem : {4096ull, 8192ull}) {
        rep.section("(element size = " + std::to_string(elem / 1024) + " KB)",
                    "elem=" + std::to_string(elem));
        rep.header({"k", "optimal", "original", "opt/orig"});
        for (const std::uint32_t k : {4u, 10u, 16u, 22u}) {
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o =
                bench::decode_throughput_gbps(optimal, elem, 0.01);
            const double b =
                bench::decode_throughput_gbps(original, elem, 0.01);
            rep.row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
