// Figure 13 — decoding throughput vs k at fixed p = 31, element sizes
// 4 KiB and 8 KiB, averaged over all two-column erasure patterns.
//
// The fixed large prime maximizes the baseline's per-call matrix work
// (62x62 inversions + scheduling on every decode), so this is where the
// paper's ">150%" throughput gap appears.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main() {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    std::printf(
        "Fig. 13: decoding throughput (GB/s), fixed p = %u,\n"
        "         averaged over all two-column erasure patterns\n",
        p);
    for (const std::size_t elem : {4096ull, 8192ull}) {
        std::printf("\n(element size = %zu KB)\n", elem / 1024);
        bench::print_header({"k", "optimal", "original", "opt/orig"});
        for (const std::uint32_t k : {4u, 10u, 16u, 22u}) {
            const core::liberation_optimal_code optimal(k, p);
            const codes::liberation_bitmatrix_code original(k, p);
            const double o =
                bench::decode_throughput_gbps(optimal, elem, 0.01);
            const double b =
                bench::decode_throughput_gbps(original, elem, 0.01);
            bench::print_row(k, {o, b, o / b}, "%14.3f");
        }
    }
    return 0;
}
