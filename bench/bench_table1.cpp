// Table I — "A Summary of Representative RAID-6 Codes".
//
// Reproduces every row of the paper's Table I from *measurements* on the
// real implementations (k = 10 as the representative width), alongside the
// closed forms the table prints. Storage overhead is structural; encoding/
// decoding complexity come from the xorops counters; update complexity is
// the measured average number of parity elements touched per data-element
// update.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

namespace {

using namespace liberation;

double avg_update_cost(const codes::raid6_code& c) {
    util::xoshiro256 rng(bench::kSeed);
    codes::stripe_buffer sb(c.rows(), c.n(), 8);
    sb.fill_random(rng, c.k());
    c.encode(sb.view());
    std::vector<std::byte> delta(8, std::byte{0xA5});
    std::uint64_t total = 0;
    for (std::uint32_t row = 0; row < c.rows(); ++row) {
        for (std::uint32_t col = 0; col < c.k(); ++col) {
            total += c.apply_update(sb.view(), row, col, delta);
        }
    }
    return static_cast<double>(total) / (c.rows() * c.k());
}

void row(bench::reporter& rep, const char* name, std::uint32_t w,
         const char* restriction, double enc, double dec, double upd,
         const char* enc_form, const char* dec_form, const char* upd_form) {
    if (!rep.json()) {
        std::printf("%-22s %4u  %-10s  %8.4f (%s)  %8.4f (%s)  %6.3f (%s)\n",
                    name, w, restriction, enc, enc_form, dec, dec_form, upd,
                    upd_form);
    }
    rep.object({{"code", bench::reporter::str(name)},
                {"w", std::to_string(w)},
                {"restrict", bench::reporter::str(restriction)},
                {"encoding", bench::reporter::num(enc)},
                {"decoding", bench::reporter::num(dec)},
                {"update", bench::reporter::num(upd)},
                {"encoding_form", bench::reporter::str(enc_form)},
                {"decoding_form", bench::reporter::str(dec_form)},
                {"update_form", bench::reporter::str(upd_form)}});
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint32_t k = 10;
    const std::uint32_t p = util::next_odd_prime(k);        // 11
    const std::uint32_t p_rdp = util::next_odd_prime(k + 1);  // 11

    const codes::evenodd_code evenodd(k, p);
    const codes::rdp_code rdp(k, p_rdp);
    const codes::liberation_bitmatrix_code original(k, p);
    const core::liberation_optimal_code optimal(k, p);

    bench::reporter rep(argc, argv, "table1");
    if (!rep.json()) {
        std::printf(
            "Table I: measured characteristics of representative RAID-6"
            " codes\n"
            "(k = %u data disks, p = %u; complexities in XORs per parity/"
            "missing element,\n paper's closed forms in parentheses; lower"
            " bound: enc/dec = k-1, update = 2)\n\n",
            k, p);
        std::printf("%-22s %4s  %-10s  %-22s  %-22s  %-12s\n", "code", "w",
                    "restrict", "encoding (per bit)", "decoding (per bit)",
                    "update");
    }

    row(rep, "EVENODD", evenodd.rows(), "k <= p",
        bench::encode_complexity_norm(evenodd) * (k - 1),
        bench::decode_complexity_norm(evenodd, true) * (k - 1),
        avg_update_cost(evenodd), "~k-1/2", "~k", "~3");
    row(rep, "RDP", rdp.rows(), "k <= p-1",
        bench::encode_complexity_norm(rdp) * (k - 1),
        bench::decode_complexity_norm(rdp, true) * (k - 1),
        avg_update_cost(rdp), "k-1", "k-1", "~3");
    row(rep, "Liberation(original)", original.rows(), "k <= p",
        bench::encode_complexity_norm(original) * (k - 1),
        bench::decode_complexity_norm(original, true) * (k - 1),
        avg_update_cost(original), "k-1+(k-1)/2p", "~1.15(k-1)", "~2");
    row(rep, "Liberation(optimal)", optimal.rows(), "k <= p",
        bench::encode_complexity_norm(optimal) * (k - 1),
        bench::decode_complexity_norm(optimal, true) * (k - 1),
        avg_update_cost(optimal), "k-1", "~(k-1)", "~2");

    if (!rep.json()) {
        std::printf(
            "\nStorage overhead: all four are MDS (exactly 2 redundant disks"
            " for any-2-erasure tolerance; Singleton bound).\n");
        std::printf(
            "Lower bounds:            %8.4f (k-1)            %8.4f (k-1)"
            "       2.000 (2)\n",
            static_cast<double>(k - 1), static_cast<double>(k - 1));
    }
    return 0;
}
