// Figure 8 — normalized decoding complexity at fixed p = 31, averaged
// over all two-column erasure patterns.
//
// Expected shape: EVENODD/RDP blow up as k shrinks; original Liberation
// stays ~10-15% above the bound; the optimal decoder within a few percent.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    constexpr std::uint32_t p = 31;
    bench::reporter rep(argc, argv, "fig8_dec_complexity_p31");
    rep.banner(
        "Fig. 8: normalized decoding complexity (fixed p = 31,\n"
        "        averaged over all two-column erasure patterns)\n\n");
    rep.header({"k", "evenodd", "rdp", "lib-orig", "lib-opt"});
    for (std::uint32_t k = 2; k <= 23; ++k) {
        const codes::evenodd_code evenodd(k, p);
        const codes::rdp_code rdp(k, p);
        const codes::liberation_bitmatrix_code original(k, p);
        const core::liberation_optimal_code optimal(k, p);
        rep.row(k, {bench::decode_complexity_norm(evenodd),
                    bench::decode_complexity_norm(rdp),
                    bench::decode_complexity_norm(original),
                    bench::decode_complexity_norm(optimal)});
    }
    return 0;
}
