// Figure 5 — normalized encoding complexity, p varying with k.
//
// Series: EVENODD, RDP, Liberation(original), Liberation(optimal), each
// normalized by the k-1 lower bound (1.0 = optimal). Expected shape: the
// optimal Liberation encoder pins 1.0 for every k; the original tracks
// 1 + 1/2p; EVENODD ~1 + 1/(2(k-1)); RDP 1.0 at k = p-1 with small bumps
// between primes.
#include <cstdio>

#include "bench_common.hpp"
#include "liberation/codes/evenodd.hpp"
#include "liberation/codes/liberation_bitmatrix_code.hpp"
#include "liberation/codes/rdp.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

int main(int argc, char** argv) {
    using namespace liberation;
    bench::reporter rep(argc, argv, "fig5_enc_complexity");
    rep.banner("Fig. 5: normalized encoding complexity (p varying with k)\n\n");
    rep.header({"k", "evenodd", "rdp", "lib-orig", "lib-opt"});
    for (std::uint32_t k = 2; k <= 23; ++k) {
        const std::uint32_t p = util::next_odd_prime(k);
        const codes::evenodd_code evenodd(k, p);
        const codes::rdp_code rdp(k, util::next_odd_prime(k + 1));
        const codes::liberation_bitmatrix_code original(k, p);
        const core::liberation_optimal_code optimal(k, p);
        rep.row(k, {bench::encode_complexity_norm(evenodd),
                    bench::encode_complexity_norm(rdp),
                    bench::encode_complexity_norm(original),
                    bench::encode_complexity_norm(optimal)});
    }
    return 0;
}
