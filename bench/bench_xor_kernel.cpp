// Micro-benchmark of the raw XOR region kernels: impl-by-impl sweep
// (scalar / avx2 / avx512 / neon, whichever this CPU supports) over region
// size x fan-in. Establishes the memory-bandwidth ceiling every throughput
// figure is ultimately bounded by, and quantifies what each dispatch tier
// buys over the portable fallback.
//
// GB/s is bytes *moved* per second: reads + writes touched by the kernel
// (xor_into: 3n per call; xor2: 3n; xor_many fan-in f: (f+1)n — f source
// reads and one destination write per fused pass).
//
// Flags: --json for one-line machine output (like every other bench);
// --check exits non-zero unless the auto-dispatched tier is at least as
// fast as the scalar tier on 64 KiB regions, within 10% timing noise (CI's
// never-rot guard for the dispatch; trivially passes where scalar IS the
// dispatched tier).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

constexpr std::size_t kMaxFanIn = 12;  // crosses the 8-source pass split

/// Best-of-trials GB/s of one kernel invocation repeated until `seconds`.
template <typename Fn>
double measure_gbps(std::uint64_t bytes_per_call, Fn&& fn,
                    double seconds = 0.06) {
    double best = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
        std::uint64_t iters = 0;
        util::stopwatch timer;
        do {
            fn();
            ++iters;
        } while (timer.seconds() < seconds / 3);
        best = std::max(best, util::throughput_gbps(iters * bytes_per_call,
                                                    timer.seconds()));
    }
    return best;
}

struct kernel_bufs {
    util::aligned_buffer dst;
    std::vector<util::aligned_buffer> srcs;
    std::vector<const std::byte*> src_ptrs;

    explicit kernel_bufs(std::size_t n) : dst(n) {
        util::xoshiro256 rng(bench::kSeed);
        rng.fill(dst.span());
        for (std::size_t s = 0; s < kMaxFanIn; ++s) {
            srcs.emplace_back(n);
            rng.fill(srcs.back().span());
            src_ptrs.push_back(srcs.back().data());
        }
    }
};

double bench_xor_into(kernel_bufs& b, std::size_t n) {
    return measure_gbps(3 * n, [&] {
        xorops::xor_into(b.dst.data(), b.src_ptrs[0], n);
    });
}

double bench_xor2(kernel_bufs& b, std::size_t n) {
    return measure_gbps(3 * n, [&] {
        xorops::xor2(b.dst.data(), b.src_ptrs[0], b.src_ptrs[1], n);
    });
}

double bench_xor_many(kernel_bufs& b, std::size_t n, std::size_t fan_in) {
    return measure_gbps((fan_in + 1) * n, [&] {
        xorops::xor_many(b.dst.data(), b.src_ptrs.data(), fan_in, n);
    });
}

}  // namespace

int main(int argc, char** argv) {
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) check = true;
    }

    bench::reporter rep(argc, argv, "xor_kernel");
    rep.banner("XOR kernel sweep: impl x region size x fan-in (GB/s moved)\n");

    const xorops::xor_impl all[] = {
        xorops::xor_impl::scalar, xorops::xor_impl::avx2,
        xorops::xor_impl::avx512, xorops::xor_impl::neon};
    std::vector<xorops::xor_impl> impls;
    for (const auto impl : all) {
        if (xorops::impl_available(impl)) impls.push_back(impl);
    }

    const std::size_t sizes[] = {1u << 10, 4u << 10, 64u << 10, 1u << 20};

    // 64 KiB xor_into per impl, for the --check dispatch guard.
    double scalar_64k = 0.0, dispatched_64k = 0.0;

    for (const auto impl : impls) {
        xorops::impl_scope scope(impl);
        const std::string name = xorops::impl_name(impl);
        rep.section("impl = " + name +
                        (impl == xorops::default_impl() ? "  (dispatched)"
                                                        : ""),
                    name);
        rep.header({"KiB", "xor_into", "xor2", "many4", "many8", "many12"});
        for (const std::size_t n : sizes) {
            kernel_bufs bufs(n);
            const double into = bench_xor_into(bufs, n);
            const double two = bench_xor2(bufs, n);
            const double m4 = bench_xor_many(bufs, n, 4);
            const double m8 = bench_xor_many(bufs, n, 8);
            const double m12 = bench_xor_many(bufs, n, kMaxFanIn);
            rep.row(static_cast<std::uint32_t>(n >> 10),
                    {into, two, m4, m8, m12}, "%14.2f");
            if (n == (64u << 10)) {
                if (impl == xorops::xor_impl::scalar) scalar_64k = into;
                if (impl == xorops::default_impl()) dispatched_64k = into;
            }
        }
    }

    rep.finish();

    if (check) {
        // 10% headroom: at 64 KiB both tiers can sit near the same memory
        // ceiling on shared runners, and the guard is after rot (a broken
        // dispatch or regressed kernel), not single-digit timing noise.
        const bool ok =
            xorops::default_impl() == xorops::xor_impl::scalar ||
            dispatched_64k >= 0.9 * scalar_64k;
        std::fprintf(stderr, "XOR_DISPATCH_CHECK %s: dispatched(%s) %.2f GB/s "
                             "vs scalar %.2f GB/s on 64 KiB\n",
                     ok ? "ok" : "FAILED",
                     xorops::impl_name(xorops::default_impl()),
                     dispatched_64k, scalar_64k);
        if (!ok) return 1;
    }
    return 0;
}
