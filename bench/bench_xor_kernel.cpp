// Micro-benchmark of the raw XOR region kernels (google-benchmark).
// Establishes the memory-bandwidth ceiling every throughput figure is
// ultimately bounded by.
#include <benchmark/benchmark.h>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/xorops/xorops.hpp"

namespace {

using namespace liberation;

void BM_XorInto(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::aligned_buffer dst(n), src(n);
    util::xoshiro256 rng(1);
    rng.fill(dst.span());
    rng.fill(src.span());
    for (auto _ : state) {
        xorops::xor_into(dst.data(), src.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_XorInto)->Range(1 << 10, 1 << 20);

void BM_Xor2(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::aligned_buffer dst(n), a(n), b(n);
    util::xoshiro256 rng(2);
    rng.fill(a.span());
    rng.fill(b.span());
    for (auto _ : state) {
        xorops::xor2(dst.data(), a.data(), b.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(3 * n));
}
BENCHMARK(BM_Xor2)->Range(1 << 10, 1 << 20);

void BM_Copy(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::aligned_buffer dst(n), src(n);
    util::xoshiro256 rng(3);
    rng.fill(src.span());
    for (auto _ : state) {
        xorops::copy(dst.data(), src.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_Copy)->Range(1 << 12, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
