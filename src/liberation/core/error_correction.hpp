// Single-column error correction for silent data corruption (paper
// Section I promises this capability; no pseudocode is given, so the
// construction here is ours — see DESIGN.md Section 5).
//
// With at most one corrupt column the two parity syndromes identify it
// uniquely (a consequence of the MDS property: distinct columns of the
// generator induce distinct syndrome patterns), and XORing the P-syndrome
// into the culprit column repairs it.
#pragma once

#include <cstdint>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

enum class scrub_status : std::uint8_t {
    clean,              ///< both syndromes zero
    corrected_data,     ///< one data column repaired (see column)
    corrected_p,        ///< P column repaired
    corrected_q,        ///< Q column repaired
    uncorrectable,      ///< inconsistent with any single-column error
};

struct scrub_report {
    scrub_status status = scrub_status::clean;
    std::uint32_t column = 0;  ///< valid when status == corrected_data
};

/// Verify a stripe and repair at most one corrupt column in place.
/// Cost: one re-encode worth of XORs for the syndromes, plus O(p^2 * k)
/// bit-level work on syndrome fingerprints for localization.
scrub_report scrub_stripe(const codes::stripe_view& s, const geometry& g);

/// Cheap consistency check (no repair): true iff both syndromes are zero.
[[nodiscard]] bool stripe_consistent(const codes::stripe_view& s,
                                     const geometry& g);

}  // namespace liberation::core
