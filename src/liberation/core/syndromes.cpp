#include "liberation/core/syndromes.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

void compute_syndromes(const codes::stripe_view& s, const geometry& g,
                       std::uint32_t l, std::uint32_t r) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::uint32_t pc = k;
    const std::uint32_t qc = k + 1;
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(l < k && r < k && l != r);

    // accessed_p guards strip-l elements (row syndromes), accessed_q guards
    // strip-r elements (anti-diagonal syndromes at slot <i + r>).
    bool accessed_p[max_p] = {};
    bool accessed_q[max_p] = {};

    const auto q_slot = [&](std::uint32_t i, std::uint32_t j) noexcept {
        // Data element (i,j) feeds anti-diagonal <i-j>, stored at <i-j+r>.
        return g.mod(static_cast<std::int64_t>(i) - j + r);
    };

    // Surviving common expressions, reused by both syndrome families
    // (Algorithm 3 lines 1-6).
    for (std::uint32_t j = 1; j < k; ++j) {
        if (j - 1 == l || j - 1 == r || j == l || j == r) continue;
        const std::uint32_t row = g.ce_row(j);
        xorops::xor2(s.element(row, l), s.element(row, j - 1),
                     s.element(row, j), e);
        accessed_p[row] = true;
        const std::uint32_t slot =
            g.mod(static_cast<std::int64_t>(p) - 1 - row + r);
        xorops::copy(s.element(slot, r), s.element(row, l), e);
        accessed_q[slot] = true;
    }
    if (k < p && k - 1 != l && k - 1 != r) {
        // Surviving "half" common expression (phantom partner column k).
        const std::uint32_t row = g.ce_row(k);
        xorops::copy(s.element(row, l), s.element(row, k - 1), e);
        accessed_p[row] = true;
        const std::uint32_t slot =
            g.mod(static_cast<std::int64_t>(p) - 1 - row + r);
        xorops::copy(s.element(slot, r), s.element(row, l), e);
        accessed_q[slot] = true;
    }

    // Main sweep over surviving data columns (lines 7-24). The skip rules
    // drop exactly the members of *unknown* common expressions (erased-CE
    // survivors must not enter any syndrome) and the already-folded members
    // of surviving ones.
    for (std::uint32_t j = 0; j < k; ++j) {
        if (j == l || j == r) continue;
        for (std::uint32_t i = 0; i < p; ++i) {
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;  // CE first member

            const std::uint32_t slot = q_slot(i, j);
            if (accessed_q[slot]) {
                xorops::xor_into(s.element(slot, r), s.element(i, j), e);
            } else {
                xorops::copy(s.element(slot, r), s.element(i, j), e);
                accessed_q[slot] = true;
            }

            if (t == p - 1 && i != p - 1) continue;  // extra member

            if (accessed_p[i]) {
                xorops::xor_into(s.element(i, l), s.element(i, j), e);
            } else {
                xorops::copy(s.element(i, l), s.element(i, j), e);
                accessed_p[i] = true;
            }
        }
    }

    // Fold the parity columns in (lines 25-28). First-touch still copies:
    // for tiny k a syndrome can consist of the parity element alone.
    for (std::uint32_t i = 0; i < p; ++i) {
        if (accessed_p[i]) {
            xorops::xor_into(s.element(i, l), s.element(i, pc), e);
        } else {
            xorops::copy(s.element(i, l), s.element(i, pc), e);
        }
        // Slot i of strip r holds anti-diagonal <i - r>.
        const std::uint32_t q_index = g.mod(static_cast<std::int64_t>(i) - r);
        if (accessed_q[i]) {
            xorops::xor_into(s.element(i, r), s.element(q_index, qc), e);
        } else {
            xorops::copy(s.element(i, r), s.element(q_index, qc), e);
        }
    }
}

}  // namespace liberation::core
