#include "liberation/core/syndromes.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

void compute_syndromes(const codes::stripe_view& s, const geometry& g,
                       std::uint32_t l, std::uint32_t r) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::uint32_t pc = k;
    const std::uint32_t qc = k + 1;
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(l < k && r < k && l != r);

    // accessed_p guards strip-l elements (row syndromes), accessed_q guards
    // strip-r elements (anti-diagonal syndromes at slot <i + r>).
    bool accessed_p[max_p] = {};
    bool accessed_q[max_p] = {};

    // Surviving common expressions, reused by both syndrome families
    // (Algorithm 3 lines 1-6).
    for (std::uint32_t j = 1; j < k; ++j) {
        if (j - 1 == l || j - 1 == r || j == l || j == r) continue;
        const std::uint32_t row = g.ce_row(j);
        xorops::xor2(s.element(row, l), s.element(row, j - 1),
                     s.element(row, j), e);
        accessed_p[row] = true;
        const std::uint32_t slot =
            g.mod(static_cast<std::int64_t>(p) - 1 - row + r);
        xorops::copy(s.element(slot, r), s.element(row, l), e);
        accessed_q[slot] = true;
    }
    if (k < p && k - 1 != l && k - 1 != r) {
        // Surviving "half" common expression (phantom partner column k).
        const std::uint32_t row = g.ce_row(k);
        xorops::copy(s.element(row, l), s.element(row, k - 1), e);
        accessed_p[row] = true;
        const std::uint32_t slot =
            g.mod(static_cast<std::int64_t>(p) - 1 - row + r);
        xorops::copy(s.element(slot, r), s.element(row, l), e);
        accessed_q[slot] = true;
    }

    // Main sweep over surviving data columns (lines 7-24), regrouped
    // output-major so every syndrome element is produced by one fused
    // xor_many pass (the op multiset — and therefore the XOR count — is
    // exactly the paper's; XOR is commutative). The skip rules drop exactly
    // the members of *unknown* common expressions (erased-CE survivors must
    // not enter any syndrome) and the already-folded members of surviving
    // ones. The parity element (lines 25-28) rides along as the last source
    // of the same pass; first-touch still copies, so for tiny k a syndrome
    // may consist of the parity element alone.
    const std::byte* srcs[max_p + 1];

    // Row syndromes S^P_i, in strip l.
    for (std::uint32_t i = 0; i < p; ++i) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            if (j == l || j == r) continue;
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;   // CE first member
            if (t == p - 1 && i != p - 1) continue;  // extra member
            srcs[m++] = s.element(i, j);
        }
        srcs[m++] = s.element(i, pc);  // P_i
        if (accessed_p[i]) {
            xorops::xor_many_into(s.element(i, l), srcs, m, e);
        } else {
            xorops::xor_many(s.element(i, l), srcs, m, e);
        }
    }

    // Anti-diagonal syndromes S^Q, in strip r: slot holds anti-diagonal
    // <slot - r>, whose column-j member sits at row <slot + j - r>.
    for (std::uint32_t slot = 0; slot < p; ++slot) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            if (j == l || j == r) continue;
            const std::uint32_t i =
                g.mod(static_cast<std::int64_t>(slot) + j - r);
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;  // CE first member
            srcs[m++] = s.element(i, j);
        }
        srcs[m++] = s.element(g.mod(static_cast<std::int64_t>(slot) - r), qc);
        if (accessed_q[slot]) {
            xorops::xor_many_into(s.element(slot, r), srcs, m, e);
        } else {
            xorops::xor_many(s.element(slot, r), srcs, m, e);
        }
    }
}

}  // namespace liberation::core
