// Algorithm 3 — syndrome computation (paper Section III-C).
//
// For two erased data columns l and r, computes
//   * row syndromes      S^P_i  stored in strip l at element i, and
//   * anti-diag syndromes S^Q_i stored in strip r at element <i + r>,
// where a syndrome is the XOR of the parity element and the *surviving*
// members of its constraint, EXCLUDING any member that belongs to an
// unknown common expression (a common expression with at least one erased
// member). Surviving common expressions are evaluated once and reused for
// both syndrome families, mirroring the optimal encoder. No scratch memory:
// the erased strips themselves hold the syndromes.
#pragma once

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

/// Expects l != r, both real data columns (< k).
/// Stripe: p rows x (k+2) columns; strips l and r are overwritten.
void compute_syndromes(const codes::stripe_view& s, const geometry& g,
                       std::uint32_t l, std::uint32_t r);

}  // namespace liberation::core
