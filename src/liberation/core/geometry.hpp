// Geometric presentation of the Liberation codes (paper Section III-A).
//
// A codeword is a p x (p+2) bit array (p odd prime); k <= p real data
// columns, the rest phantom zeros. With <v> = v mod p:
//
//   P_i = XOR_j b[i][j]                                  (row parity)
//   Q_i = XOR_j b[<i+j>][j]  (+ extra bit a_i, i != 0)   (anti-diagonal)
//   a_i = b[<-i-1>][<-2i>]
//
// The paper's central observation: for each j in 1..p-1 the pair
//   E_j = b[r_j][j-1] ^ b[r_j][j],     r_j = <(p+1)/2 * j> - 1
// is a *common expression*: it appears intact inside row constraint P_{r_j}
// AND inside anti-diagonal constraint Q_{m_j}, m_j = <-(p+1)/2 * j> =
// p-1-r_j, because b[r_j][j-1] is a normal member of Q_{m_j} while
// b[r_j][j] is exactly its extra bit a_{m_j}. Computing each E_j once and
// reusing it in both parities is what removes the redundant XORs.
//
// This header centralizes that index arithmetic so the encoder, decoder,
// update path and error-corrector all speak the same geometry.
#pragma once

#include <cstdint>

#include "liberation/codes/stripe.hpp"

namespace liberation::core {

/// Maximum supported prime. Keeps per-call bookkeeping on the stack
/// (Core Guidelines Per.15: no allocation on the critical path).
inline constexpr std::uint32_t max_p = 1021;

class geometry {
public:
    /// Expects odd prime p in [3, max_p], 1 <= k <= p.
    geometry(std::uint32_t p, std::uint32_t k);

    [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
    [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint32_t half() const noexcept { return (p_ - 1) / 2; }

    [[nodiscard]] std::uint32_t mod(std::int64_t v) const noexcept {
        const auto m = static_cast<std::int64_t>(p_);
        return static_cast<std::uint32_t>(((v % m) + m) % m);
    }

    /// Common-expression row r_j for pair (j-1, j); j in 1..p-1.
    [[nodiscard]] std::uint32_t ce_row(std::uint32_t j) const noexcept;

    /// Anti-diagonal index m_j whose constraint contains E_j (= p-1-r_j).
    [[nodiscard]] std::uint32_t ce_q_index(std::uint32_t j) const noexcept;

    /// Row of the extra bit residing in column y (y in 1..p-1): a column y
    /// hosts the extra bit of exactly one anti-diagonal. Column 0 hosts
    /// none (a_0 = 0).
    [[nodiscard]] std::uint32_t extra_row(std::uint32_t y) const noexcept;

    /// The anti-diagonal index whose extra bit lives in column y (y >= 1).
    [[nodiscard]] std::uint32_t extra_q_index(std::uint32_t y) const noexcept;

    /// True iff (i, j) is the extra bit a_m of some anti-diagonal m.
    [[nodiscard]] bool is_extra_position(std::uint32_t i,
                                         std::uint32_t j) const noexcept;

    /// True iff (i, j) is the first member b[r_{j+1}][j] of E_{j+1}.
    [[nodiscard]] bool is_ce_first_member(std::uint32_t i,
                                          std::uint32_t j) const noexcept;

    /// Anti-diagonal through (i, j): <i - j>.
    [[nodiscard]] std::uint32_t diag_of(std::uint32_t i,
                                        std::uint32_t j) const noexcept {
        return mod(static_cast<std::int64_t>(i) - j);
    }

    /// Row of the normal member of anti-diagonal q in column j: <q + j>.
    [[nodiscard]] std::uint32_t diag_member_row(std::uint32_t q,
                                                std::uint32_t j) const noexcept {
        return (q + j) % p_;
    }

private:
    std::uint32_t p_;
    std::uint32_t k_;
};

/// Reference encoder straight from the defining equations — no common-
/// expression reuse. Ground truth for tests and the ablation bench
/// (isolates "geometric direct loops" from "common-expression reuse").
/// Stripe geometry: p rows, k+2 columns.
void encode_reference(const codes::stripe_view& s, const geometry& g);

/// Reference P / Q columns alone (also from the raw definitions).
void encode_reference_p(const codes::stripe_view& s, const geometry& g);
void encode_reference_q(const codes::stripe_view& s, const geometry& g);

}  // namespace liberation::core
