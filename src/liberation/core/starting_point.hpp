// Algorithm 2 — finding the starting point (paper Section III-C).
//
// For two erased data columns l and r, walks the chain of anti-diagonal
// constraints with stride (r - l) from the "special" anti-diagonal of the
// r side (the one containing three unknowns) and collects the parity-
// constraint index sets S^P and S^Q whose syndromes XOR to a single missing
// element b[x][r]. When the walk closes back on the l side's special
// anti-diagonal first, the starting point lies in column l instead and the
// caller retries with l and r exchanged (Algorithm 4 lines 1-5).
#pragma once

#include <cstdint>
#include <vector>

#include "liberation/core/geometry.hpp"

namespace liberation::core {

struct starting_point {
    std::vector<std::uint32_t> p_rows;  ///< S^P: row-parity syndrome indices
    std::vector<std::uint32_t> q_rows;  ///< S^Q: anti-diagonal syndrome indices
    /// Row of the starting element b[x][r]; -1 if the walk failed and the
    /// caller must exchange l and r.
    std::int32_t x = -1;

    [[nodiscard]] bool found() const noexcept { return x >= 0; }
};

/// Expects l != r, both in [0, p). Column indices are *codeword* columns
/// (phantoms allowed — the caller guarantees l, r < k in practice).
[[nodiscard]] starting_point find_starting_point(const geometry& g,
                                                 std::uint32_t l,
                                                 std::uint32_t r);

}  // namespace liberation::core
