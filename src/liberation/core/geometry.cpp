#include "liberation/core/geometry.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

geometry::geometry(std::uint32_t p, std::uint32_t k) : p_(p), k_(k) {
    LIBERATION_EXPECTS(p >= 3 && p <= max_p && p % 2 == 1 &&
                       util::is_prime(p));
    LIBERATION_EXPECTS(k >= 1 && k <= p);
}

std::uint32_t geometry::ce_row(std::uint32_t j) const noexcept {
    LIBERATION_EXPECTS(j >= 1 && j < p_);
    // <(p+1)/2 * j> is never 0 for j in 1..p-1, so r_j is in 0..p-2.
    const std::uint32_t v =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(p_ + 1) / 2 * j) %
                                   p_);
    return v - 1;
}

std::uint32_t geometry::ce_q_index(std::uint32_t j) const noexcept {
    return p_ - 1 - ce_row(j);
}

std::uint32_t geometry::extra_row(std::uint32_t y) const noexcept {
    LIBERATION_EXPECTS(y >= 1 && y < p_);
    // Column y hosts the extra bit of E_y; its row is exactly r_y.
    return ce_row(y);
}

std::uint32_t geometry::extra_q_index(std::uint32_t y) const noexcept {
    LIBERATION_EXPECTS(y >= 1 && y < p_);
    return ce_q_index(y);
}

bool geometry::is_extra_position(std::uint32_t i, std::uint32_t j) const noexcept {
    if (j == 0) return false;
    return i == extra_row(j);
}

bool geometry::is_ce_first_member(std::uint32_t i, std::uint32_t j) const noexcept {
    if (j + 1 >= p_) return false;  // CE pairs (j, j+1) exist for j+1 <= p-1
    return i == ce_row(j + 1);
}

void encode_reference_p(const codes::stripe_view& s, const geometry& g) {
    const std::size_t e = s.element_size();
    const std::uint32_t pc = g.k();
    const std::byte* srcs[max_p];
    for (std::uint32_t i = 0; i < g.p(); ++i) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < g.k(); ++j) srcs[m++] = s.element(i, j);
        xorops::xor_many(s.element(i, pc), srcs, m, e);
    }
}

void encode_reference_q(const codes::stripe_view& s, const geometry& g) {
    const std::size_t e = s.element_size();
    const std::uint32_t qc = g.k() + 1;
    const std::byte* srcs[max_p + 1];
    for (std::uint32_t i = 0; i < g.p(); ++i) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < g.k(); ++j) {
            srcs[m++] = s.element(g.diag_member_row(i, j), j);
        }
        if (i != 0) {
            const std::uint32_t y = g.mod(-2 * static_cast<std::int64_t>(i));
            if (y != 0 && y < g.k()) {
                srcs[m++] = s.element(g.extra_row(y), y);
            }
        }
        xorops::xor_many(s.element(i, qc), srcs, m, e);
    }
}

void encode_reference(const codes::stripe_view& s, const geometry& g) {
    encode_reference_p(s, g);
    encode_reference_q(s, g);
}

}  // namespace liberation::core
