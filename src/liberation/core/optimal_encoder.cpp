#include "liberation/core/optimal_encoder.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

void encode_optimal(const codes::stripe_view& s, const geometry& g) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::uint32_t pc = k;      // P column
    const std::uint32_t qc = k + 1;  // Q column
    const std::size_t e = s.element_size();

    bool accessed_p[max_p] = {};
    bool accessed_q[max_p] = {};

    // Common expressions E_j = b[r_j][j-1] ^ b[r_j][j]: one XOR into the P
    // element, one copy into the mirrored Q element.
    for (std::uint32_t j = 1; j < k; ++j) {
        const std::uint32_t row = g.ce_row(j);
        xorops::xor2(s.element(row, pc), s.element(row, j - 1),
                     s.element(row, j), e);
        accessed_p[row] = true;
        xorops::copy(s.element(g.ce_q_index(j), qc), s.element(row, pc), e);
        accessed_q[g.ce_q_index(j)] = true;
    }
    if (k < p) {
        // "Half" common expression E_k: its second member is the phantom
        // column k, so E_k degenerates to b[r_k][k-1] — two plain copies.
        const std::uint32_t row = g.ce_row(k);
        xorops::copy(s.element(row, pc), s.element(row, k - 1), e);
        accessed_p[row] = true;
        xorops::copy(s.element(g.ce_q_index(k), qc), s.element(row, pc), e);
        accessed_q[g.ce_q_index(k)] = true;
    }

    // Main sweep — Algorithm 1 lines 6-25, executed output-major: the
    // paper's loop iterates data columns, but the op multiset is identical
    // when regrouped per parity element, and gathering each destination's
    // k-1 accumulations into one fused xor_many keeps the destination in
    // registers across the whole pass (one write instead of k-1
    // read-modify-writes — the same reason Jerasure executes schedules
    // output-row by output-row, taken one level further). The skip rules
    // are unchanged:
    //  * a CE first member contributes to neither parity directly (both of
    //    its contributions were staged above);
    //  * an extra bit contributes only its *normal* anti-diagonal
    //    membership (its P and Q-extra contributions were staged above).
    const std::byte* srcs[max_p];
    for (std::uint32_t i = 0; i < p; ++i) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if ((t == half || t == p - 1) && i != p - 1) continue;
            srcs[m++] = s.element(i, j);
        }
        if (m == 0) continue;
        if (accessed_p[i]) {
            xorops::xor_many_into(s.element(i, pc), srcs, m, e);
        } else {
            xorops::xor_many(s.element(i, pc), srcs, m, e);
        }
    }
    for (std::uint32_t q = 0; q < p; ++q) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            const std::uint32_t i = (q + j) % p;
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;  // CE first member
            srcs[m++] = s.element(i, j);
        }
        if (m == 0) continue;
        if (accessed_q[q]) {
            xorops::xor_many_into(s.element(q, qc), srcs, m, e);
        } else {
            xorops::xor_many(s.element(q, qc), srcs, m, e);
        }
    }

    // Every parity element is written by the sweeps above for all k >= 1
    // (each P_i and Q_i has a member in column 0), so no zero-fill pass.
}

namespace {

/// One window pass of encode_optimal_crc: the op sequence of
/// encode_optimal verbatim, with the *final* operation on each parity
/// element upgraded to its fused-CRC variant (same bytes, same counters;
/// the checksum rides along in the last traversal). Checksums of element
/// `i` land at crcs[i * stride + base], where `stride` is the full
/// element's block count and `base` the window's block offset within the
/// element — so window passes scatter into the strip-ordered CRC array.
void encode_optimal_crc_window(const codes::stripe_view& s, const geometry& g,
                               std::size_t crc_block, std::uint32_t* p_crcs,
                               std::uint32_t* q_crcs, std::size_t stride,
                               std::size_t base) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::uint32_t pc = k;
    const std::uint32_t qc = k + 1;
    const std::size_t e = s.element_size();

    bool accessed_p[max_p] = {};
    bool accessed_q[max_p] = {};

    for (std::uint32_t j = 1; j < k; ++j) {
        const std::uint32_t row = g.ce_row(j);
        xorops::xor2(s.element(row, pc), s.element(row, j - 1),
                     s.element(row, j), e);
        accessed_p[row] = true;
        xorops::copy(s.element(g.ce_q_index(j), qc), s.element(row, pc), e);
        accessed_q[g.ce_q_index(j)] = true;
    }
    if (k < p) {
        const std::uint32_t row = g.ce_row(k);
        xorops::copy(s.element(row, pc), s.element(row, k - 1), e);
        accessed_p[row] = true;
        xorops::copy(s.element(g.ce_q_index(k), qc), s.element(row, pc), e);
        accessed_q[g.ce_q_index(k)] = true;
    }

    const std::byte* srcs[max_p];
    for (std::uint32_t i = 0; i < p; ++i) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if ((t == half || t == p - 1) && i != p - 1) continue;
            srcs[m++] = s.element(i, j);
        }
        std::uint32_t* crcs = p_crcs + i * stride + base;
        if (m == 0) {
            // The CE staging above already holds this element's final
            // bytes; only the checksum sweep remains (uncounted).
            xorops::crc32c_blocks(s.element(i, pc), e, crc_block, crcs);
            continue;
        }
        if (accessed_p[i]) {
            xorops::xor_many_into_crc32c_blocks(s.element(i, pc), srcs, m, e,
                                                crc_block, crcs);
        } else {
            xorops::xor_many_crc32c_blocks(s.element(i, pc), srcs, m, e,
                                           crc_block, crcs);
        }
    }
    for (std::uint32_t q = 0; q < p; ++q) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            const std::uint32_t i = (q + j) % p;
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;  // CE first member
            srcs[m++] = s.element(i, j);
        }
        std::uint32_t* crcs = q_crcs + q * stride + base;
        if (m == 0) {
            xorops::crc32c_blocks(s.element(q, qc), e, crc_block, crcs);
            continue;
        }
        if (accessed_q[q]) {
            xorops::xor_many_into_crc32c_blocks(s.element(q, qc), srcs, m, e,
                                                crc_block, crcs);
        } else {
            xorops::xor_many_crc32c_blocks(s.element(q, qc), srcs, m, e,
                                           crc_block, crcs);
        }
    }
}

}  // namespace

void encode_optimal_crc(const codes::stripe_view& s, const geometry& g,
                        std::size_t crc_block, std::uint32_t* p_crcs,
                        std::uint32_t* q_crcs) {
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(crc_block > 0 && e % crc_block == 0);
    const std::size_t stride = e / crc_block;
    // Cache-window the stripe like encode() does, but rounded to whole
    // checksum blocks so each window pass finalizes the blocks it covers:
    // when the L1 window is finer than a block, widen it to one block
    // (k+2 strips of one block stay L2-resident).
    const std::size_t live = static_cast<std::size_t>(g.k() + 2) * g.p();
    std::size_t window = codes::preferred_packet_size(live, e);
    if (window % crc_block != 0) {
        window = (crc_block % window == 0) ? crc_block : e;
    }
    if (window == e) {
        encode_optimal_crc_window(s, g, crc_block, p_crcs, q_crcs, stride, 0);
        return;
    }
    for (std::size_t off = 0; off < e; off += window) {
        encode_optimal_crc_window(s.packet_view(off, window), g, crc_block,
                                  p_crcs, q_crcs, stride, off / crc_block);
    }
}

void encode_p_only(const codes::stripe_view& s, const geometry& g) {
    encode_reference_p(s, g);
}

void encode_q_only(const codes::stripe_view& s, const geometry& g) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::uint32_t qc = k + 1;
    const std::size_t e = s.element_size();

    bool accessed_q[max_p] = {};

    // Stage common expressions directly in the Q elements: the extra bit of
    // Q_{m_j} and one of its normal members share a row, so one XOR covers
    // both contributions.
    for (std::uint32_t j = 1; j < k; ++j) {
        const std::uint32_t row = g.ce_row(j);
        xorops::xor2(s.element(g.ce_q_index(j), qc), s.element(row, j - 1),
                     s.element(row, j), e);
        accessed_q[g.ce_q_index(j)] = true;
    }
    if (k < p) {
        const std::uint32_t row = g.ce_row(k);
        xorops::copy(s.element(g.ce_q_index(k), qc), s.element(row, k - 1), e);
        accessed_q[g.ce_q_index(k)] = true;
    }

    // Output-major, fused per destination, as in encode_optimal.
    const std::byte* srcs[max_p];
    for (std::uint32_t q = 0; q < p; ++q) {
        std::size_t m = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
            const std::uint32_t i = (q + j) % p;
            const std::uint32_t t = static_cast<std::uint32_t>(
                (i + static_cast<std::uint64_t>(half) * j) % p);
            if (t == half && i != p - 1) continue;  // already in a CE
            srcs[m++] = s.element(i, j);
        }
        if (m == 0) continue;
        if (accessed_q[q]) {
            xorops::xor_many_into(s.element(q, qc), srcs, m, e);
        } else {
            xorops::xor_many(s.element(q, qc), srcs, m, e);
        }
    }
}

}  // namespace liberation::core
