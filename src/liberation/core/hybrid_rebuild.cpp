#include "liberation/core/hybrid_rebuild.hpp"

#include <algorithm>
#include <set>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

namespace {

/// Elements read when recovering row i of column l via row parity.
void row_reads(const geometry& g, std::uint32_t l, std::uint32_t i,
               std::set<element_ref>& out) {
    for (std::uint32_t j = 0; j < g.k(); ++j) {
        if (j != l) out.insert({j, i});
    }
    out.insert({g.k(), i});  // P_i
}

/// Elements read when recovering row i of column l via its anti-diagonal.
void diag_reads(const geometry& g, std::uint32_t l, std::uint32_t i,
                std::set<element_ref>& out) {
    const std::uint32_t q = g.diag_of(i, l);
    for (std::uint32_t j = 0; j < g.k(); ++j) {
        if (j == l) continue;
        out.insert({j, g.diag_member_row(q, j)});
    }
    if (q != 0) {
        const std::uint32_t y = g.mod(-2 * static_cast<std::int64_t>(q));
        if (y != 0 && y < g.k() && y != l) {
            out.insert({y, g.extra_row(y)});
        }
    }
    out.insert({g.k() + 1, q});  // Q_q
}

std::size_t read_set_size(const geometry& g, std::uint32_t l,
                          const std::vector<bool>& via_row) {
    std::set<element_ref> reads;
    for (std::uint32_t i = 0; i < g.p(); ++i) {
        if (via_row[i]) {
            row_reads(g, l, i, reads);
        } else {
            diag_reads(g, l, i, reads);
        }
    }
    return reads.size();
}

/// Row that may not use its anti-diagonal: the diagonal whose extra bit
/// lies in the erased column itself carries two unknowns.
std::uint32_t forbidden_diag_row(const geometry& g, std::uint32_t l) {
    if (l == 0) return g.p();  // no extra bit in column 0: nothing forbidden
    return g.diag_member_row(g.extra_q_index(l), l);
}

}  // namespace

hybrid_plan plan_hybrid_rebuild(const geometry& g, std::uint32_t l) {
    LIBERATION_EXPECTS(l < g.k());
    const std::uint32_t p = g.p();

    hybrid_plan plan;
    plan.column = l;
    plan.via_row.assign(p, true);
    plan.baseline_reads = static_cast<std::size_t>(g.k()) * p;

    const std::uint32_t forbidden = forbidden_diag_row(g, l);

    // Greedy local search: flip the single row whose flip shrinks the read
    // set the most; stop at a local optimum. p flips max per round, at most
    // p rounds — trivially fast for p <= 31 and good enough in practice.
    std::size_t best = read_set_size(g, l, plan.via_row);
    for (;;) {
        std::size_t round_best = best;
        std::uint32_t round_row = p;
        for (std::uint32_t i = 0; i < p; ++i) {
            if (!plan.via_row[i] || i == forbidden) continue;  // flip row->diag only
            plan.via_row[i] = false;
            const std::size_t candidate = read_set_size(g, l, plan.via_row);
            plan.via_row[i] = true;
            if (candidate < round_best) {
                round_best = candidate;
                round_row = i;
            }
        }
        if (round_row == p) break;
        plan.via_row[round_row] = false;
        best = round_best;
    }

    std::set<element_ref> reads;
    for (std::uint32_t i = 0; i < p; ++i) {
        if (plan.via_row[i]) {
            row_reads(g, l, i, reads);
        } else {
            diag_reads(g, l, i, reads);
        }
    }
    plan.reads.assign(reads.begin(), reads.end());
    return plan;
}

void rebuild_column_hybrid(const codes::stripe_view& s, const geometry& g,
                           const hybrid_plan& plan) {
    const std::uint32_t l = plan.column;
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(plan.via_row.size() == g.p());

    const std::byte* srcs[max_p + 2];
    for (std::uint32_t i = 0; i < g.p(); ++i) {
        std::size_t m = 0;
        if (plan.via_row[i]) {
            srcs[m++] = s.element(i, g.k());  // P_i
            for (std::uint32_t j = 0; j < g.k(); ++j) {
                if (j != l) srcs[m++] = s.element(i, j);
            }
        } else {
            const std::uint32_t q = g.diag_of(i, l);
            srcs[m++] = s.element(q, g.k() + 1);  // Q_q
            for (std::uint32_t j = 0; j < g.k(); ++j) {
                if (j == l) continue;
                srcs[m++] = s.element(g.diag_member_row(q, j), j);
            }
            if (q != 0) {
                const std::uint32_t y = g.mod(-2 * static_cast<std::int64_t>(q));
                if (y != 0 && y < g.k() && y != l) {
                    srcs[m++] = s.element(g.extra_row(y), y);
                }
            }
        }
        xorops::xor_many(s.element(i, l), srcs, m, e);
    }
}

}  // namespace liberation::core
