// Algorithm 1 — optimal encoding (paper Section III-B).
//
// Computes each common expression E_j once, stores it in the P column and
// mirrors it into the Q column, then folds every remaining data element
// into its row parity and anti-diagonal parity with the two skip rules that
// avoid re-adding common-expression members. Exactly 2p(k-1) region XORs —
// k-1 per parity element, the theoretical lower bound — for every k <= p.
#pragma once

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

/// Encode both parity columns. Stripe: p rows x (k+2) columns.
void encode_optimal(const codes::stripe_view& s, const geometry& g);

/// encode_optimal() with the per-`crc_block` CRC32C of both parity strips
/// computed inside the final pass over each parity element, while its
/// bytes are still cache-hot — no separate checksum sweep. Requires a
/// non-packet view with element_size() % crc_block == 0; p_crcs/q_crcs
/// receive strip_size()/crc_block checksums in strip byte order. The op
/// sequence and xorops counter deltas are identical to encode_optimal();
/// cache windows are rounded to whole checksum blocks.
void encode_optimal_crc(const codes::stripe_view& s, const geometry& g,
                        std::size_t crc_block, std::uint32_t* p_crcs,
                        std::uint32_t* q_crcs);

/// Recompute only the P column (plain row parity; k-1 XORs per element).
void encode_p_only(const codes::stripe_view& s, const geometry& g);

/// Recompute only the Q column. Common expressions are staged directly in
/// the Q elements (P is not touched); k-1 XORs per element.
void encode_q_only(const codes::stripe_view& s, const geometry& g);

}  // namespace liberation::core
