// Algorithm 4 — optimal decoding (paper Section III-C), plus the easy
// erasure shapes the paper delegates to Algorithm 1.
//
// Two erased data columns l, r are rebuilt in three steps:
//   1. find the starting point (Algorithm 2; retry with l/r exchanged),
//   2. compute both syndrome families in place (Algorithm 3),
//   3. recover b[x][r] by XORing the returned syndrome subsets, then walk
//      the chain with stride delta = <r - l>, alternating row constraint ->
//      anti-diagonal constraint. Each step recovers either a missing
//      element or an unknown common expression; common-expression steps
//      use the value twice (fold into the sibling anti-diagonal syndrome,
//      then resolve with the surviving partner element).
//
// Deviation from the printed pseudocode (documented in EXPERIMENTS.md):
// line 17's guard reads "delta = 1"; the paper's own worked example
// (p = 5, columns 1 and 3, i.e. delta = 3) requires that branch to fire,
// while for delta = 1 firing would XOR the element with itself. We
// implement "delta != 1", which reproduces the worked example exactly and
// passes exhaustive verification over all p <= 31, k <= p, and patterns.
#pragma once

#include <cstdint>
#include <span>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

/// Rebuild two erased data columns (l != r, both < k) in place.
void decode_two_data(const codes::stripe_view& s, const geometry& g,
                     std::uint32_t l, std::uint32_t r);

/// Rebuild one erased data column using row parity (P must be intact).
void decode_data_via_rows(const codes::stripe_view& s, const geometry& g,
                          std::uint32_t l);

/// Rebuild one erased data column using anti-diagonal parity (Q must be
/// intact; used when P is also erased).
void decode_data_via_diagonals(const codes::stripe_view& s, const geometry& g,
                               std::uint32_t l);

/// Full dispatch over every <= 2-column erasure pattern (data and/or
/// parity columns; parity columns are k and k+1).
void decode_any(const codes::stripe_view& s, const geometry& g,
                std::span<const std::uint32_t> erased);

}  // namespace liberation::core
