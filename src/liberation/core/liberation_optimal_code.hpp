// The paper's contribution as a raid6_code: Liberation codes with the
// optimal encoding (Algorithm 1) and optimal decoding (Algorithms 2-4)
// plus incremental update and single-column scrubbing.
//
// This is the primary public entry point of the library:
//
//   liberation::core::liberation_optimal_code code(/*k=*/8);
//   liberation::codes::stripe_buffer stripe(code.rows(), code.n(), 4096);
//   ... fill data strips ...
//   code.encode(stripe.view());
//   code.decode(stripe.view(), erased_columns);
#pragma once

#include <cstdint>

#include "liberation/codes/raid6_code.hpp"
#include "liberation/core/error_correction.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

class liberation_optimal_code final : public codes::raid6_code {
public:
    /// Expects odd prime p >= k >= 1 (paper Section III-A).
    liberation_optimal_code(std::uint32_t k, std::uint32_t p);

    /// Uses the smallest odd prime >= k (the "p varying with k" regime of
    /// the paper's evaluation; pass p explicitly for the fixed-p regime).
    explicit liberation_optimal_code(std::uint32_t k);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint32_t k() const noexcept override {
        return geom_.k();
    }
    [[nodiscard]] std::uint32_t rows() const noexcept override {
        return geom_.p();
    }
    [[nodiscard]] std::uint32_t p() const noexcept { return geom_.p(); }
    [[nodiscard]] const geometry& geom() const noexcept { return geom_; }

    void encode(const codes::stripe_view& stripe) const override;
    void encode_crc(const codes::stripe_view& stripe, std::size_t crc_block,
                    std::uint32_t* p_crcs,
                    std::uint32_t* q_crcs) const override;
    void decode(const codes::stripe_view& stripe,
                std::span<const std::uint32_t> erased) const override;
    std::uint32_t apply_update(const codes::stripe_view& stripe,
                               std::uint32_t row, std::uint32_t col,
                               std::span<const std::byte> delta) const override;

    /// Verify-and-repair against silent corruption of at most one column.
    scrub_report scrub(const codes::stripe_view& stripe) const;

private:
    geometry geom_;
};

}  // namespace liberation::core
