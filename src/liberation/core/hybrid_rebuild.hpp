// Hybrid single-column rebuild: recover an erased data column reading
// fewer elements than the conventional all-row-parity rebuild.
//
// Rebuilding a single data column via row parity alone reads every row of
// every surviving column — k*p elements per stripe. But each missing
// element can equally be recovered along its anti-diagonal; rows recovered
// via rows and rows recovered via anti-diagonals *share* many surviving
// elements, so choosing a good mix shrinks the union of elements that must
// be read (the classic RDOR-style I/O optimization, here adapted to the
// Liberation geometry as a beyond-paper extension: in a disk array, fewer
// reads means faster rebuild and less interference with foreground I/O).
//
// The planner greedily flips per-row choices (row vs anti-diagonal) until
// the read-set size stops shrinking. For k = p this saves ~20-25% of reads,
// consistent with the known bound for RDP-like geometries.
#pragma once

#include <cstdint>
#include <vector>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

/// One element that must be read: column (may be k for P, k+1 for Q) and
/// row within the strip.
struct element_ref {
    std::uint32_t col = 0;
    std::uint32_t row = 0;

    [[nodiscard]] bool operator==(const element_ref&) const noexcept = default;
    [[nodiscard]] bool operator<(const element_ref& o) const noexcept {
        return col != o.col ? col < o.col : row < o.row;
    }
};

struct hybrid_plan {
    std::uint32_t column = 0;          ///< the erased data column
    std::vector<bool> via_row;         ///< per row: true = row parity
    std::vector<element_ref> reads;    ///< distinct elements to read, sorted
    std::size_t baseline_reads = 0;    ///< all-rows rebuild read count (k*p)

    [[nodiscard]] double savings() const noexcept {
        if (baseline_reads == 0) return 0.0;
        return 1.0 - static_cast<double>(reads.size()) /
                         static_cast<double>(baseline_reads);
    }
};

/// Plan the read-minimizing rebuild of data column l (l < k).
[[nodiscard]] hybrid_plan plan_hybrid_rebuild(const geometry& g,
                                              std::uint32_t l);

/// Execute a plan: rebuild column l of the stripe in place, touching only
/// the planned elements plus the erased column itself.
void rebuild_column_hybrid(const codes::stripe_view& s, const geometry& g,
                           const hybrid_plan& plan);

}  // namespace liberation::core
