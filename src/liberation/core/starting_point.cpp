#include "liberation/core/starting_point.hpp"

#include "liberation/util/assert.hpp"

namespace liberation::core {

starting_point find_starting_point(const geometry& g, std::uint32_t l,
                                   std::uint32_t r) {
    const std::uint32_t p = g.p();
    LIBERATION_EXPECTS(l < p && r < p && l != r);

    // Row indices of the extra bits hosted by the erased columns; column 0
    // hosts no extra bit, but the same formula still drives the walk (the
    // l = 0 case relaxes the stop condition below, exactly as printed).
    const auto extra_of = [&](std::uint32_t c) noexcept {
        return p - 1 -
               g.mod(static_cast<std::int64_t>(p - 1) / 2 *
                     static_cast<std::int64_t>(c));
    };
    const std::uint32_t extra_l = extra_of(l);
    const std::uint32_t extra_r = extra_of(r);

    // Anti-diagonals with three unknowns (two normal members + the extra).
    const std::uint32_t special_ql = g.mod(static_cast<std::int64_t>(extra_l) + 1 - l);
    const std::uint32_t special_qr = g.mod(static_cast<std::int64_t>(extra_r) + 1 - r);

    const std::int64_t stride = static_cast<std::int64_t>(r) - l;

    starting_point sp;
    sp.q_rows.push_back(special_qr);
    sp.p_rows.push_back(extra_r);

    std::uint32_t cur_q = g.mod(static_cast<std::int64_t>(special_qr) - 1 + stride);
    while ((cur_q != special_ql || l == 0) && cur_q != special_qr) {
        sp.q_rows.push_back(cur_q);
        sp.p_rows.push_back(g.mod(static_cast<std::int64_t>(cur_q) + r));
        cur_q = g.mod(static_cast<std::int64_t>(cur_q) + stride);
    }

    if (cur_q == special_qr && extra_r + 1 < p) {
        // extra_r = p-1 happens only for r = 0; the walk can close in that
        // orientation, but the starting element it names does not exist —
        // report failure so the caller retries with l and r exchanged
        // (the exchanged orientation has l = 0 and always succeeds).
        sp.x = static_cast<std::int32_t>(extra_r + 1);
    } else {
        sp.x = -1;
    }
    return sp;
}

}  // namespace liberation::core
