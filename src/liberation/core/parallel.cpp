#include "liberation/core/parallel.hpp"

#include <atomic>
#include <mutex>

namespace liberation::core {

void parallel_codec::encode_all(
    std::span<const codes::stripe_view> stripes) const {
    pool_.parallel_for(stripes.size(),
                       [&](std::size_t i) { code_.encode(stripes[i]); });
}

void parallel_codec::decode_all(std::span<const codes::stripe_view> stripes,
                                std::span<const std::uint32_t> erased) const {
    pool_.parallel_for(stripes.size(), [&](std::size_t i) {
        code_.decode(stripes[i], erased);
    });
}

std::vector<std::size_t> parallel_codec::verify_all(
    std::span<const codes::stripe_view> stripes) const {
    std::vector<std::size_t> bad;
    std::mutex mutex;
    pool_.parallel_for(stripes.size(), [&](std::size_t i) {
        if (!code_.verify(stripes[i])) {
            std::lock_guard lock(mutex);
            bad.push_back(i);
        }
    });
    std::sort(bad.begin(), bad.end());
    return bad;
}

}  // namespace liberation::core
