#include "liberation/core/optimal_decoder.hpp"

#include <algorithm>

#include "liberation/core/optimal_encoder.hpp"
#include "liberation/core/starting_point.hpp"
#include "liberation/core/syndromes.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

void decode_two_data(const codes::stripe_view& s, const geometry& g,
                     std::uint32_t l, std::uint32_t r) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t half = g.half();
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(l < k && r < k && l != r);

    // Step 1: starting point; exchange l and r if the walk closed on the
    // wrong side (Algorithm 4 lines 1-5).
    starting_point sp = find_starting_point(g, l, r);
    if (!sp.found()) {
        std::swap(l, r);
        sp = find_starting_point(g, l, r);
    }
    LIBERATION_ENSURES(sp.found());
    const auto x0 = static_cast<std::uint32_t>(sp.x);

    // Step 2: syndromes in place — S^P_i in strip l element i, S^Q_i in
    // strip r element <i + r>.
    compute_syndromes(s, g, l, r);

    const std::uint32_t delta = g.mod(static_cast<std::int64_t>(r) - l);

    // Step 3a: starting element b[x0][r] (lines 7-14), fused into one
    // multi-source accumulation. Its own slot already holds one of the S^Q
    // terms, so that term is skipped.
    {
        const std::byte* srcs[2 * max_p];
        std::size_t m = 0;
        for (const std::uint32_t i : sp.q_rows) {
            const std::uint32_t slot = (i + r) % p;
            if (slot == x0) continue;
            srcs[m++] = s.element(slot, r);
        }
        for (const std::uint32_t i : sp.p_rows) {
            srcs[m++] = s.element(i, l);
        }
        xorops::xor_many_into(s.element(x0, r), srcs, m, e);
    }

    // Step 3b: the chain (lines 15-31). Reads of neighbour columns skip
    // phantom columns (index >= k): their elements are identically zero.
    const auto is_real = [&](std::uint32_t col) noexcept { return col < k; };

    std::uint32_t x = x0;
    for (std::uint32_t t = 0; t < p; ++t) {
        std::byte* bl = s.element(x, l);
        std::byte* br = s.element(x, r);
        // Row constraint: fold the column-r value into the row syndrome.
        xorops::xor_into(bl, br, e);

        const std::uint32_t tr = static_cast<std::uint32_t>(
            (x + static_cast<std::uint64_t>(half) * r) % p);
        if (tr == p - 1 && x != p - 1 && delta != 1) {
            // (x, r) is the extra member of CE r: the row syndrome excluded
            // the surviving first member b[x][r-1]; add it back.
            // [paper prints "delta = 1" here — see header note]
            if (is_real(r - 1)) xorops::xor_into(bl, s.element(x, r - 1), e);
        } else if (tr == half && x != p - 1) {
            // (x, r) is the first member of CE (r+1): the slot accumulated
            // the common-expression value; resolve with the partner.
            if (r + 1 < p && is_real(r + 1)) {
                xorops::xor_into(br, s.element(x, r + 1), e);
            }
        }

        const std::uint32_t tl = static_cast<std::uint32_t>(
            (x + static_cast<std::uint64_t>(half) * l) % p);
        if (tl == p - 1 && x != p - 1) {
            // (x, l) is the extra member of CE l: bl currently holds the
            // unknown common expression E_l. Use it twice: fold into the
            // anti-diagonal syndrome containing E_l, then resolve bl with
            // the surviving partner b[x][l-1].
            const std::uint32_t fold = (x + 1 + delta) % p;
            xorops::xor_into(s.element(fold, r), bl, e);
            if (is_real(l - 1)) xorops::xor_into(bl, s.element(x, l - 1), e);
        }

        if (t + 1 < p) {
            // Advance the chain: the anti-diagonal through (x, l) has its
            // column-r member at row <x + delta>.
            xorops::xor_into(s.element((x + delta) % p, r), bl, e);
        }

        if (tl == half && x != p - 1 && delta != 1) {
            // (x, l) is the first member of CE (l+1): bl holds E_{l+1}
            // (already folded forward above); resolve with the partner.
            if (l + 1 < p && is_real(l + 1)) {
                xorops::xor_into(bl, s.element(x, l + 1), e);
            }
        }

        x = (x + delta) % p;
    }
}

void decode_data_via_rows(const codes::stripe_view& s, const geometry& g,
                          std::uint32_t l) {
    const std::uint32_t k = g.k();
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(l < k);
    const std::byte* srcs[max_p + 1];
    for (std::uint32_t i = 0; i < g.p(); ++i) {
        std::size_t m = 0;
        srcs[m++] = s.element(i, k);  // P_i
        for (std::uint32_t j = 0; j < k; ++j) {
            if (j != l) srcs[m++] = s.element(i, j);
        }
        xorops::xor_many(s.element(i, l), srcs, m, e);
    }
}

void decode_data_via_diagonals(const codes::stripe_view& s, const geometry& g,
                               std::uint32_t l) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::uint32_t qc = k + 1;
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(l < k);

    // Each anti-diagonal q holds exactly one column-l normal member at row
    // <q + l>. The one exception is the anti-diagonal whose *extra* bit
    // also lives in column l (q = extra_q_index(l), only for l >= 1): it
    // carries two unknowns, so resolve it last, after its extra bit has
    // been recovered through its own normal anti-diagonal.
    const bool has_extra = l >= 1;
    const std::uint32_t special_q = has_extra ? g.extra_q_index(l) : 0;

    const auto recover = [&](std::uint32_t q) {
        const std::uint32_t row = g.diag_member_row(q, l);
        const std::byte* srcs[max_p + 2];
        std::size_t m = 0;
        srcs[m++] = s.element(q, qc);  // Q_q
        for (std::uint32_t j = 0; j < k; ++j) {
            if (j == l) continue;
            srcs[m++] = s.element(g.diag_member_row(q, j), j);
        }
        if (q != 0) {
            // Extra bit of Q_q, if it lies in a real surviving column.
            const std::uint32_t y = g.mod(-2 * static_cast<std::int64_t>(q));
            if (y != 0 && y < k && y != l) {
                srcs[m++] = s.element(g.extra_row(y), y);
            }
        }
        xorops::xor_many(s.element(row, l), srcs, m, e);
    };

    for (std::uint32_t q = 0; q < p; ++q) {
        if (has_extra && q == special_q) continue;
        recover(q);
    }
    if (has_extra) {
        // Now the extra bit b[extra_row(l)][l] is known; fold it in.
        const std::uint32_t q = special_q;
        const std::uint32_t row = g.diag_member_row(q, l);
        const std::byte* srcs[max_p + 2];
        std::size_t m = 0;
        srcs[m++] = s.element(q, qc);
        for (std::uint32_t j = 0; j < k; ++j) {
            if (j == l) continue;
            srcs[m++] = s.element(g.diag_member_row(q, j), j);
        }
        // q = extra_q_index(l) != 0 always (it equals <-l(p+1)/2>, nonzero
        // for l >= 1), and its extra bit lives in column l by construction.
        srcs[m++] = s.element(g.extra_row(l), l);
        xorops::xor_many(s.element(row, l), srcs, m, e);
    }
}

void decode_any(const codes::stripe_view& s, const geometry& g,
                std::span<const std::uint32_t> erased) {
    LIBERATION_EXPECTS(!erased.empty() && erased.size() <= 2);
    const std::uint32_t k = g.k();
    const std::uint32_t pc = k;
    const std::uint32_t qc = k + 1;

    std::uint32_t a = erased[0];
    std::uint32_t b = erased.size() == 2 ? erased[1] : a;
    if (a > b) std::swap(a, b);
    LIBERATION_EXPECTS(b < k + 2);
    LIBERATION_EXPECTS(erased.size() == 1 || a != b);

    if (erased.size() == 1) {
        if (a == pc) {
            encode_p_only(s, g);
        } else if (a == qc) {
            encode_q_only(s, g);
        } else {
            decode_data_via_rows(s, g, a);
        }
        return;
    }
    if (a == pc && b == qc) {
        encode_optimal(s, g);
    } else if (b == qc) {  // data + Q
        decode_data_via_rows(s, g, a);
        encode_q_only(s, g);
    } else if (b == pc) {  // data + P
        decode_data_via_diagonals(s, g, a);
        encode_p_only(s, g);
    } else {  // two data columns — Algorithm 4
        decode_two_data(s, g, a, b);
    }
}

}  // namespace liberation::core
