#include "liberation/core/liberation_optimal_code.hpp"

#include "liberation/core/optimal_decoder.hpp"
#include "liberation/core/optimal_encoder.hpp"
#include "liberation/core/update.hpp"
#include "liberation/util/primes.hpp"

namespace liberation::core {

liberation_optimal_code::liberation_optimal_code(std::uint32_t k,
                                                 std::uint32_t p)
    : geom_(p, k) {}

liberation_optimal_code::liberation_optimal_code(std::uint32_t k)
    : liberation_optimal_code(k, util::next_odd_prime(k)) {}

std::string liberation_optimal_code::name() const {
    return "liberation_optimal(k=" + std::to_string(k()) +
           ",p=" + std::to_string(p()) + ")";
}

namespace {

/// Run `body` over L1-sized packet windows of the stripe (single pass when
/// the element already fits). Control flow inside the algorithms is
/// data-independent, so per-packet re-execution only repeats index math.
template <typename Body>
void for_each_packet(const codes::stripe_view& stripe, const geometry& g,
                     Body&& body) {
    const std::size_t elem = stripe.element_size();
    const std::size_t live =
        static_cast<std::size_t>(g.k() + 2) * g.p();
    const std::size_t packet = codes::preferred_packet_size(live, elem);
    if (packet == elem) {
        body(stripe);
        return;
    }
    for (std::size_t off = 0; off < elem; off += packet) {
        body(stripe.packet_view(off, packet));
    }
}

}  // namespace

void liberation_optimal_code::encode(const codes::stripe_view& stripe) const {
    check_stripe(stripe);
    for_each_packet(stripe, geom_, [this](const codes::stripe_view& v) {
        encode_optimal(v, geom_);
    });
}

void liberation_optimal_code::encode_crc(const codes::stripe_view& stripe,
                                         std::size_t crc_block,
                                         std::uint32_t* p_crcs,
                                         std::uint32_t* q_crcs) const {
    check_stripe(stripe);
    if (crc_block == 0 || stripe.element_size() % crc_block != 0) {
        // Checksum blocks that straddle element boundaries can't be fused
        // into the per-element traversal; fall back to the two-pass base.
        raid6_code::encode_crc(stripe, crc_block, p_crcs, q_crcs);
        return;
    }
    encode_optimal_crc(stripe, geom_, crc_block, p_crcs, q_crcs);
}

void liberation_optimal_code::decode(
    const codes::stripe_view& stripe,
    std::span<const std::uint32_t> erased) const {
    check_stripe(stripe);
    for_each_packet(stripe, geom_,
                    [this, erased](const codes::stripe_view& v) {
                        decode_any(v, geom_, erased);
                    });
}

std::uint32_t liberation_optimal_code::apply_update(
    const codes::stripe_view& stripe, std::uint32_t row, std::uint32_t col,
    std::span<const std::byte> delta) const {
    check_stripe(stripe);
    return core::apply_update(stripe, geom_, row, col, delta);
}

scrub_report liberation_optimal_code::scrub(
    const codes::stripe_view& stripe) const {
    check_stripe(stripe);
    return scrub_stripe(stripe, geom_);
}

}  // namespace liberation::core
