#include "liberation/core/update.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

std::uint32_t apply_update(const codes::stripe_view& s, const geometry& g,
                           std::uint32_t row, std::uint32_t col,
                           std::span<const std::byte> delta) {
    const std::uint32_t k = g.k();
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(row < g.p() && col < k);
    LIBERATION_EXPECTS(delta.size() == e);

    xorops::xor_into(s.element(row, k), delta.data(), e);
    xorops::xor_into(s.element(g.diag_of(row, col), k + 1), delta.data(), e);
    std::uint32_t touched = 2;
    if (g.is_extra_position(row, col)) {
        xorops::xor_into(s.element(g.extra_q_index(col), k + 1), delta.data(),
                         e);
        ++touched;
    }
    return touched;
}

std::uint32_t update_cost(const geometry& g, std::uint32_t row,
                          std::uint32_t col) noexcept {
    LIBERATION_EXPECTS(row < g.p() && col < g.k());
    return g.is_extra_position(row, col) ? 3 : 2;
}

}  // namespace liberation::core
