#include "liberation/core/update.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

std::uint32_t apply_update(const codes::stripe_view& s, const geometry& g,
                           std::uint32_t row, std::uint32_t col,
                           std::span<const std::byte> delta) {
    const std::uint32_t k = g.k();
    const std::size_t e = s.element_size();
    LIBERATION_EXPECTS(row < g.p() && col < k);
    LIBERATION_EXPECTS(delta.size() == e);

    // One broadcast: the delta is read once and scattered into every parity
    // element it touches (P_row, the normal anti-diagonal, and — for extra
    // bit positions — the hosting anti-diagonal). Counted as 2 or 3 XORs,
    // exactly as the separate xor_into chain it replaces.
    std::byte* dsts[3];
    std::uint32_t touched = 0;
    dsts[touched++] = s.element(row, k);
    dsts[touched++] = s.element(g.diag_of(row, col), k + 1);
    if (g.is_extra_position(row, col)) {
        dsts[touched++] = s.element(g.extra_q_index(col), k + 1);
    }
    xorops::xor_broadcast(dsts, touched, delta.data(), e);
    return touched;
}

std::uint32_t update_cost(const geometry& g, std::uint32_t row,
                          std::uint32_t col) noexcept {
    LIBERATION_EXPECTS(row < g.p() && col < g.k());
    return g.is_extra_position(row, col) ? 3 : 2;
}

}  // namespace liberation::core
