#include "liberation/core/error_correction.hpp"

#include <vector>

#include "liberation/core/optimal_encoder.hpp"
#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::core {

namespace {

/// Syndrome columns: sp_i = P_i ^ recomputed-P_i, sq_i likewise for Q.
/// Computed by re-encoding into scratch parity strips that alias the data
/// columns of the original stripe.
struct syndromes_buf {
    util::aligned_buffer sp;
    util::aligned_buffer sq;
    bool sp_zero = true;
    bool sq_zero = true;
};

syndromes_buf compute_scrub_syndromes(const codes::stripe_view& s,
                                      const geometry& g) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::size_t e = s.element_size();

    syndromes_buf out{util::aligned_buffer(p * e), util::aligned_buffer(p * e),
                      true, true};

    // Shadow stripe: same data strips, scratch parity strips.
    std::vector<std::byte*> cols(k + 2);
    for (std::uint32_t j = 0; j < k; ++j) cols[j] = s.strip(j).data();
    cols[k] = out.sp.data();
    cols[k + 1] = out.sq.data();
    const codes::stripe_view shadow{{cols.data(), cols.size()}, p, e};
    encode_optimal(shadow, g);

    for (std::uint32_t i = 0; i < p; ++i) {
        xorops::xor_into(out.sp.data() + i * e, s.element(i, k), e);
        xorops::xor_into(out.sq.data() + i * e, s.element(i, k + 1), e);
    }
    out.sp_zero = xorops::is_zero(out.sp.data(), p * e);
    out.sq_zero = xorops::is_zero(out.sq.data(), p * e);
    return out;
}

}  // namespace

bool stripe_consistent(const codes::stripe_view& s, const geometry& g) {
    const auto syn = compute_scrub_syndromes(s, g);
    return syn.sp_zero && syn.sq_zero;
}

scrub_report scrub_stripe(const codes::stripe_view& s, const geometry& g) {
    const std::uint32_t p = g.p();
    const std::uint32_t k = g.k();
    const std::size_t e = s.element_size();

    auto syn = compute_scrub_syndromes(s, g);
    const auto sp = [&](std::uint32_t i) noexcept {
        return syn.sp.data() + static_cast<std::size_t>(i) * e;
    };
    const auto sq = [&](std::uint32_t i) noexcept {
        return syn.sq.data() + static_cast<std::size_t>(i) * e;
    };

    if (syn.sp_zero && syn.sq_zero) return {scrub_status::clean, 0};

    if (syn.sp_zero) {
        // A corrupt data column always disturbs the row syndromes, so the
        // only single-column explanation is a corrupt Q.
        for (std::uint32_t i = 0; i < p; ++i) {
            xorops::xor_into(s.element(i, k + 1), sq(i), e);
        }
        return {scrub_status::corrected_q, 0};
    }
    if (syn.sq_zero) {
        for (std::uint32_t i = 0; i < p; ++i) {
            xorops::xor_into(s.element(i, k), sp(i), e);
        }
        return {scrub_status::corrected_p, 0};
    }

    // Both families fire: hypothesize an error vector sp placed in data
    // column c and check that it reproduces sq under the Q geometry:
    //   predicted sq_d = sp[<d + c>]  (+ sp[extra_row(c)] when d hosts
    //   column c's extra bit).
    for (std::uint32_t c = 0; c < k; ++c) {
        const bool has_extra = c >= 1;
        const std::uint32_t mq = has_extra ? g.extra_q_index(c) : 0;
        const std::uint32_t er = has_extra ? g.extra_row(c) : 0;
        bool match = true;
        for (std::uint32_t d = 0; d < p && match; ++d) {
            const std::byte* expect = sp(g.diag_member_row(d, c));
            if (has_extra && d == mq) {
                // Two-term prediction: compare without materializing.
                util::aligned_buffer tmp(e);
                xorops::xor2(tmp.data(), expect, sp(er), e);
                match = xorops::equal(tmp.data(), sq(d), e);
            } else {
                match = xorops::equal(expect, sq(d), e);
            }
        }
        if (match) {
            for (std::uint32_t i = 0; i < p; ++i) {
                xorops::xor_into(s.element(i, c), sp(i), e);
            }
            return {scrub_status::corrected_data, c};
        }
    }
    return {scrub_status::uncorrectable, 0};
}

}  // namespace liberation::core
