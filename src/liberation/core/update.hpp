// Incremental parity update — the Liberation codes' headline property
// (paper Section I: changing a data block updates only 2 parity blocks,
// the theoretical lower bound for RAID-6 [13]).
//
// For a data element delta at (i, j):
//   * P_i always absorbs delta;
//   * the normal anti-diagonal Q_<i-j> always absorbs delta;
//   * iff (i, j) is an extra-bit position, the hosting anti-diagonal
//     Q_{extra_q_index(j)} absorbs it too.
// Exactly k-1 of the k*p data positions are extra bits, so the average
// update cost is 2 + (k-1)/(kp) ~= 2.
#pragma once

#include <cstdint>
#include <span>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/geometry.hpp"

namespace liberation::core {

/// Patch the parity columns for a data-element change. `delta` is
/// old ^ new of element (row, col); the data element itself is untouched.
/// Returns the number of parity elements modified (2 or 3).
std::uint32_t apply_update(const codes::stripe_view& s, const geometry& g,
                           std::uint32_t row, std::uint32_t col,
                           std::span<const std::byte> delta);

/// Exact parity-update cost of position (row, col) without touching data.
[[nodiscard]] std::uint32_t update_cost(const geometry& g, std::uint32_t row,
                                        std::uint32_t col) noexcept;

}  // namespace liberation::core
