// Batch encode/decode across a thread pool.
//
// Stripe coding is embarrassingly parallel across stripes (no shared
// mutable state: the code objects are immutable after construction), so
// full-device operations — initial encode, bulk recovery, background
// verify — scale with cores by fanning stripes out to the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "liberation/codes/raid6_code.hpp"
#include "liberation/util/thread_pool.hpp"

namespace liberation::core {

class parallel_codec {
public:
    /// Both references must outlive the codec. The code's encode/decode
    /// must be safe to call concurrently (true for every code in this
    /// library: they are stateless or internally synchronized).
    parallel_codec(const codes::raid6_code& code, util::thread_pool& pool)
        : code_(code), pool_(pool) {}

    /// Encode every stripe in the batch.
    void encode_all(std::span<const codes::stripe_view> stripes) const;

    /// Decode the same erasure pattern on every stripe (bulk recovery of
    /// failed disks: the pattern is fixed per placement group).
    void decode_all(std::span<const codes::stripe_view> stripes,
                    std::span<const std::uint32_t> erased) const;

    /// Verify every stripe; returns the indices of inconsistent stripes.
    [[nodiscard]] std::vector<std::size_t> verify_all(
        std::span<const codes::stripe_view> stripes) const;

private:
    const codes::raid6_code& code_;
    util::thread_pool& pool_;
};

}  // namespace liberation::core
