// Core types of the async submission-queue I/O layer (io_uring-style).
//
// The aio subsystem sits between the array controller and the vdisk layer:
// callers describe disk I/O as submission-queue entries (`io_desc`), a
// `queue_pair` batches them per disk inside a configurable in-flight
// window, merges adjacent requests into one larger transfer, executes them
// through an `io_backend` (which owns retry/backoff and health accounting
// — the *execution-stage* policy), and reports per-request completions
// (`io_cqe`) after running *completion-stage* decorators such as checksum
// verification. Layering rule: aio may depend on the vdisk layer
// (io_status) and util, never on the array controller — the array plugs in
// via the io_backend interface.
#pragma once

#include <cstddef>
#include <cstdint>

#include "liberation/raid/vdisk.hpp"

namespace liberation::util {
class thread_pool;
}  // namespace liberation::util

namespace liberation::obs {
class hub;
}  // namespace liberation::obs

namespace liberation::aio {

enum class op_kind : std::uint8_t { read, write };

/// Request flags (io_desc::flags).
/// Run the checksum-verify completion stage on this read: bytes that
/// arrive intact but fail their stored CRC complete with
/// io_status::checksum_mismatch. Verification happens *after* the
/// execution stage, so transient errors are retried but a checksum
/// mismatch never is — re-reading rotten bytes cannot un-rot them.
inline constexpr std::uint32_t flag_verify = 1u << 0;

/// Submission-queue entry: one contiguous read or write on one disk.
/// `data` must stay valid until the request completes (registered-buffer
/// discipline: the stripe engines own long-lived slot buffers and reuse
/// them window after window).
struct io_desc {
    std::uint32_t disk = 0;
    op_kind kind = op_kind::read;
    std::size_t offset = 0;
    std::byte* data = nullptr;
    std::size_t len = 0;
    /// Opaque caller cookie, returned verbatim in the completion entry.
    std::uint64_t user_data = 0;
    std::uint32_t flags = 0;
    /// Writes only: per-block CRC32C values of `data` (one per integrity
    /// block), precomputed inside the traversal that produced the bytes —
    /// the integrity layer installs them instead of re-reading the buffer.
    /// Must stay valid until the request completes, like `data`. Null =
    /// the integrity layer checksums the buffer itself on completion.
    const std::uint32_t* crcs = nullptr;
};

/// Completion-queue entry: final status of one *submitted* request.
/// Merged requests complete at original-request granularity — a failed
/// merged transfer is split and re-driven per fragment, so one bad strip
/// fails only its own submission, not its neighbours in the batch.
struct io_cqe {
    std::uint64_t user_data = 0;
    raid::io_status status = raid::io_status::ok;
    std::uint32_t disk = 0;
};

/// Tuning knobs of a queue_pair.
struct aio_config {
    /// Per-disk in-flight window: submissions beyond this many pending
    /// requests on one disk force a flush. 1 degenerates to synchronous
    /// one-request-at-a-time execution.
    std::size_t queue_depth = 8;
    /// Coalesce adjacent read requests on one disk (contiguous both on
    /// the medium and in memory) into a single transfer. Writes are never
    /// coalesced: failure simulation (the power-loss write budget) counts
    /// individual disk writes, and merging would change its granularity.
    bool merge_adjacent = true;
    /// Optional worker pool: batches of different disks execute
    /// concurrently (per-disk order is always preserved). Null = inline
    /// execution on the submitting thread in exact submission order.
    /// NOTE: concurrent execution makes *cross-disk* write order
    /// nondeterministic, so seeded power-loss simulation and chaos replay
    /// require workers == nullptr.
    util::thread_pool* workers = nullptr;
    /// Optional observability hub (must outlive the queue_pair). When
    /// set, every request is timestamped on the hub's clock and the
    /// submit→execute→complete pipeline feeds three stage histograms
    /// (aio_queue_wait_ns, aio_execute_ns, aio_complete_ns) plus trace
    /// spans when tracing is enabled. Null = no instrumentation.
    obs::hub* obs = nullptr;
};

/// Counter snapshot of a queue_pair (monotonic over its lifetime).
struct aio_stats {
    std::uint64_t submitted = 0;   ///< requests accepted into the ring
    std::uint64_t completed = 0;   ///< completions delivered
    std::uint64_t batches = 0;     ///< transfers issued to the backend
    std::uint64_t merges = 0;      ///< requests absorbed into a neighbour
    std::uint64_t split_retries = 0;  ///< merged transfers re-driven per fragment
    std::uint64_t inflight_highwater = 0;  ///< max pending on any one disk
};

/// Execution backend: where a submission actually lands. The array's
/// adapter routes reads/writes through its retrying io_policy and health
/// monitor, so every retry/backoff/trip decision stays where it always
/// was — the queue_pair only decides batching, order, and completion
/// semantics.
class io_backend {
public:
    virtual ~io_backend() = default;
    virtual raid::io_status execute(const io_desc& d) = 0;
};

}  // namespace liberation::aio
