// io_uring-style queue pair: submission ring in, completion ring out.
//
// Lifecycle of a request:
//   submit(io_desc)            — enqueue; may trigger a flush when the
//                                 owning disk's in-flight window fills
//   [flush]                    — pending requests are grouped per disk,
//                                 adjacent ones merged into larger
//                                 transfers, and executed through the
//                                 io_backend (inline in submission order,
//                                 or per-disk batches on a worker pool)
//   [completion stages]        — decorators run over each *original*
//                                 request's result on the draining thread
//                                 (e.g. checksum verification)
//   drain() / completions()    — io_cqe entries appear in submission
//                                 order, one per submitted request
//
// Failure isolation: when a merged transfer fails, it is split back into
// its fragments and each fragment re-driven individually (counted in
// aio_stats::split_retries), so an error localizes to the strip that
// actually failed instead of poisoning the whole merged extent.
//
// The inline execution path is allocation-free in steady state: fragments
// flow through member scratch vectors that are reused flush after flush
// (the simulated disks complete in nanoseconds, so per-request heap
// traffic would dominate the real I/O work being batched).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "liberation/aio/aio.hpp"
#include "liberation/aio/ring.hpp"
#include "liberation/obs/obs.hpp"

namespace liberation::aio {

/// A completion-stage decorator. Runs on the draining thread after the
/// execution stage, in registration order, each stage seeing the status
/// left by the previous one. Returning a different status rewrites the
/// request's completion (this is how verified reads layer CRC checking
/// over the retrying backend without the backend knowing).
using completion_stage =
    std::function<raid::io_status(const io_desc&, raid::io_status)>;

class queue_pair {
public:
    queue_pair(io_backend& backend, std::uint32_t disks, const aio_config& cfg);
    ~queue_pair();

    queue_pair(const queue_pair&) = delete;
    queue_pair& operator=(const queue_pair&) = delete;

    /// Register a completion-stage decorator (see completion_stage).
    void add_completion_stage(completion_stage stage);

    /// Enqueue one request. Flushes the owning disk's window when it
    /// reaches the configured queue depth. Out-of-range disks complete
    /// immediately with io_status::out_of_range.
    void submit(const io_desc& d);

    /// Execute everything still pending, wait for worker batches, run
    /// completion stages, and sequence results. After drain() returns,
    /// completions() holds one io_cqe per submitted request not yet
    /// taken, in submission order.
    void drain();

    /// Completion entries accumulated since the last take/clear (valid
    /// after drain()).
    [[nodiscard]] const std::vector<io_cqe>& completions() const noexcept {
        return completions_;
    }

    /// Discard accumulated completions without copying them out (the
    /// allocation-free companion of take_completions(): the vector's
    /// storage is reused by the next drain).
    void clear_completions() noexcept { completions_.clear(); }

    /// Hand over and clear the accumulated completions.
    std::vector<io_cqe> take_completions();

    /// Relaxed snapshot of the engine counters. By value: the live
    /// counters are atomic (worker batches update them concurrently), so
    /// callers — including concurrent exporters — get a coherent copy
    /// instead of a reference into racing storage.
    [[nodiscard]] aio_stats stats() const noexcept;
    [[nodiscard]] const aio_config& config() const noexcept { return cfg_; }

private:
    // One original request captured inside a batch.
    struct fragment {
        io_desc desc;
        std::uint64_t seq = 0;  // global submission order
        // Causal context captured at submit() on the submitting thread,
        // reinstalled around the backend call — which may run on a worker
        // thread — so retries and nested events stay in the host op's
        // tree across the hop.
        obs::trace_context tctx{};
        raid::io_status status = raid::io_status::ok;
        // Stage timestamps on the hub's clock (0 without a hub). done_ts
        // is captured right after the backend call — not at drain — so
        // completion latency reflects real time-in-pipeline: at depth 8
        // the last request of a window waits behind seven transfers, at
        // depth 1 it never waits.
        std::uint64_t submit_ts = 0;
        std::uint64_t done_ts = 0;
    };
    // One transfer handed to the backend: a [first, first+count) range of
    // merged fragments inside the flush's flat fragment array.
    struct batch {
        io_desc merged;  // the (possibly coalesced) transfer
        std::size_t first = 0;
        std::size_t count = 0;
    };

    void flush_disk(std::uint32_t disk);
    /// Pop the disk's window into `frags` (appending) and append the
    /// coalesced transfer ranges to `batches`.
    void build_batches(std::uint32_t disk, std::vector<fragment>& frags,
                       std::vector<batch>& batches);
    /// Returns true when the merged transfer failed and was split back
    /// into per-fragment re-drives.
    bool execute_one(const batch& b, fragment* frags);
    void run_batches_on_workers(std::uint32_t disk);
    void wait_for_workers();

    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    io_backend& backend_;
    aio_config cfg_;
    /// Live counters (see aio_stats for semantics). Atomic: worker-pool
    /// batches increment them concurrently with the submitting thread,
    /// and exporters may snapshot at any time.
    struct atomic_aio_stats {
        std::atomic<std::uint64_t> submitted{0};
        std::atomic<std::uint64_t> completed{0};
        std::atomic<std::uint64_t> batches{0};
        std::atomic<std::uint64_t> merges{0};
        std::atomic<std::uint64_t> split_retries{0};
        std::atomic<std::uint64_t> inflight_highwater{0};
    };
    atomic_aio_stats stats_;
    std::vector<completion_stage> stages_;

    // Stage histograms resolved once from cfg_.obs (null without a hub).
    obs::latency_histogram* hist_queue_wait_ = nullptr;
    obs::latency_histogram* hist_execute_ = nullptr;
    obs::latency_histogram* hist_complete_ = nullptr;

    // Per-disk pending submissions (the in-flight windows).
    std::vector<ring<fragment>> pending_;
    std::uint64_t next_seq_ = 0;

    // Reused inline-flush scratch (invalid between flushes).
    std::vector<fragment> flush_frags_;
    std::vector<batch> flush_batches_;

    // Executed fragments whose completions are not yet sequenced.
    // Workers append under done_mutex_; the drain thread sequences.
    std::vector<fragment> done_;
    std::vector<io_cqe> completions_;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::size_t workers_outstanding_ = 0;
};

}  // namespace liberation::aio
