#include "liberation/aio/stripe_io.hpp"

#include <algorithm>
#include <cstring>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::aio {

// ---- stripe_loader ----------------------------------------------------

stripe_loader::stripe_loader(queue_pair& qp, const raid::stripe_map& map)
    : qp_(qp),
      map_(map),
      window_(std::max<std::size_t>(1, qp.config().queue_depth)) {
    const std::uint32_t n = map_.n();
    disk_bufs_.reserve(n);
    for (std::uint32_t d = 0; d < n; ++d)
        disk_bufs_.emplace_back(window_ * map_.strip_size());
    statuses_.resize(window_);
    skipped_.assign(window_, 0);
    ptrs_.resize(n);
}

void stripe_loader::run(std::size_t first, std::size_t last,
                        const stripe_filter& skip_stripe,
                        const column_filter& skip_column,
                        const std::function<void(std::size_t)>& on_skipped,
                        const process_fn& process) {
    const std::uint32_t n = map_.n();
    const std::size_t strip = map_.strip_size();
    for (std::size_t w0 = first; w0 < last; w0 += window_) {
        const std::size_t w1 = std::min(w0 + window_, last);

        // Submission pass: stripe-major order still lands disk-major on
        // the per-disk rings, where consecutive stripes are adjacent both
        // in offset and in the disk buffer — one merged transfer per disk.
        for (std::size_t s = w0; s < w1; ++s) {
            const std::size_t slot = s - w0;
            if (skip_stripe && skip_stripe(s)) {
                skipped_[slot] = 1;
                continue;
            }
            skipped_[slot] = 0;
            statuses_[slot].assign(n, raid::io_status::ok);
            for (std::uint32_t col = 0; col < n; ++col) {
                const raid::strip_location loc = map_.locate(s, col);
                if (skip_column && skip_column(s, col)) {
                    // Not read on purpose (e.g. a rebuild target):
                    // reported as the erasure the array would have
                    // reported for its masked strip.
                    statuses_[slot][col] = raid::io_status::rebuilding;
                    continue;
                }
                io_desc d;
                d.disk = loc.disk;
                d.kind = op_kind::read;
                d.offset = loc.offset;
                d.data = disk_bufs_[loc.disk].data() + slot * strip;
                d.len = strip;
                d.user_data = slot * n + loc.disk;
                qp_.submit(d);
            }
        }
        qp_.drain();
        for (const io_cqe& c : qp_.completions()) {
            const std::size_t slot = c.user_data / n;
            const auto disk = static_cast<std::uint32_t>(c.user_data % n);
            const std::uint32_t col = map_.column_of_disk(w0 + slot, disk);
            statuses_[slot][col] = c.status;
        }
        qp_.clear_completions();

        // Consumption pass, in stripe order.
        for (std::size_t s = w0; s < w1; ++s) {
            const std::size_t slot = s - w0;
            if (skipped_[slot] != 0) {
                if (on_skipped) on_skipped(s);
                continue;
            }
            for (std::uint32_t col = 0; col < n; ++col) {
                const raid::strip_location loc = map_.locate(s, col);
                ptrs_[col] = disk_bufs_[loc.disk].data() + slot * strip;
            }
            const codes::stripe_view v({ptrs_.data(), ptrs_.size()},
                                       map_.rows(), map_.element_size());
            process(s, v, statuses_[slot]);
        }
    }
}

// ---- stripe_writer ----------------------------------------------------

stripe_writer::stripe_writer(queue_pair& qp, const raid::stripe_map& map,
                             std::size_t crc_block)
    : qp_(qp),
      map_(map),
      window_(std::max<std::size_t>(1, qp.config().queue_depth)),
      zero_copy_(map.element_size() % util::aligned_buffer::alignment == 0),
      crc_block_(crc_block),
      strip_blocks_(crc_block == 0 ? 0 : map.strip_size() / crc_block),
      parity_stage_(window_ * 2 * map.strip_size()),
      data_stage_(zero_copy_ ? 0 : window_ * map.k() * map.strip_size()),
      ptrs_(window_ * map.n()),
      crcs_(window_ * map.n() * strip_blocks_) {
    LIBERATION_EXPECTS(crc_block == 0 ||
                       map.strip_size() % crc_block == 0);
}

std::span<std::byte* const> stripe_writer::stage(std::size_t slot,
                                                 const std::byte* host) {
    LIBERATION_EXPECTS(slot < window_);
    const std::size_t strip = map_.strip_size();
    const std::uint32_t k = map_.k();
    std::byte** cols = ptrs_.data() + slot * map_.n();
    for (std::uint32_t c = 0; c < k; ++c) {
        const std::byte* src = host + static_cast<std::size_t>(c) * strip;
        if (zero_copy_) {
            // The backend only reads write payloads; the host span stays
            // logically const.
            cols[c] = const_cast<std::byte*>(src);
            if (crc_block_ != 0) {
                // Zero-copy leaves no staging traversal to fuse into; the
                // checksum sweep here is the column's single extra pass
                // (the integrity layer then installs, never re-reads).
                xorops::crc32c_blocks(src, strip, crc_block_,
                                      column_crcs(slot, c));
            }
        } else {
            std::byte* dst =
                data_stage_.data() + (slot * k + c) * strip;
            if (crc_block_ != 0) {
                // Fused: the checksum rides the staging copy.
                xorops::copy_crc32c_blocks(dst, src, strip, crc_block_,
                                           column_crcs(slot, c));
            } else {
                std::memcpy(dst, src, strip);
            }
            cols[c] = dst;
        }
    }
    cols[k] = parity_stage_.data() + slot * 2 * strip;
    cols[k + 1] = cols[k] + strip;
    return {cols, map_.n()};
}

void stripe_writer::submit_columns(std::size_t stripe, std::size_t slot,
                                   std::span<std::byte* const> cols,
                                   std::uint32_t begin_col,
                                   std::uint32_t end_col) {
    const std::size_t strip = map_.strip_size();
    for (std::uint32_t c = begin_col; c < end_col; ++c) {
        const raid::strip_location loc = map_.locate(stripe, c);
        io_desc d;
        d.disk = loc.disk;
        d.kind = op_kind::write;
        d.offset = loc.offset;
        d.data = cols[c];
        d.len = strip;
        d.user_data = stripe;
        d.crcs = column_crcs(slot, c);
        qp_.submit(d);
    }
}

void stripe_writer::drain() {
    qp_.drain();
    qp_.clear_completions();
}

}  // namespace liberation::aio
