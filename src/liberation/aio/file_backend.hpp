// File-backed execution backend: one file per disk behind the aio layer.
//
// `file_backend` implements the same `io_backend` interface the array's
// vdisk adapter does, but lands every transfer in a per-disk regular file
// via positioned I/O (pread/pwrite). It is the bottom of the persistence
// stack: the raid/persist/ layer owns the files' metadata header and
// superblock slots and hands this backend the byte offset where the data
// area begins; everything submitted through execute() is relative to that
// data area, so the aio queue_pair and the stripe engines stay oblivious
// to the on-disk framing.
//
// Direct I/O: when `file_backend_config::direct_io` is set, each file is
// additionally opened O_DIRECT (where the platform supports it) and a
// transfer is routed through the direct descriptor whenever its offset,
// length, and buffer address all meet the direct-I/O alignment (4096 —
// the conservative logical-block bound). Everything else takes the
// buffered descriptor: partial-element updates, the CRC-block-widened
// verify reads, and callers whose buffers are only cache-line aligned.
// A direct transfer that the kernel still refuses (EINVAL on exotic
// filesystems) is retried buffered, so direct I/O is strictly an
// optimization, never a correctness dependency.
//
// Durability model: pwrite() completing means the bytes survive a *process
// kill* (they are in the page cache, owned by the kernel). Surviving a
// machine crash additionally needs fdatasync ordering, which the
// persistence layer drives through flush()/`sync_data` according to its
// fsync protocol (docs/PERSISTENCE.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "liberation/aio/aio.hpp"

namespace liberation::aio {

struct file_backend_config {
    /// Byte offset of the data area within each file. execute() and
    /// read_data()/write_data() address data-area bytes; the raw calls
    /// below address absolute file offsets (metadata lives below this).
    std::size_t data_offset = 0;
    /// Attempt O_DIRECT; per-transfer alignment gating with buffered
    /// fallback (see the header comment).
    bool direct_io = false;
    /// fdatasync after every *data* write executed through the backend.
    /// Off by default: the persistence layer's metadata protocol decides
    /// when ordering matters; per-write syncing is the paranoid mode.
    bool sync_data = false;
};

/// Counters for the dispatch decisions (observability and tests).
struct file_backend_stats {
    std::uint64_t direct_transfers = 0;    ///< landed through O_DIRECT
    std::uint64_t buffered_transfers = 0;  ///< landed buffered
    std::uint64_t direct_fallbacks = 0;    ///< direct attempt retried buffered
};

class file_backend final : public io_backend {
public:
    /// Transfers aligned to this go direct when direct_io is on.
    static constexpr std::size_t direct_alignment = 4096;

    /// Open (creating and extending as needed) one file per path. Each
    /// file is sized to `data_offset + capacity` so reads of never-written
    /// extents return zeros, exactly like a fresh disk. A path that cannot
    /// be opened leaves its slot permanently failed (ok(i) == false) —
    /// callers degrade around it the same way they degrade around a dead
    /// disk.
    file_backend(std::vector<std::string> paths, std::size_t capacity,
                 const file_backend_config& cfg = {});
    ~file_backend() override;

    file_backend(const file_backend&) = delete;
    file_backend& operator=(const file_backend&) = delete;

    /// aio execution: data-area read/write on file `d.disk`.
    raid::io_status execute(const io_desc& d) override;

    [[nodiscard]] std::size_t file_count() const noexcept {
        return files_.size();
    }
    /// True when the slot's file opened (and sized) successfully.
    [[nodiscard]] bool ok(std::uint32_t file) const noexcept;
    /// True when the slot has a usable O_DIRECT descriptor.
    [[nodiscard]] bool direct_active(std::uint32_t file) const noexcept;
    [[nodiscard]] std::size_t data_offset() const noexcept {
        return cfg_.data_offset;
    }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] file_backend_stats stats() const noexcept;

    // ---- data-area convenience (offsets relative to data_offset) ------
    [[nodiscard]] bool read_data(std::uint32_t file, std::size_t offset,
                                 std::span<std::byte> out);
    [[nodiscard]] bool write_data(std::uint32_t file, std::size_t offset,
                                  std::span<const std::byte> in);

    // ---- raw access (absolute file offsets; always buffered) -----------
    // The persistence layer reads/writes superblock slots through these.
    [[nodiscard]] bool pread_raw(std::uint32_t file, std::size_t offset,
                                 std::span<std::byte> out);
    [[nodiscard]] bool pwrite_raw(std::uint32_t file, std::size_t offset,
                                  std::span<const std::byte> in);

    /// fdatasync one file / all open files. Needed only for machine-crash
    /// durability; process-kill survival comes free with pwrite.
    [[nodiscard]] bool flush(std::uint32_t file);
    [[nodiscard]] bool flush_all();

private:
    struct slot {
        int fd = -1;         ///< buffered descriptor, -1 = open failed
        int direct_fd = -1;  ///< O_DIRECT descriptor, -1 = unavailable
    };

    [[nodiscard]] bool aligned_for_direct(std::size_t offset, const void* buf,
                                          std::size_t len) const noexcept;

    file_backend_config cfg_;
    std::size_t capacity_;
    std::vector<slot> files_;
    std::atomic<std::uint64_t> direct_transfers_{0};
    std::atomic<std::uint64_t> buffered_transfers_{0};
    std::atomic<std::uint64_t> direct_fallbacks_{0};
};

}  // namespace liberation::aio
