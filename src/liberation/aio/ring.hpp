// Fixed-capacity circular rings backing a queue_pair.
//
// Deliberately single-threaded: the queue_pair serializes all ring access
// on the submitting/draining thread even in worker mode (workers report
// through per-batch status slots, never through the rings), so these need
// no atomics and stay trivially inspectable in tests.
#pragma once

#include <cstddef>
#include <vector>

namespace liberation::aio {

/// Power-of-two-free circular buffer with explicit capacity. push() on a
/// full ring and pop() on an empty ring are programmer errors; callers
/// (the queue_pair) size rings from the configured queue depth so neither
/// can occur in correct use — both are guarded in debug via the full()/
/// empty() predicates the call sites check.
template <typename T>
class ring {
public:
    explicit ring(std::size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity) {}

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] bool full() const noexcept { return count_ == slots_.size(); }

    /// Append one entry; returns false (entry dropped) if full.
    bool push(const T& value) {
        if (full()) return false;
        slots_[tail_] = value;
        tail_ = next(tail_);
        ++count_;
        return true;
    }

    /// Remove and return the oldest entry; ring must not be empty.
    T pop() {
        T value = slots_[head_];
        head_ = next(head_);
        --count_;
        return value;
    }

    /// Oldest entry without removing it; ring must not be empty.
    [[nodiscard]] const T& front() const { return slots_[head_]; }

    void clear() noexcept {
        head_ = tail_ = 0;
        count_ = 0;
    }

private:
    [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
        return i + 1 == slots_.size() ? 0 : i + 1;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t count_ = 0;
};

}  // namespace liberation::aio
