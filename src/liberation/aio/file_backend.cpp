#include "liberation/aio/file_backend.hpp"

#include <cerrno>
#include <cstdint>

#include "liberation/util/assert.hpp"

#if defined(_WIN32)
#error "file_backend requires a POSIX platform"
#endif

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace liberation::aio {

namespace {

/// Full-length positioned read/write: POSIX allows short transfers, the
/// callers do not.
bool pread_all(int fd, std::byte* buf, std::size_t len, std::size_t offset) {
    while (len > 0) {
        const ssize_t n = ::pread(fd, buf, len, static_cast<off_t>(offset));
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) return false;  // unexpected EOF: file shorter than sized
        buf += n;
        len -= static_cast<std::size_t>(n);
        offset += static_cast<std::size_t>(n);
    }
    return true;
}

bool pwrite_all(int fd, const std::byte* buf, std::size_t len,
                std::size_t offset) {
    while (len > 0) {
        const ssize_t n = ::pwrite(fd, buf, len, static_cast<off_t>(offset));
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        buf += n;
        len -= static_cast<std::size_t>(n);
        offset += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

file_backend::file_backend(std::vector<std::string> paths,
                           std::size_t capacity,
                           const file_backend_config& cfg)
    : cfg_(cfg), capacity_(capacity) {
    files_.reserve(paths.size());
    for (const std::string& path : paths) {
        slot s;
        s.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (s.fd >= 0) {
            // Size the file so the whole data area reads back (as zeros
            // where never written); an existing longer file is preserved.
            struct stat st{};
            const auto want =
                static_cast<off_t>(cfg_.data_offset + capacity_);
            if (::fstat(s.fd, &st) != 0 ||
                (st.st_size < want && ::ftruncate(s.fd, want) != 0)) {
                ::close(s.fd);
                s.fd = -1;
            }
        }
#if defined(O_DIRECT)
        if (s.fd >= 0 && cfg_.direct_io) {
            // A refusal (tmpfs, some network filesystems) simply leaves
            // the slot buffered-only.
            s.direct_fd =
                ::open(path.c_str(), O_RDWR | O_DIRECT | O_CLOEXEC);
        }
#endif
        files_.push_back(s);
    }
}

file_backend::~file_backend() {
    for (slot& s : files_) {
        if (s.fd >= 0) ::close(s.fd);
        if (s.direct_fd >= 0) ::close(s.direct_fd);
    }
}

bool file_backend::ok(std::uint32_t file) const noexcept {
    return file < files_.size() && files_[file].fd >= 0;
}

bool file_backend::direct_active(std::uint32_t file) const noexcept {
    return file < files_.size() && files_[file].direct_fd >= 0;
}

file_backend_stats file_backend::stats() const noexcept {
    return {direct_transfers_.load(std::memory_order_relaxed),
            buffered_transfers_.load(std::memory_order_relaxed),
            direct_fallbacks_.load(std::memory_order_relaxed)};
}

bool file_backend::aligned_for_direct(std::size_t offset, const void* buf,
                                      std::size_t len) const noexcept {
    return offset % direct_alignment == 0 && len % direct_alignment == 0 &&
           len > 0 &&
           reinterpret_cast<std::uintptr_t>(buf) % direct_alignment == 0;
}

raid::io_status file_backend::execute(const io_desc& d) {
    if (!ok(d.disk)) return raid::io_status::disk_failed;
    if (d.offset + d.len > capacity_ || d.offset + d.len < d.offset) {
        return raid::io_status::out_of_range;
    }
    const slot& s = files_[d.disk];
    const std::size_t abs = cfg_.data_offset + d.offset;
    const bool is_read = d.kind == op_kind::read;

    // Route through O_DIRECT when every alignment constraint holds; a
    // kernel refusal falls back to the buffered descriptor so direct I/O
    // can never fail a request alignment would have allowed buffered.
    if (s.direct_fd >= 0 && aligned_for_direct(abs, d.data, d.len)) {
        const bool direct_ok =
            is_read ? pread_all(s.direct_fd, d.data, d.len, abs)
                    : pwrite_all(s.direct_fd, d.data, d.len, abs);
        if (direct_ok) {
            direct_transfers_.fetch_add(1, std::memory_order_relaxed);
            if (!is_read && cfg_.sync_data && ::fdatasync(s.direct_fd) != 0) {
                return raid::io_status::disk_failed;
            }
            return raid::io_status::ok;
        }
        direct_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }

    const bool io_ok = is_read ? pread_all(s.fd, d.data, d.len, abs)
                               : pwrite_all(s.fd, d.data, d.len, abs);
    if (!io_ok) {
        // A read error is a media problem on that extent; a write error
        // means the file (the "disk") cannot accept I/O at all.
        return is_read ? raid::io_status::unreadable_sector
                       : raid::io_status::disk_failed;
    }
    buffered_transfers_.fetch_add(1, std::memory_order_relaxed);
    if (!is_read && cfg_.sync_data && ::fdatasync(s.fd) != 0) {
        return raid::io_status::disk_failed;
    }
    return raid::io_status::ok;
}

bool file_backend::read_data(std::uint32_t file, std::size_t offset,
                             std::span<std::byte> out) {
    io_desc d;
    d.disk = file;
    d.kind = op_kind::read;
    d.offset = offset;
    d.data = out.data();
    d.len = out.size();
    return execute(d) == raid::io_status::ok;
}

bool file_backend::write_data(std::uint32_t file, std::size_t offset,
                              std::span<const std::byte> in) {
    io_desc d;
    d.disk = file;
    d.kind = op_kind::write;
    d.offset = offset;
    d.data = const_cast<std::byte*>(in.data());
    d.len = in.size();
    return execute(d) == raid::io_status::ok;
}

bool file_backend::pread_raw(std::uint32_t file, std::size_t offset,
                             std::span<std::byte> out) {
    if (!ok(file)) return false;
    return pread_all(files_[file].fd, out.data(), out.size(), offset);
}

bool file_backend::pwrite_raw(std::uint32_t file, std::size_t offset,
                              std::span<const std::byte> in) {
    if (!ok(file)) return false;
    return pwrite_all(files_[file].fd, in.data(), in.size(), offset);
}

bool file_backend::flush(std::uint32_t file) {
    if (!ok(file)) return false;
    return ::fdatasync(files_[file].fd) == 0;
}

bool file_backend::flush_all() {
    bool all = true;
    for (std::uint32_t f = 0; f < files_.size(); ++f) {
        if (files_[f].fd >= 0 && ::fdatasync(files_[f].fd) != 0) all = false;
    }
    return all;
}

}  // namespace liberation::aio
