#include "liberation/aio/queue_pair.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "liberation/util/thread_pool.hpp"

namespace liberation::aio {

queue_pair::queue_pair(io_backend& backend, std::uint32_t disks,
                       const aio_config& cfg)
    : backend_(backend), cfg_(cfg) {
    if (cfg_.queue_depth == 0) cfg_.queue_depth = 1;
    pending_.reserve(disks);
    for (std::uint32_t d = 0; d < disks; ++d)
        pending_.emplace_back(cfg_.queue_depth);
    if (cfg_.obs != nullptr) {
        auto& m = cfg_.obs->metrics();
        hist_queue_wait_ = &m.get_histogram(
            "aio_queue_wait_ns", "submit-to-execute wait in the ring");
        hist_execute_ = &m.get_histogram(
            "aio_execute_ns", "backend transfer execution latency");
        hist_complete_ = &m.get_histogram(
            "aio_complete_ns", "submit-to-completion request latency");
    }
}

std::uint64_t queue_pair::now_ns() const noexcept {
    return cfg_.obs != nullptr ? cfg_.obs->now_ns() : 0;
}

aio_stats queue_pair::stats() const noexcept {
    aio_stats s;
    s.submitted = stats_.submitted.load(std::memory_order_relaxed);
    s.completed = stats_.completed.load(std::memory_order_relaxed);
    s.batches = stats_.batches.load(std::memory_order_relaxed);
    s.merges = stats_.merges.load(std::memory_order_relaxed);
    s.split_retries = stats_.split_retries.load(std::memory_order_relaxed);
    s.inflight_highwater =
        stats_.inflight_highwater.load(std::memory_order_relaxed);
    return s;
}

queue_pair::~queue_pair() { drain(); }

void queue_pair::add_completion_stage(completion_stage stage) {
    stages_.push_back(std::move(stage));
}

void queue_pair::submit(const io_desc& d) {
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    fragment f;
    f.desc = d;
    f.seq = next_seq_++;
    f.tctx = obs::current_trace();
    f.submit_ts = now_ns();
    if (d.disk >= pending_.size()) {
        // No window to queue in: complete immediately, sequenced at drain.
        f.status = raid::io_status::out_of_range;
        f.done_ts = f.submit_ts;
        std::lock_guard lock(done_mutex_);
        done_.push_back(f);
        return;
    }
    ring<fragment>& window = pending_[d.disk];
    window.push(f);
    std::uint64_t hw = stats_.inflight_highwater.load(std::memory_order_relaxed);
    while (window.size() > hw &&
           !stats_.inflight_highwater.compare_exchange_weak(
               hw, window.size(), std::memory_order_relaxed)) {
    }
    if (window.full()) flush_disk(d.disk);
}

void queue_pair::build_batches(std::uint32_t disk,
                               std::vector<fragment>& frags,
                               std::vector<batch>& batches) {
    ring<fragment>& window = pending_[disk];
    while (!window.empty()) {
        const std::size_t idx = frags.size();
        frags.push_back(window.pop());
        const fragment& f = frags.back();
        if (cfg_.merge_adjacent && !batches.empty()) {
            // Coalesce only when the new request continues the previous
            // transfer both on the medium and in memory — then one backend
            // call moves the whole extent and per-request accounting can
            // still be recovered by fragment offsets.
            batch& prev = batches.back();
            if (prev.first + prev.count == idx &&
                prev.merged.kind == op_kind::read &&
                f.desc.kind == op_kind::read &&
                prev.merged.offset + prev.merged.len == f.desc.offset &&
                prev.merged.data + prev.merged.len == f.desc.data) {
                prev.merged.len += f.desc.len;
                ++prev.count;
                stats_.merges.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
        }
        batch b;
        b.merged = f.desc;
        b.first = idx;
        b.count = 1;
        batches.push_back(b);
    }
}

void queue_pair::flush_disk(std::uint32_t disk) {
    if (pending_[disk].empty()) return;
    if (cfg_.workers != nullptr) {
        run_batches_on_workers(disk);
        return;
    }
    // Inline path: execute in submission order on the calling thread,
    // reusing the flush scratch vectors (steady-state allocation-free).
    flush_frags_.clear();
    flush_batches_.clear();
    build_batches(disk, flush_frags_, flush_batches_);
    for (const batch& b : flush_batches_) {
        stats_.batches.fetch_add(1, std::memory_order_relaxed);
        if (execute_one(b, flush_frags_.data())) {
            stats_.split_retries.fetch_add(1, std::memory_order_relaxed);
        }
    }
    // No workers → nothing contends on done_mutex_; append directly.
    done_.insert(done_.end(), flush_frags_.begin(), flush_frags_.end());
}

bool queue_pair::execute_one(const batch& b, fragment* frags) {
    fragment* const first = frags + b.first;
    const std::uint64_t start = now_ns();
    if (hist_queue_wait_ != nullptr) {
        for (std::size_t i = 0; i < b.count; ++i) {
            hist_queue_wait_->record(start >= first[i].submit_ts
                                         ? start - first[i].submit_ts
                                         : 0);
        }
    }
    // The execute span becomes the ambient parent around the backend call
    // (which may be running on a worker thread): anything the backend
    // emits — io_policy retry instants above all — lands under it in the
    // submitting host op's causal tree. A merged batch inherits its first
    // fragment's context; the fragments coalesced behind it share the
    // same host op in every real caller.
    const bool tracing = cfg_.obs != nullptr && cfg_.obs->trace().enabled();
    const obs::trace_context parent = first->tctx;
    const std::uint64_t exec_span =
        tracing && parent.trace_id != 0 ? obs::next_span_id() : 0;
    obs::trace_scope scope(exec_span != 0
                               ? obs::trace_context{parent.trace_id, exec_span}
                               : obs::current_trace());
    const raid::io_status merged_status = backend_.execute(b.merged);
    std::uint64_t done = now_ns();
    if (hist_execute_ != nullptr) {
        hist_execute_->record(done >= start ? done - start : 0);
    }
    if (merged_status == raid::io_status::ok || b.count == 1) {
        if (tracing) {
            cfg_.obs->trace().record_ex("aio.execute", "aio", start,
                                        done >= start ? done - start : 0,
                                        parent, exec_span);
        }
        for (std::size_t i = 0; i < b.count; ++i) {
            first[i].status = merged_status;
            first[i].done_ts = done;
        }
        return false;
    }
    // A coalesced transfer failed: split and re-drive each original
    // request so the failure lands only on the fragments that deserve it
    // (e.g. one latent sector inside an otherwise healthy extent, or the
    // masked strips of a rebuilding disk).
    for (std::size_t i = 0; i < b.count; ++i) {
        first[i].status = backend_.execute(first[i].desc);
        first[i].done_ts = now_ns();
    }
    done = now_ns();
    if (tracing) {
        cfg_.obs->trace().record_ex("aio.execute", "aio", start,
                                    done >= start ? done - start : 0, parent,
                                    exec_span);
    }
    return true;
}

void queue_pair::run_batches_on_workers(std::uint32_t disk) {
    // One task per flush keeps the disk's batches strictly ordered; tasks
    // for different disks run concurrently on the pool.
    auto frags = std::make_shared<std::vector<fragment>>();
    auto batches = std::make_shared<std::vector<batch>>();
    build_batches(disk, *frags, *batches);
    {
        std::lock_guard lock(done_mutex_);
        ++workers_outstanding_;
    }
    cfg_.workers->submit([this, frags, batches]() {
        // Counters are atomic, so workers account directly — no
        // drain-time delta folding needed.
        for (const batch& b : *batches) {
            stats_.batches.fetch_add(1, std::memory_order_relaxed);
            if (execute_one(b, frags->data())) {
                stats_.split_retries.fetch_add(1, std::memory_order_relaxed);
            }
        }
        std::lock_guard lock(done_mutex_);
        done_.insert(done_.end(), frags->begin(), frags->end());
        --workers_outstanding_;
        done_cv_.notify_all();
    });
}

void queue_pair::wait_for_workers() {
    if (cfg_.workers == nullptr) return;
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [this] { return workers_outstanding_ == 0; });
}

void queue_pair::drain() {
    for (std::uint32_t d = 0; d < pending_.size(); ++d) flush_disk(d);
    wait_for_workers();

    // Recover global submission order across disks, run completion-stage
    // decorators on this (the draining) thread, and emit CQEs. done_ is
    // reused as scratch for the next cycle.
    std::sort(done_.begin(), done_.end(),
              [](const fragment& a, const fragment& b) { return a.seq < b.seq; });
    const bool tracing = cfg_.obs != nullptr && cfg_.obs->trace().enabled();
    for (const fragment& f : done_) {
        raid::io_status s = f.status;
        for (const completion_stage& stage : stages_) s = stage(f.desc, s);
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
        if (hist_complete_ != nullptr) {
            hist_complete_->record(
                f.done_ts >= f.submit_ts ? f.done_ts - f.submit_ts : 0);
        }
        if (tracing) {
            // Leaf event under the submitting span: completion latency of
            // this fragment inside its host op's tree.
            cfg_.obs->trace().record_ex(
                "aio.complete", "aio", f.submit_ts,
                f.done_ts >= f.submit_ts ? f.done_ts - f.submit_ts : 0,
                f.tctx, 0);
        }
        completions_.push_back({f.desc.user_data, s, f.desc.disk});
    }
    done_.clear();
}

std::vector<io_cqe> queue_pair::take_completions() {
    std::vector<io_cqe> out;
    out.swap(completions_);
    return out;
}

}  // namespace liberation::aio
