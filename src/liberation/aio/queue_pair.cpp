#include "liberation/aio/queue_pair.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "liberation/util/thread_pool.hpp"

namespace liberation::aio {

queue_pair::queue_pair(io_backend& backend, std::uint32_t disks,
                       const aio_config& cfg)
    : backend_(backend), cfg_(cfg) {
    if (cfg_.queue_depth == 0) cfg_.queue_depth = 1;
    pending_.reserve(disks);
    for (std::uint32_t d = 0; d < disks; ++d)
        pending_.emplace_back(cfg_.queue_depth);
}

queue_pair::~queue_pair() { drain(); }

void queue_pair::add_completion_stage(completion_stage stage) {
    stages_.push_back(std::move(stage));
}

void queue_pair::submit(const io_desc& d) {
    ++stats_.submitted;
    fragment f;
    f.desc = d;
    f.seq = next_seq_++;
    if (d.disk >= pending_.size()) {
        // No window to queue in: complete immediately, sequenced at drain.
        f.status = raid::io_status::out_of_range;
        std::lock_guard lock(done_mutex_);
        done_.push_back(f);
        return;
    }
    ring<fragment>& window = pending_[d.disk];
    window.push(f);
    stats_.inflight_highwater =
        std::max<std::uint64_t>(stats_.inflight_highwater, window.size());
    if (window.full()) flush_disk(d.disk);
}

void queue_pair::build_batches(std::uint32_t disk,
                               std::vector<fragment>& frags,
                               std::vector<batch>& batches) {
    ring<fragment>& window = pending_[disk];
    while (!window.empty()) {
        const std::size_t idx = frags.size();
        frags.push_back(window.pop());
        const fragment& f = frags.back();
        if (cfg_.merge_adjacent && !batches.empty()) {
            // Coalesce only when the new request continues the previous
            // transfer both on the medium and in memory — then one backend
            // call moves the whole extent and per-request accounting can
            // still be recovered by fragment offsets.
            batch& prev = batches.back();
            if (prev.first + prev.count == idx &&
                prev.merged.kind == op_kind::read &&
                f.desc.kind == op_kind::read &&
                prev.merged.offset + prev.merged.len == f.desc.offset &&
                prev.merged.data + prev.merged.len == f.desc.data) {
                prev.merged.len += f.desc.len;
                ++prev.count;
                ++stats_.merges;
                continue;
            }
        }
        batch b;
        b.merged = f.desc;
        b.first = idx;
        b.count = 1;
        batches.push_back(b);
    }
}

void queue_pair::flush_disk(std::uint32_t disk) {
    if (pending_[disk].empty()) return;
    if (cfg_.workers != nullptr) {
        run_batches_on_workers(disk);
        return;
    }
    // Inline path: execute in submission order on the calling thread,
    // reusing the flush scratch vectors (steady-state allocation-free).
    flush_frags_.clear();
    flush_batches_.clear();
    build_batches(disk, flush_frags_, flush_batches_);
    for (const batch& b : flush_batches_) {
        ++stats_.batches;
        if (execute_one(b, flush_frags_.data())) ++stats_.split_retries;
    }
    // No workers → nothing contends on done_mutex_; append directly.
    done_.insert(done_.end(), flush_frags_.begin(), flush_frags_.end());
}

bool queue_pair::execute_one(const batch& b, fragment* frags) {
    const raid::io_status merged_status = backend_.execute(b.merged);
    fragment* const first = frags + b.first;
    if (merged_status == raid::io_status::ok || b.count == 1) {
        for (std::size_t i = 0; i < b.count; ++i)
            first[i].status = merged_status;
        return false;
    }
    // A coalesced transfer failed: split and re-drive each original
    // request so the failure lands only on the fragments that deserve it
    // (e.g. one latent sector inside an otherwise healthy extent, or the
    // masked strips of a rebuilding disk).
    for (std::size_t i = 0; i < b.count; ++i)
        first[i].status = backend_.execute(first[i].desc);
    return true;
}

void queue_pair::run_batches_on_workers(std::uint32_t disk) {
    // One task per flush keeps the disk's batches strictly ordered; tasks
    // for different disks run concurrently on the pool.
    auto frags = std::make_shared<std::vector<fragment>>();
    auto batches = std::make_shared<std::vector<batch>>();
    build_batches(disk, *frags, *batches);
    {
        std::lock_guard lock(done_mutex_);
        ++workers_outstanding_;
    }
    cfg_.workers->submit([this, frags, batches]() {
        std::uint64_t n_batches = 0;
        std::uint64_t n_splits = 0;
        for (const batch& b : *batches) {
            ++n_batches;
            if (execute_one(b, frags->data())) ++n_splits;
        }
        std::lock_guard lock(done_mutex_);
        done_.insert(done_.end(), frags->begin(), frags->end());
        worker_batches_ += n_batches;
        worker_split_retries_ += n_splits;
        --workers_outstanding_;
        done_cv_.notify_all();
    });
}

void queue_pair::wait_for_workers() {
    if (cfg_.workers == nullptr) return;
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [this] { return workers_outstanding_ == 0; });
    stats_.batches += worker_batches_;
    stats_.split_retries += worker_split_retries_;
    worker_batches_ = 0;
    worker_split_retries_ = 0;
}

void queue_pair::drain() {
    for (std::uint32_t d = 0; d < pending_.size(); ++d) flush_disk(d);
    wait_for_workers();

    // Recover global submission order across disks, run completion-stage
    // decorators on this (the draining) thread, and emit CQEs. done_ is
    // reused as scratch for the next cycle.
    std::sort(done_.begin(), done_.end(),
              [](const fragment& a, const fragment& b) { return a.seq < b.seq; });
    for (const fragment& f : done_) {
        raid::io_status s = f.status;
        for (const completion_stage& stage : stages_) s = stage(f.desc, s);
        ++stats_.completed;
        completions_.push_back({f.desc.user_data, s, f.desc.disk});
    }
    done_.clear();
}

std::vector<io_cqe> queue_pair::take_completions() {
    std::vector<io_cqe> out;
    out.swap(completions_);
    return out;
}

}  // namespace liberation::aio
