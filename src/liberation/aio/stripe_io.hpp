// Completion-driven stripe engines over a queue_pair.
//
// Two state machines turn stripe-granular work into batched per-disk
// submissions:
//
//   * stripe_loader — window-prefetches whole stripes for sequential
//     consumers (rebuild slices, scrub passes). Buffers are *disk-major*:
//     one long-lived buffer per disk holds that disk's strips for every
//     stripe of the window, so consecutive stripes produce reads that are
//     contiguous both on the medium and in memory — exactly what the
//     queue_pair's coalescing needs to turn a window into one transfer
//     per disk. Stripe views are assembled over the per-disk buffers via
//     per-column pointers; no per-stripe allocation, no copying.
//
//   * stripe_writer — pipelines full-stripe writes. Data columns are
//     submitted zero-copy straight from the host's buffer (when the
//     element size allows full-vector tail loads; otherwise they are
//     staged into reused slots), parity is encoded into writer-owned
//     staging slots *after* the data submissions are already in flight,
//     and follows them into the same drain window.
//
// Neither engine interprets I/O results: per-column statuses are handed
// back to the caller, which owns classification (the array's
// checksum-first recovery), journaling, and failure accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "liberation/aio/queue_pair.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/raid/stripe_map.hpp"
#include "liberation/util/aligned_buffer.hpp"

namespace liberation::aio {

/// Window-prefetching stripe reader (see file comment).
class stripe_loader {
public:
    /// The window size (stripes in flight) is the queue_pair's configured
    /// queue depth: each stripe contributes exactly one strip per disk, so
    /// a window fills every disk's in-flight ring exactly once.
    stripe_loader(queue_pair& qp, const raid::stripe_map& map);

    /// Per-stripe consumer: `v` is a stripe view over the loader's
    /// buffers (valid only during the call), `statuses` the per-column
    /// io_status of this stripe's reads. The vector may be moved from.
    using process_fn = std::function<void(
        std::size_t stripe, const codes::stripe_view& v,
        std::vector<raid::io_status>& statuses)>;
    /// Stripe filter: true = do not prefetch this stripe (the caller
    /// handles it through `on_skipped`, e.g. torn stripes that need the
    /// journal-aware path).
    using stripe_filter = std::function<bool(std::size_t stripe)>;
    /// Column filter: true = do not read this column; its status is
    /// reported as io_status::rebuilding (an erasure), exactly what the
    /// array reports for a rebuild target's masked strip.
    using column_filter =
        std::function<bool(std::size_t stripe, std::uint32_t col)>;

    /// Walk stripes [first, last): prefetch each window with one drain,
    /// then invoke `process` (or `on_skipped`) per stripe in order.
    /// Filters and `on_skipped` may be null.
    void run(std::size_t first, std::size_t last,
             const stripe_filter& skip_stripe, const column_filter& skip_column,
             const std::function<void(std::size_t)>& on_skipped,
             const process_fn& process);

private:
    queue_pair& qp_;
    const raid::stripe_map& map_;
    std::size_t window_;
    std::vector<util::aligned_buffer> disk_bufs_;  ///< per disk: window strips
    std::vector<std::vector<raid::io_status>> statuses_;  ///< per slot
    std::vector<std::uint8_t> skipped_;                   ///< per slot
    std::vector<std::byte*> ptrs_;  ///< column-pointer scratch
};

/// Pipelined full-stripe writer (see file comment). The caller drives the
/// per-stripe protocol:
///
///     auto cols = writer.stage(slot, host_bytes);      // column pointers
///     writer.submit_columns(stripe, cols, 0, k);       // data in flight
///     code.encode(view over cols);                     // overlap: parity
///     writer.submit_columns(stripe, cols, k, n);       // parity follows
///     ...
///     writer.drain();                                  // window barrier
///
/// Journaling, write-failure policy, and stats stay with the caller.
class stripe_writer {
public:
    /// `crc_block` != 0 enables fused checksum staging: stage() computes
    /// each data column's per-block CRC32C inside the staging copy (or in
    /// one sweep of the host bytes in zero-copy mode), submit_columns()
    /// attaches the words to every write via io_desc::crcs, and the
    /// caller encodes parity with its fused encode_crc into
    /// column_crcs(slot, k)/column_crcs(slot, k+1) — so the integrity
    /// layer installs precomputed words instead of re-reading every
    /// strip on completion. Must divide the element size.
    stripe_writer(queue_pair& qp, const raid::stripe_map& map,
                  std::size_t crc_block = 0);

    /// Stripes per drain window (the queue_pair's queue depth).
    [[nodiscard]] std::size_t window() const noexcept { return window_; }

    /// True when data columns are submitted directly from the host buffer
    /// (element size is a multiple of the vector-kernel tail-read quantum;
    /// otherwise the encoder could read past the host allocation).
    [[nodiscard]] bool zero_copy() const noexcept { return zero_copy_; }

    /// Bind window slot `slot` to one stripe's host bytes (k contiguous
    /// strips in codeword-column order) and return the n column pointers:
    /// data either aliases `host` (zero-copy) or is copied into staging;
    /// parity always points at staging for the encoder to fill. Pointers
    /// stay valid until the next drain().
    std::span<std::byte* const> stage(std::size_t slot, const std::byte* host);

    /// Checksum words of window slot `slot`, column `col` (one per
    /// crc_block of the strip, strip byte order). Data columns are filled
    /// by stage(); parity columns are the caller's to fill (encode_crc)
    /// before submitting them. Null when checksum staging is off.
    [[nodiscard]] std::uint32_t* column_crcs(std::size_t slot,
                                             std::uint32_t col) noexcept {
        if (crc_block_ == 0) return nullptr;
        return crcs_.data() + (slot * map_.n() + col) * strip_blocks_;
    }

    /// Submit the write for columns [begin_col, end_col) of window slot
    /// `slot` (stripe `stripe`) using the pointers returned by stage().
    /// Writes are never coalesced — the power-loss budget counts
    /// individual disk writes — so each column is one submission on its
    /// disk's ring.
    void submit_columns(std::size_t stripe, std::size_t slot,
                        std::span<std::byte* const> cols,
                        std::uint32_t begin_col, std::uint32_t end_col);

    /// Drain the window. Completion statuses are discarded: a full-stripe
    /// write's contract is journal-mark → best-effort store → clear, with
    /// failed columns simply missing the update (the stripe stays
    /// decodable while <= 2 columns are down) — the caller checks
    /// failed_disk_count() afterwards, exactly like the synchronous path.
    void drain();

private:
    queue_pair& qp_;
    const raid::stripe_map& map_;
    std::size_t window_;
    bool zero_copy_;
    std::size_t crc_block_;              ///< 0 = no checksum staging
    std::size_t strip_blocks_;           ///< checksum words per strip
    util::aligned_buffer parity_stage_;  ///< window x 2 strips
    util::aligned_buffer data_stage_;    ///< window x k strips (copy mode)
    std::vector<std::byte*> ptrs_;       ///< window x n column pointers
    std::vector<std::uint32_t> crcs_;    ///< window x n x strip_blocks_
};

}  // namespace liberation::aio
