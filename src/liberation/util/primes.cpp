#include "liberation/util/primes.hpp"

#include "liberation/util/assert.hpp"

namespace liberation::util {

bool is_prime(std::uint32_t n) noexcept {
    if (n < 2) return false;
    if (n < 4) return true;
    if (n % 2 == 0) return false;
    for (std::uint32_t d = 3; d * d <= n; d += 2) {
        if (n % d == 0) return false;
    }
    return true;
}

std::uint32_t next_prime(std::uint32_t n) noexcept {
    LIBERATION_EXPECTS(n >= 2);
    while (!is_prime(n)) ++n;
    return n;
}

std::uint32_t next_odd_prime(std::uint32_t n) noexcept {
    std::uint32_t p = next_prime(n < 3 ? 3 : n);
    if (p == 2) p = 3;
    return p;
}

std::vector<std::uint32_t> odd_primes_in(std::uint32_t lo, std::uint32_t hi) {
    std::vector<std::uint32_t> out;
    for (std::uint32_t n = lo < 3 ? 3 : lo | 1U; n <= hi; n += 2) {
        if (is_prime(n)) out.push_back(n);
    }
    return out;
}

std::uint32_t mod_inverse(std::uint32_t a, std::uint32_t p) noexcept {
    LIBERATION_EXPECTS(is_prime(p) && a > 0 && a < p);
    // a^(p-2) mod p by square-and-multiply.
    std::uint64_t base = a, acc = 1;
    std::uint32_t e = p - 2;
    while (e != 0) {
        if (e & 1U) acc = acc * base % p;
        base = base * base % p;
        e >>= 1U;
    }
    return static_cast<std::uint32_t>(acc);
}

}  // namespace liberation::util
