// Minimal fixed-size thread pool used by the RAID array simulator to encode
// and rebuild stripes in parallel.
//
// Deliberately simple (Core Guidelines CP.4: think in tasks): callers submit
// void() tasks and wait on a parallel_for barrier; no futures, no dynamic
// resizing, no work stealing. Stripe coding is embarrassingly parallel and
// coarse-grained, so a mutex-guarded deque is not a bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace liberation::util {

class thread_pool {
public:
    /// Spawns `threads` workers (0 -> hardware concurrency, min 1).
    explicit thread_pool(std::size_t threads = 0);

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    ~thread_pool();

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue one task. Thread-safe.
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished executing.
    void wait_idle();

    /// Run body(i) for i in [0, n) across the pool and wait for completion.
    /// Chunks so each worker gets contiguous iterations (predictable memory
    /// access per Core Guidelines Per.19).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

}  // namespace liberation::util
