// Prime-number helpers used to size Liberation / EVENODD / RDP codewords.
#pragma once

#include <cstdint>
#include <vector>

namespace liberation::util {

/// True iff n is prime (deterministic trial division; n is always small —
/// RAID widths are tens of disks, not millions).
bool is_prime(std::uint32_t n) noexcept;

/// Smallest prime >= n. Expects n >= 2.
std::uint32_t next_prime(std::uint32_t n) noexcept;

/// Smallest *odd* prime >= n (Liberation requires an odd prime p).
/// next_odd_prime(2) == 3.
std::uint32_t next_odd_prime(std::uint32_t n) noexcept;

/// All odd primes in [lo, hi], ascending.
std::vector<std::uint32_t> odd_primes_in(std::uint32_t lo, std::uint32_t hi);

/// Multiplicative inverse of a modulo prime p (Fermat). Expects 0 < a < p.
std::uint32_t mod_inverse(std::uint32_t a, std::uint32_t p) noexcept;

}  // namespace liberation::util
