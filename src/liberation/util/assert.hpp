// Lightweight contract checks (Core Guidelines I.6/I.8 style).
//
// LIBERATION_EXPECTS / LIBERATION_ENSURES abort with a readable message on
// violation. They stay enabled in release builds: every call is on a cold
// path (constructors, public-API entry), never inside region loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace liberation::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
    std::fprintf(stderr, "liberation: %s violated: %s (%s:%d)\n", kind, expr,
                 file, line);
    std::abort();
}

}  // namespace liberation::detail

#define LIBERATION_EXPECTS(cond)                                             \
    ((cond) ? static_cast<void>(0)                                           \
            : ::liberation::detail::contract_failure("precondition", #cond,  \
                                                     __FILE__, __LINE__))

#define LIBERATION_ENSURES(cond)                                             \
    ((cond) ? static_cast<void>(0)                                           \
            : ::liberation::detail::contract_failure("postcondition", #cond, \
                                                     __FILE__, __LINE__))
