// Cache-line-aligned RAII byte buffer for coding regions.
//
// Every strip/element buffer in the library lives in one of these: 64-byte
// alignment keeps the word-wise XOR kernels on their fast path and avoids
// false sharing when stripes are encoded from a thread pool.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "liberation/util/assert.hpp"

namespace liberation::util {

class aligned_buffer {
public:
    static constexpr std::size_t alignment = 64;

    aligned_buffer() noexcept = default;

    /// Allocates `size` zero-initialized bytes. The allocation is rounded
    /// up to the next 64-byte (full vector register / cache line) multiple:
    /// capacity() >= size() is always a multiple of 64, and every byte up
    /// to capacity() is allocated and zero-initialized. Vector XOR kernels
    /// may therefore issue full-width *loads* over the tail of a
    /// library-owned buffer without faulting (tail *stores* must still stay
    /// within size(): elements of one strip share the buffer, so writing
    /// padding of an interior element would clobber its neighbour).
    explicit aligned_buffer(std::size_t size) : size_(size) {
        if (size_ == 0) return;
        capacity_ = (size_ + alignment - 1) / alignment * alignment;
        data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, capacity_));
        if (data_ == nullptr) throw std::bad_alloc{};
        std::memset(data_, 0, capacity_);
    }

    aligned_buffer(const aligned_buffer&) = delete;
    aligned_buffer& operator=(const aligned_buffer&) = delete;

    aligned_buffer(aligned_buffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          capacity_(std::exchange(other.capacity_, 0)) {}

    aligned_buffer& operator=(aligned_buffer&& other) noexcept {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
            capacity_ = std::exchange(other.capacity_, 0);
        }
        return *this;
    }

    ~aligned_buffer() { release(); }

    [[nodiscard]] std::byte* data() noexcept { return data_; }
    [[nodiscard]] const std::byte* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Allocated bytes: size() rounded up to a 64-byte multiple (0 for an
    /// empty buffer). Bytes in [size(), capacity()) are readable padding.
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] std::span<std::byte> span() noexcept { return {data_, size_}; }
    [[nodiscard]] std::span<const std::byte> span() const noexcept {
        return {data_, size_};
    }

    /// Sub-span [offset, offset+len).
    [[nodiscard]] std::span<std::byte> subspan(std::size_t offset,
                                               std::size_t len) noexcept {
        LIBERATION_EXPECTS(offset + len <= size_);
        return {data_ + offset, len};
    }

    void zero() noexcept {
        // Clears the padding too, restoring the all-zero tail guarantee.
        if (data_ != nullptr) std::memset(data_, 0, capacity_);
    }

private:
    void release() noexcept {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
        capacity_ = 0;
    }

    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

}  // namespace liberation::util
