// Cache-line-aligned RAII byte buffer for coding regions.
//
// Every strip/element buffer in the library lives in one of these: 64-byte
// alignment keeps the word-wise XOR kernels on their fast path and avoids
// false sharing when stripes are encoded from a thread pool.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "liberation/util/assert.hpp"

namespace liberation::util {

class aligned_buffer {
public:
    static constexpr std::size_t alignment = 64;

    aligned_buffer() noexcept = default;

    /// Allocates `size` zero-initialized bytes (rounded up internally to a
    /// multiple of the alignment so the XOR kernels may run whole words).
    explicit aligned_buffer(std::size_t size) : size_(size) {
        if (size_ == 0) return;
        const std::size_t padded = (size_ + alignment - 1) / alignment * alignment;
        data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, padded));
        if (data_ == nullptr) throw std::bad_alloc{};
        std::memset(data_, 0, padded);
    }

    aligned_buffer(const aligned_buffer&) = delete;
    aligned_buffer& operator=(const aligned_buffer&) = delete;

    aligned_buffer(aligned_buffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0)) {}

    aligned_buffer& operator=(aligned_buffer&& other) noexcept {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~aligned_buffer() { release(); }

    [[nodiscard]] std::byte* data() noexcept { return data_; }
    [[nodiscard]] const std::byte* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] std::span<std::byte> span() noexcept { return {data_, size_}; }
    [[nodiscard]] std::span<const std::byte> span() const noexcept {
        return {data_, size_};
    }

    /// Sub-span [offset, offset+len).
    [[nodiscard]] std::span<std::byte> subspan(std::size_t offset,
                                               std::size_t len) noexcept {
        LIBERATION_EXPECTS(offset + len <= size_);
        return {data_ + offset, len};
    }

    void zero() noexcept {
        if (data_ != nullptr) std::memset(data_, 0, size_);
    }

private:
    void release() noexcept {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
    }

    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace liberation::util
