// Deterministic, seedable RNG (xoshiro256**) for reproducible test data and
// workload generation. Not cryptographic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::util {

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic across platforms,
/// fast enough to fill multi-megabyte stripes during benchmarks.
class xoshiro256 {
public:
    explicit xoshiro256(std::uint64_t seed) noexcept;

    std::uint64_t next() noexcept;

    /// Uniform in [0, bound). Expects bound > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Fill a byte region with pseudo-random data.
    void fill(std::span<std::byte> out) noexcept;

    // UniformRandomBitGenerator interface, so <random> adaptors work too.
    using result_type = std::uint64_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }
    result_type operator()() noexcept { return next(); }

private:
    std::uint64_t s_[4];
};

}  // namespace liberation::util
