#include "liberation/util/rng.hpp"

#include <cstring>

#include "liberation/util/assert.hpp"

namespace liberation::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

// splitmix64: seed expander recommended by the xoshiro authors.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

xoshiro256::xoshiro256(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    // All-zero state would be absorbing; splitmix64 cannot produce four
    // zeros from any seed, but keep the guard explicit.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t xoshiro256::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t xoshiro256::next_below(std::uint64_t bound) noexcept {
    LIBERATION_EXPECTS(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

double xoshiro256::next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void xoshiro256::fill(std::span<std::byte> out) noexcept {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
        const std::uint64_t v = next();
        std::memcpy(out.data() + i, &v, 8);
        i += 8;
    }
    if (i < out.size()) {
        const std::uint64_t v = next();
        std::memcpy(out.data() + i, &v, out.size() - i);
    }
}

}  // namespace liberation::util
