// Monotonic wall-clock stopwatch for throughput harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace liberation::util {

class stopwatch {
public:
    stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                 start_)
                .count());
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// bytes processed / elapsed seconds, in GB/s (10^9 bytes).
inline double throughput_gbps(std::uint64_t bytes, double seconds) noexcept {
    if (seconds <= 0.0) return 0.0;
    return static_cast<double>(bytes) / seconds / 1e9;
}

}  // namespace liberation::util
