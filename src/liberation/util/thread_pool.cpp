#include "liberation/util/thread_pool.hpp"

#include <algorithm>

#include "liberation/util/assert.hpp"

namespace liberation::util {

thread_pool::thread_pool(std::size_t threads) {
    if (threads == 0) {
        threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::submit(std::function<void()> task) {
    {
        std::lock_guard lock(mutex_);
        LIBERATION_EXPECTS(!stop_);
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void thread_pool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, workers_.size());
    const std::size_t per = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = c * per;
        const std::size_t hi = std::min(n, lo + per);
        if (lo >= hi) break;
        submit([&body, lo, hi] {
            for (std::size_t i = lo; i < hi; ++i) body(i);
        });
    }
    wait_idle();
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

}  // namespace liberation::util
