// File sharding: split a file into k data shards + P + Q shards so that
// any two lost or corrupted shard files can be regenerated — the "zfec for
// RAID-6" utility a downstream user of this library would actually run
// (the liberation_cli tool is a thin front-end over this header).
//
// Shard format (little-endian, 64-byte header):
//   0  u64  magic "L6SHARD\0"
//   8  u32  version (1)
//  12  u32  k
//  16  u32  p
//  20  u32  shard index (0..k+1; k = P, k+1 = Q)
//  24  u64  element size in bytes
//  32  u64  original file size
//  40  u64  stripe count
//  48  ..   reserved zeros
// Payload: stripe_count * p * element_size bytes (the shard's strips).
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

namespace liberation::tool {

struct shard_params {
    std::uint32_t k = 4;
    std::uint32_t p = 0;  ///< 0 = smallest odd prime >= k
    std::uint64_t element_size = 4096;
};

struct split_report {
    std::uint32_t shards = 0;
    std::uint64_t stripes = 0;
    std::uint64_t payload_bytes = 0;  ///< original file size
    std::uint64_t padding_bytes = 0;  ///< zero fill to the stripe boundary
};

struct join_report {
    std::vector<std::uint32_t> missing;  ///< shard indices reconstructed
    std::uint64_t stripes = 0;
    std::uint64_t bytes_written = 0;
};

struct verify_report {
    std::uint64_t stripes = 0;
    std::uint64_t clean = 0;
    std::uint64_t repaired = 0;       ///< stripes fixed (single bad column)
    std::uint64_t uncorrectable = 0;  ///< stripes with >= 2 bad columns
    std::vector<std::uint32_t> repaired_shards;  ///< which files were fixed
};

/// Error type for all sharder failures (bad input, I/O, unrecoverable).
class sharder_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Split `input` into k+2 shard files "shard_NNN.l6s" inside `out_dir`
/// (created if absent; existing shards are overwritten).
split_report split_file(const std::filesystem::path& input,
                        const std::filesystem::path& out_dir,
                        const shard_params& params);

/// Rebuild the original file at `output` from the shards in `dir`. Up to
/// two shard files may be missing or unreadable; missing shards are also
/// re-materialized on disk. Throws sharder_error if more are gone.
join_report join_file(const std::filesystem::path& dir,
                      const std::filesystem::path& output);

/// Verify every stripe across the shard set; with repair=true, silently
/// corrupted single columns are fixed and rewritten.
verify_report verify_shards(const std::filesystem::path& dir, bool repair);

/// The shard file name for a given index ("shard_007.l6s").
[[nodiscard]] std::string shard_file_name(std::uint32_t index);

}  // namespace liberation::tool
