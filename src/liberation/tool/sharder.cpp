#include "liberation/tool/sharder.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "liberation/codes/stripe.hpp"
#include "liberation/core/error_correction.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/util/primes.hpp"

namespace liberation::tool {

namespace {

constexpr std::uint64_t kMagic = 0x004452414853364cULL;  // "L6SHARD\0"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 64;

struct shard_header {
    std::uint32_t k = 0;
    std::uint32_t p = 0;
    std::uint32_t index = 0;
    std::uint64_t element_size = 0;
    std::uint64_t file_size = 0;
    std::uint64_t stripes = 0;

    [[nodiscard]] bool compatible(const shard_header& o) const noexcept {
        return k == o.k && p == o.p && element_size == o.element_size &&
               file_size == o.file_size && stripes == o.stripes;
    }
};

template <typename T>
void put_le(std::byte* dst, T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
    }
}

template <typename T>
T get_le(const std::byte* src) {
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        v |= static_cast<T>(static_cast<std::uint8_t>(src[i])) << (8 * i);
    }
    return v;
}

void write_header(std::ostream& out, const shard_header& h) {
    std::byte buf[kHeaderSize] = {};
    put_le<std::uint64_t>(buf + 0, kMagic);
    put_le<std::uint32_t>(buf + 8, kVersion);
    put_le<std::uint32_t>(buf + 12, h.k);
    put_le<std::uint32_t>(buf + 16, h.p);
    put_le<std::uint32_t>(buf + 20, h.index);
    put_le<std::uint64_t>(buf + 24, h.element_size);
    put_le<std::uint64_t>(buf + 32, h.file_size);
    put_le<std::uint64_t>(buf + 40, h.stripes);
    out.write(reinterpret_cast<const char*>(buf), kHeaderSize);
    if (!out) throw sharder_error("failed to write shard header");
}

[[nodiscard]] bool read_header(std::istream& in, shard_header& h) {
    std::byte buf[kHeaderSize];
    in.read(reinterpret_cast<char*>(buf), kHeaderSize);
    if (!in || in.gcount() != kHeaderSize) return false;
    if (get_le<std::uint64_t>(buf + 0) != kMagic) return false;
    if (get_le<std::uint32_t>(buf + 8) != kVersion) return false;
    h.k = get_le<std::uint32_t>(buf + 12);
    h.p = get_le<std::uint32_t>(buf + 16);
    h.index = get_le<std::uint32_t>(buf + 20);
    h.element_size = get_le<std::uint64_t>(buf + 24);
    h.file_size = get_le<std::uint64_t>(buf + 32);
    h.stripes = get_le<std::uint64_t>(buf + 40);
    return h.k >= 1 && h.p >= 3 && h.element_size >= 1 &&
           h.index < h.k + 2 && h.stripes >= 1;
}

std::uint32_t resolve_p(const shard_params& params) {
    const std::uint32_t p =
        params.p != 0 ? params.p : util::next_odd_prime(params.k);
    if (!util::is_prime(p) || p % 2 == 0 || p < params.k) {
        throw sharder_error("p must be an odd prime >= k");
    }
    return p;
}

}  // namespace

std::string shard_file_name(std::uint32_t index) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "shard_%03u.l6s", index);
    return buf;
}

split_report split_file(const std::filesystem::path& input,
                        const std::filesystem::path& out_dir,
                        const shard_params& params) {
    if (params.k < 1) throw sharder_error("k must be >= 1");
    const std::uint32_t k = params.k;
    const std::uint32_t p = resolve_p(params);
    const std::size_t elem = static_cast<std::size_t>(params.element_size);

    std::ifstream in(input, std::ios::binary);
    if (!in) throw sharder_error("cannot open input file: " + input.string());
    const std::uint64_t file_size = std::filesystem::file_size(input);
    if (file_size == 0) throw sharder_error("refusing to shard an empty file");

    const core::liberation_optimal_code code(k, p);
    codes::stripe_buffer stripe(p, k + 2, elem);
    const std::uint64_t stripe_data =
        static_cast<std::uint64_t>(k) * p * elem;
    const std::uint64_t stripes = (file_size + stripe_data - 1) / stripe_data;

    std::filesystem::create_directories(out_dir);
    std::vector<std::ofstream> shards;
    shards.reserve(k + 2);
    for (std::uint32_t i = 0; i < k + 2; ++i) {
        shards.emplace_back(out_dir / shard_file_name(i), std::ios::binary);
        if (!shards.back()) {
            throw sharder_error("cannot create shard file " +
                                shard_file_name(i));
        }
        write_header(shards.back(),
                     {k, p, i, params.element_size, file_size, stripes});
    }

    std::vector<char> chunk(stripe_data);
    for (std::uint64_t s = 0; s < stripes; ++s) {
        std::fill(chunk.begin(), chunk.end(), '\0');
        in.read(chunk.data(), static_cast<std::streamsize>(stripe_data));
        if (in.bad()) throw sharder_error("read error on input file");
        const auto v = stripe.view();
        for (std::uint32_t j = 0; j < k; ++j) {
            std::memcpy(v.strip(j).data(),
                        chunk.data() + static_cast<std::size_t>(j) *
                                           v.strip_size(),
                        v.strip_size());
        }
        code.encode(v);
        for (std::uint32_t i = 0; i < k + 2; ++i) {
            shards[i].write(reinterpret_cast<const char*>(v.strip(i).data()),
                            static_cast<std::streamsize>(v.strip_size()));
            if (!shards[i]) throw sharder_error("write error on shard file");
        }
    }

    split_report report;
    report.shards = k + 2;
    report.stripes = stripes;
    report.payload_bytes = file_size;
    report.padding_bytes = stripes * stripe_data - file_size;
    return report;
}

namespace {

struct shard_set {
    shard_header header;                       // of any present shard
    std::vector<std::filesystem::path> paths;  // indexed by shard index
    std::vector<bool> present;
};

shard_set scan_shards(const std::filesystem::path& dir) {
    shard_set set;
    bool have_header = false;
    // First pass: find one valid header to learn the geometry.
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        std::ifstream in(entry.path(), std::ios::binary);
        shard_header h;
        if (!read_header(in, h)) continue;
        if (!have_header) {
            set.header = h;
            set.paths.assign(h.k + 2, {});
            set.present.assign(h.k + 2, false);
            have_header = true;
        }
        if (!h.compatible(set.header)) {
            throw sharder_error("inconsistent shard headers in " +
                                dir.string());
        }
        if (set.present[h.index]) {
            throw sharder_error("duplicate shard index " +
                                std::to_string(h.index));
        }
        // Require the full payload to be on disk; truncated = missing.
        const std::uint64_t expected =
            kHeaderSize + h.stripes * h.p * h.element_size;
        if (std::filesystem::file_size(entry.path()) < expected) continue;
        set.paths[h.index] = entry.path();
        set.present[h.index] = true;
    }
    if (!have_header) {
        throw sharder_error("no valid shard files in " + dir.string());
    }
    return set;
}

}  // namespace

join_report join_file(const std::filesystem::path& dir,
                      const std::filesystem::path& output) {
    shard_set set = scan_shards(dir);
    const shard_header& h = set.header;
    const std::uint32_t n = h.k + 2;

    join_report report;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!set.present[i]) report.missing.push_back(i);
    }
    if (report.missing.size() > 2) {
        throw sharder_error("data loss: " +
                            std::to_string(report.missing.size()) +
                            " shards missing, at most 2 recoverable");
    }

    const core::liberation_optimal_code code(h.k, h.p);
    const std::size_t elem = static_cast<std::size_t>(h.element_size);
    codes::stripe_buffer stripe(h.p, n, elem);
    const std::size_t strip = stripe.view().strip_size();

    std::vector<std::ifstream> in(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!set.present[i]) continue;
        in[i].open(set.paths[i], std::ios::binary);
        in[i].seekg(kHeaderSize);
        if (!in[i]) throw sharder_error("cannot reopen shard file");
    }
    // Re-materialize missing shards alongside the survivors.
    std::vector<std::ofstream> rebuilt(n);
    for (const std::uint32_t i : report.missing) {
        rebuilt[i].open(dir / shard_file_name(i), std::ios::binary);
        if (!rebuilt[i]) throw sharder_error("cannot recreate shard file");
        write_header(rebuilt[i], {h.k, h.p, i, h.element_size, h.file_size,
                                  h.stripes});
    }

    std::ofstream out(output, std::ios::binary);
    if (!out) throw sharder_error("cannot create output file");

    std::uint64_t remaining = h.file_size;
    for (std::uint64_t s = 0; s < h.stripes; ++s) {
        const auto v = stripe.view();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!set.present[i]) continue;
            in[i].read(reinterpret_cast<char*>(v.strip(i).data()),
                       static_cast<std::streamsize>(strip));
            if (!in[i]) throw sharder_error("read error on shard payload");
        }
        if (!report.missing.empty()) {
            code.decode(v, report.missing);
            for (const std::uint32_t i : report.missing) {
                rebuilt[i].write(
                    reinterpret_cast<const char*>(v.strip(i).data()),
                    static_cast<std::streamsize>(strip));
            }
        }
        for (std::uint32_t j = 0; j < h.k && remaining > 0; ++j) {
            const std::uint64_t take =
                std::min<std::uint64_t>(remaining, strip);
            out.write(reinterpret_cast<const char*>(v.strip(j).data()),
                      static_cast<std::streamsize>(take));
            remaining -= take;
        }
        if (!out) throw sharder_error("write error on output file");
    }
    report.stripes = h.stripes;
    report.bytes_written = h.file_size;
    return report;
}

verify_report verify_shards(const std::filesystem::path& dir, bool repair) {
    shard_set set = scan_shards(dir);
    const shard_header& h = set.header;
    const std::uint32_t n = h.k + 2;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!set.present[i]) {
            throw sharder_error(
                "shard " + std::to_string(i) +
                " missing — run join to re-materialize it first");
        }
    }

    const core::liberation_optimal_code code(h.k, h.p);
    const std::size_t elem = static_cast<std::size_t>(h.element_size);
    codes::stripe_buffer stripe(h.p, n, elem);
    const std::size_t strip = stripe.view().strip_size();

    std::vector<std::fstream> io(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        io[i].open(set.paths[i], std::ios::binary | std::ios::in |
                                     (repair ? std::ios::out
                                             : std::ios::in));
        if (!io[i]) throw sharder_error("cannot open shard file");
    }

    verify_report report;
    std::vector<bool> shard_repaired(n, false);
    for (std::uint64_t s = 0; s < h.stripes; ++s) {
        const auto v = stripe.view();
        for (std::uint32_t i = 0; i < n; ++i) {
            io[i].seekg(static_cast<std::streamoff>(kHeaderSize + s * strip));
            io[i].read(reinterpret_cast<char*>(v.strip(i).data()),
                       static_cast<std::streamsize>(strip));
            if (!io[i]) throw sharder_error("read error during verify");
        }
        ++report.stripes;
        const auto scrub = code.scrub(v);
        switch (scrub.status) {
            case core::scrub_status::clean:
                ++report.clean;
                break;
            case core::scrub_status::uncorrectable:
                ++report.uncorrectable;
                break;
            default: {
                ++report.repaired;
                const std::uint32_t col =
                    scrub.status == core::scrub_status::corrected_data
                        ? scrub.column
                        : (scrub.status == core::scrub_status::corrected_p
                               ? h.k
                               : h.k + 1);
                shard_repaired[col] = true;
                if (repair) {
                    io[col].seekp(
                        static_cast<std::streamoff>(kHeaderSize + s * strip));
                    io[col].write(
                        reinterpret_cast<const char*>(v.strip(col).data()),
                        static_cast<std::streamsize>(strip));
                    if (!io[col]) {
                        throw sharder_error("write error during repair");
                    }
                }
                break;
            }
        }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        if (shard_repaired[i]) report.repaired_shards.push_back(i);
    }
    return report;
}

}  // namespace liberation::tool
