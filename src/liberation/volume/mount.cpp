#include "liberation/volume/mount.hpp"

#include <filesystem>
#include <random>
#include <system_error>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/raid/persist/store.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::volume::persist {

namespace {

/// Whole-set shard census for postmortem bundles: one line per shard so
/// the operator sees which member sank the mount, not just the first.
std::string volume_census_text(const volume_mount_report& rep) {
    std::string s = "volume mount ok=" + std::to_string(rep.ok ? 1 : 0) + '\n';
    if (!rep.error.empty()) s += "error: " + rep.error + '\n';
    s += "shards_expected=" + std::to_string(rep.shards_expected) + '\n';
    s += "shards_mounted=" + std::to_string(rep.shards_mounted) + '\n';
    s += "manifest_torn_slots=" + std::to_string(rep.manifest_torn_slots) +
         '\n';
    s += "unclean=" + std::to_string(rep.unclean ? 1 : 0) + '\n';
    for (const shard_census_entry& e : rep.census) {
        s += "shard " + std::to_string(e.shard) +
             ": dir_present=" + std::to_string(e.dir_present ? 1 : 0) +
             " foreign=" + std::to_string(e.foreign ? 1 : 0) +
             " geometry_mismatch=" +
             std::to_string(e.geometry_mismatch ? 1 : 0) +
             " mounted=" + std::to_string(e.mounted ? 1 : 0);
        if (!e.report.error.empty()) s += " error=\"" + e.report.error + '"';
        s += '\n';
    }
    return s;
}

void note_volume_mount_refused(const volume_mount_report& rep) {
    obs::flight_recorder::instance().record(obs::fr_kind::mount_refused, 0,
                                            rep.shards_mounted,
                                            rep.shards_expected);
    obs::postmortem_bundle b;
    b.census_text = volume_census_text(rep);
    (void)obs::auto_postmortem("mount_refused", nullptr, std::move(b));
}

std::uint64_t random_uuid() {
    std::random_device rd;
    std::uint64_t u = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    return u ? u : 1;
}

/// Deterministic per-shard UUID stream off the volume UUID (golden-ratio
/// mix, same recipe the chaos campaigns use for seed derivation).
std::uint64_t shard_uuid(std::uint64_t volume_uuid, std::uint32_t s) {
    const std::uint64_t u =
        volume_uuid ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{s} + 1));
    return u ? u : 1;
}

bool geometry_matches(const raid::persist::superblock& sb,
                      const manifest& m) {
    return sb.k == m.k && sb.p == m.p && sb.element_size == m.element_size &&
           sb.stripes == m.stripes && sb.sector_size == m.sector_size &&
           sb.layout == m.layout;
}

}  // namespace

std::unique_ptr<volume> create_volume(const volume_config& cfg,
                                      const volume_store_config& scfg,
                                      std::uint64_t uuid) {
    LIBERATION_EXPECTS(cfg.shards >= 1 &&
                       cfg.shards <= manifest_max_shards);
    LIBERATION_EXPECTS(cfg.io_workers_per_shard == 0);
    if (uuid == 0) uuid = random_uuid();

    std::error_code ec;
    std::filesystem::create_directories(scfg.dir, ec);

    manifest m;
    m.seq = 1;
    m.volume_uuid = uuid;
    m.clean = false;  // live until unmount()
    m.shards = cfg.shards;
    m.chunk_stripes = cfg.chunk_stripes;
    m.k = cfg.shard.k;
    m.p = cfg.shard.p;
    m.element_size = cfg.shard.element_size;
    m.stripes = cfg.shard.stripes;
    m.sector_size = cfg.shard.sector_size;
    m.layout = static_cast<std::uint32_t>(cfg.shard.layout);

    std::vector<std::unique_ptr<raid::raid6_array>> arrays;
    arrays.reserve(cfg.shards);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
        raid::persist::store_config sc;
        sc.dir = shard_dir(scfg.dir, s);
        sc.direct_io = scfg.direct_io;
        sc.sync_meta = scfg.sync_meta;
        sc.sync_data = scfg.sync_data;
        m.shard_uuids.push_back(shard_uuid(uuid, s));
        auto arr = raid::persist::create_array(cfg.shard, sc,
                                               m.shard_uuids.back());
        if (!arr) return nullptr;
        // The manifest must record the p the array actually chose when
        // cfg asked for the default (p = 0 -> smallest odd prime >= k).
        if (s == 0) m.p = arr->map().rows();
        arrays.push_back(std::move(arr));
    }
    if (!create_manifest(scfg.dir, m, scfg.sync_meta)) return nullptr;

    auto vol = std::make_unique<volume>(cfg, std::move(arrays));
    vol->attach_manifest(scfg.dir, std::move(m), scfg.sync_meta);
    return vol;
}

mounted_volume mount_volume(const volume_mount_options& opts) {
    mounted_volume out;
    volume_mount_report& rep = out.report;

    manifest_probe probe = load_manifest(opts.store.dir);
    rep.manifest_torn_slots = probe.torn_slots;
    rep.manifest_fell_back = probe.fell_back;
    if (!probe.file_present) {
        rep.error = "volume manifest missing: " +
                    manifest_path(opts.store.dir);
        note_volume_mount_refused(rep);
        return out;
    }
    if (!probe.m) {
        rep.error = "volume manifest unreadable (both slots torn): " +
                    manifest_path(opts.store.dir);
        note_volume_mount_refused(rep);
        return out;
    }
    manifest m = std::move(*probe.m);
    rep.unclean = !m.clean;
    rep.shards_expected = m.shards;
    rep.census.resize(m.shards);

    // ---- read-only census: nothing is opened for writing until the
    // whole shard set checks out against the manifest ------------------
    bool census_ok = true;
    for (std::uint32_t s = 0; s < m.shards; ++s) {
        shard_census_entry& e = rep.census[s];
        e.shard = s;
        const std::vector<raid::persist::disk_probe> disks =
            raid::persist::probe_dir(shard_dir(opts.store.dir, s));
        e.dir_present = !disks.empty();
        if (!e.dir_present) {
            census_ok = false;
            if (rep.error.empty()) {
                rep.error = "shard directory missing: " +
                            shard_dir(opts.store.dir, s);
            }
            continue;
        }
        for (const raid::persist::disk_probe& d : disks) {
            if (!d.sb) continue;
            if (d.sb->array_uuid != m.shard_uuids[s]) {
                e.foreign = true;
            } else if (!geometry_matches(*d.sb, m)) {
                e.geometry_mismatch = true;
            }
        }
        if (e.foreign || e.geometry_mismatch) {
            census_ok = false;
            if (rep.error.empty()) {
                rep.error =
                    std::string(e.foreign ? "foreign shard"
                                          : "shard geometry mismatch") +
                    " in " + shard_dir(opts.store.dir, s);
            }
        }
    }

    // ---- assemble every shard (census detail is filled in even when an
    // earlier shard already failed, so the operator sees the whole set) -
    std::vector<std::unique_ptr<raid::raid6_array>> arrays(m.shards);
    std::uint32_t mounted = 0;
    if (census_ok) {
        for (std::uint32_t s = 0; s < m.shards; ++s) {
            shard_census_entry& e = rep.census[s];
            raid::persist::mount_options mo;
            mo.store.dir = shard_dir(opts.store.dir, s);
            mo.store.direct_io = opts.store.direct_io;
            mo.store.sync_meta = opts.store.sync_meta;
            mo.store.sync_data = opts.store.sync_data;
            mo.io_queue_depth = opts.io_queue_depth;
            mo.io_merge = opts.io_merge;
            mo.verify_reads = opts.verify_reads;
            mo.io_retry = opts.io_retry;
            mo.health = opts.health;
            mo.latency = opts.latency;
            mo.rebuild_batch_stripes = opts.rebuild_batch_stripes;
            mo.auto_failover = opts.auto_failover;
            mo.obs_virtual_time = opts.obs_virtual_time;
            mo.replay_intent = opts.replay_intent;
            raid::persist::mounted_array ma = raid::persist::mount_array(mo);
            e.report = ma.report;
            e.mounted = ma.report.ok;
            if (ma.report.ok) {
                arrays[s] = std::move(ma.array);
                ++mounted;
            } else if (rep.error.empty()) {
                rep.error = "shard " + std::to_string(s) +
                            " failed to mount: " + ma.report.error;
            }
        }
    }
    rep.shards_mounted = mounted;
    if (!census_ok || mounted != m.shards) {
        note_volume_mount_refused(rep);
        return out;
    }

    volume_config cfg;
    cfg.shards = m.shards;
    cfg.chunk_stripes = m.chunk_stripes;
    cfg.shard.k = m.k;
    cfg.shard.p = m.p;
    cfg.shard.element_size = m.element_size;
    cfg.shard.stripes = m.stripes;
    cfg.shard.sector_size = m.sector_size;
    cfg.shard.layout = static_cast<raid::parity_layout>(m.layout);
    cfg.shard.obs_virtual_time = opts.obs_virtual_time;
    cfg.threaded_dispatch = opts.threaded_dispatch;
    cfg.io_workers_per_shard = 0;

    // Activate: the on-disk manifest says "live" from here until a clean
    // volume::unmount() stamps it clean again.
    m.clean = false;
    if (!persist_manifest(opts.store.dir, m, opts.store.sync_meta)) {
        rep.error = "could not persist volume manifest";
        note_volume_mount_refused(rep);
        return out;
    }
    out.vol = std::make_unique<volume>(cfg, std::move(arrays));
    out.vol->attach_manifest(opts.store.dir, std::move(m),
                             opts.store.sync_meta);
    rep.ok = true;
    obs::flight_recorder::instance().record(obs::fr_kind::mount_ok,
                                            out.vol->obs().now_ns(),
                                            rep.shards_mounted, 0);
    return out;
}

}  // namespace liberation::volume::persist
