// Multi-shard chaos campaign: the volume-level counterpart of
// raid/chaos.hpp.
//
// Where the single-array campaign proves one raid6_array survives a
// compound fault plan, this one proves the *isolation story* of the
// volume layer: different shards are killed, corrupted, and slow-grayed
// concurrently — a fail-stop (with hot-spare failover and background
// rebuild) on shard A, a second fail-stop on shard B while shard C is
// dragging under an injected gray failure, silent corruption rotating
// across all shards, and (persistent runs) whole-process kills mid-write
// and mid-rebuild followed by mount_volume() reassembly — while a random
// read/write workload over the full volume address space is checked
// against a shadow copy after every read.
//
// Everything is driven by one seed through util::xoshiro256 exactly as
// in the single-array campaign: equal configs replay the same campaign
// bit-for-bit, including with threaded dispatch (per-shard dispatcher
// threads serialize each shard's ops in host order, and every random
// draw happens on the campaign thread).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "liberation/raid/chaos.hpp"
#include "liberation/volume/mount.hpp"
#include "liberation/volume/volume.hpp"

namespace liberation::volume {

/// Op indices are *arming* points; each event fires at the first
/// subsequent op where its target shard is quiet, so no shard ever holds
/// more faults than RAID-6 decodes around. Shard roles: A = rng-picked,
/// B = (A+1) mod N, C = (A+2) mod N (C falls back to A when N == 2, by
/// which time A's rebuild has long drained). >= ops disables an event.
struct volume_chaos_event_plan {
    std::size_t fail_stop_a_at_op = 1000;   ///< fail-stop a disk of shard A
    std::size_t fail_stop_b_at_op = 3000;   ///< fail-stop a disk of shard B
    /// Whole-process kill at the first op with shard A's rebuild in
    /// flight (persistent runs only): the remount must resume it from the
    /// persisted watermark.
    std::size_t kill_mid_rebuild_at_op = 1001;
    /// Gray failure on a disk of shard C (constant service latency);
    /// requires volume.shard.latency.hedged_reads for the shard to react.
    std::size_t fail_slow_at_op = 2000;
    std::size_t fail_slow_recover_at_op = 4200;
    std::uint64_t fail_slow_base_us = 20'000;
    /// Power-cut a few disk writes into some stripe update of shard B:
    /// persistent runs die and remount (intent replay), in-memory runs
    /// reboot and recover the write hole in place.
    std::size_t power_or_kill_at_op = 4800;
    /// Silently flip bits every N ops, rotating the target shard (0 =
    /// never).
    std::size_t corrupt_every = 900;
};

struct volume_chaos_config {
    std::uint64_t seed = 42;
    std::size_t ops = 6000;
    /// Shard count, per-shard geometry (must include hot spares for the
    /// fault plan), chunk size, dispatch mode.
    volume_config volume{};
    /// Run file-backed (persist::create_volume in `dir`) and exercise the
    /// kill-and-remount crash points.
    bool persist_enabled = false;
    std::string dir;
    bool sync_meta = false;
    /// Baseline transient error rates armed on every disk of every shard.
    double transient_read_rate = 0.01;
    double transient_write_rate = 0.005;
    /// Largest single read/write (0 = twice the shard stripe data size).
    std::size_t max_io_bytes = 0;
    std::uint32_t write_tenths = 4;  ///< fraction of ops that write, tenths
    volume_chaos_event_plan events{};
    /// Enable span tracing on the volume hub and every shard hub; the
    /// merged Chrome trace lands in volume_chaos_report::trace_json.
    bool trace = false;
    /// Service-level objectives asserted by the verdict (same contract
    /// as chaos_config::slo, evaluated on the volume hub).
    std::vector<obs::slo_objective> slo{};
    std::uint64_t slo_window_ns = 1'000'000'000;
    std::size_t slo_every_ops = 256;
    std::function<void(const std::string&)> log{};
};

/// A volume_chaos_config tuned like default_chaos_config: baseline
/// transients stay below trip thresholds, every shard carries two hot
/// spares, and the event plan is scaled to `ops`.
[[nodiscard]] volume_chaos_config default_volume_chaos_config(
    std::uint64_t seed, std::uint32_t shards, std::size_t ops = 6000);

struct volume_chaos_report {
    std::size_t ops = 0;
    std::size_t reads = 0;
    std::size_t writes = 0;
    // ---- correctness ----
    std::size_t mismatches = 0;     ///< reads that disagreed with the shadow
    std::size_t failed_reads = 0;
    std::size_t failed_writes = 0;
    std::size_t final_torn = 0;     ///< stripes inconsistent at the end
    std::size_t scrub_uncorrectable = 0;
    // ---- events that actually fired ----
    std::size_t injected_fail_stops = 0;  ///< across shards A and B
    std::size_t corruptions_injected = 0;
    std::size_t power_losses = 0;       ///< in-place reboots (non-persist)
    std::size_t resynced_stripes = 0;   ///< write-hole recovery
    std::size_t resilver_healed = 0;
    std::size_t settle_scrub_healed = 0;
    std::uint64_t spares_promoted = 0;
    std::uint64_t rebuilds_completed = 0;
    // ---- fail-slow tolerance (shard C) ----
    std::size_t fail_slow_injected = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t hedged_reads = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t slow_trips = 0;
    std::uint64_t slow_recoveries = 0;
    // ---- kill-and-remount (persistent runs) ----
    std::size_t kills = 0;
    std::size_t remounts = 0;            ///< successful mount_volume() calls
    std::size_t mount_failures = 0;
    std::size_t mount_intent_replayed = 0;
    std::size_t rebuilds_resumed = 0;
    std::size_t manifest_torn_slots = 0;  ///< across every remount
    volume_stats stats{};                 ///< final roll-up, kills included
    raid::chaos_phase_times phases{};
    std::string metrics_text;  ///< volume hub exposition at campaign end
    /// Merged volume+shard Chrome trace (volume_chaos_config::trace).
    std::string trace_json;
    /// SLO verdict (vacuously ok with no objectives) and the engine's
    /// final per-objective rendering.
    bool slo_ok = true;
    std::string slo_text;
    bool success = false;

    /// Zero-corruption predicate (same contract as chaos_report::clean).
    [[nodiscard]] bool clean() const noexcept {
        return mismatches == 0 && failed_reads == 0 && failed_writes == 0 &&
               final_torn == 0 && scrub_uncorrectable == 0 &&
               stats.shard_total.reads_unrecoverable == 0 &&
               stats.shard_total.rebuild_sessions_stalled == 0;
    }
};

/// Run one multi-shard campaign. Deterministic: equal configs produce
/// equal reports.
volume_chaos_report run_volume_chaos_campaign(const volume_chaos_config& cfg);

}  // namespace liberation::volume
