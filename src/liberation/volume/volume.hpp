// Scale-out volume: one logical address space striped across N
// independent raid6_array shards.
//
// Placement is chunk-granular round-robin. The volume address space is
// cut into fixed chunks of `chunk_stripes` whole stripes worth of data
// bytes; chunk c lives on shard (c mod N) at local chunk (c div N):
//
//   chunk_bytes = chunk_stripes * stripe_data_size
//   chunk       = addr / chunk_bytes
//   shard       = chunk % shards
//   local addr  = (chunk / shards) * chunk_bytes + addr % chunk_bytes
//
// Consecutive chunks of one shard map to consecutive *local* chunks, so
// however many chunks a host extent spans, its footprint on each shard is
// one gapless local extent — every host op becomes at most one read or
// one write per shard, which keeps the shards' full-stripe and pipelined
// aio paths effective.
//
// Each shard is a complete raid6_array: its own io_policy, health and
// latency monitors, hot-spare pool, intent log, integrity regions,
// virtual clock, and obs hub. Faults are therefore shard-local: a
// double-failure degrades one shard's stripes while the other shards
// serve at full speed, and a background rebuild drains inside one shard
// only. The volume adds a thin dispatcher on top:
//
//   * multi-shard ops fan out on per-shard dispatcher threads (one
//     single-thread pool per shard, so per-shard op order equals host op
//     order — results stay deterministic) and barrier per host op;
//   * each shard can be given a private aio worker pool
//     (io_workers_per_shard), lighting up aio_config::workers so batches
//     for different disks of the same shard overlap too;
//   * a volume-level obs hub rolls the shards up: volume_* counters and
//     histograms plus per-shard labeled series (shard="N").
//
// Persistence (volume/mount.hpp) gives every shard its own store
// directory and adds a CRC-protected volume manifest naming the shard
// set; see volume/manifest.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "liberation/obs/obs.hpp"
#include "liberation/raid/array.hpp"
#include "liberation/util/thread_pool.hpp"
#include "liberation/volume/manifest.hpp"

namespace liberation::volume {

struct volume_config {
    /// Number of raid6_array shards the address space stripes across.
    std::uint32_t shards = 1;
    /// Geometry and behaviour of every shard (identical by construction).
    /// `shard.io_workers` must stay null — the volume owns per-shard
    /// pools; see io_workers_per_shard.
    raid::array_config shard{};
    /// Whole stripes of data per placement chunk. Must divide
    /// shard.stripes. 1 = finest interleave (best single-op fan-out).
    std::size_t chunk_stripes = 1;
    /// Fan multi-shard ops out on per-shard dispatcher threads. Off =
    /// shards are visited sequentially on the caller's thread
    /// (byte-identical results either way).
    bool threaded_dispatch = true;
    /// Threads in each shard's private aio worker pool (wired into
    /// array_config::io_workers). 0 = shards drive their queue pairs
    /// inline. Per-disk order is preserved either way, but cross-disk
    /// write order becomes nondeterministic with workers — keep 0 for
    /// seeded power-loss / chaos replay (virtual-time *totals* stay
    /// deterministic regardless; see docs/VOLUME.md).
    std::size_t io_workers_per_shard = 0;
};

/// Volume-level operation counters plus the sum of every shard's
/// array_stats. Snapshot semantics match raid::array_stats.
struct volume_stats {
    std::uint64_t reads = 0;            ///< host read ops
    std::uint64_t writes = 0;           ///< host write ops
    std::uint64_t failed_reads = 0;     ///< host reads refused by a shard
    std::uint64_t failed_writes = 0;    ///< host writes refused by a shard
    std::uint64_t chunks_routed = 0;    ///< placement chunks touched
    std::uint64_t multi_shard_ops = 0;  ///< host ops spanning > 1 shard
    std::uint64_t staged_bytes = 0;     ///< gather/scatter through staging
    raid::array_stats shard_total{};    ///< all shards summed
};

/// Where a volume byte lives.
struct extent_location {
    std::uint32_t shard = 0;
    std::size_t addr = 0;  ///< shard-local byte address
};

/// Sum `add` into `into` field by field (shared by the stats roll-up and
/// the chaos campaigns' cross-remount accounting).
void accumulate(raid::array_stats& into, const raid::array_stats& add);

class volume {
public:
    /// Build an in-memory volume of cfg.shards fresh arrays.
    explicit volume(const volume_config& cfg);
    /// Adopt pre-built shards (the persistence mount path). `arrays`
    /// must all share the geometry cfg.shard describes.
    volume(const volume_config& cfg,
           std::vector<std::unique_ptr<raid::raid6_array>> arrays);
    ~volume();

    volume(const volume&) = delete;
    volume& operator=(const volume&) = delete;

    [[nodiscard]] std::uint32_t shard_count() const noexcept {
        return static_cast<std::uint32_t>(shards_.size());
    }
    [[nodiscard]] raid::raid6_array& shard(std::uint32_t s) {
        return *shards_[s];
    }
    [[nodiscard]] const raid::raid6_array& shard(std::uint32_t s) const {
        return *shards_[s];
    }
    /// Total data capacity: shards * per-shard capacity.
    [[nodiscard]] std::size_t capacity() const noexcept {
        return shards_.size() * shards_[0]->capacity();
    }
    [[nodiscard]] std::size_t chunk_bytes() const noexcept {
        return chunk_bytes_;
    }

    /// Map a volume byte address to (shard, shard-local address).
    [[nodiscard]] extent_location locate(std::size_t addr) const noexcept;

    /// Read [addr, addr+out.size()); false if any touched shard refused
    /// (more than two unavailable columns in one of its stripes).
    [[nodiscard]] bool read(std::size_t addr, std::span<std::byte> out);

    /// Write [addr, addr+in.size()); false if any touched shard refused.
    [[nodiscard]] bool write(std::size_t addr, std::span<const std::byte> in);

    [[nodiscard]] volume_stats stats() const;

    /// Volume-level metrics/tracing hub. volume_* counters and the
    /// per-shard labeled series (liberation_shard_*{shard="N"}) are
    /// mirrored at export time; shard hubs stay independently scrapable
    /// via shard(s).obs().
    [[nodiscard]] obs::hub& obs() noexcept { return obs_; }

    /// Turn span tracing on/off for the volume hub and every shard hub in
    /// one step, so a host op's causal tree is captured end to end.
    void set_tracing(bool on) noexcept;

    /// Merged Chrome trace across the volume tracer and all shard
    /// tracers: pid 1 is the volume ("volume" process), pid 1+s+1 is
    /// shard s (named shard="s"), with flow arrows joining each host
    /// op's volume spans to the shard/array/aio spans it caused.
    [[nodiscard]] std::string trace_json() const;

    [[nodiscard]] std::uint32_t failed_disk_count() const noexcept;
    [[nodiscard]] bool rebuild_active() const noexcept;
    /// Advance every shard's background rebuild by up to
    /// `max_stripes_per_shard`; returns total stripes processed.
    std::size_t service_background_rebuild(std::size_t max_stripes_per_shard);
    void drain_background_rebuilds();

    // ---- persistence (volume/mount.hpp) -------------------------------

    [[nodiscard]] bool persistent() const noexcept {
        return manifest_.has_value();
    }
    /// Adopt the on-disk manifest this volume was mounted from (called by
    /// create_volume/mount_volume; the manifest is persisted unclean).
    void attach_manifest(std::string dir, persist::manifest m, bool sync);
    [[nodiscard]] const persist::manifest* manifest() const noexcept {
        return manifest_ ? &*manifest_ : nullptr;
    }
    /// Clean shutdown: unmount every shard, then persist the manifest
    /// clean. False if any shard superblock or the manifest could not be
    /// written. No-op (true) for in-memory volumes.
    bool unmount();

private:
    /// One shard's gapless share of a host extent.
    struct shard_plan {
        bool touched = false;
        std::size_t lo = 0;  ///< shard-local extent [lo, hi)
        std::size_t hi = 0;
        /// Slice of the shared staging buffer (multi-piece plans only).
        std::size_t stage_off = 0;
        /// Host-buffer byte offset of the piece starting at local `lo`
        /// (later pieces follow in lock-step chunk order).
        struct piece {
            std::size_t host_off;
            std::size_t local_off;
            std::size_t len;
        };
        std::vector<piece> pieces;
    };

    void init_obs();
    /// Cut [addr, addr+len) into per-shard gapless extents; returns the
    /// number of shards touched and counts chunks routed.
    std::uint32_t plan(std::size_t addr, std::size_t len);
    /// Run op(s) for every touched shard, fanned out when configured.
    bool dispatch(const std::function<bool(std::uint32_t)>& op);

    std::size_t chunk_bytes_ = 0;
    bool threaded_ = false;

    // Pools are declared before the arrays so the arrays (whose aio
    // engines reference io_pools_) are destroyed first.
    std::vector<std::unique_ptr<util::thread_pool>> io_pools_;
    std::vector<std::unique_ptr<util::thread_pool>> dispatch_pools_;
    std::vector<std::unique_ptr<raid::raid6_array>> shards_;

    std::vector<shard_plan> plans_;       // reused per op
    std::vector<std::uint8_t> results_;   // per-shard op outcome
    std::vector<std::byte> staging_;      // gather/scatter bounce buffer

    // Live counters (relaxed; mirrored into obs_ by a collector).
    std::atomic<std::uint64_t> reads_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> failed_reads_{0};
    std::atomic<std::uint64_t> failed_writes_{0};
    std::atomic<std::uint64_t> chunks_routed_{0};
    std::atomic<std::uint64_t> multi_shard_ops_{0};
    std::atomic<std::uint64_t> staged_bytes_{0};

    obs::hub obs_;
    obs::latency_histogram* read_ns_ = nullptr;
    obs::latency_histogram* write_ns_ = nullptr;

    std::optional<persist::manifest> manifest_;
    std::string manifest_dir_;
    bool manifest_sync_ = false;
};

}  // namespace liberation::volume
