// Create / mount entry points for persistent volumes.
//
// A persistent volume is a directory of per-shard array stores plus the
// volume manifest (see volume/manifest.hpp for the layout). Mounting is
// a two-phase shard census, deliberately read-only until the set is
// known good:
//
//   1. *Manifest election*: decode both manifest slots, keep the valid
//      copy with the larger seq. A torn newest slot falls back to the
//      previous epoch (reported); both slots torn refuses loudly.
//   2. *Read-only census*: probe every `shard-NN/` directory against the
//      manifest before mounting anything. A missing directory, a shard
//      whose superblocks carry a different array UUID (a foreign shard
//      dropped into the slot), or a geometry that contradicts the
//      manifest is *reported* in the census and fails the mount — the
//      foreign shard's files are never opened for writing.
//   3. *Assemble*: only a fully clean census proceeds to per-shard
//      mount_array (which runs the usual member election, stale-kick,
//      and intent replay inside each shard). Any shard refusing to
//      assemble fails the volume mount; the census carries each shard's
//      full mount_report either way.
//   4. *Activate*: the manifest is persisted unclean before the volume
//      is handed out; volume::unmount() unmounts every shard and stamps
//      it clean again.
//
// See docs/VOLUME.md for the mount state machine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "liberation/raid/persist/mount.hpp"
#include "liberation/volume/volume.hpp"

namespace liberation::volume::persist {

/// Backing-store knobs shared by every shard directory.
struct volume_store_config {
    std::string dir;
    bool direct_io = false;
    bool sync_meta = false;
    bool sync_data = false;
};

/// Runtime policy for mounting (geometry and shard set come from the
/// manifest; none of this is persisted). Mirrors raid::persist::
/// mount_options, applied to every shard.
struct volume_mount_options {
    volume_store_config store;
    std::size_t io_queue_depth = 8;
    bool io_merge = true;
    bool verify_reads = true;
    raid::io_policy_config io_retry{};
    raid::health_config health{};
    raid::latency_config latency{};
    std::size_t rebuild_batch_stripes = 4;
    bool auto_failover = true;
    bool obs_virtual_time = false;
    bool replay_intent = true;
    /// Fan multi-shard ops out on dispatcher threads (volume_config::
    /// threaded_dispatch).
    bool threaded_dispatch = true;
};

/// One shard's slot in the mount census.
struct shard_census_entry {
    std::uint32_t shard = 0;
    bool dir_present = false;        ///< shard-NN/ held at least one disk file
    bool foreign = false;            ///< superblock UUID not in the manifest
    bool geometry_mismatch = false;  ///< superblock contradicts the manifest
    bool mounted = false;
    raid::persist::mount_report report;  ///< per-shard detail (when attempted)
};

struct volume_mount_report {
    bool ok = false;
    std::string error;
    int manifest_torn_slots = 0;
    bool manifest_fell_back = false;  ///< previous manifest epoch used
    bool unclean = false;             ///< last shutdown was not unmount()
    std::uint32_t shards_expected = 0;
    std::uint32_t shards_mounted = 0;
    std::vector<shard_census_entry> census;
};

struct mounted_volume {
    std::unique_ptr<volume> vol;
    volume_mount_report report;
};

/// Format a fresh persistent volume in `scfg.dir`: one store directory
/// per shard plus the primed manifest. A zero `uuid` draws a random one;
/// shard UUIDs are derived from it. `cfg.io_workers_per_shard` must be 0
/// (mounted shards drive their queue pairs inline). Returns null when
/// any backing file cannot be created.
[[nodiscard]] std::unique_ptr<volume> create_volume(
    const volume_config& cfg, const volume_store_config& scfg,
    std::uint64_t uuid = 0);

/// Reassemble the volume persisted in `opts.store.dir` (see file header).
[[nodiscard]] mounted_volume mount_volume(const volume_mount_options& opts);

}  // namespace liberation::volume::persist
