#include "liberation/volume/chaos.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"

namespace liberation::volume {

namespace {

[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t n) {
    return seed ^ (0x9e3779b97f4a7c15ULL * (n + 1));
}

[[nodiscard]] std::uint32_t pick_online_disk(raid::raid6_array& a,
                                             util::xoshiro256& rng) {
    const std::uint32_t n = a.disk_count();
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto d = static_cast<std::uint32_t>(rng.next_below(n));
        if (a.disk(d).online()) return d;
    }
    for (std::uint32_t d = 0; d < n; ++d)
        if (a.disk(d).online()) return d;
    return 0;  // all offline; caller's event will be a no-op
}

/// Fold a generation's final counters into the campaign totals before
/// the volume object is destroyed by a kill.
void fold(volume_stats& into, const volume_stats& s) {
    into.reads += s.reads;
    into.writes += s.writes;
    into.failed_reads += s.failed_reads;
    into.failed_writes += s.failed_writes;
    into.chunks_routed += s.chunks_routed;
    into.multi_shard_ops += s.multi_shard_ops;
    into.staged_bytes += s.staged_bytes;
    accumulate(into.shard_total, s.shard_total);
}

}  // namespace

volume_chaos_config default_volume_chaos_config(std::uint64_t seed,
                                                std::uint32_t shards,
                                                std::size_t ops) {
    volume_chaos_config cfg;
    cfg.seed = seed;
    cfg.ops = ops;
    cfg.volume.shards = shards;
    cfg.volume.chunk_stripes = 1;
    cfg.volume.threaded_dispatch = true;
    raid::array_config& a = cfg.volume.shard;
    a.k = 4;
    a.element_size = 512;
    a.stripes = 32;
    a.sector_size = 512;
    // Two spares per shard: one for its planned fail-stop, one of margin
    // should baseline errors ever trip a disk.
    a.hot_spares = 2;
    a.rebuild_batch_stripes = 4;
    // Same trip calculus as default_chaos_config: baseline transients are
    // retry-masked and must never trip a disk.
    a.health.max_transient_errors = 0;
    a.health.max_read_errors = 20;
    a.health.max_write_errors = 1;
    cfg.events.fail_stop_a_at_op = ops / 6;
    cfg.events.kill_mid_rebuild_at_op = ops / 6 + 1;
    cfg.events.fail_slow_at_op = ops / 3;
    cfg.events.fail_stop_b_at_op = ops / 2;
    cfg.events.fail_slow_recover_at_op = ops * 7 / 10;
    cfg.events.power_or_kill_at_op = ops * 4 / 5;
    cfg.events.corrupt_every = 900;
    return cfg;
}

volume_chaos_report run_volume_chaos_campaign(const volume_chaos_config& cfg) {
    volume_chaos_report rep;
    const std::uint32_t nshards = cfg.volume.shards;
    std::unique_ptr<volume> vol;
    if (cfg.persist_enabled) {
        persist::volume_store_config scfg;
        scfg.dir = cfg.dir;
        scfg.sync_meta = cfg.sync_meta;
        // Fixed uuid: the campaign replays bit-for-bit from the seed.
        vol = persist::create_volume(cfg.volume, scfg,
                                     derive_seed(cfg.seed, 0xB011) | 1);
        if (!vol) {
            ++rep.mount_failures;
            return rep;
        }
    } else {
        vol = std::make_unique<volume>(cfg.volume);
    }
    util::xoshiro256 rng(cfg.seed);
    const auto log = [&](const std::string& msg) {
        if (cfg.log) cfg.log(msg);
    };
    if (cfg.trace) vol->set_tracing(true);
    // SLO engine over the volume hub; rebuilt per kill-and-remount
    // generation (the hub dies with the volume), sticky verdict folded.
    std::unique_ptr<obs::slo_engine> slo;
    bool slo_ever_violated = false;
    const auto make_slo = [&] {
        if (cfg.slo.empty()) return;
        slo = std::make_unique<obs::slo_engine>(vol->obs(), cfg.slo,
                                                cfg.slo_window_ns);
        slo->evaluate();  // baseline frame at generation start
    };
    make_slo();
    const auto capture_obs = [&] {
        if (slo != nullptr) {
            slo->evaluate();
            slo_ever_violated = slo_ever_violated || slo->ever_violated();
            rep.slo_text = slo->text();
            rep.slo_ok = !slo_ever_violated;
        }
        rep.metrics_text = vol->obs().metrics_text();
        if (cfg.trace) rep.trace_json = vol->trace_json();
    };
    const auto note_failed_verdict = [&] {
        if (rep.success) return;
        obs::flight_recorder::instance().record(obs::fr_kind::verdict_failed,
                                                vol->obs().now_ns());
        obs::postmortem_bundle b;
        b.metrics_text = rep.metrics_text;
        b.trace_json = rep.trace_json;
        b.slo_text = rep.slo_text;
        (void)obs::auto_postmortem("chaos_verdict", nullptr, std::move(b));
    };
    util::stopwatch phase_clock;

    volume_stats acc{};
    std::uint64_t generation = 0;

    const auto arm_transients = [&] {
        if (cfg.transient_read_rate <= 0.0 &&
            cfg.transient_write_rate <= 0.0) {
            return;
        }
        for (std::uint32_t s = 0; s < nshards; ++s) {
            raid::raid6_array& a = vol->shard(s);
            for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
                a.disk(d).set_transient_fault_rates(
                    cfg.transient_read_rate, cfg.transient_write_rate,
                    derive_seed(cfg.seed,
                                std::uint64_t{s} * 64 + d +
                                    8192 * generation));
            }
        }
    };
    arm_transients();

    // Whole-process death: every shard's array object is destroyed with
    // no unmount, then mount_volume() reassembles the set (manifest
    // election, shard census, per-shard member election + intent replay).
    const auto kill_and_remount = [&](const std::string& why) {
        fold(acc, vol->stats());
        // The engine references the dying hub: fold its verdict and drop
        // it before the volume goes away.
        if (slo != nullptr) {
            slo->evaluate();
            slo_ever_violated = slo_ever_violated || slo->ever_violated();
            slo.reset();
        }
        vol.reset();
        ++rep.kills;
        log("kill (" + why + "): process state dropped, remounting volume");
        util::stopwatch mount_clock;
        persist::volume_mount_options mo;
        mo.store.dir = cfg.dir;
        mo.store.sync_meta = cfg.sync_meta;
        mo.io_queue_depth = cfg.volume.shard.io_queue_depth;
        mo.io_merge = cfg.volume.shard.io_merge;
        mo.verify_reads = cfg.volume.shard.verify_reads;
        mo.io_retry = cfg.volume.shard.io_retry;
        mo.health = cfg.volume.shard.health;
        mo.latency = cfg.volume.shard.latency;
        mo.rebuild_batch_stripes = cfg.volume.shard.rebuild_batch_stripes;
        mo.auto_failover = cfg.volume.shard.auto_failover;
        mo.obs_virtual_time = cfg.volume.shard.obs_virtual_time;
        mo.threaded_dispatch = cfg.volume.threaded_dispatch;
        persist::mounted_volume m = persist::mount_volume(mo);
        rep.phases.mount_replay_s += mount_clock.seconds();
        rep.manifest_torn_slots +=
            static_cast<std::size_t>(m.report.manifest_torn_slots);
        if (!m.report.ok) {
            ++rep.mount_failures;
            log("volume remount FAILED: " + m.report.error);
            return false;
        }
        vol = std::move(m.vol);
        ++rep.remounts;
        for (const persist::shard_census_entry& e : m.report.census) {
            rep.mount_intent_replayed += e.report.intent_replayed;
            rep.rebuilds_resumed += e.report.rebuilds_resumed;
        }
        ++generation;
        arm_transients();
        if (cfg.trace) vol->set_tracing(true);
        make_slo();
        log("remounted: " + std::to_string(m.report.shards_mounted) + "/" +
            std::to_string(m.report.shards_expected) + " shards");
        return true;
    };

    // Initial fill + shadow copy: every later read has a ground truth.
    const std::size_t cap = vol->capacity();
    std::vector<std::byte> shadow(cap);
    rng.fill(shadow);
    if (!vol->write(0, shadow)) {
        ++rep.failed_writes;
        rep.stats = vol->stats();
        rep.phases.fill_s = phase_clock.seconds();
        capture_obs();
        return rep;
    }
    rep.phases.fill_s = phase_clock.seconds();

    const std::size_t stripe_bytes = vol->shard(0).map().stripe_data_size();
    const std::size_t max_io = cfg.max_io_bytes != 0
                                   ? std::min(cfg.max_io_bytes, cap)
                                   : std::min(2 * stripe_bytes, cap);
    std::vector<std::byte> buf(max_io);

    // Shard roles: concurrent faults land on *different* shards.
    const auto shard_a = static_cast<std::uint32_t>(rng.next_below(nshards));
    const std::uint32_t shard_b = (shard_a + 1) % nshards;
    const std::uint32_t shard_c =
        nshards >= 3 ? (shard_a + 2) % nshards : shard_a;

    const volume_chaos_event_plan& ev = cfg.events;
    bool fail_a_pending = false;
    bool fail_b_pending = false;
    bool power_pending = false;
    bool power_armed = false;
    bool kill_write_armed = false;  // on the budget's loss: kill, not reboot
    bool kill_rebuild_pending = false;
    bool fail_slow_pending = false;
    bool fail_slow_recover_pending = false;
    std::uint32_t slow_victim = UINT32_MAX;

    const auto quiet = [&](std::uint32_t s) {
        return vol->shard(s).failed_disk_count() == 0 &&
               !vol->shard(s).rebuild_active() && vol->shard(s).powered() &&
               !power_armed;
    };
    const auto corruptible = [&](std::uint32_t s) {
        raid::raid6_array& a = vol->shard(s);
        return a.powered() && !power_armed && a.failed_disk_count() == 0 &&
               a.rebuilding_disk_count() <= 1 && a.journal().size() == 0;
    };
    std::size_t data_flips = 0;

    const auto fail_stop = [&](std::uint32_t s, std::size_t op) {
        const std::uint32_t victim = pick_online_disk(vol->shard(s), rng);
        log("op " + std::to_string(op) + ": fail-stop shard " +
            std::to_string(s) + " disk " + std::to_string(victim));
        vol->shard(s).fail_disk(victim);
        ++rep.injected_fail_stops;
    };

    phase_clock.restart();
    for (std::size_t op = 0; op < cfg.ops; ++op) {
        if (slo != nullptr && cfg.slo_every_ops != 0 && op != 0 &&
            op % cfg.slo_every_ops == 0) {
            slo->evaluate();
        }
        if (op == ev.fail_stop_a_at_op) fail_a_pending = true;
        if (op == ev.fail_stop_b_at_op) fail_b_pending = true;
        if (op == ev.power_or_kill_at_op) power_pending = true;
        if (op == ev.fail_slow_at_op) fail_slow_pending = true;
        if (op == ev.fail_slow_recover_at_op) fail_slow_recover_pending = true;
        if (cfg.persist_enabled && op == ev.kill_mid_rebuild_at_op) {
            kill_rebuild_pending = true;
        }

        // The mid-rebuild kill inverts the quiet gate: it fires at the
        // first op with shard A's rebuild actually in flight, so the
        // remount must resume it from the persisted watermark while every
        // other shard reassembles clean.
        if (kill_rebuild_pending && vol->shard(shard_a).rebuild_active() &&
            vol->shard(shard_a).powered() && !power_armed) {
            kill_rebuild_pending = false;
            log("op " + std::to_string(op) + ": killing mid-rebuild of shard " +
                std::to_string(shard_a));
            if (!kill_and_remount("mid-rebuild")) {
                rep.stats = acc;
                return rep;
            }
        }

        // Fire at most one armed event per op, oldest first. Gates are
        // per-shard: shard B can take its fail-stop while shard A is
        // still rebuilding and shard C is dragging.
        if (fail_a_pending && quiet(shard_a)) {
            fail_stop(shard_a, op);
            fail_a_pending = false;
        } else if (fail_b_pending && quiet(shard_b)) {
            fail_stop(shard_b, op);
            fail_b_pending = false;
        } else if (fail_slow_pending && quiet(shard_c)) {
            const std::uint32_t victim =
                pick_online_disk(vol->shard(shard_c), rng);
            raid::latency_profile prof;
            prof.kind = raid::latency_profile::shape::constant;
            prof.base_us = ev.fail_slow_base_us;
            prof.jitter_us = ev.fail_slow_base_us / 4;
            vol->shard(shard_c).disk(victim).set_latency_profile(
                prof, derive_seed(cfg.seed, 2000 + 64 * generation));
            slow_victim = victim;
            ++rep.fail_slow_injected;
            fail_slow_pending = false;
            log("op " + std::to_string(op) + ": fail-slow on shard " +
                std::to_string(shard_c) + " disk " + std::to_string(victim));
        } else if (power_pending && quiet(shard_b)) {
            const auto budget = 1 + rng.next_below(4);
            log("op " + std::to_string(op) + ": power loss armed on shard " +
                std::to_string(shard_b) + " after " + std::to_string(budget) +
                " disk writes" +
                (cfg.persist_enabled ? " (kill on loss)" : ""));
            vol->shard(shard_b).simulate_power_loss_after(budget);
            power_pending = false;
            power_armed = true;
            kill_write_armed = cfg.persist_enabled;
        }

        // Silent corruption rotates across shards, independent of the
        // armed-event chain — flips are supposed to land on degraded and
        // rebuilding shards too (<= 1 masked column keeps each flip
        // inside the two-erasure decode budget).
        if (ev.corrupt_every != 0 && op % ev.corrupt_every == 0 && op != 0) {
            const auto s =
                static_cast<std::uint32_t>(data_flips % nshards);
            if (corruptible(s)) {
                raid::raid6_array& a = vol->shard(s);
                const std::size_t stripe =
                    (data_flips * 7) % a.map().stripes();
                ++data_flips;
                const auto c =
                    static_cast<std::uint32_t>(rng.next_below(a.map().n()));
                const raid::strip_location loc = a.map().locate(stripe, c);
                const std::size_t block = a.integrity_block();
                const std::size_t off =
                    loc.offset +
                    rng.next_below(a.map().strip_size() / block) * block;
                const std::size_t len =
                    1 + rng.next_below(std::min<std::size_t>(64, block));
                a.disk(loc.disk).inject_silent_corruption(off, len, rng);
                ++rep.corruptions_injected;
                log("op " + std::to_string(op) +
                    ": silent corruption on shard " + std::to_string(s) +
                    " disk " + std::to_string(loc.disk) + " stripe " +
                    std::to_string(stripe));
            }
        }

        // The straggler recovers; the quarantine must now be lifted by
        // the monitor's own probes, not by the injection harness.
        if (fail_slow_recover_pending && !fail_slow_pending &&
            slow_victim != UINT32_MAX) {
            if (vol->shard(shard_c).disk(slow_victim)
                    .latency_profile_armed()) {
                vol->shard(shard_c).disk(slow_victim).clear_latency_profile();
                log("op " + std::to_string(op) + ": fail-slow shard " +
                    std::to_string(shard_c) + " disk " +
                    std::to_string(slow_victim) + " recovered");
            }
            fail_slow_recover_pending = false;
        }

        // One workload op over the full volume address space.
        const bool do_write = rng.next_below(10) < cfg.write_tenths;
        const std::size_t len = 1 + rng.next_below(max_io);
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (do_write) {
            rng.fill(io);
            ++rep.writes;
            if (!vol->write(addr, io)) {
                ++rep.failed_writes;
                log("op " + std::to_string(op) + ": write failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (vol->shard(shard_b).powered()) {
                std::memcpy(shadow.data() + addr, buf.data(), len);
            }
        } else {
            ++rep.reads;
            if (!vol->read(addr, io)) {
                ++rep.failed_reads;
                log("op " + std::to_string(op) + ": read failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (std::memcmp(shadow.data() + addr, buf.data(), len) !=
                       0) {
                ++rep.mismatches;
                log("op " + std::to_string(op) + ": shadow mismatch at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            }
        }
        ++rep.ops;

        // Shard B's power budget exhausted mid-op: the other shards
        // committed their pieces, B holds a torn stripe. Persistent runs
        // die and remount (intent replay heals B); in-memory runs reboot
        // B and recover its write hole in place. Either way the op's
        // extent is re-read to reconcile the shadow with whatever mix of
        // old/new data the torn write left behind.
        if (!vol->shard(shard_b).powered()) {
            power_armed = false;
            if (kill_write_armed) {
                kill_write_armed = false;
                if (!kill_and_remount("mid-write")) {
                    rep.stats = acc;
                    return rep;
                }
            } else {
                ++rep.power_losses;
                log("op " + std::to_string(op) + ": shard " +
                    std::to_string(shard_b) + " power lost, rebooting");
                vol->shard(shard_b).reboot();
                for (int t = 0;
                     t < 16 && vol->shard(shard_b).journal().size() != 0; ++t) {
                    rep.resynced_stripes +=
                        vol->shard(shard_b).recover_write_hole();
                }
            }
            if (do_write) {
                if (vol->read(addr, io)) {
                    std::memcpy(shadow.data() + addr, buf.data(), len);
                } else {
                    ++rep.failed_reads;
                }
            }
        }
    }
    rep.phases.workload_s = phase_clock.seconds();

    // Settle: drain every shard's rebuild, disarm every fault stream,
    // recover write holes, then heal what is left.
    phase_clock.restart();
    vol->drain_background_rebuilds();
    for (std::uint32_t s = 0; s < nshards; ++s) {
        raid::raid6_array& a = vol->shard(s);
        for (std::uint32_t d = 0; d < a.disk_count(); ++d) {
            a.disk(d).clear_transient_faults();
            a.disk(d).clear_latency_profile();
        }
        for (int t = 0; t < 16 && a.journal().size() != 0; ++t) {
            rep.resynced_stripes += a.recover_write_hole();
        }
        rep.resilver_healed += a.resilver();
    }
    rep.phases.settle_s = phase_clock.seconds();

    phase_clock.restart();
    for (std::uint32_t s = 0; s < nshards; ++s) {
        const raid::scrub_summary settle = scrub_array(vol->shard(s));
        rep.settle_scrub_healed += settle.repaired_data +
                                   settle.repaired_parity +
                                   settle.repaired_metadata;
        rep.final_torn += settle.parity_fallback_repairs;
        rep.scrub_uncorrectable += settle.uncorrectable;
    }
    rep.phases.settle_scrub_s = phase_clock.seconds();

    // Final verification: the full volume against the shadow copy...
    phase_clock.restart();
    std::vector<std::byte> out(cap);
    if (!vol->read(0, out)) {
        ++rep.failed_reads;
    } else if (!std::equal(out.begin(), out.end(), shadow.begin())) {
        ++rep.mismatches;
        log("final full-volume read disagrees with the shadow copy");
    }
    rep.phases.final_verify_s = phase_clock.seconds();

    // ...then per-shard parity consistency: the settle scrubs healed
    // every injected fault, so any repair here means some path left a
    // stripe inconsistent after recovery claimed it was done.
    phase_clock.restart();
    for (std::uint32_t s = 0; s < nshards; ++s) {
        const raid::scrub_summary scrub = scrub_array(vol->shard(s));
        rep.final_torn += scrub.repaired_data + scrub.repaired_parity;
        rep.scrub_uncorrectable += scrub.uncorrectable;
    }
    rep.phases.final_scrub_s = phase_clock.seconds();

    fold(acc, vol->stats());
    rep.stats = acc;
    rep.spares_promoted = rep.stats.shard_total.spares_promoted;
    rep.rebuilds_completed = rep.stats.shard_total.rebuilds_completed;
    rep.deadline_exceeded = rep.stats.shard_total.deadline_exceeded;
    rep.hedged_reads = rep.stats.shard_total.hedged_reads;
    rep.hedge_wins = rep.stats.shard_total.hedge_wins;
    rep.slow_trips = rep.stats.shard_total.slow_trips;
    rep.slow_recoveries = rep.stats.shard_total.slow_recoveries;

    bool events_ok = true;
    for (std::uint32_t s = 0; s < nshards; ++s) {
        events_ok = events_ok && vol->shard(s).journal().size() == 0;
    }
    std::size_t stops_planned = 0;
    if (ev.fail_stop_a_at_op < cfg.ops) ++stops_planned;
    if (ev.fail_stop_b_at_op < cfg.ops) ++stops_planned;
    events_ok = events_ok && rep.injected_fail_stops >= stops_planned;
    if (cfg.volume.shard.hot_spares > 0 && stops_planned > 0) {
        events_ok = events_ok && rep.spares_promoted >= stops_planned &&
                    rep.rebuilds_completed >= stops_planned;
    }
    if (ev.corrupt_every != 0 && ev.corrupt_every < cfg.ops) {
        events_ok = events_ok && rep.corruptions_injected >= 1 &&
                    rep.stats.shard_total.reads_self_healed +
                            rep.settle_scrub_healed >=
                        1;
    }
    if (cfg.volume.shard.latency.hedged_reads &&
        ev.fail_slow_at_op < cfg.ops) {
        events_ok = events_ok && rep.fail_slow_injected >= 1 &&
                    rep.deadline_exceeded >= 1 && rep.hedge_wins >= 1 &&
                    rep.slow_trips >= 1;
        if (ev.fail_slow_recover_at_op < cfg.ops) {
            events_ok = events_ok && rep.slow_recoveries >= 1;
        }
    }
    if (ev.power_or_kill_at_op < cfg.ops && !cfg.persist_enabled) {
        events_ok = events_ok && rep.power_losses >= 1;
    }
    if (cfg.persist_enabled) {
        events_ok = events_ok && rep.mount_failures == 0 &&
                    rep.kills == rep.remounts;
        if (ev.kill_mid_rebuild_at_op < cfg.ops) {
            events_ok = events_ok && rep.kills >= 1 &&
                        rep.rebuilds_resumed >= 1;
        }
        if (ev.power_or_kill_at_op < cfg.ops) {
            events_ok = events_ok && rep.mount_intent_replayed >= 1;
        }
        capture_obs();
        events_ok = events_ok && vol->unmount();
        rep.success = rep.clean() && events_ok && rep.slo_ok;
        note_failed_verdict();
        return rep;
    }
    capture_obs();
    rep.success = rep.clean() && events_ok && rep.slo_ok;
    note_failed_verdict();
    return rep;
}

}  // namespace liberation::volume
