// On-disk manifest of a persistent volume (format v1).
//
// A volume directory holds one subdirectory per shard plus one small
// metadata file:
//
//   <dir>/volume.manifest        [ slot A, 4 KiB ][ slot B, 4 KiB ]
//   <dir>/shard-00/disk-NN.img   per-shard array stores (persist/store.hpp)
//   <dir>/shard-01/disk-NN.img
//   ...
//
// The manifest records what no shard superblock can know on its own: how
// many shards the volume stripes across, the chunk granularity of the
// round-robin placement, the per-shard array UUIDs (so a foreign shard
// directory dropped into a slot is detected before a single byte of it is
// trusted), and the shared shard geometry (validated against every
// shard's own superblocks at mount).
//
// Crash consistency is the same shadow-slot A/B scheme the per-disk
// superblocks use (persist/superblock.hpp): every update bumps the
// monotonic `seq` and rewrites slot (seq % 2), so a torn manifest write
// destroys at most the newest copy and mount falls back to the previous
// epoch. Each slot is CRC32C-terminated little-endian; decode rejects a
// torn slot by its trailing CRC. Both slots torn (or the file missing) is
// a loud mount refusal — without the manifest the chunk mapping is
// unknowable and guessing it would interleave shards wrongly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace liberation::volume::persist {

inline constexpr std::uint64_t manifest_magic = 0x3156'464d'4c4f'564cULL;
inline constexpr std::uint32_t manifest_version = 1;
/// Fixed slot size: slot A at file offset 0, slot B at manifest_slot_size.
/// Generous for the supported shard counts (64 shards encode to < 1 KiB).
inline constexpr std::size_t manifest_slot_size = 4096;
inline constexpr std::uint32_t manifest_max_shards = 64;

/// In-memory image of the volume manifest.
struct manifest {
    std::uint64_t seq = 0;          ///< bumped on every persist
    std::uint64_t volume_uuid = 0;
    bool clean = false;             ///< true only after a clean unmount
    std::uint32_t shards = 0;
    std::uint64_t chunk_stripes = 0;  ///< stripes per placement chunk

    // ---- shared shard geometry (every shard must match) ---------------
    std::uint32_t k = 0;
    std::uint32_t p = 0;
    std::uint64_t element_size = 0;
    std::uint64_t stripes = 0;        ///< per shard
    std::uint64_t sector_size = 0;
    std::uint32_t layout = 0;         ///< raid::parity_layout as integer

    /// Per-shard array UUID (the shard store's superblock array_uuid).
    std::vector<std::uint64_t> shard_uuids;
};

/// Serialize one slot image; CRC32C-terminated, <= manifest_slot_size.
[[nodiscard]] std::vector<std::byte> encode(const manifest& m);

/// Parse and validate one slot (magic, version, bounds, trailing CRC).
/// nullopt = torn/zeroed/foreign bytes; the caller tries the other slot.
[[nodiscard]] std::optional<manifest> decode(std::span<const std::byte> raw);

/// What load_manifest() found in the file.
struct manifest_probe {
    bool file_present = false;
    int torn_slots = 0;  ///< slots that failed to decode (0..2)
    /// True when the *newest* copy was torn and the previous epoch was
    /// used instead (seq of the surviving slot is lower).
    bool fell_back = false;
    std::optional<manifest> m;  ///< valid slot with the larger seq
};

/// Read both slots of `<dir>/volume.manifest` and elect the survivor.
[[nodiscard]] manifest_probe load_manifest(const std::string& dir);

/// Create the manifest file fresh: both slots primed (seq and seq+1, so
/// even the first shadow persist has a valid fallback). `m.seq` is left
/// at the higher value — the caller continues persisting from there.
[[nodiscard]] bool create_manifest(const std::string& dir, manifest& m,
                                   bool sync);

/// Bump m.seq and shadow-write slot (seq % 2). fdatasync'd when `sync`.
[[nodiscard]] bool persist_manifest(const std::string& dir, manifest& m,
                                    bool sync);

/// `<dir>/volume.manifest`.
[[nodiscard]] std::string manifest_path(const std::string& dir);
/// `<dir>/shard-NN`.
[[nodiscard]] std::string shard_dir(const std::string& dir,
                                    std::uint32_t shard);

}  // namespace liberation::volume::persist
