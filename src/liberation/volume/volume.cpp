#include "liberation/volume/volume.hpp"

#include <algorithm>
#include <cstring>

#include "liberation/raid/io_policy.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::volume {

void accumulate(raid::array_stats& into, const raid::array_stats& add) {
    into.full_stripe_writes += add.full_stripe_writes;
    into.small_writes += add.small_writes;
    into.parity_elements_updated += add.parity_elements_updated;
    into.degraded_stripe_reads += add.degraded_stripe_reads;
    into.degraded_element_reads += add.degraded_element_reads;
    into.media_errors_recovered += add.media_errors_recovered;
    into.transient_errors_masked += add.transient_errors_masked;
    into.retries_exhausted += add.retries_exhausted;
    into.disks_tripped += add.disks_tripped;
    into.spares_promoted += add.spares_promoted;
    into.rebuilds_completed += add.rebuilds_completed;
    into.rebuild_stripes_failed += add.rebuild_stripes_failed;
    into.rebuild_sessions_stalled += add.rebuild_sessions_stalled;
    into.checksum_mismatches += add.checksum_mismatches;
    into.reads_self_healed += add.reads_self_healed;
    into.reads_unrecoverable += add.reads_unrecoverable;
    into.checksum_metadata_repaired += add.checksum_metadata_repaired;
    into.writes_rejected_log_full += add.writes_rejected_log_full;
    into.deadline_exceeded += add.deadline_exceeded;
    into.hedged_reads += add.hedged_reads;
    into.hedge_wins += add.hedge_wins;
    into.slow_trips += add.slow_trips;
    into.slow_recoveries += add.slow_recoveries;
    into.slow_routed_reads += add.slow_routed_reads;
    into.intent_replayed += add.intent_replayed;
    into.stale_disks_kicked += add.stale_disks_kicked;
    into.aio_batches += add.aio_batches;
    into.aio_merges += add.aio_merges;
    into.aio_split_retries += add.aio_split_retries;
    into.aio_inflight_highwater =
        std::max(into.aio_inflight_highwater, add.aio_inflight_highwater);
}

namespace {

void validate_config(const volume_config& cfg) {
    LIBERATION_EXPECTS(cfg.shards >= 1);
    LIBERATION_EXPECTS(cfg.shards <= persist::manifest_max_shards);
    LIBERATION_EXPECTS(cfg.chunk_stripes >= 1);
    LIBERATION_EXPECTS(cfg.shard.stripes % cfg.chunk_stripes == 0);
    // The volume owns the shards' aio pools; a caller-supplied one would
    // be shared across shards and defeat the per-shard queue isolation.
    LIBERATION_EXPECTS(cfg.shard.io_workers == nullptr);
}

}  // namespace

volume::volume(const volume_config& cfg) {
    validate_config(cfg);
    if (cfg.io_workers_per_shard > 0) {
        io_pools_.reserve(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s) {
            io_pools_.push_back(
                std::make_unique<util::thread_pool>(cfg.io_workers_per_shard));
        }
    }
    shards_.reserve(cfg.shards);
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
        raid::array_config sc = cfg.shard;
        if (!io_pools_.empty()) sc.io_workers = io_pools_[s].get();
        shards_.push_back(std::make_unique<raid::raid6_array>(sc));
    }
    threaded_ = cfg.threaded_dispatch && cfg.shards > 1;
    if (threaded_) {
        dispatch_pools_.reserve(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s) {
            dispatch_pools_.push_back(std::make_unique<util::thread_pool>(1));
        }
    }
    chunk_bytes_ = cfg.chunk_stripes * shards_[0]->map().stripe_data_size();
    plans_.resize(cfg.shards);
    results_.resize(cfg.shards);
    if (cfg.shard.obs_virtual_time) {
        obs_.set_clock(raid::virtual_clock_now_ns, &shards_[0]->clock());
    }
    init_obs();
}

volume::volume(const volume_config& cfg,
               std::vector<std::unique_ptr<raid::raid6_array>> arrays) {
    validate_config(cfg);
    // Mounted shards were built by persist::mount_array, before the
    // volume (and any pool it could own) exists; they drive their queue
    // pairs inline.
    LIBERATION_EXPECTS(cfg.io_workers_per_shard == 0);
    LIBERATION_EXPECTS(arrays.size() == cfg.shards);
    for (const auto& a : arrays) {
        LIBERATION_EXPECTS(a != nullptr);
        LIBERATION_EXPECTS(a->capacity() == arrays.front()->capacity());
        LIBERATION_EXPECTS(a->map().stripe_data_size() ==
                           arrays.front()->map().stripe_data_size());
    }
    shards_ = std::move(arrays);
    threaded_ = cfg.threaded_dispatch && cfg.shards > 1;
    if (threaded_) {
        dispatch_pools_.reserve(cfg.shards);
        for (std::uint32_t s = 0; s < cfg.shards; ++s) {
            dispatch_pools_.push_back(std::make_unique<util::thread_pool>(1));
        }
    }
    chunk_bytes_ = cfg.chunk_stripes * shards_[0]->map().stripe_data_size();
    plans_.resize(cfg.shards);
    results_.resize(cfg.shards);
    if (cfg.shard.obs_virtual_time) {
        obs_.set_clock(raid::virtual_clock_now_ns, &shards_[0]->clock());
    }
    init_obs();
}

volume::~volume() = default;

void volume::init_obs() {
    obs::registry& reg = obs_.metrics();
    read_ns_ = &reg.get_histogram("volume_read_ns",
                                  "volume host read latency (ns)");
    write_ns_ = &reg.get_histogram("volume_write_ns",
                                   "volume host write latency (ns)");
    obs_.add_collector([this] {
        obs::registry& r = obs_.metrics();
        r.get_counter("volume_reads_total", "host reads served by the volume")
            .mirror(reads_.load(std::memory_order_relaxed));
        r.get_counter("volume_writes_total", "host writes served by the volume")
            .mirror(writes_.load(std::memory_order_relaxed));
        r.get_counter("volume_failed_reads_total", "host reads a shard refused")
            .mirror(failed_reads_.load(std::memory_order_relaxed));
        r.get_counter("volume_failed_writes_total", "host writes a shard refused")
            .mirror(failed_writes_.load(std::memory_order_relaxed));
        r.get_counter("volume_chunks_routed_total", "placement chunks touched")
            .mirror(chunks_routed_.load(std::memory_order_relaxed));
        r.get_counter("volume_multi_shard_ops_total", "host ops spanning > 1 shard")
            .mirror(multi_shard_ops_.load(std::memory_order_relaxed));
        r.get_counter("volume_staged_bytes_total",
                      "bytes bounced through the gather/scatter buffer")
            .mirror(staged_bytes_.load(std::memory_order_relaxed));
        for (std::uint32_t s = 0; s < shard_count(); ++s) {
            const raid::array_stats st = shards_[s]->stats();
            const std::string label = "shard=\"" + std::to_string(s) + "\"";
            r.get_labeled_counter("shard_full_stripe_writes_total", label,
                                  "full-stripe writes per shard")
                .mirror(st.full_stripe_writes);
            r.get_labeled_counter("shard_small_writes_total", label,
                                  "read-modify-write small writes per shard")
                .mirror(st.small_writes);
            r.get_labeled_counter("shard_degraded_stripe_reads_total", label,
                                  "degraded full-stripe decodes per shard")
                .mirror(st.degraded_stripe_reads);
            r.get_labeled_counter("shard_checksum_mismatches_total", label,
                                  "checksum-failing blocks per shard")
                .mirror(st.checksum_mismatches);
            r.get_labeled_counter("shard_spares_promoted_total", label,
                                  "hot spares promoted per shard")
                .mirror(st.spares_promoted);
            r.get_labeled_counter("shard_rebuilds_completed_total", label,
                                  "background rebuild sessions per shard")
                .mirror(st.rebuilds_completed);
            r.get_labeled_gauge("shard_failed_disks", label,
                                "disks currently failed per shard")
                .set(static_cast<std::int64_t>(
                    shards_[s]->failed_disk_count()));
            r.get_labeled_gauge("shard_rebuild_stripes_remaining", label,
                                "background rebuild backlog per shard")
                .set(static_cast<std::int64_t>(
                    shards_[s]->rebuild_stripes_remaining()));
        }
    });
}

void volume::set_tracing(bool on) noexcept {
    obs_.trace().enable(on);
    for (auto& sh : shards_) sh->obs().trace().enable(on);
}

std::string volume::trace_json() const {
    std::vector<obs::trace_part> parts;
    parts.reserve(shards_.size() + 1);
    parts.push_back({"volume", &obs_.trace()});
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
        parts.push_back({"shard=\"" + std::to_string(s) + "\"",
                         &shards_[s]->obs().trace()});
    }
    return obs::merged_trace_json(parts);
}

extent_location volume::locate(std::size_t addr) const noexcept {
    const std::size_t chunk = addr / chunk_bytes_;
    const std::size_t in_chunk = addr % chunk_bytes_;
    extent_location loc;
    loc.shard = static_cast<std::uint32_t>(chunk % shards_.size());
    loc.addr = (chunk / shards_.size()) * chunk_bytes_ + in_chunk;
    return loc;
}

std::uint32_t volume::plan(std::size_t addr, std::size_t len) {
    const std::size_t n = shards_.size();
    for (shard_plan& p : plans_) {
        p.touched = false;
        p.pieces.clear();
    }
    std::uint32_t touched = 0;
    std::uint64_t chunks = 0;
    std::size_t pos = addr;
    std::size_t remaining = len;
    while (remaining > 0) {
        const std::size_t chunk = pos / chunk_bytes_;
        const std::size_t in_chunk = pos % chunk_bytes_;
        const std::size_t take = std::min(remaining, chunk_bytes_ - in_chunk);
        const auto s = static_cast<std::uint32_t>(chunk % n);
        const std::size_t local = (chunk / n) * chunk_bytes_ + in_chunk;
        const std::size_t host_off = pos - addr;
        shard_plan& p = plans_[s];
        if (!p.touched) {
            p.touched = true;
            p.lo = local;
            p.hi = local + take;
            p.pieces.push_back({host_off, local, take});
            ++touched;
        } else if (!p.pieces.empty() &&
                   p.pieces.back().local_off + p.pieces.back().len == local &&
                   p.pieces.back().host_off + p.pieces.back().len ==
                       host_off) {
            // Consecutive chunks of the same shard with a contiguous host
            // range (the shards == 1 case) extend the piece in place.
            p.pieces.back().len += take;
            p.hi = local + take;
        } else {
            p.pieces.push_back({host_off, local, take});
            p.hi = local + take;
        }
        pos += take;
        remaining -= take;
        ++chunks;
    }
    chunks_routed_.fetch_add(chunks, std::memory_order_relaxed);
    return touched;
}

bool volume::dispatch(const std::function<bool(std::uint32_t)>& op) {
    const auto n = static_cast<std::uint32_t>(shards_.size());
    std::uint32_t touched = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
        if (plans_[s].touched) ++touched;
    }
    bool ok = true;
    if (threaded_ && touched > 1) {
        // The host op's causal context rides into each dispatcher thread
        // explicitly (thread_local does not cross the pool hop): every
        // fan-out leg gets its own volume.shard_dispatch span under the
        // host op, and everything the shard records lands under that leg.
        const obs::trace_context tctx = obs::current_trace();
        const bool tracing = obs_.trace().enabled() && tctx.trace_id != 0;
        for (std::uint32_t s = 0; s < n; ++s) {
            if (!plans_[s].touched) continue;
            dispatch_pools_[s]->submit([this, &op, s, tctx, tracing] {
                const std::uint64_t leg_span =
                    tracing ? obs::next_span_id() : 0;
                obs::trace_scope scope(
                    tracing ? obs::trace_context{tctx.trace_id, leg_span}
                            : tctx);
                const std::uint64_t t0 = obs_.now_ns();
                const bool r = op(s);
                if (tracing) {
                    const std::uint64_t t1 = obs_.now_ns();
                    obs_.trace().record_ex("volume.shard_dispatch", "volume",
                                           t0, t1 >= t0 ? t1 - t0 : 0, tctx,
                                           leg_span);
                }
                results_[s] = r ? 1 : 0;
            });
        }
        for (std::uint32_t s = 0; s < n; ++s) {
            if (plans_[s].touched) dispatch_pools_[s]->wait_idle();
        }
        for (std::uint32_t s = 0; s < n; ++s) {
            if (plans_[s].touched) ok = ok && results_[s] != 0;
        }
    } else {
        for (std::uint32_t s = 0; s < n; ++s) {
            if (plans_[s].touched) ok = op(s) && ok;
        }
    }
    return ok;
}

bool volume::read(std::size_t addr, std::span<std::byte> out) {
    LIBERATION_EXPECTS(addr + out.size() <= capacity());
    obs::timed_span span(obs_, read_ns_, "volume_read", "volume");
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (out.empty()) return true;
    const std::uint32_t touched = plan(addr, out.size());
    if (touched > 1) {
        multi_shard_ops_.fetch_add(1, std::memory_order_relaxed);
    }
    // Hand every shard's staging region out of one buffer sized up front
    // (the dispatcher threads fill disjoint slices concurrently).
    std::size_t stage_total = 0;
    for (shard_plan& p : plans_) {
        if (p.touched && p.pieces.size() > 1) {
            p.stage_off = stage_total;
            stage_total += p.hi - p.lo;
        }
    }
    if (stage_total > staging_.size()) staging_.resize(stage_total);
    staged_bytes_.fetch_add(stage_total, std::memory_order_relaxed);

    const bool ok = dispatch([&](std::uint32_t s) {
        shard_plan& p = plans_[s];
        if (p.pieces.size() == 1) {
            return shards_[s]->read(
                p.lo, out.subspan(p.pieces[0].host_off, p.pieces[0].len));
        }
        // Boundary-straddling extent: one gapless shard read into the
        // staging slice, then scatter the pieces back to the host buffer.
        const std::span<std::byte> stage =
            std::span<std::byte>(staging_).subspan(p.stage_off, p.hi - p.lo);
        if (!shards_[s]->read(p.lo, stage)) return false;
        for (const shard_plan::piece& pc : p.pieces) {
            std::memcpy(out.data() + pc.host_off,
                        stage.data() + (pc.local_off - p.lo), pc.len);
        }
        return true;
    });
    if (!ok) failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

bool volume::write(std::size_t addr, std::span<const std::byte> in) {
    LIBERATION_EXPECTS(addr + in.size() <= capacity());
    obs::timed_span span(obs_, write_ns_, "volume_write", "volume");
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (in.empty()) return true;
    const std::uint32_t touched = plan(addr, in.size());
    if (touched > 1) {
        multi_shard_ops_.fetch_add(1, std::memory_order_relaxed);
    }
    std::size_t stage_total = 0;
    for (shard_plan& p : plans_) {
        if (p.touched && p.pieces.size() > 1) {
            p.stage_off = stage_total;
            stage_total += p.hi - p.lo;
        }
    }
    if (stage_total > staging_.size()) staging_.resize(stage_total);
    staged_bytes_.fetch_add(stage_total, std::memory_order_relaxed);

    // Gather on the caller's thread (cheap memcpy), write on the
    // dispatcher threads (the expensive parity + disk work).
    for (shard_plan& p : plans_) {
        if (!p.touched || p.pieces.size() == 1) continue;
        std::byte* stage = staging_.data() + p.stage_off;
        for (const shard_plan::piece& pc : p.pieces) {
            std::memcpy(stage + (pc.local_off - p.lo),
                        in.data() + pc.host_off, pc.len);
        }
    }
    const bool ok = dispatch([&](std::uint32_t s) {
        shard_plan& p = plans_[s];
        if (p.pieces.size() == 1) {
            return shards_[s]->write(
                p.lo, in.subspan(p.pieces[0].host_off, p.pieces[0].len));
        }
        const std::span<const std::byte> stage =
            std::span<const std::byte>(staging_).subspan(p.stage_off,
                                                         p.hi - p.lo);
        return shards_[s]->write(p.lo, stage);
    });
    if (!ok) failed_writes_.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

volume_stats volume::stats() const {
    volume_stats vs;
    vs.reads = reads_.load(std::memory_order_relaxed);
    vs.writes = writes_.load(std::memory_order_relaxed);
    vs.failed_reads = failed_reads_.load(std::memory_order_relaxed);
    vs.failed_writes = failed_writes_.load(std::memory_order_relaxed);
    vs.chunks_routed = chunks_routed_.load(std::memory_order_relaxed);
    vs.multi_shard_ops = multi_shard_ops_.load(std::memory_order_relaxed);
    vs.staged_bytes = staged_bytes_.load(std::memory_order_relaxed);
    for (const auto& sh : shards_) accumulate(vs.shard_total, sh->stats());
    return vs;
}

std::uint32_t volume::failed_disk_count() const noexcept {
    std::uint32_t n = 0;
    for (const auto& sh : shards_) n += sh->failed_disk_count();
    return n;
}

bool volume::rebuild_active() const noexcept {
    for (const auto& sh : shards_) {
        if (sh->rebuild_active()) return true;
    }
    return false;
}

std::size_t volume::service_background_rebuild(
    std::size_t max_stripes_per_shard) {
    std::size_t total = 0;
    for (auto& sh : shards_) {
        total += sh->service_background_rebuild(max_stripes_per_shard);
    }
    return total;
}

void volume::drain_background_rebuilds() {
    for (auto& sh : shards_) sh->drain_background_rebuild();
}

void volume::attach_manifest(std::string dir, persist::manifest m,
                             bool sync) {
    manifest_dir_ = std::move(dir);
    manifest_ = std::move(m);
    manifest_sync_ = sync;
}

bool volume::unmount() {
    if (!manifest_) return true;
    bool ok = true;
    for (auto& sh : shards_) ok = sh->unmount() && ok;
    manifest_->clean = true;
    ok = persist::persist_manifest(manifest_dir_, *manifest_, manifest_sync_)
         && ok;
    manifest_.reset();
    return ok;
}

}  // namespace liberation::volume
