#include "liberation/volume/manifest.hpp"

#include <unistd.h>

#include <cstdio>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::volume::persist {

namespace {

// Explicit little-endian (de)serialization, same discipline as the
// per-disk superblocks: byte-order independent, no alignment
// assumptions, trailing CRC32C over the encoded extent.

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

/// Bounds-checked sequential reader; any overrun poisons the parse.
struct reader {
    std::span<const std::byte> raw;
    std::size_t pos = 0;
    bool ok = true;

    std::uint32_t u32() {
        if (pos + 4 > raw.size()) { ok = false; return 0; }
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(raw[pos + i]) << (8 * i);
        }
        pos += 4;
        return v;
    }
    std::uint64_t u64() {
        if (pos + 8 > raw.size()) { ok = false; return 0; }
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(raw[pos + i]) << (8 * i);
        }
        pos += 8;
        return v;
    }
};

constexpr std::uint32_t flag_clean = 1u << 0;

constexpr std::size_t fixed_fields_size =
    8 + 4 + 4 +          // magic, version, flags
    8 + 8 +              // seq, volume_uuid
    4 + 8 +              // shards, chunk_stripes
    4 + 4 + 8 + 8 + 8 + 4;  // k, p, element_size, stripes, sector, layout

std::size_t encoded_size(std::uint32_t shards) {
    return fixed_fields_size + std::size_t{shards} * 8 + 4;  // uuids + CRC
}

bool write_slot(std::FILE* f, int slot, const std::vector<std::byte>& blob) {
    std::vector<std::byte> padded(manifest_slot_size);
    std::copy(blob.begin(), blob.end(), padded.begin());
    const long off = static_cast<long>(slot) *
                     static_cast<long>(manifest_slot_size);
    if (std::fseek(f, off, SEEK_SET) != 0) return false;
    return std::fwrite(padded.data(), 1, padded.size(), f) == padded.size();
}

bool flush_file(std::FILE* f, bool sync) {
    if (std::fflush(f) != 0) return false;
    return !sync || ::fdatasync(::fileno(f)) == 0;
}

}  // namespace

std::string manifest_path(const std::string& dir) {
    return dir + "/volume.manifest";
}

std::string shard_dir(const std::string& dir, std::uint32_t shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "/shard-%02u", shard);
    return dir + name;
}

std::vector<std::byte> encode(const manifest& m) {
    LIBERATION_EXPECTS(m.shards > 0 && m.shards <= manifest_max_shards);
    LIBERATION_EXPECTS(m.shard_uuids.size() == m.shards);
    std::vector<std::byte> out;
    out.reserve(encoded_size(m.shards));
    put_u64(out, manifest_magic);
    put_u32(out, manifest_version);
    put_u32(out, m.clean ? flag_clean : 0);
    put_u64(out, m.seq);
    put_u64(out, m.volume_uuid);
    put_u32(out, m.shards);
    put_u64(out, m.chunk_stripes);
    put_u32(out, m.k);
    put_u32(out, m.p);
    put_u64(out, m.element_size);
    put_u64(out, m.stripes);
    put_u64(out, m.sector_size);
    put_u32(out, m.layout);
    for (std::uint64_t uuid : m.shard_uuids) put_u64(out, uuid);
    put_u32(out, integrity::crc32c(out.data(), out.size()));
    LIBERATION_EXPECTS(out.size() <= manifest_slot_size);
    return out;
}

std::optional<manifest> decode(std::span<const std::byte> raw) {
    reader r{raw};
    if (r.u64() != manifest_magic) return std::nullopt;
    if (r.u32() != manifest_version) return std::nullopt;

    manifest m;
    const std::uint32_t flags = r.u32();
    m.clean = (flags & flag_clean) != 0;
    m.seq = r.u64();
    m.volume_uuid = r.u64();
    m.shards = r.u32();
    m.chunk_stripes = r.u64();
    m.k = r.u32();
    m.p = r.u32();
    m.element_size = r.u64();
    m.stripes = r.u64();
    m.sector_size = r.u64();
    m.layout = r.u32();
    if (!r.ok) return std::nullopt;
    if (m.shards == 0 || m.shards > manifest_max_shards) return std::nullopt;

    const std::size_t want = encoded_size(m.shards);
    if (raw.size() < want) return std::nullopt;
    // Validate the trailing CRC over exactly the encoded extent before
    // trusting the UUID table (the slot buffer is zero-padded past it).
    const std::uint32_t stored = [&] {
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(raw[want - 4 + i]) << (8 * i);
        }
        return v;
    }();
    if (integrity::crc32c(raw.data(), want - 4) != stored) return std::nullopt;

    m.shard_uuids.resize(m.shards);
    for (std::uint32_t s = 0; s < m.shards; ++s) m.shard_uuids[s] = r.u64();
    if (!r.ok) return std::nullopt;
    return m;
}

manifest_probe load_manifest(const std::string& dir) {
    manifest_probe probe;
    std::FILE* f = std::fopen(manifest_path(dir).c_str(), "rb");
    if (!f) return probe;
    probe.file_present = true;

    std::vector<std::byte> raw(manifest_slot_size);
    for (int slot = 0; slot < 2; ++slot) {
        const long off = static_cast<long>(slot) *
                         static_cast<long>(manifest_slot_size);
        std::optional<manifest> m;
        if (std::fseek(f, off, SEEK_SET) == 0 &&
            std::fread(raw.data(), 1, raw.size(), f) == raw.size()) {
            m = decode(raw);
        }
        if (!m) {
            ++probe.torn_slots;
        } else if (!probe.m || m->seq > probe.m->seq) {
            probe.m = std::move(m);
        }
    }
    std::fclose(f);
    // Under the shadow scheme the torn slot, when there is one, held the
    // in-flight (newest) copy — the survivor is the previous epoch.
    probe.fell_back = probe.m.has_value() && probe.torn_slots > 0;
    return probe;
}

bool create_manifest(const std::string& dir, manifest& m, bool sync) {
    std::FILE* f = std::fopen(manifest_path(dir).c_str(), "wb");
    if (!f) return false;
    // Prime both slots (seq and seq+1) so the first shadow persist —
    // which overwrites one of them — always leaves a valid fallback.
    bool ok = write_slot(f, static_cast<int>(m.seq % 2), encode(m));
    ++m.seq;
    ok = ok && write_slot(f, static_cast<int>(m.seq % 2), encode(m));
    ok = ok && flush_file(f, sync);
    std::fclose(f);
    return ok;
}

bool persist_manifest(const std::string& dir, manifest& m, bool sync) {
    std::FILE* f = std::fopen(manifest_path(dir).c_str(), "r+b");
    if (!f) return false;
    ++m.seq;
    bool ok = write_slot(f, static_cast<int>(m.seq % 2), encode(m));
    ok = ok && flush_file(f, sync);
    std::fclose(f);
    return ok;
}

}  // namespace liberation::volume::persist
