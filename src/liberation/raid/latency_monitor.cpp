#include "liberation/raid/latency_monitor.hpp"

#include <algorithm>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

latency_monitor::latency_monitor(std::uint32_t disks,
                                 const latency_config& cfg)
    : cfg_(cfg) {
    disks_.reserve(disks);
    for (std::uint32_t d = 0; d < disks; ++d) add_disk();
}

void latency_monitor::add_disk() {
    disks_.push_back(std::make_unique<per_disk>());
}

std::uint64_t latency_monitor::deadline_of(const per_disk& d) const {
    if (!cfg_.hedged_reads) return cfg_.max_deadline_us;
    if (d.samples.load(std::memory_order_relaxed) < cfg_.min_samples) {
        return cfg_.max_deadline_us;
    }
    const std::uint64_t p99 = d.hist.snapshot().p99;
    const auto scaled = static_cast<std::uint64_t>(
        cfg_.deadline_factor * static_cast<double>(p99));
    return std::clamp(scaled, cfg_.min_deadline_us, cfg_.max_deadline_us);
}

std::uint64_t latency_monitor::deadline_us(std::uint32_t disk) const {
    LIBERATION_EXPECTS(disk < disks_.size());
    return deadline_of(*disks_[disk]);
}

bool latency_monitor::note_read(std::uint32_t disk,
                                std::uint64_t latency_us) {
    LIBERATION_EXPECTS(disk < disks_.size());
    if (!cfg_.hedged_reads) return false;
    per_disk& d = *disks_[disk];
    // Deadline from the distribution *before* this sample: a stall must
    // not dilute the threshold it is judged against. Samples are
    // winsorized at the deadline — recording a 50 ms stall raw would let
    // a straggler inflate its own p99 until nothing counts as late, while
    // clipping still lets the deadline ratchet up (×factor per escalation)
    // when the disk's *on-time* behaviour genuinely shifts.
    const std::uint64_t deadline = deadline_of(d);
    d.hist.record(std::min(latency_us, deadline));
    d.samples.fetch_add(1, std::memory_order_relaxed);

    if (latency_us > deadline) {
        d.misses.fetch_add(1, std::memory_order_relaxed);
        d.ok_probes.store(0, std::memory_order_relaxed);
        const std::uint32_t streak =
            d.miss_streak.fetch_add(1, std::memory_order_relaxed) + 1;
        if (streak >= cfg_.slow_trip_misses) {
            auto expected = static_cast<std::uint8_t>(disk_pace::normal);
            if (d.pace.compare_exchange_strong(
                    expected,
                    static_cast<std::uint8_t>(disk_pace::suspect_slow),
                    std::memory_order_acq_rel)) {
                d.trips.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    d.miss_streak.store(0, std::memory_order_relaxed);
    // On-time sample on a quarantined disk: a probe that came back fast.
    if (d.pace.load(std::memory_order_acquire) ==
        static_cast<std::uint8_t>(disk_pace::suspect_slow)) {
        const std::uint32_t ok =
            d.ok_probes.fetch_add(1, std::memory_order_relaxed) + 1;
        if (ok >= cfg_.recover_probes) {
            auto expected =
                static_cast<std::uint8_t>(disk_pace::suspect_slow);
            if (d.pace.compare_exchange_strong(
                    expected, static_cast<std::uint8_t>(disk_pace::normal),
                    std::memory_order_acq_rel)) {
                d.recoveries.fetch_add(1, std::memory_order_relaxed);
                d.ok_probes.store(0, std::memory_order_relaxed);
            }
        }
    }
    return false;
}

disk_pace latency_monitor::pace(std::uint32_t disk) const {
    LIBERATION_EXPECTS(disk < disks_.size());
    return static_cast<disk_pace>(
        disks_[disk]->pace.load(std::memory_order_acquire));
}

bool latency_monitor::take_probe(std::uint32_t disk) {
    LIBERATION_EXPECTS(disk < disks_.size());
    per_disk& d = *disks_[disk];
    d.routed.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.probe_every == 0) return false;
    const std::uint32_t tick =
        d.probe_tick.fetch_add(1, std::memory_order_relaxed) + 1;
    return tick % cfg_.probe_every == 0;
}

void latency_monitor::note_hedge(std::uint32_t disk) {
    LIBERATION_EXPECTS(disk < disks_.size());
    disks_[disk]->hedges.fetch_add(1, std::memory_order_relaxed);
}

disk_latency_stats latency_monitor::stats(std::uint32_t disk) const {
    LIBERATION_EXPECTS(disk < disks_.size());
    const per_disk& d = *disks_[disk];
    return {d.samples.load(std::memory_order_relaxed),
            d.misses.load(std::memory_order_relaxed),
            d.trips.load(std::memory_order_relaxed),
            d.recoveries.load(std::memory_order_relaxed),
            d.hedges.load(std::memory_order_relaxed),
            d.routed.load(std::memory_order_relaxed),
            deadline_of(d),
            pace(disk)};
}

void latency_monitor::reset(std::uint32_t disk) {
    LIBERATION_EXPECTS(disk < disks_.size());
    // In place, like health_monitor::reset — the node must stay put
    // because concurrent workers may hold references into it.
    per_disk& d = *disks_[disk];
    d.hist.clear();
    d.samples.store(0, std::memory_order_relaxed);
    d.misses.store(0, std::memory_order_relaxed);
    d.miss_streak.store(0, std::memory_order_relaxed);
    d.ok_probes.store(0, std::memory_order_relaxed);
    d.probe_tick.store(0, std::memory_order_relaxed);
    d.pace.store(static_cast<std::uint8_t>(disk_pace::normal),
                 std::memory_order_release);
}

void latency_monitor::force_quarantine(std::uint32_t disk) {
    LIBERATION_EXPECTS(disk < disks_.size());
    disks_[disk]->pace.store(
        static_cast<std::uint8_t>(disk_pace::suspect_slow),
        std::memory_order_release);
}

}  // namespace liberation::raid
