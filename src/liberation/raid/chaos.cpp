#include "liberation/raid/chaos.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/raid/persist/mount.hpp"
#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"

namespace liberation::raid {

namespace {

/// Per-disk fault streams must be decorrelated from each other and from
/// the workload stream; splitmix-style odd multiplier does that cheaply.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t n) {
    return seed ^ (0x9e3779b97f4a7c15ULL * (n + 1));
}

[[nodiscard]] std::uint32_t pick_online_disk(raid6_array& a,
                                             util::xoshiro256& rng) {
    const std::uint32_t n = a.disk_count();
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto d = static_cast<std::uint32_t>(rng.next_below(n));
        if (a.disk(d).online()) return d;
    }
    for (std::uint32_t d = 0; d < n; ++d)
        if (a.disk(d).online()) return d;
    return 0;  // all offline; caller's event will be a no-op
}

/// Counters must survive the kill-and-remount phases: each generation's
/// final snapshot is folded into the campaign totals before the array
/// object is destroyed.
void accumulate(array_stats& into, const array_stats& s) {
    into.full_stripe_writes += s.full_stripe_writes;
    into.small_writes += s.small_writes;
    into.parity_elements_updated += s.parity_elements_updated;
    into.degraded_stripe_reads += s.degraded_stripe_reads;
    into.degraded_element_reads += s.degraded_element_reads;
    into.media_errors_recovered += s.media_errors_recovered;
    into.transient_errors_masked += s.transient_errors_masked;
    into.retries_exhausted += s.retries_exhausted;
    into.disks_tripped += s.disks_tripped;
    into.spares_promoted += s.spares_promoted;
    into.rebuilds_completed += s.rebuilds_completed;
    into.rebuild_stripes_failed += s.rebuild_stripes_failed;
    into.rebuild_sessions_stalled += s.rebuild_sessions_stalled;
    into.checksum_mismatches += s.checksum_mismatches;
    into.reads_self_healed += s.reads_self_healed;
    into.reads_unrecoverable += s.reads_unrecoverable;
    into.checksum_metadata_repaired += s.checksum_metadata_repaired;
    into.writes_rejected_log_full += s.writes_rejected_log_full;
    into.deadline_exceeded += s.deadline_exceeded;
    into.hedged_reads += s.hedged_reads;
    into.hedge_wins += s.hedge_wins;
    into.slow_trips += s.slow_trips;
    into.slow_recoveries += s.slow_recoveries;
    into.slow_routed_reads += s.slow_routed_reads;
    into.intent_replayed += s.intent_replayed;
    into.stale_disks_kicked += s.stale_disks_kicked;
    into.aio_batches += s.aio_batches;
    into.aio_merges += s.aio_merges;
    into.aio_split_retries += s.aio_split_retries;
    into.aio_inflight_highwater =
        std::max(into.aio_inflight_highwater, s.aio_inflight_highwater);
}

void accumulate(io_policy_stats& into, const io_policy_stats& s) {
    into.reads += s.reads;
    into.writes += s.writes;
    into.retries += s.retries;
    into.transient_masked += s.transient_masked;
    into.retries_exhausted += s.retries_exhausted;
    into.backoff_us += s.backoff_us;
}

}  // namespace

chaos_config default_chaos_config(std::uint64_t seed, std::size_t ops) {
    chaos_config cfg;
    cfg.seed = seed;
    cfg.ops = ops;
    cfg.array.k = 4;
    cfg.array.element_size = 512;
    cfg.array.stripes = 32;
    cfg.array.sector_size = 512;
    // One spare each for the injected fail-stop and the health trip.
    cfg.array.hot_spares = 2;
    cfg.array.rebuild_batch_stripes = 4;
    // Baseline transient rates are masked by retries and must NOT trip
    // disks; only *hard* (retry-exhausted) errors count, which the storm
    // disk produces almost immediately at storm_rate = 0.9
    // (0.9^4 ≈ 0.66 per I/O) while baseline disks essentially never do
    // (0.01^4 = 1e-8 per read).
    cfg.array.health.max_transient_errors = 0;  // disabled
    cfg.array.health.max_read_errors = 20;
    cfg.array.health.max_write_errors = 1;  // md: first lost write trips
    return cfg;
}

chaos_report run_chaos_campaign(const chaos_config& cfg) {
    chaos_report rep;
    const chaos_persist_plan& pp = cfg.persist;
    std::unique_ptr<raid6_array> arr;
    if (pp.enabled) {
        persist::store_config scfg;
        scfg.dir = pp.dir;
        scfg.sync_meta = pp.sync_meta;
        // Fixed uuid: the campaign replays bit-for-bit from the seed.
        arr = persist::create_array(cfg.array, scfg,
                                    derive_seed(cfg.seed, 0xA11A) | 1);
        if (!arr) {
            ++rep.mount_failures;
            return rep;
        }
    } else {
        arr = std::make_unique<raid6_array>(cfg.array);
    }
    util::xoshiro256 rng(cfg.seed);
    const auto log = [&](const std::string& msg) {
        if (cfg.log) cfg.log(msg);
    };
    if (cfg.trace) arr->obs().trace().enable();
    // SLO engine over the array's hub. The hub dies with each
    // kill-and-remount generation, so the engine is rebuilt per
    // generation and the sticky ever-violated bit folded across.
    std::unique_ptr<obs::slo_engine> slo;
    bool slo_ever_violated = false;
    const auto make_slo = [&] {
        if (cfg.slo.empty()) return;
        slo = std::make_unique<obs::slo_engine>(arr->obs(), cfg.slo,
                                                cfg.slo_window_ns);
        slo->evaluate();  // baseline frame at generation start
    };
    make_slo();
    // The array (and its observability hub) is local to this run; capture
    // the exports into the report on every return path.
    const auto capture_obs = [&] {
        if (slo != nullptr) {
            slo->evaluate();
            slo_ever_violated = slo_ever_violated || slo->ever_violated();
            rep.slo_text = slo->text();
            rep.slo_ok = !slo_ever_violated;
        }
        rep.metrics_text = arr->obs().metrics_text();
        rep.histograms = arr->obs().histogram_snapshots();
        if (cfg.trace) rep.trace_json = arr->obs().trace_json();
    };
    util::stopwatch phase_clock;

    // Counter continuity across kill-and-remount generations: fault
    // streams and stats are process-local, so each generation re-arms
    // (with a derived, decorrelated seed) and folds its totals in.
    array_stats acc_stats{};
    io_policy_stats acc_io{};
    std::uint64_t generation = 0;

    // Arm baseline transient rates on every starting disk (spares are
    // armed only if promoted hardware were flaky — they are not; a
    // promoted spare is fresh hardware, which is also what keeps the
    // post-storm array quiet enough to finish its rebuild).
    const auto arm_transients = [&] {
        if (cfg.transient_read_rate <= 0.0 && cfg.transient_write_rate <= 0.0) {
            return;
        }
        for (std::uint32_t d = 0; d < arr->disk_count(); ++d) {
            arr->disk(d).set_transient_fault_rates(
                cfg.transient_read_rate, cfg.transient_write_rate,
                derive_seed(cfg.seed, d + 64 * generation));
        }
    };
    arm_transients();

    // Destroy the array with no unmount — the on-disk state of an abrupt
    // process death — then reassemble it from the backing files.
    const auto kill_and_remount = [&](const std::string& why) {
        accumulate(acc_stats, arr->stats());
        accumulate(acc_io, arr->io_stats());
        // The engine references the dying hub: fold its verdict and drop
        // it before the array goes away.
        if (slo != nullptr) {
            slo->evaluate();
            slo_ever_violated = slo_ever_violated || slo->ever_violated();
            slo.reset();
        }
        arr.reset();
        ++rep.kills;
        log("kill (" + why + "): process state dropped, remounting");
        util::stopwatch mount_clock;
        persist::mount_options mo;
        mo.store.dir = pp.dir;
        mo.store.sync_meta = pp.sync_meta;
        mo.io_queue_depth = cfg.array.io_queue_depth;
        mo.io_merge = cfg.array.io_merge;
        mo.io_workers = cfg.array.io_workers;
        mo.verify_reads = cfg.array.verify_reads;
        mo.io_retry = cfg.array.io_retry;
        mo.health = cfg.array.health;
        mo.rebuild_batch_stripes = cfg.array.rebuild_batch_stripes;
        mo.auto_failover = cfg.array.auto_failover;
        mo.obs_virtual_time = cfg.array.obs_virtual_time;
        persist::mounted_array m = persist::mount_array(mo);
        rep.phases.mount_replay_s += mount_clock.seconds();
        if (!m.report.ok) {
            ++rep.mount_failures;
            log("remount FAILED: " + m.report.error);
            return false;
        }
        arr = std::move(m.array);
        ++rep.remounts;
        rep.mount_intent_replayed += m.report.intent_replayed;
        rep.stale_disks_kicked += m.report.stale_kicked + m.report.unreadable;
        rep.rebuilds_resumed += m.report.rebuilds_resumed;
        ++generation;
        arm_transients();
        if (cfg.trace) arr->obs().trace().enable();
        make_slo();
        log("remounted: " + std::to_string(m.report.disks_online) + "/" +
            std::to_string(m.report.disks_total) + " online, " +
            std::to_string(m.report.intent_replayed) + " stripes replayed");
        return true;
    };

    // Initial fill + shadow copy: every later read has a ground truth.
    const std::size_t cap = arr->capacity();
    std::vector<std::byte> shadow(cap);
    rng.fill(shadow);
    if (!arr->write(0, shadow)) {
        ++rep.failed_writes;
        rep.stats = arr->stats();
        rep.phases.fill_s = phase_clock.seconds();
        capture_obs();
        return rep;
    }
    rep.phases.fill_s = phase_clock.seconds();

    const std::size_t max_io = cfg.max_io_bytes != 0
                                   ? std::min(cfg.max_io_bytes, cap)
                                   : std::min(2 * arr->map().stripe_data_size(), cap);
    std::vector<std::byte> buf(max_io);

    const chaos_event_plan& ev = cfg.events;
    bool fail_stop_pending = false;
    bool storm_pending = false;
    bool power_pending = false;
    bool power_armed = false;  // budget set, loss not yet observed
    bool kill_write_pending = false;
    bool kill_write_armed = false;  // on the budget's loss: kill, not reboot
    bool kill_rebuild_pending = false;
    bool kill_scrub_pending = false;
    bool fail_slow_pending = false;
    bool fail_slow_recover_pending = false;
    std::uint32_t slow_victim = UINT32_MAX;

    // An event only fires when the array is quiet — no failed disk, no
    // rebuild in flight — so faults never stack beyond the two erasures
    // RAID-6 tolerates by construction.
    const auto quiet = [&] {
        return arr->failed_disk_count() == 0 && !arr->rebuild_active() &&
               arr->powered() && !power_armed;
    };

    // Silent corruption is injected under a *looser* gate than the armed
    // events: it fires while healthy, degraded, and rebuilding — any state
    // with at most one masked column, so a flipped column stays within the
    // two-erasure decode budget. Torn (journaled) stripes are excluded:
    // their mismatches belong to write-hole recovery, not to the
    // corruption classifier.
    const auto corruptible = [&] {
        return arr->powered() && !power_armed && arr->failed_disk_count() == 0 &&
               arr->rebuilding_disk_count() <= 1 && arr->journal().size() == 0;
    };
    std::size_t data_flips = 0;

    phase_clock.restart();
    for (std::size_t op = 0; op < cfg.ops; ++op) {
        if (slo != nullptr && cfg.slo_every_ops != 0 && op != 0 &&
            op % cfg.slo_every_ops == 0) {
            slo->evaluate();
        }
        if (op == ev.fail_stop_at_op) fail_stop_pending = true;
        if (op == ev.health_storm_at_op) storm_pending = true;
        if (op == ev.power_loss_at_op) power_pending = true;
        if (op == ev.fail_slow_at_op) fail_slow_pending = true;
        if (op == ev.fail_slow_recover_at_op) fail_slow_recover_pending = true;
        if (pp.enabled) {
            if (op == pp.kill_mid_write_at_op) kill_write_pending = true;
            if (op == pp.kill_mid_rebuild_at_op) kill_rebuild_pending = true;
            if (op == pp.kill_mid_scrub_at_op) kill_scrub_pending = true;
        }

        // The mid-rebuild kill deliberately inverts the quiet() gate: it
        // fires at the first op with a rebuild actually in flight, so the
        // remount must resume it from the persisted watermark.
        if (kill_rebuild_pending && arr->rebuild_active() && arr->powered() &&
            !power_armed) {
            kill_rebuild_pending = false;
            log("op " + std::to_string(op) + ": killing mid-rebuild");
            if (!kill_and_remount("mid-rebuild")) {
                rep.stats = acc_stats;
                rep.io = acc_io;
                return rep;
            }
        }

        // Fire at most one armed event per op, oldest first.
        if (fail_stop_pending && quiet()) {
            const std::uint32_t victim = pick_online_disk(*arr, rng);
            log("op " + std::to_string(op) + ": fail-stop disk " +
                std::to_string(victim));
            arr->fail_disk(victim);
            ++rep.injected_fail_stops;
            fail_stop_pending = false;
            if (ev.degraded_scrub) {
                // The array is now degraded (a spare's rebuild has barely
                // started, or no spare exists at all). Corrupt a survivor
                // column of the last stripe — far from the rebuild cursor —
                // and scrub immediately: the checksum-first scrubber must
                // repair corruption on a degraded stripe, which the parity
                // cross-check scrubber could only skip.
                const std::size_t s = arr->map().stripes() - 1;
                for (std::uint32_t c = 0; c < arr->map().n(); ++c) {
                    const strip_location loc = arr->map().locate(s, c);
                    if (loc.disk == victim || !arr->disk(loc.disk).online()) {
                        continue;
                    }
                    arr->disk(loc.disk).inject_silent_corruption(loc.offset, 32,
                                                              rng);
                    ++rep.corruptions_injected;
                    log("op " + std::to_string(op) +
                        ": corrupted survivor disk " +
                        std::to_string(loc.disk) + " on degraded stripe " +
                        std::to_string(s));
                    break;
                }
                const scrub_summary mid = scrub_array(*arr);
                rep.degraded_scrub_repairs += mid.repaired_on_degraded;
            }
        } else if (storm_pending && quiet()) {
            const std::uint32_t victim = pick_online_disk(*arr, rng);
            log("op " + std::to_string(op) + ": transient storm on disk " +
                std::to_string(victim));
            arr->disk(victim).set_transient_fault_rates(
                cfg.storm_rate, cfg.storm_rate, derive_seed(cfg.seed, 1000));
            storm_pending = false;
        } else if (power_pending && quiet()) {
            const auto budget = 1 + rng.next_below(4);
            log("op " + std::to_string(op) + ": power loss armed after " +
                std::to_string(budget) + " disk writes");
            arr->simulate_power_loss_after(budget);
            power_pending = false;
            power_armed = true;
        } else if (kill_write_pending && quiet()) {
            // Armed exactly like a power loss: a few disk writes into some
            // stripe update the plug is pulled — but instead of rebooting
            // the same array object, the process dies and the array is
            // remounted from the files, which must replay the intent log.
            const auto budget = 1 + rng.next_below(4);
            log("op " + std::to_string(op) + ": mid-write kill armed after " +
                std::to_string(budget) + " disk writes");
            arr->simulate_power_loss_after(budget);
            kill_write_pending = false;
            kill_write_armed = true;
            power_armed = true;
        } else if (kill_scrub_pending && quiet() &&
                   arr->journal().size() == 0) {
            // Mid-scrub crash point: damage is sitting on the medium, the
            // scrub that would heal it never finishes. The corruption must
            // survive the remount round-trip (the files hold the corrupt
            // bytes, the persisted checksums still describe the original
            // data) and the post-remount scrub must repair it.
            const std::size_t s = arr->map().stripes() / 2;
            const auto c =
                static_cast<std::uint32_t>(rng.next_below(arr->map().n()));
            const strip_location loc = arr->map().locate(s, c);
            arr->disk(loc.disk).inject_silent_corruption(loc.offset, 32, rng);
            ++rep.corruptions_injected;
            kill_scrub_pending = false;
            log("op " + std::to_string(op) + ": killing mid-scrub (disk " +
                std::to_string(loc.disk) + " stripe " + std::to_string(s) +
                " corrupt and unhealed)");
            if (!kill_and_remount("mid-scrub")) {
                rep.stats = acc_stats;
                rep.io = acc_io;
                return rep;
            }
            const scrub_summary after = scrub_array(*arr);
            rep.remount_scrub_repairs += after.repaired_data +
                                         after.repaired_parity +
                                         after.repaired_metadata;
            rep.scrub_uncorrectable += after.uncorrectable;
        } else if (fail_slow_pending && quiet()) {
            // Gray failure: the disk keeps answering correctly but every
            // service takes fail_slow_base_us. Constant shape so the
            // deadline-miss streak is unbroken — the monitor must first
            // hedge around individual late reads, then trip the disk into
            // suspect_slow once the lateness proves persistent.
            const std::uint32_t victim = pick_online_disk(*arr, rng);
            latency_profile prof;
            prof.kind = latency_profile::shape::constant;
            prof.base_us = ev.fail_slow_base_us;
            prof.jitter_us = ev.fail_slow_base_us / 4;
            arr->disk(victim).set_latency_profile(
                prof, derive_seed(cfg.seed, 2000 + 64 * generation));
            slow_victim = victim;
            ++rep.fail_slow_injected;
            fail_slow_pending = false;
            log("op " + std::to_string(op) + ": fail-slow on disk " +
                std::to_string(victim) + " (" +
                std::to_string(ev.fail_slow_base_us) + "us per service)");
        } else if (ev.latent_error_every != 0 && op % ev.latent_error_every == 0 &&
                   op != 0 && quiet()) {
            const std::uint32_t victim = pick_online_disk(*arr, rng);
            const std::size_t dcap = arr->disk(victim).capacity();
            const std::size_t off =
                rng.next_below(dcap / cfg.array.sector_size) *
                cfg.array.sector_size;
            arr->disk(victim).inject_latent_error(off, cfg.array.sector_size);
            ++rep.latent_errors_injected;
        }

        // Silent corruption, independent of the armed-event chain (it is
        // what the chain's quiet() gate exists to serialize; flips are
        // *supposed* to land while a rebuild is in flight).
        if (ev.corrupt_every != 0 && op % ev.corrupt_every == 0 && op != 0 &&
            corruptible()) {
            // Rotate stripes with a stride coprime to the stripe count:
            // corruption lingers until a read or scrub heals it, and piling
            // three unhealed flips onto one stripe would exceed what any
            // two-parity code can repair.
            const std::size_t s = (data_flips * 7) % arr->map().stripes();
            ++data_flips;
            const auto c =
                static_cast<std::uint32_t>(rng.next_below(arr->map().n()));
            const strip_location loc = arr->map().locate(s, c);
            const std::size_t block = arr->integrity_block();
            const std::size_t off =
                loc.offset +
                rng.next_below(arr->map().strip_size() / block) * block;
            const std::size_t len =
                1 + rng.next_below(std::min<std::size_t>(64, block));
            arr->disk(loc.disk).inject_silent_corruption(off, len, rng);
            ++rep.corruptions_injected;
            log("op " + std::to_string(op) + ": silent corruption on disk " +
                std::to_string(loc.disk) + " stripe " + std::to_string(s));
        }
        if (ev.corrupt_integrity_every != 0 &&
            op % ev.corrupt_integrity_every == 0 && op != 0 &&
            corruptible()) {
            // Flip a stored checksum instead of the data it covers: the
            // verify/decode machinery must conclude the *metadata* is the
            // damaged side and refresh it, never "heal" the good data.
            const std::uint32_t victim = pick_online_disk(*arr, rng);
            integrity::integrity_region& region = arr->integrity(victim);
            const std::size_t b = rng.next_below(region.blocks());
            region.corrupt_block(
                b, static_cast<std::uint32_t>(rng.next() | 1));
            ++rep.integrity_corruptions_injected;
            log("op " + std::to_string(op) +
                ": checksum metadata flip on disk " + std::to_string(victim));
        }

        // The straggler recovers (GC pass ended, link renegotiated).
        // Independent of the armed-event chain: clearing a profile is
        // safe in any array state. The quarantine must now be lifted by
        // the monitor's own probes, not by the injection harness.
        if (fail_slow_recover_pending && !fail_slow_pending &&
            slow_victim != UINT32_MAX) {
            if (arr->disk(slow_victim).latency_profile_armed()) {
                arr->disk(slow_victim).clear_latency_profile();
                log("op " + std::to_string(op) + ": fail-slow disk " +
                    std::to_string(slow_victim) + " recovered");
            }
            fail_slow_recover_pending = false;
        }

        // One workload op.
        const bool do_write = rng.next_below(10) < cfg.write_tenths;
        const std::size_t len = 1 + rng.next_below(max_io);
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (do_write) {
            rng.fill(io);
            ++rep.writes;
            if (!arr->write(addr, io)) {
                ++rep.failed_writes;
                log("op " + std::to_string(op) + ": write failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (arr->powered()) {
                std::memcpy(shadow.data() + addr, buf.data(), len);
            }
        } else {
            ++rep.reads;
            if (!arr->read(addr, io)) {
                ++rep.failed_reads;
                log("op " + std::to_string(op) + ": read failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (std::memcmp(shadow.data() + addr, buf.data(), len) !=
                       0) {
                ++rep.mismatches;
                log("op " + std::to_string(op) + ": shadow mismatch at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            }
        }
        ++rep.ops;

        // Power loss fired mid-op: reboot, re-sync the journaled (torn)
        // stripes from their data columns, then reconcile the shadow with
        // whichever mix of old/new data the torn write left behind — that
        // on-disk state is now the ground truth, exactly as a real host
        // sees after an unclean shutdown.
        if (!arr->powered()) {
            power_armed = false;
            if (kill_write_armed) {
                // The mid-write crash point: the process dies with the
                // torn write on disk and the intent entry persisted.
                // mount_array() replays the journal before handing the
                // array back (counted in mount_intent_replayed).
                kill_write_armed = false;
                if (!kill_and_remount("mid-write")) {
                    rep.stats = acc_stats;
                    rep.io = acc_io;
                    return rep;
                }
            } else {
                ++rep.power_losses;
                log("op " + std::to_string(op) + ": power lost, rebooting");
                arr->reboot();
                // Baseline transients can defer individual stripes; retry.
                for (int t = 0; t < 16 && arr->journal().size() != 0; ++t)
                    rep.resynced_stripes += arr->recover_write_hole();
            }
            if (do_write) {
                if (arr->read(addr, io)) {
                    std::memcpy(shadow.data() + addr, buf.data(), len);
                } else {
                    ++rep.failed_reads;
                }
            }
        }
    }

    rep.phases.workload_s = phase_clock.seconds();

    // Settle: finish the background rebuild, disarm every fault stream,
    // then heal what is left (latent sectors on strips the workload never
    // re-read, including parity strips only resilver visits).
    phase_clock.restart();
    arr->drain_background_rebuild();
    for (std::uint32_t d = 0; d < arr->disk_count(); ++d) {
        arr->disk(d).clear_transient_faults();
        arr->disk(d).clear_latency_profile();
    }
    for (int t = 0; t < 16 && arr->journal().size() != 0; ++t)
        rep.resynced_stripes += arr->recover_write_hole();
    rep.resilver_healed = arr->resilver();
    rep.phases.settle_s = phase_clock.seconds();

    phase_clock.restart();
    // Settle scrub: heal injected corruption the workload never re-read
    // (including parity strips, which host reads only touch when
    // degraded). Its parity-fallback repairs are damage the checksum
    // domain could not see — a stripe left torn without being journaled —
    // and count against the write-hole invariant.
    const scrub_summary settle = scrub_array(*arr);
    rep.settle_scrub_healed = settle.repaired_data + settle.repaired_parity +
                              settle.repaired_metadata;
    rep.final_torn += settle.parity_fallback_repairs;
    rep.scrub_uncorrectable += settle.uncorrectable;
    rep.phases.settle_scrub_s = phase_clock.seconds();

    // Final verification: full device vs shadow...
    phase_clock.restart();
    std::vector<std::byte> out(cap);
    if (!arr->read(0, out)) {
        ++rep.failed_reads;
    } else if (!std::equal(out.begin(), out.end(), shadow.begin())) {
        ++rep.mismatches;
        log("final full-device read disagrees with the shadow copy");
    }

    // ...then per-stripe availability and a full checksum sweep: after the
    // settle scrub, every readable column must verify against its stored
    // checksum — this is the "no unverified bytes survive the campaign"
    // invariant.
    {
        codes::stripe_buffer sbuf = arr->make_stripe_buffer();
        std::vector<std::uint32_t> erased;
        for (std::size_t s = 0; s < arr->map().stripes(); ++s) {
            if (!arr->load_stripe(s, sbuf.view(), erased)) {
                ++rep.final_unrecovered;
                continue;
            }
            if (!erased.empty()) ++rep.final_degraded;
            for (std::uint32_t c = 0; c < arr->map().n(); ++c) {
                if (std::find(erased.begin(), erased.end(), c) !=
                    erased.end()) {
                    continue;
                }
                const strip_location loc = arr->map().locate(s, c);
                if (!arr->integrity(loc.disk).verify(loc.offset,
                                                  sbuf.view().strip(c))) {
                    ++rep.final_checksum_bad;
                }
            }
        }
    }

    rep.phases.final_verify_s = phase_clock.seconds();

    // ...then parity consistency. The settle scrub already healed every
    // injected fault, so any repair the scrubber performs here means some
    // path left a stripe inconsistent after recovery claimed it was done.
    phase_clock.restart();
    const scrub_summary scrub = scrub_array(*arr);
    rep.final_torn += scrub.repaired_data + scrub.repaired_parity;
    rep.scrub_uncorrectable += scrub.uncorrectable;
    rep.phases.final_scrub_s = phase_clock.seconds();

    accumulate(acc_stats, arr->stats());
    accumulate(acc_io, arr->io_stats());
    rep.stats = acc_stats;
    rep.io = acc_io;
    rep.health_trips = rep.stats.disks_tripped;
    rep.spares_promoted = rep.stats.spares_promoted;
    rep.rebuilds_completed = rep.stats.rebuilds_completed;
    rep.deadline_exceeded = rep.stats.deadline_exceeded;
    rep.hedged_reads = rep.stats.hedged_reads;
    rep.hedge_wins = rep.stats.hedge_wins;
    rep.slow_trips = rep.stats.slow_trips;
    rep.slow_recoveries = rep.stats.slow_recoveries;

    bool events_ok = arr->journal().size() == 0;
    if (ev.fail_stop_at_op < cfg.ops) {
        events_ok = events_ok && rep.injected_fail_stops >= 1;
    }
    if (ev.health_storm_at_op < cfg.ops && cfg.storm_rate > 0.0) {
        events_ok = events_ok && rep.health_trips >= 1;
    }
    if (ev.power_loss_at_op < cfg.ops) {
        events_ok = events_ok && rep.power_losses >= 1;
    }
    if (cfg.array.hot_spares > 0 &&
        (ev.fail_stop_at_op < cfg.ops || ev.health_storm_at_op < cfg.ops)) {
        events_ok = events_ok && rep.spares_promoted >= 1 &&
                    rep.rebuilds_completed >= 1;
    }
    if (ev.corrupt_every != 0 && ev.corrupt_every < cfg.ops) {
        // The campaign must not only survive silent corruption but visibly
        // exercise the self-healing read path.
        events_ok = events_ok && rep.corruptions_injected >= 1 &&
                    rep.stats.reads_self_healed >= 1;
    }
    if (ev.corrupt_integrity_every != 0 &&
        ev.corrupt_integrity_every < cfg.ops) {
        events_ok = events_ok && rep.integrity_corruptions_injected >= 1 &&
                    rep.stats.checksum_metadata_repaired >= 1;
    }
    if (ev.degraded_scrub && ev.fail_stop_at_op < cfg.ops) {
        events_ok = events_ok && rep.degraded_scrub_repairs >= 1;
    }
    if (cfg.array.latency.hedged_reads && ev.fail_slow_at_op < cfg.ops) {
        // The fail-slow plan must visibly exercise the whole tolerance
        // chain: late reads detected, hedges that beat the straggler,
        // and a quarantine trip.
        events_ok = events_ok && rep.fail_slow_injected >= 1 &&
                    rep.deadline_exceeded >= 1 && rep.hedge_wins >= 1 &&
                    rep.slow_trips >= 1;
        if (ev.fail_slow_recover_at_op < cfg.ops) {
            events_ok = events_ok && rep.slow_recoveries >= 1;
        }
    }
    if (pp.enabled) {
        // Every kill must have remounted, every planned crash point must
        // have demonstrated its recovery path.
        events_ok = events_ok && rep.mount_failures == 0 &&
                    rep.kills == rep.remounts;
        if (pp.kill_mid_write_at_op < cfg.ops) {
            events_ok = events_ok && rep.kills >= 1 &&
                        rep.mount_intent_replayed >= 1;
        }
        if (pp.kill_mid_rebuild_at_op < cfg.ops) {
            events_ok = events_ok && rep.rebuilds_resumed >= 1;
        }
        if (pp.kill_mid_scrub_at_op < cfg.ops) {
            events_ok = events_ok && rep.remount_scrub_repairs >= 1;
        }
        // The campaign's own exit is clean: stamp the superblocks so the
        // *next* mount of the directory sees a clean shutdown.
        events_ok = events_ok && arr->unmount();
    }
    capture_obs();
    rep.success = rep.clean() && events_ok && rep.slo_ok;
    if (!rep.success) {
        // Failed verdict: breadcrumb + automatic bundle (opt-in via
        // LIBERATION_POSTMORTEM_DIR) with everything already captured.
        obs::flight_recorder::instance().record(obs::fr_kind::verdict_failed,
                                                arr->obs().now_ns());
        obs::postmortem_bundle b;
        b.metrics_text = rep.metrics_text;
        b.trace_json = rep.trace_json;
        b.slo_text = rep.slo_text;
        (void)obs::auto_postmortem("chaos_verdict", nullptr, std::move(b));
    }
    return rep;
}

}  // namespace liberation::raid
