#include "liberation/raid/chaos.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "liberation/raid/scrubber.hpp"
#include "liberation/util/rng.hpp"
#include "liberation/util/timer.hpp"

namespace liberation::raid {

namespace {

/// Per-disk fault streams must be decorrelated from each other and from
/// the workload stream; splitmix-style odd multiplier does that cheaply.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t n) {
    return seed ^ (0x9e3779b97f4a7c15ULL * (n + 1));
}

[[nodiscard]] std::uint32_t pick_online_disk(raid6_array& a,
                                             util::xoshiro256& rng) {
    const std::uint32_t n = a.disk_count();
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto d = static_cast<std::uint32_t>(rng.next_below(n));
        if (a.disk(d).online()) return d;
    }
    for (std::uint32_t d = 0; d < n; ++d)
        if (a.disk(d).online()) return d;
    return 0;  // all offline; caller's event will be a no-op
}

}  // namespace

chaos_config default_chaos_config(std::uint64_t seed, std::size_t ops) {
    chaos_config cfg;
    cfg.seed = seed;
    cfg.ops = ops;
    cfg.array.k = 4;
    cfg.array.element_size = 512;
    cfg.array.stripes = 32;
    cfg.array.sector_size = 512;
    // One spare each for the injected fail-stop and the health trip.
    cfg.array.hot_spares = 2;
    cfg.array.rebuild_batch_stripes = 4;
    // Baseline transient rates are masked by retries and must NOT trip
    // disks; only *hard* (retry-exhausted) errors count, which the storm
    // disk produces almost immediately at storm_rate = 0.9
    // (0.9^4 ≈ 0.66 per I/O) while baseline disks essentially never do
    // (0.01^4 = 1e-8 per read).
    cfg.array.health.max_transient_errors = 0;  // disabled
    cfg.array.health.max_read_errors = 20;
    cfg.array.health.max_write_errors = 1;  // md: first lost write trips
    return cfg;
}

chaos_report run_chaos_campaign(const chaos_config& cfg) {
    chaos_report rep;
    raid6_array a(cfg.array);
    util::xoshiro256 rng(cfg.seed);
    const auto log = [&](const std::string& msg) {
        if (cfg.log) cfg.log(msg);
    };
    if (cfg.trace) a.obs().trace().enable();
    // The array (and its observability hub) is local to this run; capture
    // the exports into the report on every return path.
    const auto capture_obs = [&] {
        rep.metrics_text = a.obs().metrics_text();
        rep.histograms = a.obs().histogram_snapshots();
        if (cfg.trace) rep.trace_json = a.obs().trace_json();
    };
    util::stopwatch phase_clock;

    // Arm baseline transient rates on every starting disk (spares are
    // armed only if promoted hardware were flaky — they are not; a
    // promoted spare is fresh hardware, which is also what keeps the
    // post-storm array quiet enough to finish its rebuild).
    if (cfg.transient_read_rate > 0.0 || cfg.transient_write_rate > 0.0) {
        for (std::uint32_t d = 0; d < a.disk_count(); ++d)
            a.disk(d).set_transient_fault_rates(cfg.transient_read_rate,
                                                cfg.transient_write_rate,
                                                derive_seed(cfg.seed, d));
    }

    // Initial fill + shadow copy: every later read has a ground truth.
    const std::size_t cap = a.capacity();
    std::vector<std::byte> shadow(cap);
    rng.fill(shadow);
    if (!a.write(0, shadow)) {
        ++rep.failed_writes;
        rep.stats = a.stats();
        rep.phases.fill_s = phase_clock.seconds();
        capture_obs();
        return rep;
    }
    rep.phases.fill_s = phase_clock.seconds();

    const std::size_t max_io = cfg.max_io_bytes != 0
                                   ? std::min(cfg.max_io_bytes, cap)
                                   : std::min(2 * a.map().stripe_data_size(), cap);
    std::vector<std::byte> buf(max_io);

    const chaos_event_plan& ev = cfg.events;
    bool fail_stop_pending = false;
    bool storm_pending = false;
    bool power_pending = false;
    bool power_armed = false;  // budget set, loss not yet observed

    // An event only fires when the array is quiet — no failed disk, no
    // rebuild in flight — so faults never stack beyond the two erasures
    // RAID-6 tolerates by construction.
    const auto quiet = [&] {
        return a.failed_disk_count() == 0 && !a.rebuild_active() &&
               a.powered() && !power_armed;
    };

    // Silent corruption is injected under a *looser* gate than the armed
    // events: it fires while healthy, degraded, and rebuilding — any state
    // with at most one masked column, so a flipped column stays within the
    // two-erasure decode budget. Torn (journaled) stripes are excluded:
    // their mismatches belong to write-hole recovery, not to the
    // corruption classifier.
    const auto corruptible = [&] {
        return a.powered() && !power_armed && a.failed_disk_count() == 0 &&
               a.rebuilding_disk_count() <= 1 && a.journal().size() == 0;
    };
    std::size_t data_flips = 0;

    phase_clock.restart();
    for (std::size_t op = 0; op < cfg.ops; ++op) {
        if (op == ev.fail_stop_at_op) fail_stop_pending = true;
        if (op == ev.health_storm_at_op) storm_pending = true;
        if (op == ev.power_loss_at_op) power_pending = true;

        // Fire at most one armed event per op, oldest first.
        if (fail_stop_pending && quiet()) {
            const std::uint32_t victim = pick_online_disk(a, rng);
            log("op " + std::to_string(op) + ": fail-stop disk " +
                std::to_string(victim));
            a.fail_disk(victim);
            ++rep.injected_fail_stops;
            fail_stop_pending = false;
            if (ev.degraded_scrub) {
                // The array is now degraded (a spare's rebuild has barely
                // started, or no spare exists at all). Corrupt a survivor
                // column of the last stripe — far from the rebuild cursor —
                // and scrub immediately: the checksum-first scrubber must
                // repair corruption on a degraded stripe, which the parity
                // cross-check scrubber could only skip.
                const std::size_t s = a.map().stripes() - 1;
                for (std::uint32_t c = 0; c < a.map().n(); ++c) {
                    const strip_location loc = a.map().locate(s, c);
                    if (loc.disk == victim || !a.disk(loc.disk).online()) {
                        continue;
                    }
                    a.disk(loc.disk).inject_silent_corruption(loc.offset, 32,
                                                              rng);
                    ++rep.corruptions_injected;
                    log("op " + std::to_string(op) +
                        ": corrupted survivor disk " +
                        std::to_string(loc.disk) + " on degraded stripe " +
                        std::to_string(s));
                    break;
                }
                const scrub_summary mid = scrub_array(a);
                rep.degraded_scrub_repairs += mid.repaired_on_degraded;
            }
        } else if (storm_pending && quiet()) {
            const std::uint32_t victim = pick_online_disk(a, rng);
            log("op " + std::to_string(op) + ": transient storm on disk " +
                std::to_string(victim));
            a.disk(victim).set_transient_fault_rates(
                cfg.storm_rate, cfg.storm_rate, derive_seed(cfg.seed, 1000));
            storm_pending = false;
        } else if (power_pending && quiet()) {
            const auto budget = 1 + rng.next_below(4);
            log("op " + std::to_string(op) + ": power loss armed after " +
                std::to_string(budget) + " disk writes");
            a.simulate_power_loss_after(budget);
            power_pending = false;
            power_armed = true;
        } else if (ev.latent_error_every != 0 && op % ev.latent_error_every == 0 &&
                   op != 0 && quiet()) {
            const std::uint32_t victim = pick_online_disk(a, rng);
            const std::size_t dcap = a.disk(victim).capacity();
            const std::size_t off =
                rng.next_below(dcap / cfg.array.sector_size) *
                cfg.array.sector_size;
            a.disk(victim).inject_latent_error(off, cfg.array.sector_size);
            ++rep.latent_errors_injected;
        }

        // Silent corruption, independent of the armed-event chain (it is
        // what the chain's quiet() gate exists to serialize; flips are
        // *supposed* to land while a rebuild is in flight).
        if (ev.corrupt_every != 0 && op % ev.corrupt_every == 0 && op != 0 &&
            corruptible()) {
            // Rotate stripes with a stride coprime to the stripe count:
            // corruption lingers until a read or scrub heals it, and piling
            // three unhealed flips onto one stripe would exceed what any
            // two-parity code can repair.
            const std::size_t s = (data_flips * 7) % a.map().stripes();
            ++data_flips;
            const auto c =
                static_cast<std::uint32_t>(rng.next_below(a.map().n()));
            const strip_location loc = a.map().locate(s, c);
            const std::size_t block = a.integrity_block();
            const std::size_t off =
                loc.offset +
                rng.next_below(a.map().strip_size() / block) * block;
            const std::size_t len =
                1 + rng.next_below(std::min<std::size_t>(64, block));
            a.disk(loc.disk).inject_silent_corruption(off, len, rng);
            ++rep.corruptions_injected;
            log("op " + std::to_string(op) + ": silent corruption on disk " +
                std::to_string(loc.disk) + " stripe " + std::to_string(s));
        }
        if (ev.corrupt_integrity_every != 0 &&
            op % ev.corrupt_integrity_every == 0 && op != 0 &&
            corruptible()) {
            // Flip a stored checksum instead of the data it covers: the
            // verify/decode machinery must conclude the *metadata* is the
            // damaged side and refresh it, never "heal" the good data.
            const std::uint32_t victim = pick_online_disk(a, rng);
            integrity::integrity_region& region = a.integrity(victim);
            const std::size_t b = rng.next_below(region.blocks());
            region.corrupt_block(
                b, static_cast<std::uint32_t>(rng.next() | 1));
            ++rep.integrity_corruptions_injected;
            log("op " + std::to_string(op) +
                ": checksum metadata flip on disk " + std::to_string(victim));
        }

        // One workload op.
        const bool do_write = rng.next_below(10) < cfg.write_tenths;
        const std::size_t len = 1 + rng.next_below(max_io);
        const std::size_t addr = rng.next_below(cap - len + 1);
        const std::span<std::byte> io(buf.data(), len);
        if (do_write) {
            rng.fill(io);
            ++rep.writes;
            if (!a.write(addr, io)) {
                ++rep.failed_writes;
                log("op " + std::to_string(op) + ": write failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (a.powered()) {
                std::memcpy(shadow.data() + addr, buf.data(), len);
            }
        } else {
            ++rep.reads;
            if (!a.read(addr, io)) {
                ++rep.failed_reads;
                log("op " + std::to_string(op) + ": read failed at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            } else if (std::memcmp(shadow.data() + addr, buf.data(), len) !=
                       0) {
                ++rep.mismatches;
                log("op " + std::to_string(op) + ": shadow mismatch at " +
                    std::to_string(addr) + "+" + std::to_string(len));
            }
        }
        ++rep.ops;

        // Power loss fired mid-op: reboot, re-sync the journaled (torn)
        // stripes from their data columns, then reconcile the shadow with
        // whichever mix of old/new data the torn write left behind — that
        // on-disk state is now the ground truth, exactly as a real host
        // sees after an unclean shutdown.
        if (!a.powered()) {
            ++rep.power_losses;
            log("op " + std::to_string(op) + ": power lost, rebooting");
            a.reboot();
            power_armed = false;
            // Baseline transients can defer individual stripes; retry.
            for (int t = 0; t < 16 && a.journal().size() != 0; ++t)
                rep.resynced_stripes += a.recover_write_hole();
            if (do_write) {
                if (a.read(addr, io)) {
                    std::memcpy(shadow.data() + addr, buf.data(), len);
                } else {
                    ++rep.failed_reads;
                }
            }
        }
    }

    rep.phases.workload_s = phase_clock.seconds();

    // Settle: finish the background rebuild, disarm every fault stream,
    // then heal what is left (latent sectors on strips the workload never
    // re-read, including parity strips only resilver visits).
    phase_clock.restart();
    a.drain_background_rebuild();
    for (std::uint32_t d = 0; d < a.disk_count(); ++d)
        a.disk(d).clear_transient_faults();
    for (int t = 0; t < 16 && a.journal().size() != 0; ++t)
        rep.resynced_stripes += a.recover_write_hole();
    rep.resilver_healed = a.resilver();
    rep.phases.settle_s = phase_clock.seconds();

    phase_clock.restart();
    // Settle scrub: heal injected corruption the workload never re-read
    // (including parity strips, which host reads only touch when
    // degraded). Its parity-fallback repairs are damage the checksum
    // domain could not see — a stripe left torn without being journaled —
    // and count against the write-hole invariant.
    const scrub_summary settle = scrub_array(a);
    rep.settle_scrub_healed = settle.repaired_data + settle.repaired_parity +
                              settle.repaired_metadata;
    rep.final_torn += settle.parity_fallback_repairs;
    rep.scrub_uncorrectable += settle.uncorrectable;
    rep.phases.settle_scrub_s = phase_clock.seconds();

    // Final verification: full device vs shadow...
    phase_clock.restart();
    std::vector<std::byte> out(cap);
    if (!a.read(0, out)) {
        ++rep.failed_reads;
    } else if (!std::equal(out.begin(), out.end(), shadow.begin())) {
        ++rep.mismatches;
        log("final full-device read disagrees with the shadow copy");
    }

    // ...then per-stripe availability and a full checksum sweep: after the
    // settle scrub, every readable column must verify against its stored
    // checksum — this is the "no unverified bytes survive the campaign"
    // invariant.
    {
        codes::stripe_buffer sbuf = a.make_stripe_buffer();
        std::vector<std::uint32_t> erased;
        for (std::size_t s = 0; s < a.map().stripes(); ++s) {
            if (!a.load_stripe(s, sbuf.view(), erased)) {
                ++rep.final_unrecovered;
                continue;
            }
            if (!erased.empty()) ++rep.final_degraded;
            for (std::uint32_t c = 0; c < a.map().n(); ++c) {
                if (std::find(erased.begin(), erased.end(), c) !=
                    erased.end()) {
                    continue;
                }
                const strip_location loc = a.map().locate(s, c);
                if (!a.integrity(loc.disk).verify(loc.offset,
                                                  sbuf.view().strip(c))) {
                    ++rep.final_checksum_bad;
                }
            }
        }
    }

    rep.phases.final_verify_s = phase_clock.seconds();

    // ...then parity consistency. The settle scrub already healed every
    // injected fault, so any repair the scrubber performs here means some
    // path left a stripe inconsistent after recovery claimed it was done.
    phase_clock.restart();
    const scrub_summary scrub = scrub_array(a);
    rep.final_torn += scrub.repaired_data + scrub.repaired_parity;
    rep.scrub_uncorrectable += scrub.uncorrectable;
    rep.phases.final_scrub_s = phase_clock.seconds();

    rep.stats = a.stats();
    rep.io = a.io_stats();
    rep.health_trips = rep.stats.disks_tripped;
    rep.spares_promoted = rep.stats.spares_promoted;
    rep.rebuilds_completed = rep.stats.rebuilds_completed;

    bool events_ok = a.journal().size() == 0;
    if (ev.fail_stop_at_op < cfg.ops) {
        events_ok = events_ok && rep.injected_fail_stops >= 1;
    }
    if (ev.health_storm_at_op < cfg.ops && cfg.storm_rate > 0.0) {
        events_ok = events_ok && rep.health_trips >= 1;
    }
    if (ev.power_loss_at_op < cfg.ops) {
        events_ok = events_ok && rep.power_losses >= 1;
    }
    if (cfg.array.hot_spares > 0 &&
        (ev.fail_stop_at_op < cfg.ops || ev.health_storm_at_op < cfg.ops)) {
        events_ok = events_ok && rep.spares_promoted >= 1 &&
                    rep.rebuilds_completed >= 1;
    }
    if (ev.corrupt_every != 0 && ev.corrupt_every < cfg.ops) {
        // The campaign must not only survive silent corruption but visibly
        // exercise the self-healing read path.
        events_ok = events_ok && rep.corruptions_injected >= 1 &&
                    rep.stats.reads_self_healed >= 1;
    }
    if (ev.corrupt_integrity_every != 0 &&
        ev.corrupt_integrity_every < cfg.ops) {
        events_ok = events_ok && rep.integrity_corruptions_injected >= 1 &&
                    rep.stats.checksum_metadata_repaired >= 1;
    }
    if (ev.degraded_scrub && ev.fail_stop_at_op < cfg.ops) {
        events_ok = events_ok && rep.degraded_scrub_repairs >= 1;
    }
    rep.success = rep.clean() && events_ok;
    capture_obs();
    return rep;
}

}  // namespace liberation::raid
