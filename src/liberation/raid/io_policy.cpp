#include "liberation/raid/io_policy.hpp"

#include <algorithm>

namespace liberation::raid {

void io_policy::attach_obs(obs::hub* h) {
    obs_ = h;
    if (h == nullptr) {
        hist_read_ = nullptr;
        hist_write_ = nullptr;
        return;
    }
    hist_read_ = &h->metrics().get_histogram(
        "io_read_ns", "disk read latency through the retry policy");
    hist_write_ = &h->metrics().get_histogram(
        "io_write_ns", "disk write latency through the retry policy");
}

template <typename Op>
io_result io_policy::run(Op&& op, io_kind kind, bool defer_time_charge) {
    (kind == io_kind::read ? reads_ : writes_)
        .fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t begin = obs_ != nullptr ? obs_->now_ns() : 0;

    io_result result;
    std::uint64_t backoff = cfg_.initial_backoff_us;
    for (std::uint32_t attempt = 0;; ++attempt) {
        std::uint64_t service_us = 0;
        result.status = op(&service_us);
        // Injected fail-slow service time: charged to the virtual clock
        // like backoff (a real array would be waiting on the platter),
        // unless the caller is racing this op and will charge only the
        // winner's cost itself.
        if (service_us > 0) {
            result.latency_us += service_us;
            if (!defer_time_charge) clock_->advance(service_us);
        }
        if (!is_retryable(result.status)) break;
        ++result.transient_seen;
        if (attempt >= cfg_.max_retries) {
            retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        if (obs_ != nullptr && obs_->trace().enabled()) {
            obs_->trace().record(
                kind == io_kind::read ? "io.retry.read" : "io.retry.write",
                "io", obs_->now_ns(), 0);
        }
        // Exponential backoff on the virtual clock: a real array would
        // stall here; the simulation just records the stall.
        result.latency_us += backoff;
        if (!defer_time_charge) clock_->advance(backoff);
        backoff_us_.fetch_add(backoff, std::memory_order_relaxed);
        backoff = std::min(backoff * 2, cfg_.max_backoff_us);
        retries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (result.ok() && result.transient_seen > 0) {
        transient_masked_.fetch_add(1, std::memory_order_relaxed);
    }
    if (obs_ != nullptr) {
        const std::uint64_t end = obs_->now_ns();
        (kind == io_kind::read ? hist_read_ : hist_write_)
            ->record(end >= begin ? end - begin : 0);
    }
    return result;
}

io_result io_policy::read(vdisk& disk, std::size_t offset,
                          std::span<std::byte> out, bool defer_time_charge) {
    return run([&](std::uint64_t* svc) { return disk.read(offset, out, svc); },
               io_kind::read, defer_time_charge);
}

io_result io_policy::write(vdisk& disk, std::size_t offset,
                           std::span<const std::byte> in,
                           bool defer_time_charge) {
    return run([&](std::uint64_t* svc) { return disk.write(offset, in, svc); },
               io_kind::write, defer_time_charge);
}

io_policy_stats io_policy::stats() const noexcept {
    return {reads_.load(),            writes_.load(),
            retries_.load(),          transient_masked_.load(),
            retries_exhausted_.load(), backoff_us_.load()};
}

}  // namespace liberation::raid
