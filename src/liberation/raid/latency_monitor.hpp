// Per-disk fail-slow monitor: adaptive deadlines and slow-disk quarantine.
//
// The health monitor (health.hpp) reacts to *errors*; this layer reacts
// to *time*. A gray-failing disk answers every request correctly but
// slowly — firmware GC pauses, a dying head retrying internally, a
// flaky link renegotiating — and stalls every stripe it touches while
// looking perfectly healthy to error accounting. The Liberation optimal
// decoder makes reconstruction nearly free in XOR count, so the array
// can afford to treat lateness like an erasure: hedge the read through
// the other k columns and decode, and if the disk is *persistently*
// late, quarantine it so reads route around it up front.
//
// Mechanics, mirroring health_monitor's shape:
//   * every policy-mediated read's virtual latency is fed to
//     note_read(); each disk keeps its own power-of-two histogram;
//   * the per-disk deadline is clamp(p99 × deadline_factor) — adaptive,
//     so a uniformly slow fleet does not hedge against itself, while a
//     single straggler stands out. Below min_samples the deadline sits
//     at max_deadline_us: a cold array never hedges;
//   * slow_trip_misses *consecutive* deadline misses trip the disk into
//     suspect_slow (reported exactly once per episode, CAS); reads then
//     route around it via decode while writes still land;
//   * every probe_every-th routed read probes the quarantined disk
//     directly; recover_probes consecutive on-time probes un-quarantine
//     it (gray failures are often transient — GC ends, link recovers).
//
// All counters are atomics; rebuild/scrub workers may feed the monitor
// concurrently with the foreground path. Quarantine state is persisted
// across remount via a flag bit in the superblock slot states (see
// persist/superblock.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "liberation/obs/metrics.hpp"

namespace liberation::raid {

/// Off by default: hedging changes read-path behaviour (and virtual-time
/// accounting), so arrays opt in — like health_config's thresholds.
struct latency_config {
    /// Master switch for the whole fail-slow layer: hedged reads,
    /// deadline tracking, and quarantine. Off = note_read() is a no-op
    /// and deadline_us() reports "no deadline" (max).
    bool hedged_reads = false;
    /// Deadline = clamp(p99 × deadline_factor, min, max).
    double deadline_factor = 4.0;
    std::uint64_t min_deadline_us = 200;
    std::uint64_t max_deadline_us = 2'000'000;
    /// Deadlines stay at max until this many samples have been seen —
    /// a cold distribution's p99 is noise.
    std::uint64_t min_samples = 32;
    /// Consecutive deadline misses that trip a disk into suspect_slow.
    std::uint32_t slow_trip_misses = 8;
    /// While quarantined, every Nth read probes the disk directly
    /// instead of routing around it (0 = never probe: quarantine is
    /// permanent until reset).
    std::uint32_t probe_every = 16;
    /// Consecutive on-time probes that lift the quarantine.
    std::uint32_t recover_probes = 4;
};

enum class disk_pace : std::uint8_t {
    normal,
    suspect_slow,  ///< quarantined: reads route around it, writes land
};

struct disk_latency_stats {
    std::uint64_t samples = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t slow_trips = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t hedged_reads = 0;
    std::uint64_t routed_reads = 0;
    std::uint64_t deadline_us = 0;  ///< current adaptive deadline
    disk_pace pace = disk_pace::normal;
};

class latency_monitor {
public:
    latency_monitor(std::uint32_t disks, const latency_config& cfg);

    [[nodiscard]] bool enabled() const noexcept { return cfg_.hedged_reads; }

    /// Feed one mediated read's virtual latency (µs). Returns true
    /// exactly once per quarantine episode: on the transition into
    /// suspect_slow. Also drives recovery — an on-time sample on a
    /// quarantined disk (a probe) counts toward un-quarantine.
    bool note_read(std::uint32_t disk, std::uint64_t latency_us);

    /// Current adaptive deadline for the disk in µs (max_deadline_us
    /// while the distribution is cold or the layer is disabled).
    [[nodiscard]] std::uint64_t deadline_us(std::uint32_t disk) const;

    [[nodiscard]] disk_pace pace(std::uint32_t disk) const;
    [[nodiscard]] bool quarantined(std::uint32_t disk) const {
        return pace(disk) == disk_pace::suspect_slow;
    }

    /// While quarantined, the read path calls this per routed read:
    /// returns true when this read should probe the disk directly
    /// (every probe_every-th call), false to route around via decode.
    /// Counts routed reads either way.
    [[nodiscard]] bool take_probe(std::uint32_t disk);

    /// The read path hedged against this disk (deadline outlived).
    void note_hedge(std::uint32_t disk);

    [[nodiscard]] disk_latency_stats stats(std::uint32_t disk) const;
    [[nodiscard]] std::uint32_t disk_count() const noexcept {
        return static_cast<std::uint32_t>(disks_.size());
    }

    /// Fresh hardware in this slot: clear the distribution, the miss
    /// streak, and any quarantine.
    void reset(std::uint32_t disk);

    /// Track one more disk (online growth).
    void add_disk();

    /// Mount-time restore of a persisted quarantine: enter suspect_slow
    /// without counting a trip (the trip was counted last boot).
    void force_quarantine(std::uint32_t disk);

    [[nodiscard]] const latency_config& config() const noexcept {
        return cfg_;
    }

private:
    struct per_disk {
        obs::latency_histogram hist;  // µs samples, power-of-two buckets
        std::atomic<std::uint64_t> samples{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint32_t> miss_streak{0};
        std::atomic<std::uint64_t> trips{0};
        std::atomic<std::uint64_t> recoveries{0};
        std::atomic<std::uint64_t> hedges{0};
        std::atomic<std::uint64_t> routed{0};
        std::atomic<std::uint32_t> probe_tick{0};
        std::atomic<std::uint32_t> ok_probes{0};
        std::atomic<std::uint8_t> pace{
            static_cast<std::uint8_t>(disk_pace::normal)};
    };

    [[nodiscard]] std::uint64_t deadline_of(const per_disk& d) const;

    latency_config cfg_;
    // unique_ptr so the vector can grow (add_disk) without moving atomics.
    std::vector<std::unique_ptr<per_disk>> disks_;
};

}  // namespace liberation::raid
