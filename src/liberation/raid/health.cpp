#include "liberation/raid/health.hpp"

#include "liberation/util/assert.hpp"

namespace liberation::raid {

health_monitor::health_monitor(std::uint32_t disks, const health_config& cfg)
    : cfg_(cfg) {
    disks_.reserve(disks);
    for (std::uint32_t d = 0; d < disks; ++d) add_disk();
}

void health_monitor::add_disk() {
    disks_.push_back(std::make_unique<counters>());
}

bool health_monitor::over_threshold(const counters& c) const {
    return (cfg_.max_transient_errors != 0 &&
            c.transient.load(std::memory_order_relaxed) >=
                cfg_.max_transient_errors) ||
           (cfg_.max_read_errors != 0 &&
            c.hard_read.load(std::memory_order_relaxed) >=
                cfg_.max_read_errors) ||
           (cfg_.max_write_errors != 0 &&
            c.hard_write.load(std::memory_order_relaxed) >=
                cfg_.max_write_errors);
}

bool health_monitor::record(std::uint32_t disk, io_kind kind,
                            io_status final_status,
                            std::uint32_t transient_seen) {
    LIBERATION_EXPECTS(disk < disks_.size());
    counters& c = *disks_[disk];
    if (transient_seen > 0) {
        c.transient.fetch_add(transient_seen, std::memory_order_relaxed);
    }
    // Hard errors: a latent sector or an exhausted retry budget. Fail-stop
    // and out-of-range are not the medium's fault and don't count.
    const bool hard = final_status == io_status::unreadable_sector ||
                      final_status == io_status::transient_error;
    if (hard) {
        (kind == io_kind::read ? c.hard_read : c.hard_write)
            .fetch_add(1, std::memory_order_relaxed);
    }

    if (!over_threshold(c)) {
        // Mark suspect once errors pass half of any enabled threshold.
        const bool suspicious =
            (cfg_.max_transient_errors != 0 &&
             c.transient.load(std::memory_order_relaxed) * 2 >=
                 cfg_.max_transient_errors) ||
            (cfg_.max_read_errors != 0 &&
             c.hard_read.load(std::memory_order_relaxed) * 2 >=
                 cfg_.max_read_errors) ||
            (cfg_.max_write_errors != 0 &&
             c.hard_write.load(std::memory_order_relaxed) * 2 >=
                 cfg_.max_write_errors);
        if (suspicious) {
            auto expected = static_cast<std::uint8_t>(disk_health::healthy);
            c.state.compare_exchange_strong(
                expected, static_cast<std::uint8_t>(disk_health::suspect),
                std::memory_order_relaxed);
        }
        return false;
    }
    // Threshold crossed: report the transition exactly once.
    auto prev = c.state.exchange(
        static_cast<std::uint8_t>(disk_health::tripped),
        std::memory_order_acq_rel);
    return prev != static_cast<std::uint8_t>(disk_health::tripped);
}

disk_health health_monitor::state(std::uint32_t disk) const {
    LIBERATION_EXPECTS(disk < disks_.size());
    return static_cast<disk_health>(
        disks_[disk]->state.load(std::memory_order_acquire));
}

disk_health_stats health_monitor::stats(std::uint32_t disk) const {
    LIBERATION_EXPECTS(disk < disks_.size());
    const counters& c = *disks_[disk];
    return {c.transient.load(std::memory_order_relaxed),
            c.hard_read.load(std::memory_order_relaxed),
            c.hard_write.load(std::memory_order_relaxed), state(disk)};
}

void health_monitor::reset(std::uint32_t disk) {
    LIBERATION_EXPECTS(disk < disks_.size());
    counters& c = *disks_[disk];
    c.transient.store(0, std::memory_order_relaxed);
    c.hard_read.store(0, std::memory_order_relaxed);
    c.hard_write.store(0, std::memory_order_relaxed);
    c.state.store(static_cast<std::uint8_t>(disk_health::healthy),
                  std::memory_order_release);
}

}  // namespace liberation::raid
