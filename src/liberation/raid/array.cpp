#include "liberation/raid/array.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "liberation/aio/stripe_io.hpp"
#include "liberation/core/error_correction.hpp"
#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/raid/persist/store.hpp"
#include "liberation/raid/rebuild.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::raid {

namespace {

std::uint32_t effective_p(const array_config& cfg) {
    return cfg.p != 0 ? cfg.p : util::next_odd_prime(cfg.k);
}

}  // namespace

array_stats raid6_array::atomic_stats::snapshot() const noexcept {
    array_stats s;
    s.full_stripe_writes = full_stripe_writes.load(std::memory_order_relaxed);
    s.small_writes = small_writes.load(std::memory_order_relaxed);
    s.parity_elements_updated =
        parity_elements_updated.load(std::memory_order_relaxed);
    s.degraded_stripe_reads =
        degraded_stripe_reads.load(std::memory_order_relaxed);
    s.degraded_element_reads =
        degraded_element_reads.load(std::memory_order_relaxed);
    s.media_errors_recovered =
        media_errors_recovered.load(std::memory_order_relaxed);
    s.transient_errors_masked =
        transient_errors_masked.load(std::memory_order_relaxed);
    s.retries_exhausted = retries_exhausted.load(std::memory_order_relaxed);
    s.disks_tripped = disks_tripped.load(std::memory_order_relaxed);
    s.spares_promoted = spares_promoted.load(std::memory_order_relaxed);
    s.rebuilds_completed = rebuilds_completed.load(std::memory_order_relaxed);
    s.rebuild_stripes_failed =
        rebuild_stripes_failed.load(std::memory_order_relaxed);
    s.rebuild_sessions_stalled =
        rebuild_sessions_stalled.load(std::memory_order_relaxed);
    s.checksum_mismatches = checksum_mismatches.load(std::memory_order_relaxed);
    s.reads_self_healed = reads_self_healed.load(std::memory_order_relaxed);
    s.reads_unrecoverable =
        reads_unrecoverable.load(std::memory_order_relaxed);
    s.checksum_metadata_repaired =
        checksum_metadata_repaired.load(std::memory_order_relaxed);
    s.writes_rejected_log_full =
        writes_rejected_log_full.load(std::memory_order_relaxed);
    s.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
    s.hedged_reads = hedged_reads.load(std::memory_order_relaxed);
    s.hedge_wins = hedge_wins.load(std::memory_order_relaxed);
    s.slow_trips = slow_trips.load(std::memory_order_relaxed);
    s.slow_recoveries = slow_recoveries.load(std::memory_order_relaxed);
    s.slow_routed_reads = slow_routed_reads.load(std::memory_order_relaxed);
    s.intent_replayed = intent_replayed.load(std::memory_order_relaxed);
    s.stale_disks_kicked = stale_disks_kicked.load(std::memory_order_relaxed);
    return s;
}

array_stats raid6_array::stats() const noexcept {
    array_stats s = stats_.snapshot();
    // Atomic engine counters, snapshotted by value: as consistent as the
    // relaxed snapshot above even against worker-pool batches in flight.
    const aio::aio_stats a = aio_engine_->stats();
    s.aio_batches = a.batches;
    s.aio_merges = a.merges;
    s.aio_split_retries = a.split_retries;
    s.aio_inflight_highwater = a.inflight_highwater;
    return s;
}

raid6_array::raid6_array(const array_config& cfg)
    : map_(cfg.k, effective_p(cfg), cfg.element_size, cfg.stripes, cfg.layout),
      code_(cfg.k, effective_p(cfg)),
      sector_size_(cfg.sector_size),
      journal_(cfg.intent_log_entries),
      verify_reads_(cfg.verify_reads),
      integrity_block_(std::gcd(cfg.sector_size, map_.element_size())),
      aio_depth_(std::max<std::size_t>(1, cfg.io_queue_depth)),
      policy_(cfg.io_retry, clock_),
      health_(map_.n(), cfg.health),
      latmon_(map_.n(), cfg.latency),
      auto_failover_(cfg.auto_failover),
      rebuild_batch_stripes_(cfg.rebuild_batch_stripes == 0
                                 ? 1
                                 : cfg.rebuild_batch_stripes),
      next_disk_id_(map_.n() + cfg.hot_spares) {
    // Intent-log column masks are 64-bit (see intent_log::mark).
    LIBERATION_EXPECTS(map_.n() <= 64);
    disks_.reserve(map_.n());
    regions_.reserve(map_.n());
    for (std::uint32_t d = 0; d < map_.n(); ++d) {
        disks_.push_back(std::make_unique<vdisk>(d, map_.disk_capacity(),
                                                 cfg.sector_size));
        regions_.emplace_back(map_.disk_capacity(), integrity_block_);
    }
    spares_.reserve(cfg.hot_spares);
    for (std::uint32_t s = 0; s < cfg.hot_spares; ++s) {
        spares_.push_back(std::make_unique<vdisk>(
            map_.n() + s, map_.disk_capacity(), cfg.sector_size));
    }
    init_obs(cfg);
    aio::aio_config acfg;
    acfg.queue_depth = aio_depth_;
    acfg.merge_adjacent = cfg.io_merge;
    acfg.workers = cfg.io_workers;
    acfg.obs = &obs_;
    rebuild_aio_engine(acfg);
}

raid6_array::~raid6_array() = default;

void raid6_array::init_obs(const array_config& cfg) {
    if (cfg.obs_virtual_time) obs_.set_clock(&virtual_clock_now_ns, &clock_);
    policy_.attach_obs(&obs_);
    auto& m = obs_.metrics();
    hist_read_ = &m.get_histogram(
        "raid_read_ns", "host read latency (verified-read path included)");
    hist_write_full_ = &m.get_histogram("raid_write_full_stripe_ns",
                                        "full-stripe write latency");
    hist_write_small_ = &m.get_histogram(
        "raid_write_small_ns", "small (read-modify-write) write latency");
    // Registered here (not recorded here) so the exposition always shows
    // the families: rebuild.cpp and scrubber.cpp record into them.
    (void)m.get_histogram("raid_rebuild_window_ns",
                          "rebuild window latency (rebuild_stripe_range)");
    (void)m.get_histogram("raid_scrub_stripe_ns", "per-stripe scrub latency");
    // Recorded by persist::mount_array when this array is assembled from a
    // store; registered here so the family is always in the exposition.
    (void)m.get_histogram("raid_mount_ns",
                          "persistent-array mount latency "
                          "(probe, image load, intent replay)");
    hist_hedge_delay_ = &m.get_histogram(
        "raid_hedge_delay_ns",
        "hedge-issue to first-completion delay of hedged reads");
    gauge_failed_disks_ =
        &m.get_gauge("raid_failed_disks", "disks currently failed");
    gauge_spares_ =
        &m.get_gauge("raid_spares_available", "hot spares still in the pool");
    gauge_rebuild_remaining_ = &m.get_gauge(
        "raid_rebuild_stripes_remaining",
        "stripes the background rebuild session has yet to process");
    gauge_journal_ = &m.get_gauge(
        "raid_intent_log_entries", "stripes journaled in the intent log");
    gauge_spares_->set(static_cast<std::int64_t>(spares_.size()));
    obs_.add_collector([this] { mirror_counters(); });
}

void raid6_array::mirror_counters() {
    auto& m = obs_.metrics();
    const auto mir = [&m](const char* name, const char* help,
                          std::uint64_t v) {
        m.get_counter(name, help).mirror(v);
    };
    const array_stats s = stats();
    mir("raid_full_stripe_writes_total", "full-stripe writes",
        s.full_stripe_writes);
    mir("raid_small_writes_total", "read-modify-write small writes",
        s.small_writes);
    mir("raid_parity_elements_updated_total",
        "parity elements patched by small writes", s.parity_elements_updated);
    mir("raid_degraded_stripe_reads_total", "full-stripe decodes on read",
        s.degraded_stripe_reads);
    mir("raid_degraded_element_reads_total", "row-parity fast-path decodes",
        s.degraded_element_reads);
    mir("raid_media_errors_recovered_total",
        "latent sector errors healed by decode", s.media_errors_recovered);
    mir("raid_transient_errors_masked_total", "ops saved by retries",
        s.transient_errors_masked);
    mir("raid_retries_exhausted_total", "ops transient after the full budget",
        s.retries_exhausted);
    mir("raid_disks_tripped_total", "disks failed by the health monitor",
        s.disks_tripped);
    mir("raid_spares_promoted_total", "hot spares promoted", s.spares_promoted);
    mir("raid_rebuilds_completed_total", "background rebuild sessions finished",
        s.rebuilds_completed);
    mir("raid_rebuild_stripes_failed_total",
        "stripes unrecoverable during background rebuild",
        s.rebuild_stripes_failed);
    mir("raid_rebuild_sessions_stalled_total",
        "rebuild sessions needing the operator", s.rebuild_sessions_stalled);
    mir("raid_checksum_mismatches_total", "blocks failing their stored CRC",
        s.checksum_mismatches);
    mir("raid_reads_self_healed_total", "stripes repaired on read",
        s.reads_self_healed);
    mir("raid_reads_unrecoverable_total", "verified reads refused",
        s.reads_unrecoverable);
    mir("raid_checksum_metadata_repaired_total",
        "stale or damaged stored checksums refreshed",
        s.checksum_metadata_repaired);
    mir("raid_writes_rejected_log_full_total",
        "writes refused because the intent log was at capacity",
        s.writes_rejected_log_full);
    mir("raid_intent_replayed_total",
        "journaled stripes re-synced during mount replay", s.intent_replayed);
    mir("raid_stale_disks_kicked_total",
        "stale or unreadable members demoted to rebuild at mount",
        s.stale_disks_kicked);
    mir("raid_deadline_exceeded_total",
        "reads that outlived their adaptive deadline", s.deadline_exceeded);
    mir("raid_hedged_reads_total", "reconstruction hedges issued",
        s.hedged_reads);
    mir("raid_hedge_wins_total", "hedges that beat the straggler",
        s.hedge_wins);
    mir("raid_slow_trips_total", "disks quarantined as suspect_slow",
        s.slow_trips);
    mir("raid_slow_recoveries_total", "quarantines lifted by on-time probes",
        s.slow_recoveries);
    mir("raid_slow_routed_reads_total",
        "reads routed around a quarantined disk via decode",
        s.slow_routed_reads);
    // Per-disk series: one labeled sample per slot so a straggling or
    // error-prone member is identifiable from the exposition alone.
    for (std::uint32_t d = 0; d < latmon_.disk_count(); ++d) {
        const std::string label = "disk=\"" + std::to_string(d) + "\"";
        const disk_latency_stats ls = latmon_.stats(d);
        m.get_labeled_counter("disk_deadline_misses_total", label,
                              "per-disk reads missing their deadline")
            .mirror(ls.deadline_misses);
        m.get_labeled_counter("disk_slow_trips_total", label,
                              "per-disk suspect_slow quarantine entries")
            .mirror(ls.slow_trips);
        m.get_labeled_counter("disk_hedged_reads_total", label,
                              "per-disk reconstruction hedges issued")
            .mirror(ls.hedged_reads);
        if (d < health_.disk_count()) {
            const disk_health_stats h = health_.stats(d);
            m.get_labeled_counter("disk_transient_errors_total", label,
                                  "per-disk transient errors seen")
                .mirror(h.transient_errors);
            m.get_labeled_counter("disk_hard_errors_total", label,
                                  "per-disk hard (medium/device) errors")
                .mirror(h.hard_read_errors + h.hard_write_errors);
        }
    }
    const io_policy_stats io = policy_.stats();
    mir("io_reads_total", "disk reads through the retry policy", io.reads);
    mir("io_writes_total", "disk writes through the retry policy", io.writes);
    mir("io_retries_total", "extra attempts issued", io.retries);
    mir("io_backoff_us_total", "virtual time spent in retry backoff",
        io.backoff_us);
    const aio::aio_stats a = aio_engine_->stats();
    mir("aio_submitted_total", "requests accepted into the ring", a.submitted);
    mir("aio_completed_total", "completions delivered", a.completed);
    mir("aio_batches_total", "transfers issued to the backend", a.batches);
    mir("aio_merges_total", "reads absorbed into a neighbour", a.merges);
    mir("aio_split_retries_total", "merged transfers re-driven split",
        a.split_retries);
    m.get_gauge("aio_inflight_highwater", "max pending on any one disk")
        .set(static_cast<std::int64_t>(a.inflight_highwater));
}

void raid6_array::update_health_gauges() noexcept {
    gauge_failed_disks_->set(failed_disk_count());
    gauge_spares_->set(static_cast<std::int64_t>(spares_.size()));
    gauge_rebuild_remaining_->set(
        static_cast<std::int64_t>(rebuild_stripes_remaining()));
}

void raid6_array::rebuild_aio_engine(const aio::aio_config& acfg) {
    aio_engine_ = std::make_unique<aio::queue_pair>(backend_, map_.n(), acfg);
    // Checksum verification as a completion-stage decorator: it sees the
    // final status of the execution stage, so transient errors have
    // already been retried (a mismatch, by contrast, is never retried —
    // re-reading rotten bytes cannot un-rot them). Mirrors
    // verified_disk_read() on the synchronous path.
    aio_engine_->add_completion_stage(
        [this](const aio::io_desc& d, io_status st) {
            if (st != io_status::ok || d.kind != aio::op_kind::read ||
                (d.flags & aio::flag_verify) == 0 || !verify_reads_) {
                return st;
            }
            if (!regions_[d.disk].verify(d.offset, {d.data, d.len})) {
                stats_.checksum_mismatches.fetch_add(
                    1, std::memory_order_relaxed);
                return io_status::checksum_mismatch;
            }
            return st;
        });
}

io_status raid6_array::disk_backend::execute(const aio::io_desc& d) {
    if (d.kind == aio::op_kind::read) {
        return owner.disk_read(d.disk, d.offset,
                               std::span<std::byte>(d.data, d.len));
    }
    return owner.disk_write(
        d.disk, d.offset, std::span<const std::byte>(d.data, d.len), d.crcs);
}

void raid6_array::add_data_disk() {
    // A persistent array's on-disk framing (file count, slot tables,
    // checksum table sizes) is fixed at format time; growth would need a
    // reshape pass the store does not implement.
    LIBERATION_EXPECTS(store_ == nullptr);
    LIBERATION_EXPECTS(map_.layout() == parity_layout::parity_first);
    LIBERATION_EXPECTS(map_.k() < code_.p());
    LIBERATION_EXPECTS(failed_disk_count() == 0);
    const std::uint32_t new_k = map_.k() + 1;
    disks_.push_back(std::make_unique<vdisk>(next_disk_id_++,
                                             map_.disk_capacity(),
                                             sector_size_));
    map_ = stripe_map(new_k, map_.rows(), map_.element_size(), map_.stripes(),
                      parity_layout::parity_first);
    code_ = core::liberation_optimal_code(new_k, code_.p());
    LIBERATION_EXPECTS(map_.n() <= 64);
    // The new column is blank (all zeros), which is exactly what a fresh
    // integrity region describes.
    regions_.emplace_back(map_.disk_capacity(), integrity_block_);
    health_.add_disk();
    latmon_.add_disk();
    // The engine's per-disk rings are sized at construction; rebuild it
    // for the grown array (it is idle here — growth requires all disks
    // online and no I/O in flight).
    rebuild_aio_engine(aio_engine_->config());
}

std::uint32_t raid6_array::failed_disk_count() const noexcept {
    std::uint32_t n = 0;
    for (const auto& d : disks_) {
        if (!d->online()) ++n;
    }
    return n;
}

// ---- I/O funnel ------------------------------------------------------

bool raid6_array::rebuild_masked(std::uint32_t d, std::size_t offset,
                                 std::size_t len) const noexcept {
    if (!rebuild_active_) return false;
    // Strips at or past the member's cursor are blank. The mask covers
    // the whole extent when its *last* strip is masked (stripes only ever
    // become unmasked from the front), which makes coalesced multi-strip
    // reads conservative: the aio split-retry re-drives the fragments and
    // only the truly masked ones stay erased.
    const std::size_t last_stripe =
        (offset + (len == 0 ? 0 : len - 1)) / map_.strip_size();
    for (const rebuild_member& m : rebuilding_) {
        if (m.disk == d) return last_stripe >= m.cursor;
    }
    return false;
}

void raid6_array::note_io(std::uint32_t d, io_kind kind, const io_result& r) {
    if (r.transient_seen > 0) {
        if (r.ok()) {
            stats_.transient_errors_masked.fetch_add(1,
                                                     std::memory_order_relaxed);
        } else if (r.status == io_status::transient_error) {
            stats_.retries_exhausted.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (health_.record(d, kind, r.status, r.transient_seen)) {
        // Threshold crossed: the disk is too sick to trust. Fail it now
        // (atomic; this may run on a rebuild pool thread) and let the next
        // foreground operation promote a spare.
        disks_[d]->fail();
        stats_.disks_tripped.fetch_add(1, std::memory_order_relaxed);
        obs::flight_recorder::instance().record(obs::fr_kind::disk_tripped,
                                                obs_.now_ns(), d);
        pending_failover_.store(true, std::memory_order_release);
    }
}

io_status raid6_array::disk_read(std::uint32_t d, std::size_t offset,
                                 std::span<std::byte> out) {
    // A promoted spare is blank above the rebuild cursor: its bytes are
    // not data, the column is (still) an erasure.
    if (rebuild_masked(d, offset, out.size())) return io_status::rebuilding;
    const io_result r = policy_.read(*disks_[d], offset, out);
    note_io(d, io_kind::read, r);
    return r.status;
}

io_status raid6_array::disk_write(std::uint32_t disk, std::size_t offset,
                                  std::span<const std::byte> in,
                                  const std::uint32_t* crcs) {
    // Fused writes hand over the checksums their producing traversal
    // already computed; everyone else pays one sweep of the buffer here.
    const auto update_region = [&] {
        if (crcs != nullptr) {
            regions_[disk].install(offset,
                                   {crcs, in.size() / integrity_block_});
        } else {
            regions_[disk].record(offset, in);
        }
        persist_checksums(disk, offset, in.size());
    };
    // Claim one unit of the power-loss budget atomically (aio worker-mode
    // writes may race here; the inline engine is single-threaded).
    std::uint64_t budget = write_budget_.load(std::memory_order_relaxed);
    do {
        if (budget == 0) {
            powered_.store(false, std::memory_order_relaxed);
            // The write's *intent* still reaches the battery-backed
            // metadata domain even though the bits never reach the medium
            // — recording the checksum is what makes the torn write
            // deterministically detectable (and torn-vs-corrupt
            // classifiable) on replay. The persisted superblock models the
            // same NVRAM domain, so the record-ahead checksum is flushed
            // there too — powered off or not.
            update_region();
            return io_status::ok;  // the host never learns; the bits are gone
        }
    } while (!write_budget_.compare_exchange_weak(budget, budget - 1,
                                                  std::memory_order_relaxed));
    const io_result r = policy_.write(*disks_[disk], offset, in);
    note_io(disk, io_kind::write, r);
    // A failed write never reaches the medium, so the old checksum stays
    // authoritative; only landed bytes update the region.
    if (r.status == io_status::ok) update_region();
    return r.status;
}

io_status raid6_array::verified_disk_read(std::uint32_t d, std::size_t offset,
                                          std::span<std::byte> out) {
    const io_status st = disk_read(d, offset, out);
    if (st != io_status::ok || !verify_reads_) return st;
    if (!regions_[d].verify(offset, out)) {
        stats_.checksum_mismatches.fetch_add(1, std::memory_order_relaxed);
        return io_status::checksum_mismatch;
    }
    return st;
}

// ---- fail-slow tolerance ---------------------------------------------

io_status raid6_array::disk_read_deferred(std::uint32_t d, std::size_t offset,
                                          std::span<std::byte> out,
                                          std::uint64_t& latency_us) {
    latency_us = 0;
    if (rebuild_masked(d, offset, out.size())) return io_status::rebuilding;
    const io_result r =
        policy_.read(*disks_[d], offset, out, /*defer_time_charge=*/true);
    note_io(d, io_kind::read, r);
    latency_us = r.latency_us;
    return r.status;
}

bool raid6_array::reconstruct_column_range(std::size_t stripe,
                                           std::uint32_t col,
                                           std::size_t strip_lo,
                                           std::span<std::byte> dst) {
    LIBERATION_EXPECTS(strip_lo + dst.size() <= map_.strip_size());
    codes::stripe_buffer buf = make_stripe_buffer();
    const codes::stripe_view v = buf.view();
    // The read-set goes through the aio engine so per-disk batching and
    // read coalescing apply; requests execute through disk_read, so
    // retry/health/masking semantics are identical to any other read.
    const std::size_t base = aio_engine_->completions().size();
    for (std::uint32_t c = 0; c < map_.n(); ++c) {
        if (c == col) continue;
        const strip_location l = map_.locate(stripe, c);
        aio::io_desc d;
        d.disk = l.disk;
        d.kind = aio::op_kind::read;
        d.offset = l.offset;
        d.data = v.strip(c).data();
        d.len = map_.strip_size();
        d.user_data = c;
        d.flags = aio::flag_verify;
        aio_engine_->submit(d);
    }
    aio_engine_->drain();
    std::vector<std::uint32_t> erased{col};
    const std::vector<aio::io_cqe>& cqes = aio_engine_->completions();
    for (std::size_t i = base; i < cqes.size(); ++i) {
        if (cqes[i].status != io_status::ok) {
            erased.push_back(static_cast<std::uint32_t>(cqes[i].user_data));
        }
    }
    aio_engine_->clear_completions();
    if (erased.size() > 2) return false;
    std::sort(erased.begin(), erased.end());
    code_.decode(v, erased);
    const std::span<const std::byte> got(v.strip(col).data() + strip_lo,
                                         dst.size());
    // End-to-end gate: the reconstruction must match the *hedged-around*
    // column's own stored checksum before it is served in its place.
    const strip_location loc = map_.locate(stripe, col);
    if (verify_reads_ &&
        !regions_[loc.disk].verify(loc.offset + strip_lo, got)) {
        return false;
    }
    std::memcpy(dst.data(), got.data(), dst.size());
    return true;
}

io_status raid6_array::read_chunk_failslow(std::size_t stripe,
                                           std::uint32_t col,
                                           std::size_t strip_lo,
                                           std::span<std::byte> dst) {
    const strip_location loc = map_.locate(stripe, col);
    const std::uint32_t d = loc.disk;
    const std::size_t offset = loc.offset + strip_lo;

    // Quarantined disk: route around it via decode up front, except for
    // the periodic probe that checks whether the straggler recovered.
    if (latmon_.quarantined(d) && !latmon_.take_probe(d)) {
        stats_.slow_routed_reads.fetch_add(1, std::memory_order_relaxed);
        if (reconstruct_column_range(stripe, col, strip_lo, dst)) {
            return io_status::ok;
        }
        // A second failure in the stripe made the decode impossible; the
        // quarantined disk is slow, not dead — fall through and read it.
    }

    // Deferred-charge direct read: the policy reports the virtual cost
    // but does not advance the clock, so a hedged race can charge
    // whichever leg is actually served.
    std::uint64_t lat = 0;
    const io_status st = disk_read_deferred(d, offset, dst, lat);
    if (st != io_status::ok) {
        clock_.advance(lat);
        return st;  // the caller's existing degraded handling takes over
    }
    const std::uint64_t deadline = latmon_.deadline_us(d);
    const bool was_quarantined = latmon_.quarantined(d);
    if (latmon_.note_read(d, lat)) {
        stats_.slow_trips.fetch_add(1, std::memory_order_relaxed);
        obs::flight_recorder::instance().record(
            obs::fr_kind::disk_quarantined, obs_.now_ns(), d, lat);
        persist_membership();  // quarantine survives a remount
    } else if (was_quarantined && !latmon_.quarantined(d)) {
        stats_.slow_recoveries.fetch_add(1, std::memory_order_relaxed);
        obs::flight_recorder::instance().record(
            obs::fr_kind::quarantine_lifted, obs_.now_ns(), d, lat);
        persist_membership();
    }

    if (lat <= deadline) {
        clock_.advance(lat);
        if (verify_reads_ && !regions_[d].verify(offset, dst)) {
            stats_.checksum_mismatches.fetch_add(1, std::memory_order_relaxed);
            return io_status::checksum_mismatch;
        }
        return st;
    }

    // The read outlived its deadline: speculatively issue the
    // reconstruction read-set and take whichever leg completes first.
    // Timeline: the hedge is issued at `deadline` and costs `hedge_us`
    // (charged inline by the aio legs); the direct read lands at `lat`.
    stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    stats_.hedged_reads.fetch_add(1, std::memory_order_relaxed);
    obs::flight_recorder::instance().record(obs::fr_kind::hedge_issued,
                                            obs_.now_ns(), d, lat);
    latmon_.note_hedge(d);
    util::aligned_buffer rbuf(dst.size());
    const std::uint64_t h0 = clock_.now_us();
    const bool recon =
        reconstruct_column_range(stripe, col, strip_lo, rbuf.span());
    const std::uint64_t hedge_us = clock_.now_us() - h0;
    if (recon && deadline + hedge_us < lat) {
        stats_.hedge_wins.fetch_add(1, std::memory_order_relaxed);
        clock_.advance(deadline);  // hedge_us is already on the clock
        hist_hedge_delay_->record(hedge_us * 1000);
        std::memcpy(dst.data(), rbuf.data(), dst.size());
        return io_status::ok;
    }
    // The straggler still won the race (or the decode was unavailable):
    // serve the direct bytes. The hedge cost overlaps the tail of the
    // wait, so only the remainder of `lat` is still owed.
    clock_.advance(lat > hedge_us ? lat - hedge_us : 0);
    hist_hedge_delay_->record((lat - deadline) * 1000);
    if (verify_reads_ && !regions_[d].verify(offset, dst)) {
        stats_.checksum_mismatches.fetch_add(1, std::memory_order_relaxed);
        return io_status::checksum_mismatch;
    }
    return io_status::ok;
}

// ---- failover & background rebuild -----------------------------------

void raid6_array::fail_disk(std::uint32_t d) {
    disks_[d]->fail();
    handle_failed_disks();
    update_health_gauges();
    persist_membership();
}

void raid6_array::replace_disk(std::uint32_t d) {
    if (store_ && !store_->meta_slot(d)) {
        // The slot's file belonged to a foreign array (or never decoded);
        // the operator is installing blank hardware over it, so reclaim
        // the file for this array before the blank medium is mirrored.
        (void)store_->reinit_slot(d);
        attach_media_sink(d);
    }
    disks_[d]->replace();
    health_.reset(d);
    latmon_.reset(d);
    // The operator took over this slot; drop any background-rebuild claim.
    const auto it =
        std::find_if(rebuilding_.begin(), rebuilding_.end(),
                     [d](const rebuild_member& m) { return m.disk == d; });
    if (it != rebuilding_.end()) {
        rebuilding_.erase(it);
        if (rebuilding_.empty()) {
            rebuild_active_ = false;
            rebuild_stalled_ = false;
        }
    }
    update_health_gauges();
    persist_membership();
}

void raid6_array::handle_failed_disks() {
    pending_failover_.store(false, std::memory_order_relaxed);
    if (!auto_failover_) return;
    bool promoted = false;
    for (std::uint32_t d = 0; d < map_.n(); ++d) {
        if (disks_[d]->online() || spares_.empty()) continue;
        // Promote: the blank spare takes the dead disk's slot. Its column
        // is masked (io_status::rebuilding) until its watermark passes.
        disks_[d] = std::move(spares_.back());
        spares_.pop_back();
        health_.reset(d);
        latmon_.reset(d);
        stats_.spares_promoted.fetch_add(1, std::memory_order_relaxed);
        obs::flight_recorder::instance().record(obs::fr_kind::spare_promoted,
                                                obs_.now_ns(), d);
        if (store_ != nullptr) {
            // The slot's file keeps the dead disk's bytes: everything
            // above the new member's watermark is masked anyway, and the
            // rebuild rewrites it through the sink. A foreign slot must be
            // reclaimed before the new hardware writes into it.
            if (!store_->meta_slot(d)) (void)store_->reinit_slot(d);
            attach_media_sink(d);
        }
        promoted = true;
        const auto it =
            std::find_if(rebuilding_.begin(), rebuilding_.end(),
                         [d](const rebuild_member& m) { return m.disk == d; });
        if (it != rebuilding_.end()) {
            it->cursor = 0;  // fresh blank hardware in an already-claimed slot
        } else {
            // The new member starts from stripe 0 with its own watermark;
            // members already mid-rebuild keep theirs, so their rebuilt
            // (and write-maintained) extents stay trusted.
            rebuilding_.push_back({d, 0});
        }
        rebuild_active_ = true;
    }
    update_health_gauges();
    if (promoted) persist_membership();
}

void raid6_array::service_events() {
    if (pending_failover_.load(std::memory_order_acquire)) {
        handle_failed_disks();
    }
    if (rebuild_active_ && powered_ && !in_service_) {
        service_background_rebuild(rebuild_batch_stripes_);
    }
}

std::size_t raid6_array::service_background_rebuild(std::size_t max_stripes) {
    if (in_service_ || max_stripes == 0) return 0;
    if (pending_failover_.load(std::memory_order_acquire)) {
        handle_failed_disks();
    }
    if (!rebuild_active_ || !powered_) return 0;
    if (rebuilding_.empty()) {
        rebuild_active_ = false;
        return 0;
    }
    if (rebuilding_.size() > 2) {
        // > 2 concurrent losses: beyond RAID-6, operator's call. Surface
        // the stall (once per session) instead of silently masking the
        // columns forever; reads of them keep failing loudly meanwhile.
        if (!rebuild_stalled_) {
            rebuild_stalled_ = true;
            stats_.rebuild_sessions_stalled.fetch_add(
                1, std::memory_order_relaxed);
        }
        return 0;
    }
    rebuild_stalled_ = false;
    in_service_ = true;
    // Advance the furthest-behind member(s) together, stopping at the next
    // member's watermark so each disk's cursor only ever moves forward.
    std::size_t first = rebuilding_.front().cursor;
    for (const rebuild_member& m : rebuilding_) {
        first = std::min(first, m.cursor);
    }
    std::size_t last = std::min(map_.stripes(), first + max_stripes);
    std::vector<std::uint32_t> group;
    for (const rebuild_member& m : rebuilding_) {
        if (m.cursor == first) {
            group.push_back(m.disk);
        } else {
            last = std::min(last, m.cursor);
        }
    }
    rebuild_result res;
    {
        // Trace-only span for the batch; the per-window latency histogram
        // (raid_rebuild_window_ns) records inside rebuild_stripe_range, so
        // operator-driven rebuilds feed the same family.
        obs::timed_span span(obs_, nullptr, "raid.rebuild_batch", "rebuild");
        res = rebuild_stripe_range(*this, group, first, last, nullptr);
    }
    std::size_t processed = 0;
    if (powered_) {
        // (If power died mid-batch the writes were dropped — keep the
        // watermarks so the batch reruns after reboot; decode is
        // idempotent.)
        processed = last - first;
        stats_.rebuild_stripes_failed.fetch_add(res.stripes_failed,
                                                std::memory_order_relaxed);
        for (rebuild_member& m : rebuilding_) {
            if (m.cursor == first) m.cursor = last;
        }
        bool completed = false;
        for (auto it = rebuilding_.begin(); it != rebuilding_.end();) {
            if (it->cursor >= map_.stripes()) {
                obs::flight_recorder::instance().record(
                    obs::fr_kind::rebuild_completed, obs_.now_ns(), it->disk);
                it = rebuilding_.erase(it);
                stats_.rebuilds_completed.fetch_add(1,
                                                    std::memory_order_relaxed);
                completed = true;
            } else {
                ++it;
            }
        }
        if (rebuilding_.empty()) rebuild_active_ = false;
        // Persist the advanced watermarks so a kill mid-rebuild resumes
        // from here instead of stripe 0; a finished member is a membership
        // change (its slot state flips back to active).
        if (completed) {
            persist_membership();
        } else if (processed > 0) {
            persist_watermarks();
        }
    }
    in_service_ = false;
    // A survivor may have tripped during the batch.
    if (pending_failover_.load(std::memory_order_acquire)) {
        handle_failed_disks();
    }
    update_health_gauges();
    return processed;
}

void raid6_array::drain_background_rebuild() {
    // A health trip may still be waiting for its promotion.
    if (pending_failover_.load(std::memory_order_acquire)) {
        handle_failed_disks();
    }
    while (rebuild_active_ && powered_) {
        if (service_background_rebuild(map_.stripes()) == 0) break;
    }
}

// ---- stripe-granular interface ---------------------------------------

bool raid6_array::load_stripe(std::size_t stripe, const codes::stripe_view& dst,
                              std::vector<std::uint32_t>& erased,
                              std::vector<io_status>* statuses) {
    erased.clear();
    if (statuses != nullptr) statuses->assign(map_.n(), io_status::ok);
    // The column read-set goes through the aio engine (same shape as
    // reconstruct_column_range): per-disk batching and merging apply, the
    // requests execute through disk_read so retry/health/masking semantics
    // are unchanged, and a host op's degraded load shows up as aio
    // fragments inside its causal trace tree. No flag_verify — checksum
    // policy stays with the caller (verify_loaded_stripe decides which
    // strips to trust).
    const std::size_t base = aio_engine_->completions().size();
    for (std::uint32_t col = 0; col < map_.n(); ++col) {
        const strip_location loc = map_.locate(stripe, col);
        aio::io_desc d;
        d.disk = loc.disk;
        d.kind = aio::op_kind::read;
        d.offset = loc.offset;
        d.data = dst.strip(col).data();
        d.len = map_.strip_size();
        d.user_data = col;
        aio_engine_->submit(d);
    }
    aio_engine_->drain();
    const std::vector<aio::io_cqe>& cqes = aio_engine_->completions();
    for (std::size_t i = base; i < cqes.size(); ++i) {
        const auto col = static_cast<std::uint32_t>(cqes[i].user_data);
        if (statuses != nullptr) (*statuses)[col] = cqes[i].status;
        if (cqes[i].status != io_status::ok) erased.push_back(col);
    }
    aio_engine_->clear_completions();
    std::sort(erased.begin(), erased.end());
    return erased.size() <= 2;
}

bool raid6_array::store_columns(std::size_t stripe,
                                const codes::stripe_view& src,
                                std::span<const std::uint32_t> cols,
                                const std::uint32_t* const* col_crcs) {
    bool all_ok = true;
    for (const std::uint32_t col : cols) {
        const strip_location loc = map_.locate(stripe, col);
        const std::uint32_t* crcs =
            col_crcs != nullptr ? col_crcs[col] : nullptr;
        if (disk_write(loc.disk, loc.offset, src.strip(col), crcs) !=
            io_status::ok) {
            all_ok = false;
        }
    }
    return all_ok;
}

raid6_array::stripe_recovery raid6_array::load_stripe_verified(
    std::size_t stripe, const codes::stripe_view& buf, bool writeback,
    std::span<const std::uint32_t> extra_erasures, bool trust_parity) {
    std::vector<std::uint32_t> erased;
    std::vector<io_status> statuses;
    (void)load_stripe(stripe, buf, erased, &statuses);
    return verify_loaded_stripe(stripe, buf, writeback, extra_erasures,
                                trust_parity, std::move(statuses));
}

raid6_array::stripe_recovery raid6_array::verify_loaded_stripe(
    std::size_t stripe, const codes::stripe_view& buf, bool writeback,
    std::span<const std::uint32_t> extra_erasures, bool trust_parity,
    std::vector<io_status> statuses) {
    LIBERATION_EXPECTS(statuses.size() == map_.n());
    stripe_recovery rec;
    rec.statuses = std::move(statuses);
    for (std::uint32_t col = 0; col < map_.n(); ++col) {
        if (rec.statuses[col] != io_status::ok) rec.erased.push_back(col);
    }
    const bool loadable = rec.erased.size() <= 2;
    for (const std::uint32_t col : extra_erasures) {
        if (std::find(rec.erased.begin(), rec.erased.end(), col) ==
            rec.erased.end()) {
            rec.erased.push_back(col);
        }
    }
    std::sort(rec.erased.begin(), rec.erased.end());
    if (!loadable || rec.erased.size() > 2) return rec;
    rec.verified = true;

    const auto is_erased = [&](std::uint32_t col) {
        return std::binary_search(rec.erased.begin(), rec.erased.end(), col);
    };
    const std::uint32_t pc = code_.p_column();
    const std::uint32_t qc = code_.q_column();

    // Every verification below captures the words its fused sweep
    // computed: a column that is later written back (heal, rebuild
    // commit) hands them to the store instead of being traversed again.
    const std::size_t bps = map_.strip_size() / integrity_block_;
    rec.crcs.resize(static_cast<std::size_t>(map_.n()) * bps);
    rec.crc_valid.assign(map_.n(), 0);
    const auto col_crc = [&](std::uint32_t col) {
        return rec.crcs.data() + static_cast<std::size_t>(col) * bps;
    };
    // store_columns-shaped pointer table over the captured words; entries
    // are published only once the words describe the column's *current*
    // bytes (a decode can invalidate a capture).
    std::vector<const std::uint32_t*> crc_ptrs(map_.n(), nullptr);
    const auto publish_crc = [&](std::uint32_t col) {
        rec.crc_valid[col] = 1;
        crc_ptrs[col] = col_crc(col);
    };

    // Checksum-first classification: every available column whose bytes
    // fail their stored CRC is a suspect, with no single-corruption
    // assumption and no dependence on parity agreeing with anything.
    std::vector<std::uint32_t> crc_bad;
    for (std::uint32_t col = 0; col < map_.n(); ++col) {
        if (is_erased(col)) continue;
        const strip_location loc = map_.locate(stripe, col);
        if (!regions_[loc.disk].verify_capture(loc.offset, buf.strip(col),
                                               col_crc(col))) {
            crc_bad.push_back(col);
            rec.statuses[col] = io_status::checksum_mismatch;
        } else {
            publish_crc(col);
        }
    }
    if (!crc_bad.empty()) {
        stats_.checksum_mismatches.fetch_add(crc_bad.size(),
                                             std::memory_order_relaxed);
    }

    if (!trust_parity) {
        // Torn-stripe fallback: parity may disagree with data, so no data
        // column may be reconstructed from it. The caller re-encodes both
        // parities from data, which resolves parity-side suspects anyway.
        for (const std::uint32_t col : rec.erased) {
            if (col != pc && col != qc) return rec;
        }
        for (const std::uint32_t col : crc_bad) {
            if (col != pc && col != qc) return rec;
        }
        rec.ok = true;
        return rec;
    }

    if (rec.erased.size() + crc_bad.size() <= 2) {
        // Within the decode budget: treat the corrupt columns as erasures,
        // reconstruct everything in one optimal decode, then let the
        // checksums arbitrate who was really damaged.
        std::vector<std::uint32_t> suspects = rec.erased;
        suspects.insert(suspects.end(), crc_bad.begin(), crc_bad.end());
        std::sort(suspects.begin(), suspects.end());

        // Snapshot the raw bytes of the checksum-suspect columns so the
        // decode result can be compared against what was actually on disk.
        std::vector<std::vector<std::byte>> raw;
        raw.reserve(crc_bad.size());
        for (const std::uint32_t col : crc_bad) {
            const std::span<const std::byte> s = buf.strip(col);
            raw.emplace_back(s.begin(), s.end());
        }
        if (!suspects.empty()) code_.decode(buf, suspects);

        for (std::size_t i = 0; i < crc_bad.size(); ++i) {
            const std::uint32_t col = crc_bad[i];
            const strip_location loc = map_.locate(stripe, col);
            if (std::equal(raw[i].begin(), raw[i].end(),
                           buf.strip(col).begin())) {
                // Parity reproduced the on-disk bytes exactly: the data
                // was fine all along and the *stored checksum* is the
                // damaged side. Refresh the metadata from the words the
                // classification sweep computed over these very bytes.
                regions_[loc.disk].install(loc.offset, {col_crc(col), bps});
                publish_crc(col);
                rec.meta_repaired.push_back(col);
                stats_.checksum_metadata_repaired.fetch_add(
                    1, std::memory_order_relaxed);
                continue;
            }
            // Real corruption: the decode recovered different bytes.
            // Re-verify the reconstruction; if the stored checksum rejects
            // even the parity-backed truth, data *and* metadata were both
            // hit — the decode (computed from verified inputs) wins and
            // the metadata is refreshed too.
            if (!regions_[loc.disk].verify_capture(loc.offset, buf.strip(col),
                                                   col_crc(col))) {
                regions_[loc.disk].install(loc.offset, {col_crc(col), bps});
                stats_.checksum_metadata_repaired.fetch_add(
                    1, std::memory_order_relaxed);
            }
            publish_crc(col);
            rec.healed.push_back(col);
            if (writeback) {
                const std::uint32_t one[] = {col};
                store_columns(stripe, buf, one, crc_ptrs.data());
            }
        }
        for (const std::uint32_t col : rec.erased) {
            // Verify every reconstructed column before anyone trusts it.
            // All decode inputs verified, so a mismatch here means the
            // stored checksum is stale (e.g. corrupted metadata or a
            // blank replacement disk's region) — refresh it.
            const strip_location loc = map_.locate(stripe, col);
            if (!regions_[loc.disk].verify_capture(loc.offset, buf.strip(col),
                                                   col_crc(col))) {
                regions_[loc.disk].install(loc.offset, {col_crc(col), bps});
                rec.meta_repaired.push_back(col);
                stats_.checksum_metadata_repaired.fetch_add(
                    1, std::memory_order_relaxed);
            }
            publish_crc(col);
            if (writeback &&
                rec.statuses[col] == io_status::unreadable_sector) {
                // Heal-on-read of latent sector errors, as load_and_decode
                // always did.
                stats_.media_errors_recovered.fetch_add(
                    1, std::memory_order_relaxed);
                const std::uint32_t one[] = {col};
                store_columns(stripe, buf, one, crc_ptrs.data());
            }
        }
        rec.ok = true;
        return rec;
    }

    // More checksum suspects than the two-erasure decode budget (plus any
    // true erasures). Before declaring data loss, consider that the
    // *metadata* may be the damaged side: decode only the true erasures
    // and cross-check parity against data. If the codeword is consistent,
    // the bytes on disk are mutually corroborated by both parities and
    // every "suspect" checksum is stale — refresh them all.
    if (!rec.erased.empty()) code_.decode(buf, rec.erased);
    if (core::stripe_consistent(buf, code_.geom())) {
        for (const std::uint32_t col : crc_bad) {
            // Only true erasures were decoded, so these bytes are still
            // the ones the classification sweep captured words for.
            const strip_location loc = map_.locate(stripe, col);
            regions_[loc.disk].install(loc.offset, {col_crc(col), bps});
            publish_crc(col);
            rec.meta_repaired.push_back(col);
            rec.statuses[col] = io_status::ok;
            stats_.checksum_metadata_repaired.fetch_add(
                1, std::memory_order_relaxed);
        }
        for (const std::uint32_t col : rec.erased) {
            const strip_location loc = map_.locate(stripe, col);
            if (!regions_[loc.disk].verify_capture(loc.offset, buf.strip(col),
                                                   col_crc(col))) {
                regions_[loc.disk].install(loc.offset, {col_crc(col), bps});
                rec.meta_repaired.push_back(col);
                stats_.checksum_metadata_repaired.fetch_add(
                    1, std::memory_order_relaxed);
            }
            publish_crc(col);
        }
        rec.ok = true;
    }
    return rec;
}

bool raid6_array::journal_mark(std::size_t stripe, std::uint64_t cols) {
    // A dead host issues no writes that could tear anything.
    if (!powered_) return true;
    if (!journal_.mark(stripe, cols)) {
        // Log full: proceeding unjournaled would be a silent write hole
        // waiting for a crash — refuse the write loudly instead.
        stats_.writes_rejected_log_full.fetch_add(1,
                                                  std::memory_order_relaxed);
        return false;
    }
    gauge_journal_->set(static_cast<std::int64_t>(journal_.size()));
    obs::flight_recorder::instance().record(obs::fr_kind::intent_mark,
                                            obs_.now_ns(), 0, stripe);
    // On-disk analogue of the NVRAM flush: the entry must be durable on
    // the other members before any data write of this stripe is issued.
    persist_intent();
    return true;
}

void raid6_array::journal_clear(std::size_t stripe) {
    // A dead host cannot clear its NVRAM word — the whole point.
    if (powered_) {
        journal_.clear(stripe);
        gauge_journal_->set(static_cast<std::int64_t>(journal_.size()));
        persist_intent();
    }
}

// ---- persistence hooks -----------------------------------------------

void raid6_array::attach_persistence(std::unique_ptr<persist::store> st) {
    LIBERATION_EXPECTS(st != nullptr && st->slot_count() == map_.n());
    store_ = std::move(st);
    for (std::uint32_t d = 0; d < map_.n(); ++d) {
        if (store_->meta_slot(d)) attach_media_sink(d);
    }
}

void raid6_array::attach_media_sink(std::uint32_t d) {
    // Raw pointer capture: the store outlives every sink (unmount and the
    // destructor detach sinks before releasing it).
    persist::store* st = store_.get();
    disks_[d]->attach_media_sink(
        [st, d](std::size_t offset, std::span<const std::byte> bytes) {
            (void)st->write_data(d, offset, bytes);
        });
}

void raid6_array::persist_intent() {
    if (!store_) return;
    std::vector<persist::superblock::intent_entry> ents;
    for (const intent_log::entry& e : journal_.entries()) {
        ents.push_back({e.stripe, e.columns, e.seq});
    }
    for (std::uint32_t s = 0; s < map_.n(); ++s) {
        if (!store_->meta_slot(s) || !store_->slot_ok(s)) continue;
        store_->image(s).intents = ents;
        (void)store_->persist(s);
    }
}

void raid6_array::persist_checksums(std::uint32_t disk, std::size_t offset,
                                    std::size_t len) {
    if (!store_ || !store_->meta_slot(disk) || !store_->slot_ok(disk)) return;
    persist::superblock& img = store_->image(disk);
    const std::span<const std::uint32_t> crcs = regions_[disk].checksums();
    if (img.crcs.size() != crcs.size()) {
        img.crcs.assign(crcs.begin(), crcs.end());
    } else {
        const std::size_t b0 = offset / integrity_block_;
        const std::size_t b1 =
            (offset + len + integrity_block_ - 1) / integrity_block_;
        std::copy(crcs.begin() + static_cast<std::ptrdiff_t>(b0),
                  crcs.begin() + static_cast<std::ptrdiff_t>(b1),
                  img.crcs.begin() + static_cast<std::ptrdiff_t>(b0));
    }
    (void)store_->persist(disk);
}

void raid6_array::persist_membership() {
    if (!store_) return;
    const std::uint32_t n = map_.n();
    std::vector<std::uint8_t> states(
        n, static_cast<std::uint8_t>(persist::slot_state::active));
    std::vector<std::uint64_t> marks(n, map_.stripes());
    for (std::uint32_t d = 0; d < n; ++d) {
        if (!disks_[d]->online()) {
            states[d] = static_cast<std::uint8_t>(persist::slot_state::failed);
        } else if (latmon_.quarantined(d)) {
            // Quarantine survives a remount: lateness is not corruption,
            // so the base state stays active with the slow bit OR-ed on.
            states[d] |= persist::slot_state_slow_bit;
        }
    }
    for (const rebuild_member& m : rebuilding_) {
        states[m.disk] =
            static_cast<std::uint8_t>(persist::slot_state::rebuilding);
        marks[m.disk] = m.cursor;
    }
    // One shared epoch across the replicated copies: members that miss
    // this update (failed/foreign slots) fall behind and are kicked as
    // stale by the next mount.
    std::uint64_t events = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
        if (store_->meta_slot(s)) {
            events = std::max(events, store_->image(s).events);
        }
    }
    ++events;
    for (std::uint32_t s = 0; s < n; ++s) {
        if (!store_->meta_slot(s) || !store_->slot_ok(s)) continue;
        persist::superblock& img = store_->image(s);
        img.slot_states = states;
        img.watermarks = marks;
        img.spares_available = static_cast<std::uint32_t>(spares_.size());
        img.next_disk_id = next_disk_id_;
        img.disk_id = disks_[s]->id();
        img.events = events;
        (void)store_->persist(s);
    }
}

void raid6_array::persist_watermarks() {
    if (!store_) return;
    for (std::uint32_t s = 0; s < map_.n(); ++s) {
        if (!store_->meta_slot(s) || !store_->slot_ok(s)) continue;
        persist::superblock& img = store_->image(s);
        for (const rebuild_member& m : rebuilding_) {
            img.watermarks[m.disk] = m.cursor;
        }
        (void)store_->persist(s);
    }
}

bool raid6_array::unmount() {
    if (!store_) return true;
    // Refresh every replicated table, then stamp the images clean (only
    // if no hazard is still journaled) and flush. The two persists per
    // slot are deliberate: membership/intent refresh first, then the
    // clean stamp — a crash between them is indistinguishable from a
    // crash just before unmount, which mount handles anyway.
    persist_membership();
    persist_intent();
    const bool clean = journal_.size() == 0;
    bool ok = true;
    for (std::uint32_t s = 0; s < map_.n(); ++s) {
        if (!store_->meta_slot(s) || !store_->slot_ok(s)) continue;
        persist::superblock& img = store_->image(s);
        // Wholesale checksum refresh: scrub/read-repair may have updated
        // words without a disk_write hook firing.
        const std::span<const std::uint32_t> crcs = regions_[s].checksums();
        img.crcs.assign(crcs.begin(), crcs.end());
        img.clean = clean;
        if (!store_->persist(s)) ok = false;
    }
    if (!store_->flush_all()) ok = false;
    for (auto& d : disks_) d->detach_media_sink();
    store_.reset();
    return ok;
}

std::size_t raid6_array::resilver() {
    std::size_t healed = 0;
    codes::stripe_buffer buf = make_stripe_buffer();
    for (std::size_t s = 0; s < map_.stripes(); ++s) {
        const auto before =
            stats_.media_errors_recovered.load(std::memory_order_relaxed);
        if (!load_and_decode(s, buf.view())) continue;  // > 2 unavailable
        healed += stats_.media_errors_recovered.load(std::memory_order_relaxed) -
                  before;
    }
    return healed;
}

std::size_t raid6_array::recover_write_hole() {
    LIBERATION_EXPECTS(powered_);
    std::size_t resynced = 0;
    codes::stripe_buffer buf = make_stripe_buffer();
    for (const std::size_t s : journal_.dirty_stripes()) {
        if (resync_journaled_stripe(s, buf.view())) ++resynced;
    }
    return resynced;
}

bool raid6_array::resync_journaled_stripe(std::size_t stripe,
                                          const codes::stripe_view& buf) {
    std::vector<std::uint32_t> erased;
    if (!load_stripe(stripe, buf, erased) || !erased.empty()) {
        return false;  // degraded: leave journaled for later
    }
    const std::uint32_t pc = code_.p_column();
    const std::uint32_t qc = code_.q_column();
    const std::uint64_t mask = journal_.columns(stripe);
    // Classify every data column whose bytes fail their stored checksum.
    // A column *targeted* by the in-flight update is torn: the mismatch is
    // the half-landed update itself, the on-disk bytes win and the
    // checksum is refreshed (record-ahead on dropped writes makes this
    // deterministic). An *untargeted* column was never meant to change —
    // its old checksum is authoritative and the mismatch is silent
    // corruption that struck while the stripe was torn; recover it via
    // checksum-guided candidate decode or leave the stripe journaled.
    // Parity columns need no classification: re-encoding from data below
    // resolves any parity tear or corruption either way.
    for (std::uint32_t col = 0; col < map_.n(); ++col) {
        if (col == pc || col == qc) continue;
        const strip_location loc = map_.locate(stripe, col);
        if (regions_[loc.disk].verify(loc.offset, buf.strip(col))) continue;
        stats_.checksum_mismatches.fetch_add(1, std::memory_order_relaxed);
        if ((mask >> col) & 1) {
            regions_[loc.disk].record(loc.offset, buf.strip(col));
        } else if (!heal_journaled_column(stripe, buf, col)) {
            return false;
        }
    }
    // Data is the source of truth; rebuild both parity columns.
    code_.encode(buf);
    const std::uint32_t parity_cols[] = {pc, qc};
    if (!store_columns(stripe, buf, parity_cols) || !powered_) return false;
    journal_clear(stripe);
    return true;
}

bool raid6_array::heal_journaled_column(std::size_t stripe,
                                        const codes::stripe_view& buf,
                                        std::uint32_t col) {
    const std::uint32_t pc = code_.p_column();
    const std::uint32_t qc = code_.q_column();
    const strip_location loc = map_.locate(stripe, col);
    codes::stripe_buffer tmp = make_stripe_buffer();
    // Parity may itself be torn, so try each subset that still has enough
    // intact parity to reconstruct the column ({c}: both parities fine,
    // {c,P}: P torn, {c,Q}: Q torn) and accept the first candidate the
    // stored checksum vouches for. A false match is a CRC32C collision on
    // an element-sized block — negligible against the faults modeled here.
    const std::vector<std::vector<std::uint32_t>> candidates = {
        {col}, {col, pc}, {col, qc}};
    for (const std::vector<std::uint32_t>& erased : candidates) {
        codes::copy_stripe(tmp.view(), buf);
        code_.decode(tmp.view(), erased);
        if (!regions_[loc.disk].verify(loc.offset, tmp.view().strip(col))) {
            continue;
        }
        std::memcpy(buf.strip(col).data(), tmp.view().strip(col).data(),
                    map_.strip_size());
        const std::uint32_t one[] = {col};
        return store_columns(stripe, buf, one);
    }
    return false;
}

bool raid6_array::load_and_decode(std::size_t stripe,
                                  const codes::stripe_view& buf) {
    // Trace-only: degraded full-stripe decodes show up as distinct spans
    // inside the surrounding raid.read / raid.write_small span.
    obs::timed_span span(obs_, nullptr, "raid.degraded_read");
    if (verify_reads_ && !journal_.is_dirty(stripe)) {
        // Verified read: checksum mismatches demote columns to erasures,
        // the optimal decoder reconstructs them, reconstructions are
        // re-verified, and repairs are written back (read-repair). Torn
        // stripes are excluded — their mismatches are half-landed updates,
        // not corruption, and resync owns that classification.
        const stripe_recovery rec =
            load_stripe_verified(stripe, buf, /*writeback=*/true);
        if (!rec.ok) return false;
        if (!rec.erased.empty()) {
            stats_.degraded_stripe_reads.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        if (!rec.healed.empty()) {
            stats_.reads_self_healed.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
    }
    std::vector<std::uint32_t> erased;
    std::vector<io_status> statuses;
    if (!load_stripe(stripe, buf, erased, &statuses)) return false;
    if (erased.empty()) return true;
    code_.decode(buf, erased);
    stats_.degraded_stripe_reads.fetch_add(1, std::memory_order_relaxed);
    // Heal-on-read: a column that was unreadable on an *online* disk is a
    // latent sector error. Rewrite the reconstructed strip so the medium
    // remaps it (md's read-error rewrite) — otherwise the bad sector lies
    // in wait and turns the next double failure into a triple. Columns
    // erased for other reasons need no heal: transient errors left the
    // data intact, and rebuilding columns are the background session's job.
    for (const std::uint32_t col : erased) {
        if (statuses[col] != io_status::unreadable_sector) continue;
        stats_.media_errors_recovered.fetch_add(1, std::memory_order_relaxed);
        const std::uint32_t one[] = {col};
        store_columns(stripe, buf, one);
    }
    return true;
}

bool raid6_array::read_element_degraded(std::size_t stripe, std::uint32_t row,
                                        std::uint32_t col,
                                        std::span<std::byte> out) {
    const std::size_t elem = map_.element_size();
    LIBERATION_EXPECTS(out.size() == elem && col < map_.k());
    util::aligned_buffer acc(elem), tmp(elem);

    const auto read_elem = [&](std::uint32_t c, std::uint32_t r,
                               std::span<std::byte> dst) {
        const strip_location loc = map_.locate(stripe, c);
        // Verified: XOR-ing a silently corrupt survivor into the
        // reconstruction would *manufacture* corruption in a column that
        // was merely erased.
        return verified_disk_read(
                   loc.disk, loc.offset + static_cast<std::size_t>(r) * elem,
                   dst) == io_status::ok;
    };

    if (!read_elem(code_.p_column(), row, acc.span())) return false;
    for (std::uint32_t j = 0; j < map_.k(); ++j) {
        if (j == col) continue;
        if (!read_elem(j, row, tmp.span())) return false;
        xorops::xor_into(acc.data(), tmp.data(), elem);
    }
    if (verify_reads_) {
        // End-to-end check: the reconstructed element must match the
        // *erased* column's own stored checksum before it is served. A
        // mismatch (e.g. the target's metadata is itself damaged) falls
        // back to the full-stripe path, whose classification can repair
        // the metadata.
        const strip_location loc = map_.locate(stripe, col);
        if (!regions_[loc.disk].verify(
                loc.offset + static_cast<std::size_t>(row) * elem,
                acc.span())) {
            return false;
        }
    }
    std::memcpy(out.data(), acc.data(), elem);
    stats_.degraded_element_reads.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void raid6_array::note_unrecoverable_read(std::size_t stripe) {
    const std::uint64_t prev =
        stats_.reads_unrecoverable.fetch_add(1, std::memory_order_relaxed);
    obs::flight_recorder::instance().record(obs::fr_kind::read_unrecoverable,
                                            obs_.now_ns(), 0, stripe);
    if (prev == 0) {
        // First data-loss surface of this array: capture the evidence
        // while it is fresh.
        (void)obs::auto_postmortem("reads_unrecoverable", &obs_);
    }
}

bool raid6_array::read(std::size_t addr, std::span<std::byte> out) {
    LIBERATION_EXPECTS(addr + out.size() <= capacity());
    service_events();
    // Timed after service_events: the rebuild batch a host op services is
    // accounted to the rebuild-window family, not to read latency.
    obs::timed_span span(obs_, hist_read_, "raid.read");
    // Verify-on-read widens unaligned chunks to whole checksum blocks, so
    // the fast path stages them through a strip-sized scratch buffer.
    util::aligned_buffer vbuf(verify_reads_ ? map_.strip_size() : 0);
    std::size_t done = 0;
    while (done < out.size()) {
        const std::size_t a = addr + done;
        const std::size_t stripe = a / map_.stripe_data_size();
        const std::size_t in_stripe = a % map_.stripe_data_size();
        const std::size_t span_len = std::min(
            out.size() - done, map_.stripe_data_size() - in_stripe);

        // Fast path: per-column direct reads.
        bool degraded = false;
        std::size_t off = in_stripe;
        std::size_t copied = 0;
        while (copied < span_len && !degraded) {
            const auto col = static_cast<std::uint32_t>(off / map_.strip_size());
            const std::size_t in_strip = off % map_.strip_size();
            const std::size_t chunk =
                std::min(span_len - copied, map_.strip_size() - in_strip);
            const strip_location loc = map_.locate(stripe, col);
            io_status st;
            if (verify_reads_) {
                const std::size_t lo = in_strip - in_strip % integrity_block_;
                const std::size_t hi =
                    (in_strip + chunk + integrity_block_ - 1) /
                    integrity_block_ * integrity_block_;
                const std::span<std::byte> w(vbuf.data(), hi - lo);
                st = latmon_.enabled()
                         ? read_chunk_failslow(stripe, col, lo, w)
                         : verified_disk_read(loc.disk, loc.offset + lo, w);
                if (st == io_status::ok) {
                    std::memcpy(out.data() + done + copied,
                                vbuf.data() + (in_strip - lo), chunk);
                }
            } else {
                const std::span<std::byte> w =
                    out.subspan(done + copied, chunk);
                st = latmon_.enabled()
                         ? read_chunk_failslow(stripe, col, in_strip, w)
                         : disk_read(loc.disk, loc.offset + in_strip, w);
            }
            if (st != io_status::ok) {
                degraded = true;
                break;
            }
            copied += chunk;
            off += chunk;
        }

        if (degraded) {
            // Small reads: recover just the touched elements via row
            // parity (k element reads each) before paying a full-stripe
            // decode. Falls back when a second column is unavailable.
            bool element_path = span_len <= 2 * map_.element_size();
            if (element_path) {
                util::aligned_buffer ebuf(map_.element_size());
                for (std::size_t i = 0; i < span_len && element_path;) {
                    const std::size_t o = in_stripe + i;
                    const auto col =
                        static_cast<std::uint32_t>(o / map_.strip_size());
                    const std::size_t in_strip = o % map_.strip_size();
                    const auto row = static_cast<std::uint32_t>(
                        in_strip / map_.element_size());
                    const std::size_t in_elem =
                        in_strip % map_.element_size();
                    const std::size_t chunk = std::min(
                        span_len - i, map_.element_size() - in_elem);
                    const strip_location loc = map_.locate(stripe, col);
                    const std::size_t elem_off =
                        loc.offset +
                        static_cast<std::size_t>(row) * map_.element_size();
                    const io_status est =
                        verified_disk_read(loc.disk, elem_off, ebuf.span());
                    if (est != io_status::ok) {
                        if (!read_element_degraded(stripe, row, col,
                                                   ebuf.span())) {
                            element_path = false;
                            break;
                        }
                        if (est == io_status::checksum_mismatch &&
                            disk_write(loc.disk, elem_off, ebuf.span()) ==
                                io_status::ok) {
                            // Element-granular read-repair: the verified
                            // reconstruction overwrites the rot instead of
                            // leaving it in wait for the next failure.
                            stats_.reads_self_healed.fetch_add(
                                1, std::memory_order_relaxed);
                        }
                    }
                    std::memcpy(out.data() + done + i, ebuf.data() + in_elem,
                                chunk);
                    i += chunk;
                }
            }
            if (!element_path) {
                codes::stripe_buffer buf = make_stripe_buffer();
                if (!load_and_decode(stripe, buf.view())) {
                    if (verify_reads_) {
                        note_unrecoverable_read(stripe);
                    }
                    return false;
                }
                // Gather the requested bytes from the rebuilt stripe.
                for (std::size_t i = 0; i < span_len;) {
                    const std::size_t o = in_stripe + i;
                    const auto col =
                        static_cast<std::uint32_t>(o / map_.strip_size());
                    const std::size_t in_strip = o % map_.strip_size();
                    const std::size_t chunk =
                        std::min(span_len - i, map_.strip_size() - in_strip);
                    std::memcpy(out.data() + done + i,
                                buf.view().strip(col).data() + in_strip,
                                chunk);
                    i += chunk;
                }
            }
        }
        done += span_len;
    }
    return true;
}

bool raid6_array::write(std::size_t addr, std::span<const std::byte> in) {
    LIBERATION_EXPECTS(addr + in.size() <= capacity());
    service_events();
    std::size_t done = 0;
    while (done < in.size()) {
        const std::size_t a = addr + done;
        const std::size_t stripe = a / map_.stripe_data_size();
        const std::size_t in_stripe = a % map_.stripe_data_size();
        const std::size_t span_len =
            std::min(in.size() - done, map_.stripe_data_size() - in_stripe);

        bool ok;
        std::size_t advance = span_len;
        if (in_stripe == 0 && span_len == map_.stripe_data_size()) {
            // A run of consecutive full stripes goes through the async
            // pipeline: all k+2 column writes of every stripe in the
            // window are in flight together, and parity of stripe i+1 is
            // computed while stripe i's columns are still landing.
            const std::size_t run =
                (in.size() - done) / map_.stripe_data_size();
            if (run > 1 && aio_depth_ > 1) {
                ok = write_full_stripes(
                    stripe, run,
                    in.subspan(done, run * map_.stripe_data_size()));
                advance = run * map_.stripe_data_size();
            } else {
                ok = write_full_stripe(stripe, in.subspan(done, span_len));
            }
        } else {
            ok = write_partial(stripe, in_stripe, in.subspan(done, span_len));
        }
        // Power died during this stripe's update: nothing further lands,
        // the host never observes the result, and the journal owns any
        // tear. Reporting failure would be a verdict nobody is alive to
        // hear — the seed's "the host never learns" semantics.
        if (!powered_) return true;
        if (!ok) return false;
        done += advance;
    }
    return true;
}

bool raid6_array::write_full_stripe(std::size_t stripe,
                                    std::span<const std::byte> in) {
    obs::timed_span span(obs_, hist_write_full_, "raid.write_full_stripe");
    codes::stripe_buffer buf = make_stripe_buffer();
    const codes::stripe_view v = buf.view();
    // Single-pass protocol: checksums ride the staging copies and the
    // final encode traversal of each parity strip, and the stores below
    // install the words — no strip is re-read for its CRC.
    const std::size_t bps = map_.strip_size() / integrity_block_;
    std::vector<std::uint32_t> crcs(static_cast<std::size_t>(map_.n()) * bps);
    std::vector<const std::uint32_t*> col_crcs(map_.n());
    for (std::uint32_t c = 0; c < map_.n(); ++c)
        col_crcs[c] = crcs.data() + c * bps;
    for (std::uint32_t col = 0; col < map_.k(); ++col) {
        xorops::copy_crc32c_blocks(
            v.strip(col).data(),
            in.data() + static_cast<std::size_t>(col) * map_.strip_size(),
            map_.strip_size(), integrity_block_, crcs.data() + col * bps);
    }
    code_.encode_crc(v, integrity_block_,
                     crcs.data() + static_cast<std::size_t>(map_.k()) * bps,
                     crcs.data() + (map_.k() + std::size_t{1}) * bps);
    std::vector<std::uint32_t> cols(map_.n());
    for (std::uint32_t c = 0; c < map_.n(); ++c) cols[c] = c;
    // Failed disks simply miss the update; the stripe stays decodable as
    // long as <= 2 columns are down.
    if (!journal_mark(stripe, intent_log::all_columns)) return false;
    stats_.full_stripe_writes.fetch_add(1, std::memory_order_relaxed);
    store_columns(stripe, v, cols, col_crcs.data());
    journal_clear(stripe);
    return failed_disk_count() <= 2;
}

bool raid6_array::write_full_stripes(std::size_t first, std::size_t count,
                                     std::span<const std::byte> in) {
    // One span/sample for the whole pipelined run (it is one host op);
    // per-request latencies live in the aio_* stage histograms.
    obs::timed_span span(obs_, hist_write_full_, "raid.write_full_stripes");
    // Checksum-staging mode: data CRCs ride the staging pass, parity CRCs
    // the fused encode below, and every submission carries its words for
    // the integrity layer to install on completion.
    aio::stripe_writer writer(*aio_engine_, map_, integrity_block_);
    const std::size_t sds = map_.stripe_data_size();
    const std::uint32_t k = map_.k();
    const std::uint32_t n = map_.n();
    std::size_t done = 0;
    bool mark_failed = false;
    while (done < count && !mark_failed) {
        std::size_t window = std::min(writer.window(), count - done);
        // A bounded intent log must keep headroom for the whole window: a
        // synchronous writer marks and clears one stripe at a time, so the
        // pipelined path caps its window at the free NVRAM words rather
        // than surface rejections the caller would never have seen.
        if (journal_.capacity() != 0) {
            const std::size_t free_slots =
                journal_.capacity() > journal_.size()
                    ? journal_.capacity() - journal_.size()
                    : 0;
            window = std::min(window, std::max<std::size_t>(1, free_slots));
        }
        std::size_t submitted = 0;
        for (std::size_t i = 0; i < window; ++i) {
            const std::size_t s = first + done + i;
            if (!journal_mark(s, intent_log::all_columns)) {
                mark_failed = true;
                break;
            }
            stats_.full_stripe_writes.fetch_add(1, std::memory_order_relaxed);
            const std::span<std::byte* const> cols =
                writer.stage(i, in.data() + (done + i) * sds);
            // Data columns go into flight before parity exists: the encode
            // below overlaps with their execution when a worker pool is
            // attached, and still batches per disk when running inline.
            writer.submit_columns(s, i, cols, 0, k);
            const codes::stripe_view v(cols, map_.rows(),
                                       map_.element_size());
            code_.encode_crc(v, integrity_block_, writer.column_crcs(i, k),
                             writer.column_crcs(i, k + 1));
            writer.submit_columns(s, i, cols, k, n);
            ++submitted;
        }
        writer.drain();
        // Store results are ignored just like the synchronous path: failed
        // disks miss the update and the stripe stays decodable while <= 2
        // columns are down. The journal entry is cleared only once every
        // column of the stripe has been given to the backend.
        if (powered_) {
            for (std::size_t i = 0; i < submitted; ++i)
                journal_clear(first + done + i);
        }
        if (!powered_) return true;
        done += submitted;
    }
    if (mark_failed) return false;
    return failed_disk_count() <= 2;
}

bool raid6_array::write_partial(std::size_t stripe, std::size_t in_stripe,
                                std::span<const std::byte> in) {
    obs::timed_span span(obs_, hist_write_small_, "raid.write_small");
    const std::size_t elem = map_.element_size();
    const std::uint32_t pc = code_.p_column();
    const std::uint32_t qc = code_.q_column();
    const auto& g = code_.geom();

    // A stripe still journaled from an earlier crash may hold torn parity;
    // patching torn parity would carry the tear forward under a *cleared*
    // journal entry — silent corruption. Re-sync first (md does the same
    // the first time it touches a dirty-bitmap stripe after an unclean
    // shutdown). Failure leaves the stripe journaled and the write refused.
    if (journal_.is_dirty(stripe)) {
        codes::stripe_buffer rbuf = make_stripe_buffer();
        if (!resync_journaled_stripe(stripe, rbuf.view())) return false;
    }

    // One touched data element per plan entry.
    struct touch {
        std::uint32_t col, row;
        std::size_t in_elem;   ///< first modified byte within the element
        std::size_t src_off;   ///< offset into `in`
        std::size_t chunk;
    };
    std::vector<touch> plan;
    for (std::size_t i = 0; i < in.size();) {
        const std::size_t o = in_stripe + i;
        const auto col = static_cast<std::uint32_t>(o / map_.strip_size());
        const std::size_t in_strip = o % map_.strip_size();
        const auto row = static_cast<std::uint32_t>(in_strip / elem);
        const std::size_t in_elem = in_strip % elem;
        const std::size_t chunk = std::min(in.size() - i, elem - in_elem);
        plan.push_back({col, row, in_elem, i, chunk});
        i += chunk;
    }

    // Validate phase: the update-optimal path needs every touched data
    // element and every parity element it patches to be readable. Nothing
    // is mutated until validation passes, so the stripe never ends up
    // half-updated before the reconstruct-write fallback below runs.
    // Reads are verified: XOR-patching parity with a delta computed from
    // silently corrupt old bytes would bake the corruption into parity
    // permanently. A checksum mismatch here simply demotes the write to
    // the reconstruct-write fallback, whose classification heals it.
    util::aligned_buffer old_e(elem), new_e(elem), delta(elem), par(elem);
    bool fast_ok = true;
    for (const touch& t : plan) {
        const strip_location dloc = map_.locate(stripe, t.col);
        const strip_location ploc = map_.locate(stripe, pc);
        const strip_location qloc = map_.locate(stripe, qc);
        const std::size_t elem_off = static_cast<std::size_t>(t.row) * elem;
        if (verified_disk_read(dloc.disk, dloc.offset + elem_off,
                               old_e.span()) != io_status::ok ||
            verified_disk_read(
                ploc.disk,
                ploc.offset + static_cast<std::size_t>(t.row) * elem,
                par.span()) != io_status::ok ||
            verified_disk_read(
                qloc.disk,
                qloc.offset +
                    static_cast<std::size_t>(g.diag_of(t.row, t.col)) * elem,
                par.span()) != io_status::ok) {
            fast_ok = false;
            break;
        }
        if (g.is_extra_position(t.row, t.col) &&
            verified_disk_read(
                qloc.disk,
                qloc.offset +
                    static_cast<std::size_t>(g.extra_q_index(t.col)) * elem,
                par.span()) != io_status::ok) {
            fast_ok = false;
            break;
        }
    }

    // Set to false when a mid-apply failure leaves a parity patch landed
    // without its peers and the rollback below cannot undo it: P/Q then
    // disagree with the data and must not be used to reconstruct anything.
    bool parity_trusted = true;
    if (fast_ok) {
        // Apply phase. Validation makes failures rare, but transient
        // faults or a health trip can still strike between phases. Each
        // touched element updates its 2-3 parity elements and then the
        // data element; on a mid-apply failure the landed patches of the
        // in-flight element are rolled back by XOR-ing the same delta out
        // again (exact, because a failed vdisk write never reaches the
        // medium) — completed elements are self-consistent, so a
        // successful rollback leaves the whole stripe consistent for the
        // reconstruct-write fallback below.
        std::uint64_t touch_mask = (std::uint64_t{1} << pc) |
                                   (std::uint64_t{1} << qc);
        for (const touch& t : plan) touch_mask |= std::uint64_t{1} << t.col;
        if (!journal_mark(stripe, touch_mask)) return false;
        bool applied = true;
        struct landed_patch {
            std::uint32_t disk;
            std::size_t offset;
        };
        std::vector<landed_patch> landed;
        for (const touch& t : plan) {
            const strip_location dloc = map_.locate(stripe, t.col);
            const strip_location ploc = map_.locate(stripe, pc);
            const strip_location qloc = map_.locate(stripe, qc);
            const std::size_t elem_off = static_cast<std::size_t>(t.row) * elem;

            if (verified_disk_read(dloc.disk, dloc.offset + elem_off,
                                   old_e.span()) != io_status::ok) {
                applied = false;
                break;
            }
            std::memcpy(new_e.data(), old_e.data(), elem);
            std::memcpy(new_e.data() + t.in_elem, in.data() + t.src_off,
                        t.chunk);
            xorops::xor2(delta.data(), old_e.data(), new_e.data(), elem);

            landed.clear();
            const auto patch = [&](std::uint32_t prow,
                                   const strip_location& loc) {
                const std::size_t poff =
                    loc.offset + static_cast<std::size_t>(prow) * elem;
                if (verified_disk_read(loc.disk, poff, par.span()) !=
                    io_status::ok) {
                    return false;
                }
                xorops::xor_into(par.data(), delta.data(), elem);
                if (disk_write(loc.disk, poff, par.span()) != io_status::ok) {
                    return false;
                }
                landed.push_back({loc.disk, poff});
                return true;
            };

            bool touch_ok =
                patch(t.row, ploc) && patch(g.diag_of(t.row, t.col), qloc);
            std::uint32_t touched = 2;
            if (touch_ok && g.is_extra_position(t.row, t.col)) {
                touch_ok = patch(g.extra_q_index(t.col), qloc);
                ++touched;
            }
            if (touch_ok &&
                disk_write(dloc.disk, dloc.offset + elem_off, new_e.span()) !=
                    io_status::ok) {
                touch_ok = false;
            }
            if (!touch_ok) {
                for (const landed_patch& u : landed) {
                    if (disk_read(u.disk, u.offset, par.span()) !=
                        io_status::ok) {
                        parity_trusted = false;
                        break;
                    }
                    xorops::xor_into(par.data(), delta.data(), elem);
                    if (disk_write(u.disk, u.offset, par.span()) !=
                        io_status::ok) {
                        parity_trusted = false;
                        break;
                    }
                }
                applied = false;
                break;
            }
            stats_.parity_elements_updated.fetch_add(
                touched, std::memory_order_relaxed);
        }
        if (applied) {
            journal_clear(stripe);
            stats_.small_writes.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        // Power died mid-apply: the record-ahead checksums of the dropped
        // writes make the stripe look corrupt to the verified fallback,
        // but it is *torn* — resync-on-replay owns that classification,
        // not load_stripe_verified. Leave it journaled and stop.
        if (!powered_) return true;
        // Fall through to the reconstruct-write path; the stripe stays
        // journaled until it completes.
    }

    // Degraded fallback: reconstruct the whole stripe (checksum-verified —
    // a silently corrupt column must not be re-encoded into fresh parity),
    // splice the new bytes, re-encode, write everything that is still
    // online. With parity untrusted (a rollback failure above), no data
    // column may be reconstructed from it: load_stripe_verified refuses,
    // the write fails loudly, and the stripe stays journaled for
    // recover_write_hole() to re-sync from data.
    codes::stripe_buffer buf = make_stripe_buffer();
    const stripe_recovery rec = load_stripe_verified(
        stripe, buf.view(), /*writeback=*/false, {}, parity_trusted);
    if (!rec.ok) return false;
    if (!rec.erased.empty()) {
        stats_.degraded_stripe_reads.fetch_add(1, std::memory_order_relaxed);
        for (const std::uint32_t col : rec.erased) {
            // Latent sector errors heal below when every column is
            // rewritten; keep the accounting load_and_decode would do.
            if (rec.statuses[col] == io_status::unreadable_sector) {
                stats_.media_errors_recovered.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
    }
    if (!rec.healed.empty()) {
        stats_.reads_self_healed.fetch_add(1, std::memory_order_relaxed);
    }
    for (std::size_t j = 0; j < in.size();) {
        const std::size_t o = in_stripe + j;
        const auto col = static_cast<std::uint32_t>(o / map_.strip_size());
        const std::size_t in_strip = o % map_.strip_size();
        const std::size_t chunk =
            std::min(in.size() - j, map_.strip_size() - in_strip);
        std::memcpy(buf.view().strip(col).data() + in_strip, in.data() + j,
                    chunk);
        j += chunk;
    }
    code_.encode(buf.view());
    std::vector<std::uint32_t> cols(map_.n());
    for (std::uint32_t c = 0; c < map_.n(); ++c) cols[c] = c;
    if (!journal_mark(stripe, intent_log::all_columns)) return false;
    store_columns(stripe, buf.view(), cols);
    journal_clear(stripe);
    stats_.small_writes.fetch_add(1, std::memory_order_relaxed);
    return failed_disk_count() <= 2;
}

}  // namespace liberation::raid
