#include "liberation/raid/array.hpp"

#include <algorithm>
#include <cstring>

#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::raid {

namespace {

std::uint32_t effective_p(const array_config& cfg) {
    return cfg.p != 0 ? cfg.p : util::next_odd_prime(cfg.k);
}

}  // namespace

raid6_array::raid6_array(const array_config& cfg)
    : map_(cfg.k, effective_p(cfg), cfg.element_size, cfg.stripes, cfg.layout),
      code_(cfg.k, effective_p(cfg)),
      sector_size_(cfg.sector_size) {
    disks_.reserve(map_.n());
    for (std::uint32_t d = 0; d < map_.n(); ++d) {
        disks_.push_back(std::make_unique<vdisk>(d, map_.disk_capacity(),
                                                 cfg.sector_size));
    }
}

void raid6_array::add_data_disk() {
    LIBERATION_EXPECTS(map_.layout() == parity_layout::parity_first);
    LIBERATION_EXPECTS(map_.k() < code_.p());
    LIBERATION_EXPECTS(failed_disk_count() == 0);
    const std::uint32_t new_k = map_.k() + 1;
    disks_.push_back(std::make_unique<vdisk>(map_.n(), map_.disk_capacity(),
                                             sector_size_));
    map_ = stripe_map(new_k, map_.rows(), map_.element_size(), map_.stripes(),
                      parity_layout::parity_first);
    code_ = core::liberation_optimal_code(new_k, code_.p());
}

std::uint32_t raid6_array::failed_disk_count() const noexcept {
    std::uint32_t n = 0;
    for (const auto& d : disks_) {
        if (!d->online()) ++n;
    }
    return n;
}

bool raid6_array::load_stripe(std::size_t stripe, const codes::stripe_view& dst,
                              std::vector<std::uint32_t>& erased) const {
    erased.clear();
    for (std::uint32_t col = 0; col < map_.n(); ++col) {
        const strip_location loc = map_.locate(stripe, col);
        const io_status st =
            disks_[loc.disk]->read(loc.offset, dst.strip(col));
        if (st != io_status::ok) erased.push_back(col);
    }
    return erased.size() <= 2;
}

bool raid6_array::store_columns(std::size_t stripe,
                                const codes::stripe_view& src,
                                std::span<const std::uint32_t> cols) {
    bool all_ok = true;
    for (const std::uint32_t col : cols) {
        const strip_location loc = map_.locate(stripe, col);
        if (disk_write(loc.disk, loc.offset, src.strip(col)) !=
            io_status::ok) {
            all_ok = false;
        }
    }
    return all_ok;
}

io_status raid6_array::disk_write(std::uint32_t disk, std::size_t offset,
                                  std::span<const std::byte> in) {
    if (write_budget_ == 0) {
        powered_ = false;
        return io_status::ok;  // the host never learns; the bits are gone
    }
    --write_budget_;
    return disks_[disk]->write(offset, in);
}

void raid6_array::journal_mark(std::size_t stripe) {
    if (powered_) journal_.mark(stripe);
}

void raid6_array::journal_clear(std::size_t stripe) {
    // A dead host cannot clear its NVRAM word — the whole point.
    if (powered_) journal_.clear(stripe);
}

std::size_t raid6_array::resilver() {
    std::size_t healed = 0;
    codes::stripe_buffer buf = make_stripe_buffer();
    for (std::size_t s = 0; s < map_.stripes(); ++s) {
        const auto before = stats_.media_errors_recovered;
        if (!load_and_decode(s, buf.view())) continue;  // > 2 unavailable
        healed += stats_.media_errors_recovered - before;
    }
    return healed;
}

std::size_t raid6_array::recover_write_hole() {
    LIBERATION_EXPECTS(powered_);
    std::size_t resynced = 0;
    codes::stripe_buffer buf = make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    const std::uint32_t parity_cols[] = {code_.p_column(), code_.q_column()};
    for (const std::size_t s : journal_.dirty_stripes()) {
        if (!load_stripe(s, buf.view(), erased) || !erased.empty()) {
            continue;  // degraded: leave journaled for later
        }
        // Data is the source of truth; rebuild both parity columns.
        code_.encode(buf.view());
        if (!store_columns(s, buf.view(), parity_cols)) continue;
        journal_.clear(s);
        ++resynced;
    }
    return resynced;
}

bool raid6_array::load_and_decode(std::size_t stripe,
                                  const codes::stripe_view& buf) {
    std::vector<std::uint32_t> erased;
    if (!load_stripe(stripe, buf, erased)) return false;
    if (erased.empty()) return true;
    code_.decode(buf, erased);
    ++stats_.degraded_stripe_reads;
    // Heal-on-read: a column that was unreadable on an *online* disk is a
    // latent sector error. Rewrite the reconstructed strip so the medium
    // remaps it (md's read-error rewrite) — otherwise the bad sector lies
    // in wait and turns the next double failure into a triple.
    for (const std::uint32_t col : erased) {
        const strip_location loc = map_.locate(stripe, col);
        if (!disks_[loc.disk]->online()) continue;
        ++stats_.media_errors_recovered;
        const std::uint32_t one[] = {col};
        store_columns(stripe, buf, one);
    }
    return true;
}

bool raid6_array::read_element_degraded(std::size_t stripe, std::uint32_t row,
                                        std::uint32_t col,
                                        std::span<std::byte> out) {
    const std::size_t elem = map_.element_size();
    LIBERATION_EXPECTS(out.size() == elem && col < map_.k());
    util::aligned_buffer acc(elem), tmp(elem);

    const auto read_elem = [&](std::uint32_t c, std::uint32_t r,
                               std::span<std::byte> dst) {
        const strip_location loc = map_.locate(stripe, c);
        return disks_[loc.disk]->read(
                   loc.offset + static_cast<std::size_t>(r) * elem, dst) ==
               io_status::ok;
    };

    if (!read_elem(code_.p_column(), row, acc.span())) return false;
    for (std::uint32_t j = 0; j < map_.k(); ++j) {
        if (j == col) continue;
        if (!read_elem(j, row, tmp.span())) return false;
        xorops::xor_into(acc.data(), tmp.data(), elem);
    }
    std::memcpy(out.data(), acc.data(), elem);
    ++stats_.degraded_element_reads;
    return true;
}

bool raid6_array::read(std::size_t addr, std::span<std::byte> out) {
    LIBERATION_EXPECTS(addr + out.size() <= capacity());
    std::size_t done = 0;
    while (done < out.size()) {
        const std::size_t a = addr + done;
        const std::size_t stripe = a / map_.stripe_data_size();
        const std::size_t in_stripe = a % map_.stripe_data_size();
        const std::size_t span_len = std::min(
            out.size() - done, map_.stripe_data_size() - in_stripe);

        // Fast path: per-column direct reads.
        bool degraded = false;
        std::size_t off = in_stripe;
        std::size_t copied = 0;
        while (copied < span_len && !degraded) {
            const auto col = static_cast<std::uint32_t>(off / map_.strip_size());
            const std::size_t in_strip = off % map_.strip_size();
            const std::size_t chunk =
                std::min(span_len - copied, map_.strip_size() - in_strip);
            const strip_location loc = map_.locate(stripe, col);
            const io_status st = disks_[loc.disk]->read(
                loc.offset + in_strip, out.subspan(done + copied, chunk));
            if (st != io_status::ok) {
                degraded = true;
                break;
            }
            copied += chunk;
            off += chunk;
        }

        if (degraded) {
            // Small reads: recover just the touched elements via row
            // parity (k element reads each) before paying a full-stripe
            // decode. Falls back when a second column is unavailable.
            bool element_path = span_len <= 2 * map_.element_size();
            if (element_path) {
                util::aligned_buffer ebuf(map_.element_size());
                for (std::size_t i = 0; i < span_len && element_path;) {
                    const std::size_t o = in_stripe + i;
                    const auto col =
                        static_cast<std::uint32_t>(o / map_.strip_size());
                    const std::size_t in_strip = o % map_.strip_size();
                    const auto row = static_cast<std::uint32_t>(
                        in_strip / map_.element_size());
                    const std::size_t in_elem =
                        in_strip % map_.element_size();
                    const std::size_t chunk = std::min(
                        span_len - i, map_.element_size() - in_elem);
                    const strip_location loc = map_.locate(stripe, col);
                    if (disks_[loc.disk]->read(
                            loc.offset +
                                static_cast<std::size_t>(row) *
                                    map_.element_size(),
                            ebuf.span()) != io_status::ok &&
                        !read_element_degraded(stripe, row, col,
                                               ebuf.span())) {
                        element_path = false;
                        break;
                    }
                    std::memcpy(out.data() + done + i, ebuf.data() + in_elem,
                                chunk);
                    i += chunk;
                }
            }
            if (!element_path) {
                codes::stripe_buffer buf = make_stripe_buffer();
                if (!load_and_decode(stripe, buf.view())) return false;
                // Gather the requested bytes from the rebuilt stripe.
                for (std::size_t i = 0; i < span_len;) {
                    const std::size_t o = in_stripe + i;
                    const auto col =
                        static_cast<std::uint32_t>(o / map_.strip_size());
                    const std::size_t in_strip = o % map_.strip_size();
                    const std::size_t chunk =
                        std::min(span_len - i, map_.strip_size() - in_strip);
                    std::memcpy(out.data() + done + i,
                                buf.view().strip(col).data() + in_strip,
                                chunk);
                    i += chunk;
                }
            }
        }
        done += span_len;
    }
    return true;
}

bool raid6_array::write(std::size_t addr, std::span<const std::byte> in) {
    LIBERATION_EXPECTS(addr + in.size() <= capacity());
    std::size_t done = 0;
    while (done < in.size()) {
        const std::size_t a = addr + done;
        const std::size_t stripe = a / map_.stripe_data_size();
        const std::size_t in_stripe = a % map_.stripe_data_size();
        const std::size_t span_len =
            std::min(in.size() - done, map_.stripe_data_size() - in_stripe);

        bool ok;
        if (in_stripe == 0 && span_len == map_.stripe_data_size()) {
            ok = write_full_stripe(stripe, in.subspan(done, span_len));
        } else {
            ok = write_partial(stripe, in_stripe, in.subspan(done, span_len));
        }
        if (!ok) return false;
        done += span_len;
    }
    return true;
}

bool raid6_array::write_full_stripe(std::size_t stripe,
                                    std::span<const std::byte> in) {
    codes::stripe_buffer buf = make_stripe_buffer();
    const codes::stripe_view v = buf.view();
    for (std::uint32_t col = 0; col < map_.k(); ++col) {
        std::memcpy(v.strip(col).data(),
                    in.data() + static_cast<std::size_t>(col) * map_.strip_size(),
                    map_.strip_size());
    }
    code_.encode(v);
    ++stats_.full_stripe_writes;
    std::vector<std::uint32_t> cols(map_.n());
    for (std::uint32_t c = 0; c < map_.n(); ++c) cols[c] = c;
    // Failed disks simply miss the update; the stripe stays decodable as
    // long as <= 2 columns are down.
    journal_mark(stripe);
    store_columns(stripe, v, cols);
    journal_clear(stripe);
    return failed_disk_count() <= 2;
}

bool raid6_array::write_partial(std::size_t stripe, std::size_t in_stripe,
                                std::span<const std::byte> in) {
    const std::size_t elem = map_.element_size();
    const std::uint32_t pc = code_.p_column();
    const std::uint32_t qc = code_.q_column();
    const auto& g = code_.geom();

    // One touched data element per plan entry.
    struct touch {
        std::uint32_t col, row;
        std::size_t in_elem;   ///< first modified byte within the element
        std::size_t src_off;   ///< offset into `in`
        std::size_t chunk;
    };
    std::vector<touch> plan;
    for (std::size_t i = 0; i < in.size();) {
        const std::size_t o = in_stripe + i;
        const auto col = static_cast<std::uint32_t>(o / map_.strip_size());
        const std::size_t in_strip = o % map_.strip_size();
        const auto row = static_cast<std::uint32_t>(in_strip / elem);
        const std::size_t in_elem = in_strip % elem;
        const std::size_t chunk = std::min(in.size() - i, elem - in_elem);
        plan.push_back({col, row, in_elem, i, chunk});
        i += chunk;
    }

    // Validate phase: the update-optimal path needs every touched data
    // element and every parity element it patches to be readable. Nothing
    // is mutated until validation passes, so the stripe never ends up
    // half-updated before the reconstruct-write fallback below runs.
    util::aligned_buffer old_e(elem), new_e(elem), delta(elem), par(elem);
    bool fast_ok = true;
    for (const touch& t : plan) {
        const strip_location dloc = map_.locate(stripe, t.col);
        const strip_location ploc = map_.locate(stripe, pc);
        const strip_location qloc = map_.locate(stripe, qc);
        const std::size_t elem_off = static_cast<std::size_t>(t.row) * elem;
        if (disks_[dloc.disk]->read(dloc.offset + elem_off, old_e.span()) !=
                io_status::ok ||
            disks_[ploc.disk]->read(
                ploc.offset + static_cast<std::size_t>(t.row) * elem,
                par.span()) != io_status::ok ||
            disks_[qloc.disk]->read(
                qloc.offset +
                    static_cast<std::size_t>(g.diag_of(t.row, t.col)) * elem,
                par.span()) != io_status::ok) {
            fast_ok = false;
            break;
        }
        if (g.is_extra_position(t.row, t.col) &&
            disks_[qloc.disk]->read(
                qloc.offset +
                    static_cast<std::size_t>(g.extra_q_index(t.col)) * elem,
                par.span()) != io_status::ok) {
            fast_ok = false;
            break;
        }
    }

    if (fast_ok) {
        // Apply phase: reads were validated, writes to online disks cannot
        // fail, so every element update is applied atomically.
        journal_mark(stripe);
        for (const touch& t : plan) {
            const strip_location dloc = map_.locate(stripe, t.col);
            const strip_location ploc = map_.locate(stripe, pc);
            const strip_location qloc = map_.locate(stripe, qc);
            const std::size_t elem_off = static_cast<std::size_t>(t.row) * elem;

            io_status st =
                disks_[dloc.disk]->read(dloc.offset + elem_off, old_e.span());
            LIBERATION_ENSURES(st == io_status::ok);
            std::memcpy(new_e.data(), old_e.data(), elem);
            std::memcpy(new_e.data() + t.in_elem, in.data() + t.src_off,
                        t.chunk);
            xorops::xor2(delta.data(), old_e.data(), new_e.data(), elem);

            const auto patch = [&](std::uint32_t prow,
                                   const strip_location& loc) {
                const std::size_t poff =
                    loc.offset + static_cast<std::size_t>(prow) * elem;
                const io_status rs = disks_[loc.disk]->read(poff, par.span());
                LIBERATION_ENSURES(rs == io_status::ok);
                xorops::xor_into(par.data(), delta.data(), elem);
                const io_status ws = disk_write(loc.disk, poff, par.span());
                LIBERATION_ENSURES(ws == io_status::ok);
            };

            patch(t.row, ploc);
            patch(g.diag_of(t.row, t.col), qloc);
            std::uint32_t touched = 2;
            if (g.is_extra_position(t.row, t.col)) {
                patch(g.extra_q_index(t.col), qloc);
                ++touched;
            }
            st = disk_write(dloc.disk, dloc.offset + elem_off, new_e.span());
            LIBERATION_ENSURES(st == io_status::ok);
            stats_.parity_elements_updated += touched;
        }
        journal_clear(stripe);
        ++stats_.small_writes;
        return true;
    }

    // Degraded fallback: reconstruct the whole stripe, splice the new
    // bytes, re-encode, write everything that is still online.
    codes::stripe_buffer buf = make_stripe_buffer();
    if (!load_and_decode(stripe, buf.view())) return false;
    for (std::size_t j = 0; j < in.size();) {
        const std::size_t o = in_stripe + j;
        const auto col = static_cast<std::uint32_t>(o / map_.strip_size());
        const std::size_t in_strip = o % map_.strip_size();
        const std::size_t chunk =
            std::min(in.size() - j, map_.strip_size() - in_strip);
        std::memcpy(buf.view().strip(col).data() + in_strip, in.data() + j,
                    chunk);
        j += chunk;
    }
    code_.encode(buf.view());
    std::vector<std::uint32_t> cols(map_.n());
    for (std::uint32_t c = 0; c < map_.n(); ++c) cols[c] = c;
    journal_mark(stripe);
    store_columns(stripe, buf.view(), cols);
    journal_clear(stripe);
    ++stats_.small_writes;
    return failed_disk_count() <= 2;
}

}  // namespace liberation::raid
