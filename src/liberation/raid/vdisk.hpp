// Virtual disk: an in-memory block device with fault injection.
//
// Models the three failure modes the paper's RAID-6 motivation rests on
// (Section I): fail-stop disk loss, latent sector errors (unreadable on
// read — the "uncorrectable read error during recovery" case), and silent
// corruption (reads succeed but return wrong bytes — exercised by the
// scrubber).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/rng.hpp"

namespace liberation::raid {

enum class io_status : std::uint8_t {
    ok,
    disk_failed,        ///< fail-stop: no I/O possible
    unreadable_sector,  ///< latent sector error inside the extent
    out_of_range,
};

/// Snapshot of a disk's I/O counters. Counters are updated atomically so
/// concurrent rebuild workers may touch disjoint extents of one disk.
struct disk_stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
};

class vdisk {
public:
    /// Sector size only affects latent-error granularity.
    vdisk(std::uint32_t id, std::size_t capacity, std::size_t sector_size = 4096);

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
    [[nodiscard]] bool online() const noexcept { return online_; }
    [[nodiscard]] disk_stats stats() const noexcept {
        return {reads_.load(), writes_.load(), bytes_read_.load(),
                bytes_written_.load()};
    }

    io_status read(std::size_t offset, std::span<std::byte> out);
    io_status write(std::size_t offset, std::span<const std::byte> in);

    // ---- fault injection ---------------------------------------------

    /// Fail-stop: all subsequent I/O returns disk_failed.
    void fail() noexcept { online_ = false; }

    /// Swap in a fresh blank disk (same geometry) — contents zeroed,
    /// latent errors cleared, back online.
    void replace();

    /// Mark the sectors covering [offset, offset+len) as unreadable.
    void inject_latent_error(std::size_t offset, std::size_t len);

    /// Clear a latent error (e.g. after the block is rewritten). Writes do
    /// this automatically for fully covered sectors.
    void clear_latent_errors() { bad_sectors_.clear(); }

    /// Silently flip random bits in [offset, offset+len): reads still
    /// succeed. Returns the number of bytes altered (>= 1).
    std::size_t inject_silent_corruption(std::size_t offset, std::size_t len,
                                         util::xoshiro256& rng);

    [[nodiscard]] std::size_t latent_error_count() const noexcept {
        return bad_sectors_.size();
    }

private:
    [[nodiscard]] bool extent_ok(std::size_t offset, std::size_t len) const noexcept {
        return offset + len <= data_.size() && offset + len >= offset;
    }
    [[nodiscard]] bool extent_readable(std::size_t offset, std::size_t len) const;

    std::uint32_t id_;
    std::size_t sector_size_;
    util::aligned_buffer data_;
    std::map<std::size_t, bool> bad_sectors_;  // sector index -> latent error
    bool online_ = true;
    std::atomic<std::uint64_t> reads_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> bytes_read_{0};
    std::atomic<std::uint64_t> bytes_written_{0};
};

}  // namespace liberation::raid
