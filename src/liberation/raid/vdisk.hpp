// Virtual disk: an in-memory block device with fault injection.
//
// Models the four failure modes the paper's RAID-6 motivation rests on
// (Section I): fail-stop disk loss, latent sector errors (unreadable on
// read — the "uncorrectable read error during recovery" case), silent
// corruption (reads succeed but return wrong bytes — exercised by the
// scrubber), and *transient* errors (an I/O fails once and succeeds on
// retry — the class real drives report as recovered/command-timeout
// events, absorbed by the retrying io_policy).
//
// Transient faults come in two flavours, both replayable:
//   * probabilistic — each read/write fails with a configured rate, drawn
//     from a per-disk seeded xoshiro256 stream;
//   * scheduled — "the Nth read (or write) from now fails", for
//     deterministic unit tests and chaos-campaign storms.
//
// A fifth, *fail-slow* mode models gray failure: the disk still answers
// correctly, but a seeded latency profile (constant, ramp, or
// intermittent stall) stamps a virtual service time onto every op. The
// disk never sleeps — it reports the cost through an out-parameter and
// the io_policy charges it to the array's virtual clock, so fail-slow
// campaigns stay instant and bit-for-bit replayable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/rng.hpp"

namespace liberation::raid {

enum class io_status : std::uint8_t {
    ok,
    disk_failed,        ///< fail-stop: no I/O possible
    unreadable_sector,  ///< latent sector error inside the extent
    out_of_range,
    transient_error,    ///< failed now, a retry may succeed (io_policy)
    rebuilding,         ///< array-level: extent not yet rebuilt on a spare
    checksum_mismatch,  ///< array-level: bytes read fine but fail their CRC
};

/// Only transient errors are worth retrying: everything else is either
/// permanent (fail-stop, latent until rewritten) or a caller bug.
[[nodiscard]] constexpr bool is_retryable(io_status st) noexcept {
    return st == io_status::transient_error;
}

enum class io_kind : std::uint8_t { read, write };

/// Fail-slow injection profile: how long each operation *would* take on
/// the slow medium, in virtual microseconds. The three shapes cover the
/// gray-failure taxonomy: `constant` (a uniformly slow disk, e.g. a bad
/// cable), `ramp` (a disk degrading op by op, e.g. a dying head), and
/// `intermittent_stall` (mostly healthy with periodic multi-ms freezes,
/// e.g. firmware GC pauses — the shape that makes hedging pay).
struct latency_profile {
    enum class shape : std::uint8_t { none, constant, ramp, intermittent_stall };
    shape kind = shape::none;
    /// Baseline service time added to every op.
    std::uint64_t base_us = 0;
    /// Uniform jitter in [0, jitter_us) drawn from the seeded stream.
    std::uint64_t jitter_us = 0;
    /// `ramp`: extra latency accrued per op, capped at ramp_cap_us.
    std::uint64_t ramp_us_per_op = 0;
    std::uint64_t ramp_cap_us = 0;
    /// `intermittent_stall`: every stall_every-th op takes stall_us extra.
    std::uint64_t stall_us = 0;
    std::uint64_t stall_every = 0;

    [[nodiscard]] bool enabled() const noexcept { return kind != shape::none; }
};

/// Snapshot of a disk's I/O counters. Counters are updated atomically so
/// concurrent rebuild workers may touch disjoint extents of one disk.
struct disk_stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t transient_read_errors = 0;
    std::uint64_t transient_write_errors = 0;
};

class vdisk {
public:
    /// Sector size only affects latent-error granularity.
    vdisk(std::uint32_t id, std::size_t capacity, std::size_t sector_size = 4096);

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
    [[nodiscard]] bool online() const noexcept {
        return online_.load(std::memory_order_acquire);
    }
    [[nodiscard]] disk_stats stats() const noexcept {
        return {reads_.load(),      writes_.load(),
                bytes_read_.load(), bytes_written_.load(),
                transient_reads_.load(), transient_writes_.load()};
    }

    /// `service_us`, when non-null, receives the injected fail-slow
    /// service time of this attempt in virtual microseconds (0 when no
    /// profile is armed). Failed attempts are stamped too — a slow disk
    /// is slow whether or not the op ultimately succeeds.
    io_status read(std::size_t offset, std::span<std::byte> out,
                   std::uint64_t* service_us = nullptr);
    io_status write(std::size_t offset, std::span<const std::byte> in,
                    std::uint64_t* service_us = nullptr);

    // ---- persistence hooks (see raid/persist/) -----------------------

    /// Mirror of every medium mutation: called with (offset, the bytes now
    /// on the medium) after each successful write, each silent-corruption
    /// injection, and the replace() zeroing. The persistence layer
    /// attaches one per disk so a backing file tracks the in-memory medium
    /// byte for byte — including injected rot, which must survive a
    /// remount exactly like it survives on a real platter. Never invoked
    /// for *failed* I/O (nothing reached the medium) or for peek()/poke().
    using media_sink =
        std::function<void(std::size_t offset, std::span<const std::byte>)>;
    void attach_media_sink(media_sink sink) { sink_ = std::move(sink); }
    void detach_media_sink() { sink_ = nullptr; }

    /// Raw medium access, bypassing fault injection, counters, and the
    /// media sink: mount loads persisted disk images through poke(), and
    /// tests peek at the medium without disturbing the fault streams.
    void peek(std::size_t offset, std::span<std::byte> out) const;
    void poke(std::size_t offset, std::span<const std::byte> in);

    // ---- fault injection ---------------------------------------------

    /// Fail-stop: all subsequent I/O returns disk_failed. Atomic — rebuild
    /// workers doing I/O may race with a health-monitor trip.
    void fail() noexcept { online_.store(false, std::memory_order_release); }

    /// Swap in a fresh blank disk (same geometry) — contents zeroed,
    /// latent errors cleared, transient fault config and latency profile
    /// cleared (they belonged to the old hardware), back online.
    void replace();

    /// Mark the sectors covering [offset, offset+len) as unreadable.
    void inject_latent_error(std::size_t offset, std::size_t len);

    /// Clear a latent error (e.g. after the block is rewritten). Writes do
    /// this automatically for fully covered sectors.
    void clear_latent_errors() { bad_sectors_.clear(); }

    /// Silently flip random bits in [offset, offset+len): reads still
    /// succeed. Returns the number of bytes altered (>= 1).
    std::size_t inject_silent_corruption(std::size_t offset, std::size_t len,
                                         util::xoshiro256& rng);

    [[nodiscard]] std::size_t latent_error_count() const noexcept {
        return bad_sectors_.size();
    }

    // ---- transient fault injection -----------------------------------

    /// Arm probabilistic transient errors: each read (write) fails with
    /// `read_rate` (`write_rate`) probability, drawn from a xoshiro256
    /// stream seeded with `seed` so campaigns replay bit-for-bit.
    /// Rates of 0 disable the respective kind.
    void set_transient_fault_rates(double read_rate, double write_rate,
                                   std::uint64_t seed);

    /// Deterministic schedule: the (`ops_from_now`)-th next operation of
    /// `kind` fails with transient_error (0 = the very next one). Each
    /// scheduled fault fires exactly once.
    void schedule_transient_fault(io_kind kind, std::uint64_t ops_from_now);

    /// Disarm all transient fault injection (rates and schedules).
    void clear_transient_faults();

    // ---- fail-slow injection -----------------------------------------

    /// Arm a fail-slow latency profile. Jitter draws come from a
    /// dedicated xoshiro256 stream seeded with `seed`, separate from the
    /// transient-fault stream so arming latency never perturbs an
    /// existing fault replay. Replaces any previous profile; the op
    /// counter restarts (a fresh profile describes a fresh pathology).
    void set_latency_profile(const latency_profile& profile,
                             std::uint64_t seed);

    /// Disarm fail-slow injection (the disk is fast again).
    void clear_latency_profile();

    [[nodiscard]] bool latency_profile_armed() const noexcept {
        return latency_armed_.load(std::memory_order_relaxed);
    }

private:
    [[nodiscard]] bool extent_ok(std::size_t offset, std::size_t len) const noexcept {
        return offset + len <= data_.size() && offset + len >= offset;
    }
    [[nodiscard]] bool extent_readable(std::size_t offset, std::size_t len) const;

    /// Advance the per-kind op counter and decide whether this operation
    /// suffers an injected transient error.
    [[nodiscard]] bool take_transient_fault(io_kind kind);

    /// Advance the latency op counter and compute this op's injected
    /// service time in virtual µs (0 when no profile is armed).
    [[nodiscard]] std::uint64_t take_service_latency();

    std::uint32_t id_;
    std::size_t sector_size_;
    util::aligned_buffer data_;
    std::map<std::size_t, bool> bad_sectors_;  // sector index -> latent error
    std::atomic<bool> online_{true};
    std::atomic<std::uint64_t> reads_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> bytes_read_{0};
    std::atomic<std::uint64_t> bytes_written_{0};
    std::atomic<std::uint64_t> transient_reads_{0};
    std::atomic<std::uint64_t> transient_writes_{0};

    // Transient-fault state. Guarded by fault_mutex_ because parallel
    // rebuild workers read one disk concurrently; the armed flag keeps the
    // unfaulted hot path lock-free.
    std::atomic<bool> faults_armed_{false};
    mutable std::mutex fault_mutex_;
    double read_rate_ = 0.0;
    double write_rate_ = 0.0;
    std::optional<util::xoshiro256> fault_rng_;
    std::uint64_t read_ops_ = 0;
    std::uint64_t write_ops_ = 0;
    std::set<std::uint64_t> scheduled_read_faults_;
    std::set<std::uint64_t> scheduled_write_faults_;

    // Fail-slow state. Shares fault_mutex_ (both are cold paths once the
    // armed flags say "off"); its own RNG + op counter so arming latency
    // never shifts the transient-fault replay stream.
    std::atomic<bool> latency_armed_{false};
    latency_profile latency_;
    std::optional<util::xoshiro256> latency_rng_;
    std::uint64_t latency_ops_ = 0;

    media_sink sink_;  ///< null unless the persistence layer is attached
};

}  // namespace liberation::raid
