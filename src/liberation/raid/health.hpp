// Per-disk health monitor: md-style error accounting with a trip threshold.
//
// md kicks a disk out of an array when its error count crosses
// max_read_errors (default 20 "corrected" read errors) or on the first
// failed write. We mirror that: transient errors masked by the io_policy
// still count (a disk that needs constant retries is dying), hard read
// errors (latent sectors, exhausted retries) count more, and arrays that
// enable the write criterion trip on the first hard write error — a write
// that never reached the medium would otherwise turn into silent
// corruption the moment the stale column is read back.
//
// Counters are atomic: rebuild/resilver workers record outcomes from pool
// threads while the foreground path does the same. The trip transition is
// reported exactly once (compare-exchange), so the array promotes at most
// one spare per failure.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "liberation/raid/vdisk.hpp"

namespace liberation::raid {

/// All thresholds default to 0 = disabled: tripping is opt-in, because a
/// threshold also changes the semantics of deliberate fault injection (a
/// latent-error test would see its disk kicked). Arrays that want md-like
/// behaviour set e.g. {.max_read_errors = 20, .max_write_errors = 1}.
struct health_config {
    /// Transient errors tolerated (even when masked by retries) before the
    /// disk is considered too flaky to trust. 0 disables the criterion.
    std::uint64_t max_transient_errors = 0;
    /// Hard read failures (latent sectors, retry-exhausted reads) before
    /// tripping. 0 disables.
    std::uint64_t max_read_errors = 0;
    /// Hard write failures before tripping. 1 = first lost write trips
    /// (md semantics) so a stale column never masquerades as data.
    /// 0 disables.
    std::uint64_t max_write_errors = 0;
};

enum class disk_health : std::uint8_t {
    healthy,
    suspect,  ///< accumulating errors, above half a threshold
    tripped,  ///< crossed a threshold; the array fails + replaces it
};

struct disk_health_stats {
    std::uint64_t transient_errors = 0;
    std::uint64_t hard_read_errors = 0;
    std::uint64_t hard_write_errors = 0;
    disk_health state = disk_health::healthy;
};

class health_monitor {
public:
    health_monitor(std::uint32_t disks, const health_config& cfg);

    /// Record the outcome of one policy-mediated I/O: `transient_seen`
    /// transient errors were absorbed, `final` is what the caller got.
    /// Returns true exactly once per disk life: on the transition into
    /// `tripped`. The caller is then responsible for failing the disk.
    bool record(std::uint32_t disk, io_kind kind, io_status final_status,
                std::uint32_t transient_seen);

    [[nodiscard]] disk_health state(std::uint32_t disk) const;
    [[nodiscard]] disk_health_stats stats(std::uint32_t disk) const;
    [[nodiscard]] std::uint32_t disk_count() const noexcept {
        return static_cast<std::uint32_t>(disks_.size());
    }

    /// Fresh hardware in this slot (spare promotion / manual replace):
    /// zero the counters and return to healthy.
    void reset(std::uint32_t disk);

    /// Track one more disk (online growth).
    void add_disk();

    [[nodiscard]] const health_config& config() const noexcept { return cfg_; }

private:
    struct counters {
        std::atomic<std::uint64_t> transient{0};
        std::atomic<std::uint64_t> hard_read{0};
        std::atomic<std::uint64_t> hard_write{0};
        std::atomic<std::uint8_t> state{
            static_cast<std::uint8_t>(disk_health::healthy)};
    };

    [[nodiscard]] bool over_threshold(const counters& c) const;

    health_config cfg_;
    // unique_ptr so the vector can grow (add_disk) without moving atomics.
    std::vector<std::unique_ptr<counters>> disks_;
};

}  // namespace liberation::raid
