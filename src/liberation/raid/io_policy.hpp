// Retrying I/O policy: bounded retries with exponential backoff over a
// virtual clock.
//
// Real drives report a large class of errors that succeed on retry
// (recovered errors, command timeouts, transport glitches). md and every
// production array absorb those in the I/O path instead of surfacing them
// to the RAID layer; only errors that survive the retry budget become
// "hard" and feed the health monitor (health.hpp). Backoff runs on a
// virtual microsecond clock so simulations stay instant and deterministic
// while still recording how long a real array would have stalled.
#pragma once

#include <atomic>
#include <cstdint>

#include "liberation/obs/obs.hpp"
#include "liberation/raid/vdisk.hpp"

namespace liberation::raid {

/// Monotonic virtual time in microseconds. Shared by every component of an
/// array (I/O backoff today; scrub pacing tomorrow). Thread-safe.
class virtual_clock {
public:
    [[nodiscard]] std::uint64_t now_us() const noexcept {
        return now_us_.load(std::memory_order_relaxed);
    }
    void advance(std::uint64_t us) noexcept {
        now_us_.fetch_add(us, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> now_us_{0};
};

/// obs::now_fn adapter over a virtual_clock (`ctx` is the clock): lets an
/// observability hub time spans in deterministic virtual nanoseconds
/// (array_config::obs_virtual_time).
[[nodiscard]] inline std::uint64_t virtual_clock_now_ns(
    const void* ctx) noexcept {
    return static_cast<const virtual_clock*>(ctx)->now_us() * 1000;
}

struct io_policy_config {
    /// Retries *after* the first attempt; total attempts = 1 + max_retries.
    std::uint32_t max_retries = 3;
    /// Backoff before the first retry; doubles each further retry.
    std::uint64_t initial_backoff_us = 100;
    /// Backoff cap (exponential growth saturates here).
    std::uint64_t max_backoff_us = 10'000;
};

/// Snapshot of policy counters (thread-safe to collect).
struct io_policy_stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t retries = 0;            ///< extra attempts issued
    std::uint64_t transient_masked = 0;   ///< ops that failed then succeeded
    std::uint64_t retries_exhausted = 0;  ///< ops still transient after budget
    std::uint64_t backoff_us = 0;         ///< virtual time spent waiting
};

/// Outcome of one policy-mediated operation: the final status plus how many
/// transient errors were absorbed along the way (the health monitor counts
/// them even when the op ultimately succeeded — md's corrected-error
/// accounting).
struct io_result {
    io_status status = io_status::ok;
    std::uint32_t transient_seen = 0;
    /// Virtual time this op consumed: injected fail-slow service latency
    /// of every attempt plus retry backoff, in µs. In the default mode
    /// the same amount was already charged to the virtual clock; in
    /// deferred mode (hedged reads) nothing was charged and the caller
    /// decides what the host-visible wait really was.
    std::uint64_t latency_us = 0;

    [[nodiscard]] bool ok() const noexcept { return status == io_status::ok; }
};

/// The retry funnel every disk read and write of an array goes through
/// (both the synchronous paths and the aio engine's execution stage):
/// transient errors are retried up to `max_retries` times with
/// exponential backoff on the shared virtual clock; fail-stop and latent
/// errors are permanent by definition and never retried. Checksum
/// verification runs *after* this stage, so a mismatch is final — it is
/// a property of the bytes, not of the transfer. Thread-safe: rebuild
/// and resilver pool workers drive one policy concurrently with the
/// foreground path (counters are atomic, config is immutable).
class io_policy {
public:
    io_policy(const io_policy_config& cfg, virtual_clock& clock) noexcept
        : cfg_(cfg), clock_(&clock) {}

    /// One mediated read (write): retries absorbed, backoff and injected
    /// fail-slow service time charged to the virtual clock,
    /// `transient_seen` reported for health accounting even when the op
    /// ultimately succeeded.
    ///
    /// With `defer_time_charge` the op's virtual cost (service latency +
    /// backoff) is *measured* into `io_result::latency_us` but NOT
    /// charged to the clock: the hedged-read orchestrator issues the
    /// direct read and the reconstruction race this way, then charges
    /// only what the winner actually made the host wait.
    io_result read(vdisk& disk, std::size_t offset, std::span<std::byte> out,
                   bool defer_time_charge = false);
    io_result write(vdisk& disk, std::size_t offset,
                    std::span<const std::byte> in,
                    bool defer_time_charge = false);

    [[nodiscard]] io_policy_stats stats() const noexcept;
    [[nodiscard]] const io_policy_config& config() const noexcept {
        return cfg_;
    }

    /// Wire the policy into an observability hub: every mediated op is
    /// timed on the hub's clock into io_read_ns / io_write_ns (backoff is
    /// charged to the virtual clock, so on a virtual-time hub a retried
    /// op's latency *is* its backoff — the retry tail shows up in p99),
    /// and each retry emits an instant trace event when tracing is on.
    void attach_obs(obs::hub* h);

private:
    template <typename Op>
    io_result run(Op&& op, io_kind kind, bool defer_time_charge);

    io_policy_config cfg_;
    virtual_clock* clock_;
    obs::hub* obs_ = nullptr;
    obs::latency_histogram* hist_read_ = nullptr;
    obs::latency_histogram* hist_write_ = nullptr;
    std::atomic<std::uint64_t> reads_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> transient_masked_{0};
    std::atomic<std::uint64_t> retries_exhausted_{0};
    std::atomic<std::uint64_t> backoff_us_{0};
};

}  // namespace liberation::raid
